//! Parameter sweeps that regenerate every table and figure of the
//! paper's evaluation. The `duplex-bench` binaries print these; the
//! functions here return structured rows so tests and notebooks can
//! consume them too.
//!
//! Each function documents which figure it reproduces and the workload
//! behind it. Absolute numbers will not match the authors' testbed —
//! the substrate is a model, not their silicon — but the *shape* (who
//! wins, by what factor, where crossovers fall) is the reproduction
//! target, and `tests/integration_paper_claims.rs` pins it.
//!
//! Sweeps are embarrassingly parallel — every sweep point builds its
//! own [`SystemExecutor`] — so each driver fans its points out with
//! rayon and collects rows in deterministic input order. Results are
//! identical to a serial run: executors are seeded per point and the
//! default expected-value expert routing is deterministic.

use rayon::prelude::*;

use duplex_compute::kernel::GemmShape;
use duplex_compute::{AreaModel, Edap, Engine};
use duplex_model::ops::StageShape;
use duplex_model::ModelConfig;
use duplex_sched::{
    Arrivals, AutoscalePolicy, ClusterConfig, ClusterContext, ClusterReport, ClusterSimulation,
    ConversationSpec, DisaggPlan, FaultEvent, FaultKind, FaultPlan, KvLinkSpec, PolicyKind,
    ReplicaConfig, RequestSource, Router, RouterKind, Scenario, ScenarioSimulation,
    SchedulingPolicy, SimReport, SimulationConfig, TraceRequest, Workload,
};
use duplex_system::{CommModel, SplitSimulation, SystemConfig, SystemExecutor};

use crate::{run, RunConfig, RunResult};

/// Controls how much work the sweeps do. [`Scale::paper`] runs the
/// paper's sizes; [`Scale::quick`] shrinks sequence lengths and request
/// counts for CI and smoke tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Sequence lengths are divided by this factor.
    pub shrink: u64,
    /// Requests simulated per unit of batch size.
    pub requests_per_batch: f64,
    /// Extra stages beyond the expected decode count before truncation.
    pub stage_slack: usize,
}

impl Scale {
    /// Full paper-sized sweeps (minutes of wall clock in release mode).
    pub fn paper() -> Self {
        Self {
            shrink: 1,
            requests_per_batch: 1.25,
            stage_slack: 300,
        }
    }

    /// Shrunk sweeps for tests (seconds of wall clock).
    pub fn quick() -> Self {
        Self {
            shrink: 8,
            requests_per_batch: 1.0,
            stage_slack: 64,
        }
    }

    /// A sequence length at this scale (floor of 8 tokens).
    pub fn len(&self, tokens: u64) -> u64 {
        (tokens / self.shrink).max(8)
    }

    /// Requests to simulate for a batch size at this scale.
    pub fn requests(&self, batch: usize) -> usize {
        ((batch as f64 * self.requests_per_batch).ceil() as usize).max(batch + 1)
    }

    fn run_config(
        &self,
        model: ModelConfig,
        system: SystemConfig,
        lin: u64,
        lout: u64,
        batch: usize,
    ) -> RunConfig {
        let lin = self.len(lin);
        let lout = self.len(lout);
        let mut cfg = RunConfig::closed_loop(
            model,
            system,
            Workload::gaussian(lin, lout),
            batch,
            self.requests(batch),
        );
        cfg.max_stages = lout as usize * 2 + self.stage_slack;
        cfg
    }
}

impl Default for Scale {
    fn default() -> Self {
        Self::paper()
    }
}

// ---------------------------------------------------------------- Table I

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelRow {
    /// Model name.
    pub name: String,
    /// Parameter count in billions.
    pub params_b: f64,
    /// Decoder blocks.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u64,
    /// FFN intermediate dimension.
    pub intermediate: u64,
    /// Attention heads.
    pub heads: u32,
    /// GQA group degree (1 = MHA).
    pub deg_grp: u32,
    /// Experts per MoE layer (0 = dense).
    pub n_experts: u32,
    /// Experts chosen per token.
    pub top_k: u32,
    /// KV bytes per token of context.
    pub kv_bytes_per_token: u64,
}

/// Table I: the evaluated model configurations.
pub fn table1() -> Vec<ModelRow> {
    ModelConfig::table1()
        .into_iter()
        .map(|m| ModelRow {
            params_b: m.param_count() as f64 / 1e9,
            layers: m.n_layers,
            hidden: m.hidden,
            intermediate: m.intermediate,
            heads: m.n_heads,
            deg_grp: m.deg_grp,
            n_experts: m.n_experts,
            top_k: m.top_k,
            kv_bytes_per_token: m.kv_bytes_per_token(),
            name: m.name,
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 4

/// One bar of Fig. 4(a): normalized execution-time breakdown of a stage
/// on the GPU system.
#[derive(Debug, Clone, PartialEq)]
pub struct BreakdownRow {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// Response length Lout the stage sits in the middle of.
    pub lout: u64,
    /// Mixed or decoding-only stage.
    pub mixed: bool,
    /// Fractions summing to 1: FC, attention (prefill), attention
    /// (decode), MoE, communication.
    pub fractions: [f64; 5],
    /// Absolute stage seconds.
    pub seconds: f64,
}

/// Fig. 4(a): execution-time breakdown on the GPU system, Lin = 2048.
pub fn fig04_breakdown(scale: &Scale) -> Vec<BreakdownRow> {
    let lin = scale.len(2048);
    let mut points = Vec::new();
    for model in [ModelConfig::mixtral_8x7b(), ModelConfig::glam()] {
        for batch in [32usize, 64, 128] {
            for lout in [256u64, 1024, 4096] {
                for mixed in [false, true] {
                    points.push((model.clone(), batch, lout, mixed));
                }
            }
        }
    }
    points
        .into_par_iter()
        .map(|(model, batch, lout, mixed)| {
            let (devices, nodes) = SystemConfig::default_cluster(&model);
            let mut ex = SystemExecutor::new(SystemConfig::gpu(devices, nodes), model.clone(), 7);
            let lout_s = scale.len(lout);
            let ctx = lin + lout_s / 2;
            let shape = if mixed {
                StageShape::mixed(&vec![ctx; batch - 1], &[lin])
            } else {
                StageShape::decode_only(&vec![ctx; batch])
            };
            let c = ex.stage_cost(&shape);
            let t = c.time;
            let total = t.total().max(f64::MIN_POSITIVE);
            BreakdownRow {
                model: model.name,
                batch,
                lout,
                mixed,
                fractions: [
                    t.fc / total,
                    t.attn_prefill / total,
                    t.attn_decode / total,
                    t.moe / total,
                    t.comm / total,
                ],
                seconds: c.seconds,
            }
        })
        .collect()
}

/// One point of the Fig. 4(b) roofline: an operation class's aggregate
/// Op/B and achieved TFLOPS on the GPU system.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineRow {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: usize,
    /// "FC", "MoE" or "Attention".
    pub op: &'static str,
    /// Aggregate arithmetic intensity (FLOP per DRAM byte).
    pub op_b: f64,
    /// Achieved TFLOP/s on the GPU system.
    pub tflops: f64,
}

/// Fig. 4(b): roofline coordinates of FC / MoE / attention in a
/// decoding-only stage (Lin = 2048, Lout = 1024 midpoint).
pub fn fig04_roofline(scale: &Scale) -> Vec<RooflineRow> {
    let lin = scale.len(2048);
    let ctx = lin + scale.len(1024) / 2;
    let mut points = Vec::new();
    for model in [ModelConfig::mixtral_8x7b(), ModelConfig::glam()] {
        for batch in [32usize, 64, 128] {
            points.push((model.clone(), batch));
        }
    }
    points
        .into_par_iter()
        .map(|(model, batch)| {
            let (devices, nodes) = SystemConfig::default_cluster(&model);
            let mut ex = SystemExecutor::new(SystemConfig::gpu(devices, nodes), model.clone(), 7);
            let shape = StageShape::decode_only(&vec![ctx; batch]);
            let c = ex.stage_cost(&shape);
            // Reconstruct aggregate flops/bytes per class from the model.
            let work = duplex_model::ops::enumerate_stage(
                &model,
                &shape,
                &duplex_model::ExpertRouter::uniform(model.n_experts.max(1), model.top_k.max(1)),
                &mut <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7),
            );
            let bpe = model.bytes_per_elem;
            let fc_flops: f64 = work
                .fc_ops
                .iter()
                .map(|f| f.shape.flops() * f.count as f64)
                .sum();
            let fc_bytes: f64 = work
                .fc_ops
                .iter()
                .map(|f| (f.weight_bytes(bpe) * f.count) as f64)
                .sum();
            // Attention ops are grouped: scale by the multiplicity.
            let attn_flops: f64 = work
                .attn
                .iter()
                .map(|a| a.flops() * (a.count * a.reqs) as f64)
                .sum();
            let attn_bytes: f64 = work
                .attn
                .iter()
                .map(|a| (a.kv_dram_bytes(bpe) * a.count * a.reqs) as f64)
                .sum();
            let mut rows = Vec::new();
            let mut push = |op, flops: f64, bytes: f64, secs: f64| {
                if bytes > 0.0 && secs > 0.0 {
                    rows.push(RooflineRow {
                        model: model.name.clone(),
                        batch,
                        op,
                        op_b: flops / bytes,
                        tflops: flops / secs / 1e12,
                    });
                }
            };
            push("FC", fc_flops, fc_bytes, c.time.fc);
            push("Attention", attn_flops, attn_bytes, c.time.attn_decode);
            if model.is_moe() {
                let expert_bytes = model.ffn_params() * bpe;
                let (mut moe_flops, mut moe_bytes) = (0.0f64, 0.0f64);
                for layer in &work.moe {
                    for &t in &layer.expert_tokens {
                        if t > 0 {
                            let e = duplex_model::ops::ExpertWork::for_tokens(&model, t);
                            moe_flops += e.flops();
                            moe_bytes += expert_bytes as f64;
                        }
                    }
                }
                push("MoE", moe_flops, moe_bytes, c.time.moe);
            }
            rows
        })
        .collect::<Vec<_>>()
        .into_iter()
        .flatten()
        .collect()
}

// ---------------------------------------------------------------- Fig. 5

/// One bar of Fig. 5(a): decoding-only stage fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct StageRatioRow {
    /// Prompt length.
    pub lin: u64,
    /// Response length.
    pub lout: u64,
    /// Batch size.
    pub batch: usize,
    /// Fraction of stages that are decoding-only.
    pub decode_only_fraction: f64,
}

/// Fig. 5(a): ratio of decoding-only to mixed stages for Mixtral on the
/// GPU system.
pub fn fig05_stage_ratio(scale: &Scale) -> Vec<StageRatioRow> {
    let model = ModelConfig::mixtral_8x7b();
    let mut points = Vec::new();
    for batch in [32usize, 64, 128] {
        for (lin, lout) in [(256, 256), (256, 2048), (2048, 256), (2048, 2048)] {
            points.push((batch, lin, lout));
        }
    }
    points
        .into_par_iter()
        .map(|(batch, lin, lout)| {
            let cfg = scale.run_config(model.clone(), SystemConfig::gpu(4, 1), lin, lout, batch);
            let r = run(cfg);
            StageRatioRow {
                lin,
                lout,
                batch,
                decode_only_fraction: r.report.decode_only_fraction(),
            }
        })
        .collect()
}

/// Latency comparison row used by Figs. 5(b), 12, 13 and 16.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyRow {
    /// System name.
    pub system: String,
    /// Prompt length (or QPS for Fig. 13, context for others).
    pub lin: u64,
    /// Response length.
    pub lout: u64,
    /// TBT p50/p90/p99 in seconds.
    pub tbt: [f64; 3],
    /// T2FT p50 in seconds.
    pub t2ft_p50: f64,
    /// E2E p50 in seconds.
    pub e2e_p50: f64,
    /// Generation throughput in tokens/s.
    pub throughput: f64,
}

impl LatencyRow {
    fn of(lin: u64, lout: u64, r: &RunResult) -> Self {
        Self {
            system: r.system_name.clone(),
            lin,
            lout,
            tbt: [r.tbt.p50, r.tbt.p90, r.tbt.p99],
            t2ft_p50: r.t2ft.p50,
            e2e_p50: r.e2e.p50,
            throughput: r.throughput_tokens_per_s,
        }
    }
}

/// Fig. 5(b): GPU (4 devices) vs heterogeneous (2 GPU + 2 Logic-PIM)
/// latency on Mixtral, batch 32.
pub fn fig05_hetero_latency(scale: &Scale) -> Vec<LatencyRow> {
    let model = ModelConfig::mixtral_8x7b();
    let mut points = Vec::new();
    for (lin, lout) in [(256, 256), (256, 2048), (2048, 256), (2048, 2048)] {
        for system in [SystemConfig::gpu(4, 1), SystemConfig::hetero()] {
            points.push((lin, lout, system));
        }
    }
    points
        .into_par_iter()
        .map(|(lin, lout, system)| {
            let mut cfg = scale.run_config(model.clone(), system, lin, lout, 32);
            cfg.max_stages = usize::MAX; // latency runs go to completion
            let r = run(cfg);
            LatencyRow::of(lin, lout, &r)
        })
        .collect()
}

/// One bar of Fig. 5(c): hetero throughput normalized to the GPU
/// system, with and without the KV-capacity limit.
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroThroughputRow {
    /// Prompt length.
    pub lin: u64,
    /// Response length.
    pub lout: u64,
    /// Hetero throughput / GPU throughput with real capacity.
    pub normalized: f64,
    /// Same with KV capacity unconstrained.
    pub normalized_no_capacity: f64,
    /// Mean batch the capacity-limited hetero run achieved.
    pub hetero_mean_batch: f64,
}

/// Fig. 5(c): the heterogeneous system's throughput penalty from wasted
/// memory capacity (Mixtral, requested batch 128).
pub fn fig05_hetero_throughput(scale: &Scale) -> Vec<HeteroThroughputRow> {
    let model = ModelConfig::mixtral_8x7b();
    let batch = 128usize;
    let pairs = vec![(2048u64, 2048u64), (2048, 4096), (4096, 4096), (8192, 4096)];
    pairs
        .into_par_iter()
        .map(|(lin, lout)| {
            let gpu =
                run(scale.run_config(model.clone(), SystemConfig::gpu(4, 1), lin, lout, batch));
            let het =
                run(scale.run_config(model.clone(), SystemConfig::hetero(), lin, lout, batch));
            let mut unlimited =
                scale.run_config(model.clone(), SystemConfig::hetero(), lin, lout, batch);
            unlimited.kv_capacity_override = Some(u64::MAX);
            let het_unlimited = run(unlimited);
            HeteroThroughputRow {
                lin,
                lout,
                normalized: het.throughput_tokens_per_s / gpu.throughput_tokens_per_s,
                normalized_no_capacity: het_unlimited.throughput_tokens_per_s
                    / gpu.throughput_tokens_per_s,
                hetero_mean_batch: het.mean_batch,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 8

/// One cell of Fig. 8: a PIM architecture's EDAP at one Op/B.
#[derive(Debug, Clone, PartialEq)]
pub struct EdapRow {
    /// "Bank-PIM", "BankGroup-PIM" or "Logic-PIM".
    pub arch: &'static str,
    /// GEMM arithmetic intensity (= token count).
    pub op_b: u64,
    /// Raw EDAP (J * s * mm^2).
    pub edap: f64,
    /// EDAP normalized to the worst architecture at this Op/B.
    pub normalized: f64,
}

/// Fig. 8: normalized energy-delay-area product of the three PIM
/// options for an FP16 GEMM with a 16384 x 4096 weight matrix.
pub fn fig08_edap() -> Vec<EdapRow> {
    let area = AreaModel::micro24();
    let engines: [(&'static str, Engine); 3] = [
        ("Bank-PIM", Engine::bank_pim()),
        ("BankGroup-PIM", Engine::bank_group_pim()),
        ("Logic-PIM", Engine::logic_pim()),
    ];
    let mut rows = Vec::new();
    for op_b in [1u64, 2, 4, 8, 16, 32] {
        let shape = GemmShape {
            m: op_b,
            n: 16384,
            k: 4096,
        };
        let bytes = shape.weight_bytes(2);
        let cells: Vec<(&'static str, Edap)> = engines
            .iter()
            .map(|(name, engine)| {
                let cost = engine.gemm_cost(shape, bytes);
                let edap = Edap {
                    energy_j: cost.total_energy_j(),
                    delay_s: cost.seconds,
                    area_mm2: area.pim_area_mm2(engine.spec().kind),
                };
                (*name, edap)
            })
            .collect();
        let worst = cells
            .iter()
            .map(|(_, e)| e.value())
            .fold(f64::MIN, f64::max);
        for (name, edap) in cells {
            rows.push(EdapRow {
                arch: name,
                op_b,
                edap: edap.value(),
                normalized: edap.value() / worst,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- Fig. 11 / 14

/// One bar of a throughput figure.
#[derive(Debug, Clone, PartialEq)]
pub struct ThroughputRow {
    /// Model name.
    pub model: String,
    /// System name.
    pub system: String,
    /// Prompt length.
    pub lin: u64,
    /// Response length.
    pub lout: u64,
    /// Batch size requested.
    pub batch: usize,
    /// Tokens per second.
    pub tokens_per_s: f64,
    /// Normalized to the GPU system of the same column.
    pub normalized: f64,
}

fn throughput_sweep(
    scale: &Scale,
    models: &[(ModelConfig, Vec<(u64, u64)>)],
    batches: &[usize],
    systems: &(dyn Fn(&ModelConfig) -> Vec<SystemConfig> + Sync),
) -> Vec<ThroughputRow> {
    // One parallel work item per (model, batch, lengths) column; the
    // systems of a column run in sequence because each normalizes to
    // the column's first (GPU-baseline) result.
    let mut columns = Vec::new();
    for (model, pairs) in models {
        for &batch in batches {
            for &(lin, lout) in pairs {
                columns.push((model.clone(), batch, lin, lout));
            }
        }
    }
    columns
        .into_par_iter()
        .flat_map(|(model, batch, lin, lout)| {
            let mut gpu_tps = None;
            let mut rows = Vec::new();
            for system in systems(&model) {
                let cfg = scale.run_config(model.clone(), system, lin, lout, batch);
                let r = run(cfg);
                let tps = r.throughput_tokens_per_s;
                if gpu_tps.is_none() {
                    gpu_tps = Some(tps);
                }
                rows.push(ThroughputRow {
                    model: model.name.clone(),
                    system: r.system_name,
                    lin,
                    lout,
                    batch,
                    tokens_per_s: tps,
                    normalized: tps / gpu_tps.expect("first system is the GPU baseline"),
                });
            }
            rows
        })
        .collect()
}

/// Fig. 11: normalized throughput of GPU / 2xGPU / Duplex / Duplex+PE /
/// Duplex+PE+ET on Mixtral, GLaM and Grok1.
pub fn fig11_throughput(scale: &Scale) -> Vec<ThroughputRow> {
    let models = vec![
        (
            ModelConfig::mixtral_8x7b(),
            vec![(256, 256), (1024, 1024), (4096, 4096)],
        ),
        (
            ModelConfig::glam(),
            vec![(512, 512), (1024, 1024), (2048, 2048)],
        ),
        (
            ModelConfig::grok1(),
            vec![(256, 256), (1024, 1024), (4096, 4096)],
        ),
    ];
    throughput_sweep(scale, &models, &[32, 64, 128], &|model| {
        let (d, n) = SystemConfig::default_cluster(model);
        vec![
            SystemConfig::gpu(d, n),
            SystemConfig::gpu(d, n).doubled(),
            SystemConfig::duplex(d, n),
            SystemConfig::duplex_pe(d, n),
            SystemConfig::duplex_pe_et(d, n),
        ]
    })
}

/// Fig. 14: GPU vs Bank-PIM vs Duplex across model classes (MoE+GQA,
/// dense GQA, dense MHA).
pub fn fig14_bankpim(scale: &Scale) -> Vec<ThroughputRow> {
    let models = vec![
        (
            ModelConfig::mixtral_8x7b(),
            vec![(256, 256), (1024, 1024), (4096, 4096)],
        ),
        (
            ModelConfig::llama3_70b(),
            vec![(256, 256), (512, 512), (1024, 1024)],
        ),
        (
            ModelConfig::opt_66b(),
            vec![(256, 256), (512, 512), (1024, 1024)],
        ),
    ];
    throughput_sweep(scale, &models, &[32, 64], &|model| {
        let (d, n) = SystemConfig::default_cluster(model);
        vec![
            SystemConfig::gpu(d, n),
            SystemConfig::bank_pim(d, n),
            SystemConfig::duplex_pe_et(d, n),
        ]
    })
}

// ---------------------------------------------------------------- Fig. 12 / 13

/// Fig. 12: latency of GLaM (batch 64) across systems.
pub fn fig12_latency(scale: &Scale) -> Vec<LatencyRow> {
    let model = ModelConfig::glam();
    let (d, n) = SystemConfig::default_cluster(&model);
    let systems = [
        SystemConfig::gpu(d, n),
        SystemConfig::gpu(d, n).doubled(),
        SystemConfig::duplex(d, n),
        SystemConfig::duplex_pe(d, n),
        SystemConfig::duplex_pe_et(d, n),
    ];
    let mut points = Vec::new();
    for (lin, lout) in [(512, 512), (1024, 1024), (2048, 2048)] {
        for system in &systems {
            points.push((lin, lout, system.clone()));
        }
    }
    points
        .into_par_iter()
        .map(|(lin, lout, system)| {
            let mut cfg = scale.run_config(model.clone(), system, lin, lout, 64);
            cfg.max_stages = usize::MAX;
            let r = run(cfg);
            LatencyRow::of(lin, lout, &r)
        })
        .collect()
}

/// One point of Fig. 13: latency under a Poisson arrival rate.
#[derive(Debug, Clone, PartialEq)]
pub struct QpsRow {
    /// System name.
    pub system: String,
    /// Offered queries per second.
    pub qps: f64,
    /// TBT p50/p90/p99 in seconds.
    pub tbt: [f64; 3],
    /// T2FT p50.
    pub t2ft_p50: f64,
    /// E2E p50.
    pub e2e_p50: f64,
}

/// Fig. 13: Mixtral latency vs offered load, (Lin, Lout) = (4096, 512),
/// max batch 128.
pub fn fig13_qps(scale: &Scale) -> Vec<QpsRow> {
    let model = ModelConfig::mixtral_8x7b();
    let systems = [
        SystemConfig::gpu(4, 1),
        SystemConfig::gpu(4, 1).doubled(),
        SystemConfig::duplex_pe_et(4, 1),
    ];
    let lin = scale.len(4096);
    let lout = scale.len(512);
    // Scale offered load with the shrink factor so the saturation
    // crossover stays visible at quick scales.
    let qps_scale = scale.shrink as f64;
    let mut points = Vec::new();
    for qps_base in [4.0f64, 6.0, 8.0, 10.0, 12.0, 14.0, 16.0] {
        for system in &systems {
            points.push((qps_base, system.clone()));
        }
    }
    points
        .into_par_iter()
        .map(|(qps_base, system)| {
            let mut cfg = RunConfig::closed_loop(
                model.clone(),
                system,
                Workload::gaussian(lin, lout),
                128,
                scale.requests(128).max(96),
            );
            cfg.qps = Some(qps_base * qps_scale);
            let r = run(cfg);
            QpsRow {
                system: r.system_name,
                qps: qps_base,
                tbt: [r.tbt.p50, r.tbt.p90, r.tbt.p99],
                t2ft_p50: r.t2ft.p50,
                e2e_p50: r.e2e.p50,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 15

/// One bar of Fig. 15: per-token energy breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyRow {
    /// Model name.
    pub model: String,
    /// System name ("GPU" or "Duplex").
    pub system: String,
    /// Prompt/response length.
    pub lin: u64,
    /// Response length.
    pub lout: u64,
    /// Batch size.
    pub batch: usize,
    /// J/token in buckets: FC DRAM, FC comp, attention DRAM, attention
    /// comp, MoE DRAM, MoE comp.
    pub buckets_j: [f64; 6],
    /// Total J/token.
    pub total_j: f64,
}

/// Fig. 15: per-token energy of GPU vs Duplex (+PE+ET) on the MoE
/// models.
pub fn fig15_energy(scale: &Scale) -> Vec<EnergyRow> {
    let models = [
        (
            ModelConfig::mixtral_8x7b(),
            [(256u64, 256u64), (1024, 1024), (4096, 4096)],
        ),
        (
            ModelConfig::glam(),
            [(512, 512), (1024, 1024), (2048, 2048)],
        ),
        (
            ModelConfig::grok1(),
            [(256, 256), (1024, 1024), (4096, 4096)],
        ),
    ];
    let mut points = Vec::new();
    for (model, pairs) in models {
        let (d, n) = SystemConfig::default_cluster(&model);
        for batch in [32usize, 64, 128] {
            for (lin, lout) in pairs {
                for system in [SystemConfig::gpu(d, n), SystemConfig::duplex_pe_et(d, n)] {
                    points.push((model.clone(), batch, lin, lout, system));
                }
            }
        }
    }
    points
        .into_par_iter()
        .map(|(model, batch, lin, lout, system)| {
            let cfg = scale.run_config(model.clone(), system, lin, lout, batch);
            let r = run(cfg);
            let tokens = r.report.generated_tokens().max(1) as f64;
            let e = r.cost.energy;
            EnergyRow {
                model: model.name,
                system: r.system_name,
                lin,
                lout,
                batch,
                buckets_j: [
                    e.fc_dram / tokens,
                    e.fc_comp / tokens,
                    e.attn_dram / tokens,
                    e.attn_comp / tokens,
                    e.moe_dram / tokens,
                    e.moe_comp / tokens,
                ],
                total_j: e.total() / tokens,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Fig. 16

/// Fig. 16: Duplex vs Duplex-Split (Splitwise-style disaggregation),
/// Mixtral, batch 128.
pub fn fig16_split(scale: &Scale) -> Vec<LatencyRow> {
    let model = ModelConfig::mixtral_8x7b();
    let batch = 128usize;
    let pairs = vec![(256u64, 256u64), (1024, 1024), (4096, 4096)];
    pairs
        .into_par_iter()
        .flat_map(|(lin, lout)| {
            let mut cfg = scale.run_config(
                model.clone(),
                SystemConfig::duplex_pe(4, 1),
                lin,
                lout,
                batch,
            );
            cfg.max_stages = usize::MAX;
            let duplex = run(cfg.clone());
            let duplex_row = LatencyRow::of(lin, lout, &duplex);

            let split = SplitSimulation::new(
                &SystemConfig::duplex_pe(2, 1),
                model.clone(),
                2,
                cfg.workload.clone(),
                cfg.requests,
                batch,
            );
            let report = split.run();
            vec![
                duplex_row,
                LatencyRow {
                    system: "Duplex-Split".into(),
                    lin,
                    lout,
                    tbt: [report.tbt().p50, report.tbt().p90, report.tbt().p99],
                    t2ft_p50: report.t2ft().p50,
                    e2e_p50: report.e2e().p50,
                    throughput: report.generation_throughput(),
                },
            ]
        })
        .collect()
}

// ---------------------------------------------------------------- Scenarios

/// One row of the scenario sweep: a (scenario, policy) pair on one
/// system, with serving, SLO and reuse metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRow {
    /// Scenario name ("bursty", "multi_turn", ...).
    pub scenario: String,
    /// System display name.
    pub system: String,
    /// Scheduling-policy name.
    pub policy: String,
    /// Requests completed (follow-up rounds included).
    pub completed: usize,
    /// Stages executed.
    pub stages: u64,
    /// Generation throughput in tokens/s (in-flight tokens counted).
    pub throughput: f64,
    /// Goodput: tokens of SLO-attaining requests per second (0 when
    /// the scenario declares no tiers).
    pub goodput: f64,
    /// Overall SLO attainment in [0, 1] (0 without tiers).
    pub attainment: f64,
    /// Whether the scenario declared SLO tiers.
    pub tiered: bool,
    /// TBT p99 in seconds.
    pub tbt_p99: f64,
    /// T2FT p50 in seconds.
    pub t2ft_p50: f64,
    /// Fraction of prompt tokens served from resident KV (multi-turn
    /// scenarios; 0 otherwise).
    pub kv_reuse_fraction: f64,
}

/// Price one decoding-only stage of `model` on `system` — the time
/// unit the scenario suite scales its rates and deadlines by, so the
/// same scenarios stay meaningfully loaded at quick and paper scales.
pub fn probe_stage_seconds(
    model: &ModelConfig,
    system: &SystemConfig,
    batch: usize,
    ctx: u64,
) -> f64 {
    let mut ex = SystemExecutor::new(system.clone(), model.clone(), 7);
    ex.stage_cost(&StageShape::decode_only(&vec![ctx; batch]))
        .seconds
}

/// Price one whole-prompt prefill stage of `lin` tokens — the probe
/// behind [`ClusterSpec::router_context`]'s prefill-throughput
/// estimate.
pub fn probe_prefill_seconds(model: &ModelConfig, system: &SystemConfig, lin: u64) -> f64 {
    let mut ex = SystemExecutor::new(system.clone(), model.clone(), 7);
    ex.stage_cost(&StageShape::mixed(&[], &[lin])).seconds
}

/// The scenario suite for one (model, system, batch): bursty on/off
/// traffic, a diurnal rate curve, multi-turn chat with KV reuse, an
/// SLO-tiered mix, and replay of a recorded bursty trace. Rates are
/// fractions of the system's closed-loop capacity (`batch / (Lout *
/// stage_s)`), deadlines multiples of the probed stage latency.
pub fn scenario_suite(
    scale: &Scale,
    model: &ModelConfig,
    system: &SystemConfig,
    batch: usize,
) -> Vec<Scenario> {
    let lin = scale.len(1024);
    let lout = scale.len(512);
    let stage_s = probe_stage_seconds(model, system, batch, lin + lout / 2);
    let capacity_qps = batch as f64 / (lout as f64 * stage_s);
    // One request's decode lifetime at full batch.
    let life_s = lout as f64 * stage_s;
    let requests = scale.requests(batch) * 4;
    let workload = Workload::gaussian(lin, lout).with_seed(0xD00D);

    let bursty_arrivals = Arrivals::Bursty {
        base_qps: 0.2 * capacity_qps,
        burst_qps: 2.5 * capacity_qps,
        mean_off_s: 8.0 * life_s,
        mean_on_s: 2.0 * life_s,
    };
    let bursty = Scenario::new(
        "bursty",
        workload.clone(),
        bursty_arrivals.clone(),
        requests,
    );

    let diurnal = Scenario::new(
        "diurnal",
        workload.clone(),
        Arrivals::Diurnal {
            mean_qps: 0.6 * capacity_qps,
            period_s: 30.0 * life_s,
            amplitude: 0.8,
        },
        requests,
    );

    // Multi-turn chat: shorter opening prompts, prompts grow with the
    // carried history each round, follow-ups arrive after a think time.
    let chat = Scenario::new(
        "multi_turn",
        Workload::gaussian(scale.len(512), scale.len(256)).with_seed(0xC4A7),
        Arrivals::Poisson {
            qps: 0.3 * capacity_qps,
        },
        requests / 2,
    )
    .with_conversation(ConversationSpec::chat(
        0.65,
        4,
        4.0 * life_s,
        scale.len(256),
    ));

    let tiered = Scenario::new(
        "slo_tiered",
        workload.clone(),
        Arrivals::Poisson {
            qps: 0.85 * capacity_qps,
        },
        requests,
    )
    .with_tiers(Scenario::default_tiers(stage_s));

    // Near-saturation tiered mix: demand just past the closed-loop
    // capacity, so interactive work queues behind batch-tier decodes
    // and the shed/preempt/multiplex policies actually diverge. Three
    // names, one shape: the quick bench maps each name to its namesake
    // policy (`shed-batch` / `preempt` / `preempt-mux`) so the CI
    // baselines pin the attainment spread between them.
    let saturated = |name: &str| {
        Scenario::new(
            name,
            workload.clone(),
            Arrivals::Poisson {
                qps: 1.05 * capacity_qps,
            },
            requests,
        )
        .with_tiers(Scenario::default_tiers(stage_s))
    };
    let slo_shed = saturated("slo_shed");
    let slo_preempt = saturated("slo_preempt");
    let slo_multiplex = saturated("slo_multiplex");

    // Trace replay: record the bursty process once, replay it exactly.
    let mut recorder = RequestSource::new(workload.clone().with_seed(0xACED), bursty_arrivals);
    let recorded: Vec<TraceRequest> = (0..requests)
        .map(|_| {
            let r = recorder.next_request();
            TraceRequest {
                arrival_s: r.arrival_s,
                input_len: r.input_len,
                output_len: r.output_len,
            }
        })
        .collect();
    let replay = Scenario::new(
        "trace_replay",
        workload,
        Arrivals::trace(recorded),
        requests,
    );

    // Long-prompt mix: prompts ~8x the decode budget make every
    // admission stall the whole decode cohort for one long prefill,
    // spiking the TBT tail. The chunked variant bounds each stage's
    // prefill work instead (same arrivals, same shapes), trading a few
    // percent of throughput for a flat tail — the pair is the chunked
    // prefill ablation the CI latency gate watches.
    let long_in = scale.len(8192);
    let long_out = scale.len(2048);
    let long_stage_s = probe_stage_seconds(model, system, batch, long_in + long_out / 2);
    let long_capacity = batch as f64 / (long_out as f64 * long_stage_s);
    let long_workload = Workload::gaussian(long_in, long_out).with_seed(0xBEEF);
    // Load low enough that the chunked variant's bounded per-stage
    // prefill bandwidth (chunk tokens per stage vs a whole prompt per
    // mixed stage) still keeps up with arrivals — past that point
    // chunking trades throughput, not just latency.
    let long_arrivals = Arrivals::Poisson {
        qps: 0.35 * long_capacity,
    };
    let long_requests = scale.requests(batch);
    let long_prefill = Scenario::new(
        "long_prefill",
        long_workload.clone(),
        long_arrivals.clone(),
        long_requests,
    );
    let long_prefill_chunked = Scenario::new(
        "long_prefill_chunked",
        long_workload.clone(),
        long_arrivals.clone(),
        long_requests,
    )
    .with_prefill_chunk(scale.len(1024));
    // The adaptive variant keeps the fixed budget's tail protection
    // while spending idle decode slots on bigger prefill slices: the
    // budget tightens to the fixed chunk only when the decode cohort
    // fills (the open-items "chunk size that adapts to the decode
    // batch").
    let long_prefill_adaptive = Scenario::new(
        "long_prefill_adaptive",
        long_workload,
        long_arrivals,
        long_requests,
    )
    .with_prefill_chunk_adaptive(scale.len(1024), scale.len(8192));

    vec![
        bursty,
        diurnal,
        chat,
        tiered,
        slo_shed,
        slo_preempt,
        slo_multiplex,
        replay,
        long_prefill,
        long_prefill_chunked,
        long_prefill_adaptive,
    ]
}

/// Run one scenario on one system under one policy.
pub fn run_scenario(
    model: &ModelConfig,
    system: &SystemConfig,
    scenario: Scenario,
    policy: &mut dyn SchedulingPolicy,
    max_batch: usize,
) -> SimReport {
    let mut ex = SystemExecutor::new(system.clone(), model.clone(), 7);
    let cfg = SimulationConfig {
        max_batch,
        kv_capacity_bytes: ex.kv_capacity_bytes(),
        kv_bytes_per_token: model.kv_bytes_per_token(),
        max_stages: usize::MAX,
        record_stages: false,
    };
    ScenarioSimulation::new(cfg, scenario).run(policy, &mut ex)
}

/// The scenario sweep: every suite scenario under every shipped
/// policy, Mixtral on Duplex+PE+ET (4 devices), batch 64.
pub fn scenarios(scale: &Scale) -> Vec<ScenarioRow> {
    let model = ModelConfig::mixtral_8x7b();
    let system = SystemConfig::duplex_pe_et(4, 1);
    let batch = 64usize;
    let suite = scenario_suite(scale, &model, &system, batch);
    let mut points = Vec::new();
    for scenario in suite {
        for kind in PolicyKind::ALL {
            points.push((scenario.clone(), kind));
        }
    }
    points
        .into_par_iter()
        .map(|(scenario, kind)| {
            let tiered = !scenario.tiers.is_empty();
            let name = scenario.name.clone();
            let mut policy = kind.build();
            let report = run_scenario(&model, &system, scenario, policy.as_mut(), batch);
            ScenarioRow {
                scenario: name,
                system: system.name.clone(),
                policy: kind.name().into(),
                completed: report.completed.len(),
                stages: report.stage_stats.stages,
                throughput: report.generation_throughput(),
                goodput: report.goodput_tokens_per_s(),
                attainment: report.slo_attainment(),
                tiered,
                tbt_p99: report.tbt().p99,
                t2ft_p50: report.t2ft().p50,
                kv_reuse_fraction: report.kv_reuse.reuse_fraction(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------- Clusters

/// The fleet interconnect KV transfers cross: the same inter-node
/// link [`CommModel`] prices p2p transfers on. One derivation for
/// fault migration, autoscale steal, disaggregated handoff, and
/// router cost models alike.
pub fn fleet_kv_link(system: &SystemConfig) -> KvLinkSpec {
    CommModel::new(system.link, system.nodes, system.devices_per_node).kv_link()
}

/// One multi-replica serving fleet: a scenario offered to N replicas
/// (possibly heterogeneous systems) behind a router.
///
/// Construct with [`ClusterSpec::new`] plus the `with_*` builders —
/// the struct is `#[non_exhaustive]`, so literal construction outside
/// this crate is not supported.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ClusterSpec {
    /// Display name ("grok_chat_tiered", ...).
    pub name: String,
    /// The LLM every replica serves.
    pub model: ModelConfig,
    /// One system config per replica (heterogeneous fleets mix
    /// presets).
    pub systems: Vec<SystemConfig>,
    /// Per-replica batch-slot budget.
    pub batch: usize,
    /// Admission policy every replica runs.
    pub policy: PolicyKind,
    /// The offered workload.
    pub scenario: Scenario,
    /// Scripted fault drill (crashes/drains/slowdowns) run against the
    /// fleet; `None` for a healthy-fleet sweep.
    pub faults: Option<FaultPlan>,
    /// Elastic scaling policy; `None` runs the fleet at its built
    /// size. With `Some`, `systems` is the *maximum* fleet and
    /// replicas beyond the policy floor start in the standby pool.
    pub autoscale: Option<AutoscalePolicy>,
    /// Prefill/decode pool split; `None` serves colocated.
    pub disagg: Option<DisaggPlan>,
}

impl ClusterSpec {
    /// A healthy, static, colocated fleet.
    pub fn new(
        name: &str,
        model: ModelConfig,
        systems: Vec<SystemConfig>,
        batch: usize,
        policy: PolicyKind,
        scenario: Scenario,
    ) -> Self {
        Self {
            name: name.into(),
            model,
            systems,
            batch,
            policy,
            scenario,
            faults: None,
            autoscale: None,
            disagg: None,
        }
    }

    /// Run the scripted fault drill against the fleet.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Scale the fleet elastically under `policy`.
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        self.autoscale = Some(policy);
        self
    }

    /// Disaggregate the fleet into prefill and decode pools.
    pub fn with_disagg(mut self, plan: DisaggPlan) -> Self {
        self.disagg = Some(plan);
        self
    }

    /// The fleet-derived [`ClusterContext`] routers should be built
    /// against ([`RouterKind::build_with`]): the first replica's
    /// inter-node link, the model's KV geometry, and a prefill
    /// throughput estimate probed from the scenario's mean prompt —
    /// instead of each call site re-deriving the numbers ad hoc.
    pub fn router_context(&self) -> ClusterContext {
        let system = &self.systems[0];
        let lin = self.scenario.workload.mean_input.max(1);
        let prefill_s = probe_prefill_seconds(&self.model, system, lin);
        ClusterContext {
            kv_link: fleet_kv_link(system),
            kv_bytes_per_token: self.model.kv_bytes_per_token(),
            prefill_tokens_per_s: lin as f64 / prefill_s.max(1e-12),
        }
    }
}

/// One row of the cluster sweep: a (fleet, router) pair with fleet and
/// balance metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRow {
    /// Fleet display name.
    pub cluster: String,
    /// Router display name.
    pub router: String,
    /// Replicas in the fleet.
    pub replicas: usize,
    /// Requests completed fleet-wide (follow-up rounds included).
    pub completed: usize,
    /// Stages executed fleet-wide.
    pub stages: u64,
    /// Fleet generation throughput in tokens/s (simulated time).
    pub throughput: f64,
    /// Fleet goodput in SLO-attaining tokens/s (0 without tiers).
    pub goodput: f64,
    /// Fleet-wide SLO attainment (0 without tiers).
    pub attainment: f64,
    /// Interactive-tier attainment (0 without tiers).
    pub interactive_attainment: f64,
    /// Whether the scenario declared SLO tiers.
    pub tiered: bool,
    /// Fleet TBT p99 in seconds (merged digests).
    pub tbt_p99: f64,
    /// Fraction of prompt tokens served from resident KV fleet-wide.
    pub kv_reuse_fraction: f64,
    /// Hottest replica's generated tokens over the fleet mean (1.0 =
    /// balanced).
    pub load_imbalance: f64,
    /// Worst time-to-recover across scripted faults in seconds (0
    /// without a fault plan).
    pub recovery_time_s: f64,
    /// Interactive-tier SLO attainment inside the during-failure
    /// windows (0 without faults or tiers).
    pub fault_attainment: f64,
    /// Requests lost to crashes fleet-wide.
    pub requests_lost: u64,
    /// Retry re-enqueues issued for lost requests.
    pub retries_issued: u64,
    /// KV bytes shipped across replicas (drain handoffs + migrations).
    pub kv_bytes_migrated: u64,
    /// Billable replica-seconds: virtual seconds each replica spent
    /// provisioned (pool/down time excluded), summed fleet-wide.
    pub replica_seconds: f64,
    /// Pool replicas provisioned into the fleet (0 without an
    /// autoscaler).
    pub scale_ups: u64,
    /// Replicas drained back to the pool (0 without an autoscaler).
    pub scale_downs: u64,
    /// Worst detection-plus-provisioning lag of a scale-up in virtual
    /// seconds (0 when nothing scaled).
    pub scale_up_lag_s: f64,
}

impl ClusterRow {
    /// Build a row from a fleet report.
    pub fn of(spec: &ClusterSpec, router: &str, report: &ClusterReport) -> Self {
        let slo = report.slo();
        Self {
            cluster: spec.name.clone(),
            router: router.into(),
            replicas: spec.systems.len(),
            completed: report.completed(),
            stages: report.stages(),
            throughput: report.generation_throughput(),
            goodput: report.goodput_tokens_per_s(),
            attainment: slo.attainment(),
            interactive_attainment: slo.tiers.first().map_or(0.0, |t| t.attainment()),
            tiered: !slo.tiers.is_empty(),
            tbt_p99: report.tbt().p99,
            kv_reuse_fraction: report.kv_reuse().reuse_fraction(),
            load_imbalance: report.load_imbalance(),
            recovery_time_s: report.recovery_time_s(),
            fault_attainment: report.fault_interactive_attainment(),
            requests_lost: report.recovery.requests_lost,
            retries_issued: report.recovery.retries_issued,
            kv_bytes_migrated: report.recovery.kv_bytes_migrated,
            replica_seconds: report.replica_seconds,
            scale_ups: report.scaling.scale_ups,
            scale_downs: report.scaling.scale_downs,
            scale_up_lag_s: report.scaling.scale_up_lag_s,
        }
    }
}

/// The cluster suite: the fleets the router comparison runs over.
///
/// * `grok_chat_tiered` — the acceptance fleet: four Grok-scale
///   (2x8-device Duplex+PE+ET) replicas serving multi-turn, SLO-tiered
///   chat near saturation. Session-affinity routing is what keeps the
///   multi-turn KV-reuse rate cluster-wide; least-outstanding-work is
///   what keeps interactive deadlines near saturation.
/// * `grok_failover` — the same Grok-scale fleet under steady Poisson
///   load with a scripted mid-run crash and a later graceful drain:
///   the failure drill behind the recovery-SLO CI gate. Lost requests
///   retry through the router; parked KV migrates over the
///   interconnect instead of re-prefilling.
/// * `mixtral_hetero` — a mixed fleet (two GPU nodes + two
///   Duplex+PE+ET nodes) under bursty single-shot traffic: the
///   capacity-weighted router must load the fast replicas harder.
pub fn cluster_suite(scale: &Scale) -> Vec<ClusterSpec> {
    let mut specs = Vec::new();

    // -- Grok-scale multi-turn + SLO-tiered chat fleet --
    {
        let model = ModelConfig::grok1();
        let (d, n) = SystemConfig::default_cluster(&model); // 2x8
        let duplex = SystemConfig::duplex_pe_et(d, n);
        let gpu = SystemConfig::gpu(d, n);
        let batch = 16usize;
        let lin = scale.len(2048);
        let lout = scale.len(512);
        let turn = scale.len(256);
        let ctx = lin + lout / 2;
        let duplex_stage = probe_stage_seconds(&model, &duplex, batch, ctx);
        let gpu_stage = probe_stage_seconds(&model, &gpu, batch, ctx);
        let life_s = lout as f64 * duplex_stage;
        // A mixed-generation fleet: three Duplex replicas plus one
        // GPU-only straggler. Round-robin feeds the straggler a full
        // quarter of the traffic; the capacity-weighted router loads
        // it by its probed speed instead.
        let systems = vec![duplex.clone(), duplex.clone(), duplex, gpu];
        let fleet_qps = batch as f64 / lout as f64 * (3.0 / duplex_stage + 1.0 / gpu_stage);
        // Conversations run exactly 4 rounds, so initial arrivals at
        // ~1/5 of fleet capacity offer ~80% once follow-up rounds (and
        // their growing history prefills) stack on top; the bursts
        // push past saturation transiently.
        let qps = 0.2 * fleet_qps;
        let requests = scale.requests(batch) * systems.len() * 3;
        let scenario = Scenario::new(
            "grok_chat_tiered",
            Workload::gaussian(lin, lout).with_seed(0xC10D).with_cv(0.6),
            Arrivals::Bursty {
                base_qps: 0.4 * qps,
                burst_qps: 2.8 * qps,
                mean_off_s: 30.0 * life_s,
                mean_on_s: 10.0 * life_s,
            },
            requests,
        )
        .with_conversation(ConversationSpec::chat(1.0, 4, 0.5 * life_s, turn))
        .with_tiers(Scenario::default_tiers(duplex_stage));
        specs.push(ClusterSpec::new(
            "grok_chat_tiered",
            model,
            systems,
            batch,
            PolicyKind::PriorityTiers,
            scenario,
        ));
    }

    // -- Grok-scale failure drill: crash + drain + warm-up restart --
    {
        let model = ModelConfig::grok1();
        let (d, n) = SystemConfig::default_cluster(&model); // 2x8
        let duplex = SystemConfig::duplex_pe_et(d, n);
        let gpu = SystemConfig::gpu(d, n);
        let batch = 16usize;
        let lin = scale.len(2048);
        let lout = scale.len(512);
        let turn = scale.len(256);
        let ctx = lin + lout / 2;
        let duplex_stage = probe_stage_seconds(&model, &duplex, batch, ctx);
        let gpu_stage = probe_stage_seconds(&model, &gpu, batch, ctx);
        let life_s = lout as f64 * duplex_stage;
        let systems = vec![duplex.clone(), duplex.clone(), duplex.clone(), gpu];
        let fleet_qps = batch as f64 / lout as f64 * (3.0 / duplex_stage + 1.0 / gpu_stage);
        // Steady Poisson arrivals (no bursts): the drill measures how
        // the fleet absorbs *scripted* disruptions, so the offered load
        // itself stays flat at a point with headroom for failover.
        let qps = 0.3 * fleet_qps;
        let requests = scale.requests(batch) * systems.len() * 2;
        let span_est = requests as f64 / qps;
        let scenario = Scenario::new(
            "grok_failover",
            Workload::gaussian(lin, lout).with_seed(0xFA11).with_cv(0.6),
            Arrivals::Poisson { qps },
            requests,
        )
        .with_conversation(ConversationSpec::chat(1.0, 4, 0.5 * life_s, turn))
        .with_tiers(Scenario::default_tiers(duplex_stage));
        // KV migrations ship over the fleet's inter-node interconnect.
        let link = fleet_kv_link(&duplex);
        let faults = FaultPlan::new(vec![
            // Hard crash of a Duplex replica mid-run: in-flight and
            // queued requests are lost and retried through the router.
            FaultEvent::new(
                0.30 * span_est,
                0,
                FaultKind::Crash {
                    down_s: 2.0 * life_s,
                },
            ),
            // Graceful drain of another replica later: displaced
            // queue entries reroute and parked KV is handed off.
            FaultEvent::new(
                0.55 * span_est,
                1,
                FaultKind::Drain {
                    down_s: 1.0 * life_s,
                },
            ),
        ])
        .with_link(link)
        .with_warmup(1.0 * life_s, 2.0)
        .with_recovery_tracking(0.7, span_est / 40.0, 4.0 * life_s);
        specs.push(
            ClusterSpec::new(
                "grok_failover",
                model,
                systems,
                batch,
                PolicyKind::PriorityTiers,
                scenario,
            )
            .with_faults(faults),
        );
    }

    // -- Heterogeneous Mixtral fleet: 2 GPU + 2 Duplex+PE+ET --
    {
        let model = ModelConfig::mixtral_8x7b();
        let gpu = SystemConfig::gpu(4, 1);
        let duplex = SystemConfig::duplex_pe_et(4, 1);
        let batch = 64usize;
        let lin = scale.len(1024);
        let lout = scale.len(512);
        let gpu_stage = probe_stage_seconds(&model, &gpu, batch, lin + lout / 2);
        let duplex_stage = probe_stage_seconds(&model, &duplex, batch, lin + lout / 2);
        let fleet_qps =
            2.0 * batch as f64 / (lout as f64) * (1.0 / gpu_stage + 1.0 / duplex_stage) / 2.0;
        let requests = scale.requests(batch) * 4;
        let scenario = Scenario::new(
            "mixtral_hetero",
            Workload::gaussian(lin, lout).with_seed(0xFEE7),
            Arrivals::Bursty {
                base_qps: 0.2 * fleet_qps,
                burst_qps: 1.6 * fleet_qps,
                mean_off_s: 6.0 * lout as f64 * duplex_stage,
                mean_on_s: 2.0 * lout as f64 * duplex_stage,
            },
            requests,
        );
        specs.push(ClusterSpec::new(
            "mixtral_hetero",
            model,
            vec![gpu.clone(), gpu, duplex.clone(), duplex],
            batch,
            PolicyKind::Fcfs,
            scenario,
        ));
    }

    specs
}

/// The elastic-autoscaling drill: one diurnal Grok-scale workload
/// offered to three fleet configurations so the elastic fleet's cost
/// and SLO numbers have static goalposts on both sides.
///
/// * `grok_diurnal_autoscale_elastic` — a pool of `peak` Duplex
///   replicas with an [`AutoscalePolicy`] floor of `min`: the
///   autoscaler provisions on the diurnal up-swing (warm-up slowdown,
///   priced parked-KV steal) and drains surplus replicas back to the
///   pool on the down-swing.
/// * `grok_diurnal_autoscale_static_min` — the floor fleet pinned on:
///   saturates at the diurnal peak, cheapest possible bill.
/// * `grok_diurnal_autoscale_static_peak` — the full fleet pinned on:
///   best attainable SLO numbers, idles through every trough.
///
/// The acceptance bar (`tests/integration_cluster.rs`): the elastic
/// fleet holds interactive attainment within 0.03 of the static peak
/// fleet while billing at least 25% fewer replica-seconds.
pub fn autoscale_drill(scale: &Scale) -> Vec<ClusterSpec> {
    let model = ModelConfig::grok1();
    let (d, n) = SystemConfig::default_cluster(&model); // 2x8
    let duplex = SystemConfig::duplex_pe_et(d, n);
    let batch = 16usize;
    let lin = scale.len(2048);
    let lout = scale.len(512);
    let ctx = lin + lout / 2;
    let stage = probe_stage_seconds(&model, &duplex, batch, ctx);
    let replica_qps = batch as f64 / lout as f64 / stage;
    let peak = 6usize;
    let min = 2usize;
    // Mean offered load is ~2.2 replicas' worth; with 0.85 amplitude
    // the diurnal crest needs ~4 replicas and the trough well under
    // one, so the floor fleet saturates at noon and the peak fleet
    // idles at midnight.
    let mean_qps = 2.2 * replica_qps;
    let requests = scale.requests(batch) * peak * 2;
    let span_est = requests as f64 / mean_qps;
    let period_s = span_est / 2.0; // ~two diurnal cycles per run
    let scenario = Scenario::new(
        "grok_diurnal_autoscale",
        Workload::gaussian(lin, lout).with_seed(0xD1A1).with_cv(0.5),
        Arrivals::Diurnal {
            mean_qps,
            period_s,
            amplitude: 0.85,
        },
        requests,
    )
    .with_tiers(Scenario::default_tiers(stage));
    // The joiner's KV steal ships over the same inter-node link the
    // failover drill prices its migrations on.
    let link = fleet_kv_link(&duplex);
    // Quick detection (one hot window scales up), slower release
    // (three calm windows scale down): SLO misses cost more than an
    // extra replica-minute.
    let interval_s = period_s / 64.0;
    let policy = AutoscalePolicy::new(min)
        .with_pressure(0.8, 0.4)
        .with_down_occupancy(0.75)
        .with_cadence(interval_s, 1, 2)
        .with_cooldown(2.0 * interval_s)
        .with_provisioning(interval_s, interval_s, 1.2)
        .with_link(link);
    let spec = |name: &str, replicas: usize, autoscale: Option<AutoscalePolicy>| {
        let base = ClusterSpec::new(
            name,
            model.clone(),
            vec![duplex.clone(); replicas],
            batch,
            PolicyKind::PriorityTiers,
            scenario.clone(),
        );
        match autoscale {
            Some(policy) => base.with_autoscale(policy),
            None => base,
        }
    };
    vec![
        spec("grok_diurnal_autoscale_elastic", peak, Some(policy)),
        spec("grok_diurnal_autoscale_static_min", min, None),
        spec("grok_diurnal_autoscale_static_peak", peak, None),
    ]
}

/// The disaggregation drill: one `long_prefill` Grok-scale workload
/// (long prompts, modest outputs — the regime where prefill stages
/// stall decode tokens) offered to three four-replica fleets so the
/// pool split faces the colocation incumbents directly.
///
/// * `grok_long_prefill_colocated` — plain colocation: whole prompts
///   enter the mixed batch, every co-batched decode eats the full
///   prefill stall.
/// * `grok_long_prefill_chunked` — the PR 5 incumbent: adaptive
///   chunked prefill caps each stall at the occupancy-scaled budget.
/// * `grok_long_prefill_disagg` — a [`DisaggPlan`] pool split (two
///   prefill + two decode replicas): decode stages never co-batch a
///   prompt, finished KV ships over the fleet link.
///
/// Arrivals are sized off *both* pool capacities (probed decode stage
/// and whole-prompt prefill), so every fleet runs loaded but below
/// saturation and the TBT difference is interference, not queueing
/// collapse. The acceptance bar (`tests/integration_cluster.rs`):
/// disaggregation beats the chunked incumbent on fleet TBT p99 while
/// holding at least 90% of its generation throughput.
pub fn grok_disagg(scale: &Scale) -> Vec<ClusterSpec> {
    let model = ModelConfig::grok1();
    let (d, n) = SystemConfig::default_cluster(&model); // 2x8
    let duplex = SystemConfig::duplex_pe_et(d, n);
    let batch = 16usize;
    let lin = scale.len(8192);
    let lout = scale.len(512);
    let ctx = lin + lout / 2;
    let stage = probe_stage_seconds(&model, &duplex, batch, ctx);
    let prefill_s = probe_prefill_seconds(&model, &duplex, lin);
    let replicas = 4usize;
    let split = replicas / 2;
    // Offered load: 55% of the binding pool's capacity — two decode
    // replicas' token rate vs two prefill replicas' prompt rate. Below
    // saturation for every fleet, so the tail drain of the half-size
    // decode pool costs little throughput and the TBT difference is
    // interference, not queueing collapse.
    let decode_qps = split as f64 * batch as f64 / (lout as f64 * stage);
    let prefill_qps = split as f64 / prefill_s;
    let qps = 0.55 * decode_qps.min(prefill_qps);
    // A long span: the half-size decode pool drains the final backlog
    // with half the slots, a constant tail the run length amortizes.
    let requests = scale.requests(batch) * replicas * 3;
    let scenario = Scenario::new(
        "grok_long_prefill",
        Workload::gaussian(lin, lout).with_seed(0xBEEF).with_cv(0.4),
        Arrivals::Poisson { qps },
        requests,
    )
    .with_tiers(Scenario::default_tiers(stage));
    let spec = |name: &str, scenario: Scenario| {
        ClusterSpec::new(
            name,
            model.clone(),
            vec![duplex.clone(); replicas],
            batch,
            PolicyKind::PriorityTiers,
            scenario,
        )
    };
    vec![
        spec("grok_long_prefill_colocated", scenario.clone()),
        spec(
            "grok_long_prefill_chunked",
            scenario
                .clone()
                .with_prefill_chunk_adaptive(scale.len(1024).max(1), lin),
        ),
        spec("grok_long_prefill_disagg", scenario)
            .with_disagg(DisaggPlan::new((0..split).collect()).with_link(fleet_kv_link(&duplex))),
    ]
}

/// Build one fleet ready to run: the bound [`ClusterSimulation`] plus
/// per-replica policies and `SystemExecutor`s with replica-local KV
/// budgets, capacity weights probed from each system's decode-stage
/// latency (fastest replica = highest weight). Snapshot/resume callers
/// rebuild executors through this (a resumed fleet needs freshly built
/// executors; the snapshot restores their carried batch state).
#[allow(clippy::type_complexity)]
pub fn build_cluster(
    spec: &ClusterSpec,
) -> (
    ClusterSimulation,
    Vec<Box<dyn SchedulingPolicy>>,
    Vec<SystemExecutor>,
) {
    let executors: Vec<SystemExecutor> = spec
        .systems
        .iter()
        .map(|s| SystemExecutor::new(s.clone(), spec.model.clone(), 7))
        .collect();
    let probe_ctx = spec.scenario.workload.mean_input + spec.scenario.workload.mean_output / 2;
    let configs: Vec<ReplicaConfig> = executors
        .iter()
        .zip(&spec.systems)
        .map(|(ex, system)| {
            let stage_s = probe_stage_seconds(&spec.model, system, spec.batch, probe_ctx);
            ReplicaConfig::new(SimulationConfig {
                max_batch: spec.batch,
                kv_capacity_bytes: ex.kv_capacity_bytes(),
                kv_bytes_per_token: spec.model.kv_bytes_per_token(),
                max_stages: usize::MAX,
                record_stages: false,
            })
            .with_weight(1.0 / stage_s)
        })
        .collect();
    let policies: Vec<Box<dyn SchedulingPolicy>> =
        spec.systems.iter().map(|_| spec.policy.build()).collect();
    let mut sim = ClusterSimulation::new(configs, spec.scenario.clone());
    if let Some(plan) = &spec.faults {
        sim = sim.with_faults(plan.clone());
    }
    if let Some(policy) = &spec.autoscale {
        sim = sim.with_autoscale(policy.clone());
    }
    if let Some(plan) = &spec.disagg {
        sim = sim.with_disagg(plan.clone());
    }
    (sim, policies, executors)
}

/// Run one fleet under one router, everything on the PR 2 delta fast
/// path (default execution knobs: parallel windows, auto threads).
pub fn run_cluster(spec: &ClusterSpec, router: &mut dyn Router) -> ClusterReport {
    run_cluster_with(spec, router, ClusterConfig::default())
}

/// [`run_cluster`] with explicit execution knobs — the serial oracle
/// vs parallel windows, pinned thread counts. Results never depend on
/// `cluster` (the clock-merge invariant); only wall-clock time does.
pub fn run_cluster_with(
    spec: &ClusterSpec,
    router: &mut dyn Router,
    cluster: ClusterConfig,
) -> ClusterReport {
    let (sim, mut policies, mut executors) = build_cluster(spec);
    sim.with_config(cluster)
        .run(router, &mut policies, &mut executors)
}

/// The cluster sweep: every suite fleet under every shipped router.
pub fn clusters(scale: &Scale) -> Vec<ClusterRow> {
    let suite = cluster_suite(scale);
    let mut points = Vec::new();
    for spec in suite {
        for kind in RouterKind::ALL {
            points.push((spec.clone(), kind));
        }
    }
    points
        .into_par_iter()
        .map(|(spec, kind)| {
            let mut router = kind.build();
            let report = run_cluster(&spec, router.as_mut());
            ClusterRow::of(&spec, kind.name(), &report)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_params() {
        let rows = table1();
        assert_eq!(rows.len(), 5);
        assert!((rows[0].params_b - 47.0).abs() < 2.0);
        assert!((rows[1].params_b - 143.0).abs() < 6.0);
        assert!((rows[2].params_b - 314.0).abs() < 12.0);
    }

    #[test]
    fn fig08_shape_matches_paper() {
        let rows = fig08_edap();
        let get = |arch: &str, op_b: u64| {
            rows.iter()
                .find(|r| r.arch == arch && r.op_b == op_b)
                .expect("row exists")
                .normalized
        };
        // Bank-PIM is best at Op/B 1, worst at 32 (Fig. 8).
        assert!(get("Bank-PIM", 1) < 0.5);
        assert!(get("Bank-PIM", 32) > get("Logic-PIM", 32));
        // Logic-PIM always beats BankGroup-PIM.
        for op_b in [1u64, 2, 4, 8, 16, 32] {
            assert!(
                get("Logic-PIM", op_b) < get("BankGroup-PIM", op_b),
                "op_b {op_b}"
            );
        }
    }

    #[test]
    fn fig04_fractions_sum_to_one() {
        let rows = fig04_breakdown(&Scale::quick());
        assert!(!rows.is_empty());
        for r in &rows {
            let sum: f64 = r.fractions.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{r:?}");
        }
        // MoE + attention dominate decoding-only stages (Sec. III-A).
        let decode_rows: Vec<_> = rows.iter().filter(|r| !r.mixed && r.batch == 64).collect();
        for r in decode_rows {
            assert!(r.fractions[2] + r.fractions[3] > 0.5, "{r:?}");
        }
    }

    #[test]
    fn quick_scale_shrinks() {
        let s = Scale::quick();
        assert_eq!(s.len(2048), 256);
        assert_eq!(s.len(8), 8);
        assert!(s.requests(32) >= 33);
    }

    #[test]
    fn scenario_suite_covers_the_required_shapes() {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let suite = scenario_suite(&Scale::quick(), &model, &system, 64);
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        for required in ["bursty", "multi_turn", "slo_tiered"] {
            assert!(names.contains(&required), "missing {required} in {names:?}");
        }
        let chat = suite
            .iter()
            .find(|s| s.name == "multi_turn")
            .expect("chat exists");
        assert!(chat.conversation.is_some());
        let tiered = suite
            .iter()
            .find(|s| s.name == "slo_tiered")
            .expect("tiers exist");
        assert_eq!(tiered.tiers.len(), 3);
        let replay = suite
            .iter()
            .find(|s| s.name == "trace_replay")
            .expect("replay");
        assert!(matches!(replay.arrivals, Arrivals::Trace { .. }));
    }

    #[test]
    fn chunked_prefill_reduces_tbt_tail_at_equal_throughput() {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let suite = scenario_suite(&Scale::quick(), &model, &system, 64);
        let plain = suite
            .iter()
            .find(|s| s.name == "long_prefill")
            .expect("long_prefill")
            .clone();
        let chunked = suite
            .iter()
            .find(|s| s.name == "long_prefill_chunked")
            .expect("chunked variant")
            .clone();
        assert_eq!(plain.prefill_chunk, 0);
        assert!(chunked.prefill_chunk > 0);
        let mut p1 = PolicyKind::Fcfs.build();
        let a = run_scenario(&model, &system, plain, p1.as_mut(), 64);
        let mut p2 = PolicyKind::Fcfs.build();
        let b = run_scenario(&model, &system, chunked, p2.as_mut(), 64);
        // Chunking flattens the mixed-stage TBT tail ...
        assert!(
            b.tbt().p99 < 0.7 * a.tbt().p99,
            "chunked p99 {} vs unchunked {}",
            b.tbt().p99,
            a.tbt().p99
        );
        // ... at (essentially) equal throughput: the same tokens are
        // processed, only per-chunk overheads repeat.
        assert!(
            b.generation_throughput() > 0.85 * a.generation_throughput(),
            "chunked tput {} vs unchunked {}",
            b.generation_throughput(),
            a.generation_throughput()
        );
        assert_eq!(a.completed.len(), b.completed.len());

        // The occupancy-adaptive budget sits between the two: it
        // recovers the fixed chunk's throughput loss (idle slots get
        // big slices) while still flattening the unchunked tail.
        let adaptive = suite
            .iter()
            .find(|s| s.name == "long_prefill_adaptive")
            .expect("adaptive variant")
            .clone();
        assert!(adaptive.adaptive_chunk.is_some());
        let mut p3 = PolicyKind::Fcfs.build();
        let c = run_scenario(&model, &system, adaptive, p3.as_mut(), 64);
        assert!(
            c.tbt().p99 < 0.85 * a.tbt().p99,
            "adaptive p99 {} vs unchunked {}",
            c.tbt().p99,
            a.tbt().p99
        );
        assert!(
            c.generation_throughput() > b.generation_throughput(),
            "adaptive tput {} vs fixed-chunk {}",
            c.generation_throughput(),
            b.generation_throughput()
        );
        assert_eq!(a.completed.len(), c.completed.len());
    }

    #[test]
    fn cluster_suite_covers_the_required_fleets() {
        let suite = cluster_suite(&Scale::quick());
        let names: Vec<&str> = suite.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"grok_chat_tiered"), "{names:?}");
        assert!(names.contains(&"mixtral_hetero"), "{names:?}");
        assert!(names.contains(&"grok_failover"), "{names:?}");
        let drill = suite
            .iter()
            .find(|s| s.name == "grok_failover")
            .expect("failure drill");
        let plan = drill.faults.as_ref().expect("the drill scripts faults");
        assert_eq!(plan.faults.len(), 2, "one crash plus one drain");
        assert!(drill.scenario.conversation.is_some());
        assert!(suite
            .iter()
            .filter(|s| s.name != "grok_failover")
            .all(|s| s.faults.is_none()));
        let grok = suite
            .iter()
            .find(|s| s.name == "grok_chat_tiered")
            .expect("grok fleet");
        // The acceptance fleet: >= 4 Grok-scale (2x8) replicas, a
        // multi-turn + SLO-tiered scenario.
        assert!(grok.systems.len() >= 4);
        for system in &grok.systems {
            assert_eq!(system.devices_per_node, 8);
            assert_eq!(system.nodes, 2);
        }
        assert!(grok.scenario.conversation.is_some());
        assert_eq!(grok.scenario.tiers.len(), 3);
        let hetero = suite
            .iter()
            .find(|s| s.name == "mixtral_hetero")
            .expect("hetero fleet");
        // A genuinely mixed fleet.
        let distinct: std::collections::HashSet<&str> =
            hetero.systems.iter().map(|s| s.name.as_str()).collect();
        assert!(distinct.len() >= 2, "{distinct:?}");
    }

    #[test]
    fn autoscale_drill_brackets_the_elastic_fleet_with_static_goalposts() {
        let drill = autoscale_drill(&Scale::quick());
        let names: Vec<&str> = drill.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "grok_diurnal_autoscale_elastic",
                "grok_diurnal_autoscale_static_min",
                "grok_diurnal_autoscale_static_peak"
            ]
        );
        let elastic = &drill[0];
        let policy = elastic.autoscale.as_ref().expect("the elastic policy");
        assert_eq!(elastic.systems.len(), 6, "pool of six");
        assert_eq!(policy.min_replicas, 2, "floor of two");
        assert_eq!(drill[1].systems.len(), policy.min_replicas);
        assert_eq!(drill[2].systems.len(), elastic.systems.len());
        assert!(drill[1..].iter().all(|s| s.autoscale.is_none()));
        // One diurnal workload shared by all three fleets, tiered so
        // interactive attainment is comparable.
        for spec in &drill {
            assert_eq!(spec.scenario, elastic.scenario);
            assert!(matches!(
                spec.scenario.arrivals,
                Arrivals::Diurnal { amplitude, .. } if amplitude > 0.5
            ));
            assert_eq!(spec.scenario.tiers.len(), 3);
            assert!(spec.faults.is_none());
        }
    }

    #[test]
    fn cluster_run_merges_replica_reports() {
        let suite = cluster_suite(&Scale::quick());
        let spec = suite
            .iter()
            .find(|s| s.name == "mixtral_hetero")
            .expect("hetero fleet");
        let mut router = RouterKind::LeastOutstandingWork.build();
        let report = run_cluster(spec, router.as_mut());
        assert_eq!(report.replicas.len(), spec.systems.len());
        assert_eq!(report.completed(), spec.scenario.requests);
        // Every replica served something, and the fleet totals are the
        // per-replica sums.
        assert!(report.replicas.iter().all(|r| !r.completed.is_empty()));
        let per_replica: usize = report.replicas.iter().map(|r| r.completed.len()).sum();
        assert_eq!(per_replica, report.completed());
        assert!(report.generation_throughput() > 0.0);
        assert!(report.load_imbalance() >= 1.0);
        let row = ClusterRow::of(spec, "least-outstanding", &report);
        assert_eq!(row.replicas, 4);
        assert!(!row.tiered);
    }

    #[test]
    fn scenario_run_reports_slo_and_reuse() {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let scale = Scale::quick();
        let suite = scenario_suite(&scale, &model, &system, 64);
        let chat = suite
            .iter()
            .find(|s| s.name == "multi_turn")
            .expect("chat")
            .clone();
        let mut policy = PolicyKind::Fcfs.build();
        let report = run_scenario(&model, &system, chat, policy.as_mut(), 64);
        assert!(!report.completed.is_empty());
        assert!(report.kv_reuse.reuse_hits > 0, "{:?}", report.kv_reuse);

        let tiered = suite
            .iter()
            .find(|s| s.name == "slo_tiered")
            .expect("tiers")
            .clone();
        let mut policy = PolicyKind::PriorityTiers.build();
        let report = run_scenario(&model, &system, tiered, policy.as_mut(), 64);
        assert_eq!(report.slo.tiers.len(), 3);
        assert!(report.slo_attainment() > 0.0);
        assert!(report.goodput_tokens_per_s() > 0.0);
    }
}
