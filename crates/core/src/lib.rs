//! # duplex — a simulator for the Duplex LLM-inference device
//!
//! End-to-end reproduction of *"Duplex: A Device for Large Language
//! Models with Mixture of Experts, Grouped Query Attention, and
//! Continuous Batching"* (Yun et al., MICRO 2024, arXiv:2409.01141).
//!
//! Duplex pairs an H100-class **xPU** with **Logic-PIM** — processing
//! units on the HBM logic die fed 4x internal bandwidth through added
//! TSVs — inside one device, and picks the unit whose machine balance
//! matches each LLM layer's arithmetic intensity. Expert and attention
//! co-processing run both units at once inside MoE and attention
//! layers.
//!
//! This crate is the front door: build a [`RunConfig`], call [`run`],
//! get a [`RunResult`] with throughput, latency percentiles and energy.
//! Runs drive the scheduler's incremental stage contract end to end:
//! each stage reaches the executor as a `StageDelta` (advance +
//! admissions + retirements), so pure-decode stages — the bulk of
//! every sweep — are priced in O(1) from carried batch state (see
//! `duplex_system::incremental`), with the grouped full path as the
//! fallback and `stage_cost_reference` as the pinned oracle.
//! The pieces are exposed through re-exports if you need to go deeper
//! (HBM timing in [`hbm`], engines in [`compute`], model shapes in
//! [`model`], the scheduler in [`sched`], systems in [`system`]). The
//! [`experiments`] module holds the parameter sweeps that regenerate
//! every figure and table of the paper; the `duplex-bench` crate
//! prints them.
//!
//! # Quickstart
//!
//! Compare a 4-GPU system with a 4-Duplex system on Mixtral:
//!
//! ```
//! use duplex::{run, RunConfig};
//! use duplex::model::ModelConfig;
//! use duplex::system::SystemConfig;
//! use duplex::sched::Workload;
//!
//! let base = RunConfig {
//!     model: ModelConfig::mixtral_8x7b(),
//!     system: SystemConfig::gpu(4, 1),
//!     workload: Workload::fixed(256, 16),
//!     max_batch: 8,
//!     requests: 8,
//!     qps: None,
//!     seed: 7,
//!     max_stages: usize::MAX,
//!     kv_capacity_override: None,
//! };
//! let gpu = run(base.clone());
//! let duplex = run(RunConfig { system: SystemConfig::duplex_pe_et(4, 1), ..base });
//! assert!(duplex.throughput_tokens_per_s > gpu.throughput_tokens_per_s);
//! assert!(duplex.energy_per_token_j < gpu.energy_per_token_j);
//! ```

pub mod experiments;

/// Re-export of the HBM memory model.
pub use duplex_hbm as hbm;

/// Re-export of the processing-unit models.
pub use duplex_compute as compute;

/// Re-export of the LLM architecture descriptions.
pub use duplex_model as model;

/// Re-export of the serving scheduler.
pub use duplex_sched as sched;

/// Re-export of the system/cluster models.
pub use duplex_system as system;

use duplex_model::ModelConfig;
use duplex_sched::{LatencySummary, SimReport, Simulation, SimulationConfig, Workload};
use duplex_system::exec::StageCost;
use duplex_system::{SystemConfig, SystemExecutor};

/// One simulation: a model, a system, a workload and serving limits.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// The LLM to serve.
    pub model: ModelConfig,
    /// The serving system.
    pub system: SystemConfig,
    /// Request-shape distribution.
    pub workload: Workload,
    /// Maximum requests per stage.
    pub max_batch: usize,
    /// Requests to simulate.
    pub requests: usize,
    /// `Some(qps)` for open-loop Poisson arrivals, `None` for the
    /// paper's default closed loop.
    pub qps: Option<f64>,
    /// Expert-routing seed.
    pub seed: u64,
    /// Stage cap for truncated steady-state measurements.
    pub max_stages: usize,
    /// Override the system's KV-cache budget (e.g. to model the
    /// "no capacity limit" series of Fig. 5(c)); `None` uses the
    /// system's capacity plan.
    pub kv_capacity_override: Option<u64>,
}

impl RunConfig {
    /// Closed-loop config with explicit batch and request counts.
    pub fn closed_loop(
        model: ModelConfig,
        system: SystemConfig,
        workload: Workload,
        max_batch: usize,
        requests: usize,
    ) -> Self {
        Self {
            model,
            system,
            workload,
            max_batch,
            requests,
            qps: None,
            seed: 7,
            max_stages: usize::MAX,
            kv_capacity_override: None,
        }
    }
}

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// System display name.
    pub system_name: String,
    /// The raw scheduler report (stages, records).
    pub report: SimReport,
    /// Accumulated time/energy cost over all stages.
    pub cost: StageCost,
    /// Steady-state generation throughput (tokens/s), counting
    /// in-flight tokens.
    pub throughput_tokens_per_s: f64,
    /// TBT percentiles.
    pub tbt: LatencySummary,
    /// T2FT percentiles.
    pub t2ft: LatencySummary,
    /// E2E percentiles.
    pub e2e: LatencySummary,
    /// Total energy divided by generated tokens (J/token).
    pub energy_per_token_j: f64,
    /// KV-cache budget the scheduler ran with.
    pub kv_capacity_bytes: u64,
    /// Batch size actually achieved on average.
    pub mean_batch: f64,
}

/// Execute one simulation.
///
/// # Panics
///
/// Panics if the model does not fit the system (see
/// [`duplex_system::CapacityPlan`]).
pub fn run(config: RunConfig) -> RunResult {
    let mut executor =
        SystemExecutor::new(config.system.clone(), config.model.clone(), config.seed);
    run_with(&mut executor, &config)
}

/// Execute one simulation on an existing executor (resets its totals).
pub fn run_with(executor: &mut SystemExecutor, config: &RunConfig) -> RunResult {
    executor.reset_totals();
    let sim_cfg = SimulationConfig {
        max_batch: config.max_batch,
        kv_capacity_bytes: config
            .kv_capacity_override
            .unwrap_or(executor.kv_capacity_bytes()),
        kv_bytes_per_token: config.model.kv_bytes_per_token(),
        max_stages: config.max_stages,
        ..SimulationConfig::default()
    };
    let sim = match config.qps {
        Some(qps) => Simulation::poisson(sim_cfg, config.workload.clone(), qps, config.requests),
        None => Simulation::closed_loop(sim_cfg, config.workload.clone(), config.requests),
    };
    let report = sim.run(executor);
    let cost = *executor.total_cost();
    let tokens = report.generated_tokens().max(1);
    RunResult {
        system_name: executor.config().name.clone(),
        throughput_tokens_per_s: report.generation_throughput(),
        tbt: report.tbt(),
        t2ft: report.t2ft(),
        e2e: report.e2e(),
        energy_per_token_j: cost.energy.total() / tokens as f64,
        kv_capacity_bytes: executor.kv_capacity_bytes(),
        mean_batch: report.mean_batch(),
        report,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(system: SystemConfig) -> RunConfig {
        RunConfig::closed_loop(
            ModelConfig::mixtral_8x7b(),
            system,
            Workload::fixed(128, 8),
            4,
            8,
        )
    }

    #[test]
    fn run_produces_complete_result() {
        let r = run(small(SystemConfig::gpu(4, 1)));
        assert_eq!(r.report.completed.len(), 8);
        assert!(r.throughput_tokens_per_s > 0.0);
        assert!(r.energy_per_token_j > 0.0);
        assert!(r.tbt.p50 > 0.0);
        assert!(r.cost.seconds > 0.0);
        assert_eq!(r.system_name, "GPU");
    }

    #[test]
    fn run_with_reuses_executor() {
        let cfg = small(SystemConfig::duplex_pe(4, 1));
        let mut ex = SystemExecutor::new(cfg.system.clone(), cfg.model.clone(), 1);
        let a = run_with(&mut ex, &cfg);
        let b = run_with(&mut ex, &cfg);
        // Totals reset between runs: identical workloads, near-identical
        // results (expert routing advances the RNG).
        assert!((a.cost.seconds / b.cost.seconds - 1.0).abs() < 0.05);
    }

    #[test]
    fn poisson_mode_runs() {
        let mut cfg = small(SystemConfig::gpu(4, 1));
        cfg.qps = Some(100.0);
        let r = run(cfg);
        assert_eq!(r.report.completed.len(), 8);
    }
}
