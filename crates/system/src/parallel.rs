//! Weight placement and KV-cache capacity accounting.
//!
//! The paper's systems differ not only in speed but in how much memory
//! is left for KV cache after weights are placed, which caps batch size
//! and throughput (Fig. 5(c), Fig. 16):
//!
//! * **homogeneous** systems (GPU, 2xGPU, Duplex, Bank-PIM): non-expert
//!   weights are tensor-parallel within a node and *data-parallel*
//!   (duplicated) across nodes; expert weights are stored exactly once
//!   across the cluster (expert parallel or expert-tensor-parallel);
//! * the **heterogeneous** system stores expert weights and KV cache on
//!   its Logic-PIM devices (which run MoE and decode attention) and
//!   non-expert weights on both device kinds, stranding most of the GPU
//!   memory;
//! * the **split** system duplicates the full model on both the prefill
//!   pool and the decode pool, so only the decode pool's remainder
//!   holds KV.

use duplex_model::ModelConfig;

/// Result of placing a model onto a system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPlan {
    /// Total device memory in the system (bytes).
    pub total_memory_bytes: u64,
    /// Bytes consumed by weights (including any duplication).
    pub weight_bytes_stored: u64,
    /// Bytes available for KV cache.
    pub kv_capacity_bytes: u64,
}

impl CapacityPlan {
    /// Homogeneous cluster of `nodes x devices_per_node` devices with
    /// `device_mem_bytes` each.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not fit.
    pub fn homogeneous(
        model: &ModelConfig,
        nodes: u32,
        devices_per_node: u32,
        device_mem_bytes: u64,
    ) -> Self {
        let total = device_mem_bytes * u64::from(nodes) * u64::from(devices_per_node);
        let expert_bytes = model.weight_bytes() - model.non_expert_weight_bytes();
        let stored = model.non_expert_weight_bytes() * u64::from(nodes) + expert_bytes;
        assert!(
            stored <= total,
            "{} needs {} GB of weights but the system has {} GB",
            model.name,
            stored >> 30,
            total >> 30
        );
        Self {
            total_memory_bytes: total,
            weight_bytes_stored: stored,
            kv_capacity_bytes: total - stored,
        }
    }

    /// Heterogeneous system: `gpus` conventional devices plus `pims`
    /// Logic-PIM devices in one node. Expert weights and KV live on the
    /// PIM devices; non-expert weights are stored on both kinds.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not fit on their assigned pools.
    pub fn hetero(model: &ModelConfig, gpus: u32, pims: u32, device_mem_bytes: u64) -> Self {
        let total = device_mem_bytes * u64::from(gpus + pims);
        let pim_mem = device_mem_bytes * u64::from(pims);
        let expert_bytes = model.weight_bytes() - model.non_expert_weight_bytes();
        let non_expert = model.non_expert_weight_bytes();
        let stored = non_expert * 2 + expert_bytes;
        let pim_used = non_expert + expert_bytes;
        assert!(pim_used <= pim_mem, "expert weights overflow the PIM pool");
        assert!(
            non_expert <= device_mem_bytes * u64::from(gpus),
            "weights overflow the GPU pool"
        );
        Self {
            total_memory_bytes: total,
            weight_bytes_stored: stored,
            // KV must sit with decode attention, i.e. on the PIM pool.
            kv_capacity_bytes: pim_mem - pim_used,
        }
    }

    /// Split system: the model is fully duplicated on the prefill pool
    /// and the decode pool; KV lives on the decode pool.
    ///
    /// # Panics
    ///
    /// Panics if the weights do not fit in either pool.
    pub fn split(
        model: &ModelConfig,
        prefill_devices: u32,
        decode_devices: u32,
        device_mem_bytes: u64,
    ) -> Self {
        let prefill_mem = device_mem_bytes * u64::from(prefill_devices);
        let decode_mem = device_mem_bytes * u64::from(decode_devices);
        let w = model.weight_bytes();
        assert!(w <= prefill_mem, "weights overflow the prefill pool");
        assert!(w <= decode_mem, "weights overflow the decode pool");
        Self {
            total_memory_bytes: prefill_mem + decode_mem,
            weight_bytes_stored: 2 * w,
            kv_capacity_bytes: decode_mem - w,
        }
    }

    /// Largest batch of requests with `ctx` max context tokens each
    /// that fits the KV budget, capped at `requested`.
    pub fn max_batch(&self, model: &ModelConfig, ctx: u64, requested: usize) -> usize {
        let per_request = model.kv_bytes(ctx).max(1);
        let fit = (self.kv_capacity_bytes / per_request) as usize;
        fit.min(requested)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn mixtral_on_four_gpus() {
        let m = ModelConfig::mixtral_8x7b();
        let plan = CapacityPlan::homogeneous(&m, 1, 4, 80 * GB);
        assert_eq!(plan.total_memory_bytes, 320 * GB);
        // ~94 GB of weights leaves ~226 GB of KV.
        let kv_gb = plan.kv_capacity_bytes as f64 / GB as f64;
        assert!(kv_gb > 215.0 && kv_gb < 235.0, "got {kv_gb}");
    }

    #[test]
    fn data_parallel_nodes_duplicate_non_expert_weights() {
        let m = ModelConfig::grok1();
        let one = CapacityPlan::homogeneous(&m, 1, 16, 80 * GB);
        let two = CapacityPlan::homogeneous(&m, 2, 8, 80 * GB);
        assert!(two.weight_bytes_stored > one.weight_bytes_stored);
        assert_eq!(
            two.weight_bytes_stored - one.weight_bytes_stored,
            m.non_expert_weight_bytes()
        );
    }

    #[test]
    fn hetero_strands_gpu_memory() {
        let m = ModelConfig::mixtral_8x7b();
        let homo = CapacityPlan::homogeneous(&m, 1, 4, 80 * GB);
        let het = CapacityPlan::hetero(&m, 2, 2, 80 * GB);
        assert!(
            het.kv_capacity_bytes < homo.kv_capacity_bytes / 2,
            "hetero KV {} vs homo {}",
            het.kv_capacity_bytes >> 30,
            homo.kv_capacity_bytes >> 30
        );
    }

    #[test]
    fn split_duplicates_whole_model() {
        let m = ModelConfig::mixtral_8x7b();
        let split = CapacityPlan::split(&m, 2, 2, 80 * GB);
        assert_eq!(split.weight_bytes_stored, 2 * m.weight_bytes());
        let homo = CapacityPlan::homogeneous(&m, 1, 4, 80 * GB);
        assert!(split.kv_capacity_bytes < homo.kv_capacity_bytes);
    }

    #[test]
    fn max_batch_respects_kv_budget() {
        let m = ModelConfig::mixtral_8x7b();
        let plan = CapacityPlan::homogeneous(&m, 1, 4, 80 * GB);
        // 8192-token contexts at 128 KiB/token = 1 GiB per request.
        let batch = plan.max_batch(&m, 8192, 1024);
        let kv_gb = (plan.kv_capacity_bytes >> 30) as usize;
        assert_eq!(batch, kv_gb);
        assert_eq!(plan.max_batch(&m, 128, 32), 32, "cap at requested batch");
    }

    #[test]
    #[should_panic(expected = "GB")]
    fn oversize_model_rejected() {
        let m = ModelConfig::grok1();
        CapacityPlan::homogeneous(&m, 1, 4, 80 * GB); // 314B FP16 >> 320 GB
    }

    #[test]
    fn glam_fits_eight_devices() {
        let m = ModelConfig::glam();
        let plan = CapacityPlan::homogeneous(&m, 1, 8, 80 * GB);
        assert!(plan.kv_capacity_bytes > 300 * GB);
    }
}
