//! Incremental batch-state pricing: the executor-side state machine
//! behind [`crate::SystemExecutor`]'s `stage_cost_delta` path.
//!
//! Continuous-batching traces change little between stages: every
//! active context advances one token, plus a few admissions and
//! retirements. [`BatchState`] carries the sorted run-length-encoded
//! decode groups ([`duplex_model::ops::ContextGroups`]) across stages
//! under those [`StageDelta`] events in O(changes) — a uniform +1
//! preserves the sort order, so *advance* is O(1).
//!
//! # Why a pure-decode stage prices in O(1)
//!
//! For a decoding-only stage, every cost class is a simple function of
//! the batch aggregates:
//!
//! * **Decode attention** is *exactly linear in context*: the per-group
//!   KV bytes are `ctx * kv_unit_dev` with no rounding (the u64
//!   division by `groups` cancels against the factor of `groups` inside
//!   `kv_unit`), and both sides of the roofline `max` scale by `ctx`,
//!   so the branch is context-independent. A node's attention time is
//!   therefore `sec_per_ctx * Σctx_node + const`, where the constant
//!   covers the KV-append stream and per-layer launch overheads —
//!   both functions of the node's request *count* only.
//! * **FC, MoE and communication** depend only on the representative
//!   node's token count (= its request count) and the stage's total
//!   token count (= batch size) — MoE because expected-value routing
//!   makes the expert histogram a pure function of the token count
//!   (Mixtral of Experts: FC/MoE cost is context-free). These constants
//!   are memoized per `(node tokens, batch)` in the executor.
//!
//! [`DecodeTemplate`] caches those coefficients; between membership
//! changes each stage costs one `advance` (O(nodes) adds) and one
//! `price` (O(nodes) multiplies). Any admission, retirement or resync
//! invalidates the template, and the executor rebuilds it from the
//! carried groups — or falls back to the grouped full path for mixed
//! stages, which stays the oracle (`stage_cost_reference`).
//!
//! The equivalence with the reference path is pinned to 1e-9 relative
//! by `tests/prop_cross_crate.rs` over randomized
//! admit/retire/advance traces.

use duplex_model::ops::{ContextGroups, StageShape};
use duplex_sched::StageDelta;

use crate::exec::{EnergyBuckets, StageCost, TimeBreakdown};

/// Decode-batch state carried across stages by an incremental executor.
#[derive(Debug, Clone, Default)]
pub struct BatchState {
    groups: ContextGroups,
    /// Decode-join contexts admitted by the previous delta (the prompt
    /// length, or the full history under prefix reuse); they join the
    /// decode set at `join + 1` on the next advance.
    pending: Vec<u64>,
    /// False until a fresh delta (or a resync) establishes the state.
    synced: bool,
}

impl BatchState {
    /// Whether the state reflects the full delta history of the current
    /// trace.
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Mark the state stale (a stage was executed without a delta).
    pub fn desync(&mut self) {
        self.synced = false;
    }

    /// Requests currently decoding.
    pub fn reqs(&self) -> u64 {
        self.groups.reqs()
    }

    /// Σ of all decode contexts.
    pub fn ctx_sum(&self) -> u64 {
        self.groups.ctx_sum()
    }

    /// The run-length-encoded decode groups.
    pub fn groups(&self) -> &ContextGroups {
        &self.groups
    }

    /// Apply one stage delta (see [`duplex_sched::delta`] for the event
    /// order). Returns true when the decode membership changed relative
    /// to the previous stage — i.e. any cached per-stage template must
    /// be rebuilt rather than advanced.
    ///
    /// # Panics
    ///
    /// Panics if the state is out of sync and the delta is not fresh.
    pub fn apply(&mut self, delta: &StageDelta) -> bool {
        if delta.fresh {
            self.groups.clear();
            self.pending.clear();
            self.synced = true;
        }
        assert!(
            self.synced,
            "stage delta applied to a desynced batch state; start the trace with \
             StageDelta::start() or drive the executor through execute_delta"
        );
        let changed = delta.fresh || !self.pending.is_empty() || !delta.retire.is_empty();
        self.groups.advance();
        for p in self.pending.drain(..) {
            self.groups.insert(p + 1);
        }
        for &ctx in &delta.retire {
            // A missed removal would silently corrupt the aggregates
            // (and every later stage's price), so fail loudly even in
            // release builds — retirements are rare, the check is free.
            assert!(
                self.groups.remove(ctx),
                "retired context {ctx} not present in the batch state"
            );
        }
        self.pending.extend_from_slice(delta.join_contexts());
        changed
    }

    /// Resync from a materialized stage shape (the shape is ground
    /// truth for the stage being executed: its prefills are this
    /// stage's admissions). Sampling prefills join decode at
    /// `len + past` (the shape's `prefill_past` carries any resident
    /// history); held chunks never join — their prompt's final slice
    /// will arrive as a later admission, so schedulers that chunk must
    /// keep the delta stream unbroken instead of relying on shape
    /// resync mid-prompt.
    pub fn rebuild_from(&mut self, shape: &StageShape) {
        self.groups.clear();
        for &ctx in &shape.decode_ctx {
            self.groups.insert(ctx);
        }
        self.pending.clear();
        for (i, &len) in shape.prefill_len.iter().enumerate() {
            if shape.prefill_samples(i) {
                self.pending.push(len + shape.prefill_past_of(i));
            }
        }
        self.synced = true;
    }

    /// Materialize the current stage's shape: the carried decode groups
    /// plus the delta's admissions (with their reuse past) and held
    /// prefill chunks.
    pub fn fill_shape(&self, shape: &mut StageShape, delta: &StageDelta) {
        self.groups.fill_decode_ctx(&mut shape.decode_ctx);
        shape.clear_prefills();
        for (i, &len) in delta.admit.iter().enumerate() {
            shape.push_prefill(len, delta.admit_past(i), false);
        }
        for &(len, past) in &delta.chunk {
            shape.push_prefill(len, past, true);
        }
    }

    /// Export the batch's dynamic state for snapshotting: the decode
    /// groups as `(ctx, reqs)` run-length pairs (ascending context,
    /// absolute values) plus the pending decode-join contexts.
    pub fn export(&self) -> (Vec<(u64, u64)>, Vec<u64>) {
        (self.groups.iter().collect(), self.pending.clone())
    }

    /// Rebuild the batch state from an [`export`](Self::export).
    /// `ContextGroups::insert` merges into canonical ascending RLE
    /// form with a zero offset, so a restored state prices stages
    /// bit-identically to the original regardless of how many
    /// `advance` calls the original had accumulated.
    pub fn restore(&mut self, groups: &[(u64, u64)], pending: &[u64]) {
        self.groups.clear();
        for &(ctx, reqs) in groups {
            for _ in 0..reqs {
                self.groups.insert(ctx);
            }
        }
        self.pending.clear();
        self.pending.extend_from_slice(pending);
        self.synced = true;
    }

    /// Per-node request counts and context sums under the executor's
    /// round-robin data-parallel placement (groups in ascending context
    /// order, a rotating cursor spreading each group's requests) —
    /// exactly the per-node totals the grouped full path computes.
    pub fn node_placement(&self, nodes: usize, counts: &mut Vec<u64>, sums: &mut Vec<u64>) {
        counts.clear();
        counts.resize(nodes, 0);
        sums.clear();
        sums.resize(nodes, 0);
        let nodes_u = nodes as u64;
        let mut cursor = 0u64;
        for (ctx, reqs) in self.groups.iter() {
            let base = reqs / nodes_u;
            let rem = reqs % nodes_u;
            let start = cursor % nodes_u;
            for (n, (count, sum)) in counts.iter_mut().zip(sums.iter_mut()).enumerate() {
                let offset = (n as u64 + nodes_u - start) % nodes_u;
                let cnt = base + u64::from(offset < rem);
                *count += cnt;
                *sum += ctx * cnt;
            }
            cursor += reqs;
        }
    }
}

/// Cached linear pricing of a decode-only batch: rebuild on membership
/// change, then each stage is one `advance` plus one `price` (both
/// crate-internal). See the [module docs](self) for why the
/// decomposition is exact.
#[derive(Debug, Clone, Default)]
pub struct DecodeTemplate {
    /// Requests per data-parallel node (fixed between rebuilds).
    pub(crate) node_count: Vec<u64>,
    /// Σctx per node (advances by `node_count` each stage).
    pub(crate) node_sumctx: Vec<u64>,
    /// Per-node constant seconds: KV-append stream + launch overheads.
    pub(crate) node_const_s: Vec<f64>,
    pub(crate) total_count: u64,
    pub(crate) total_sumctx: u64,
    /// Decode-attention seconds per unit of context (per node).
    pub(crate) sec_per_ctx: f64,
    /// Attention DRAM / compute joules per unit of total Σctx, already
    /// scaled by the attention tensor-parallel degree.
    pub(crate) attn_dram_j_per_ctx: f64,
    pub(crate) attn_comp_j_per_ctx: f64,
    /// FC + MoE + comm times (attention filled per stage).
    pub(crate) base_time: TimeBreakdown,
    /// FC + MoE + KV-append energies (per-ctx attention energy added
    /// per stage).
    pub(crate) base_energy: EnergyBuckets,
}

impl DecodeTemplate {
    /// Advance every context by one token.
    pub(crate) fn advance(&mut self) {
        for (sum, count) in self.node_sumctx.iter_mut().zip(&self.node_count) {
            *sum += *count;
        }
        self.total_sumctx += self.total_count;
    }

    /// Price the stage at the template's current Σctx.
    pub(crate) fn price(&self) -> StageCost {
        let mut dec = 0.0f64;
        for (&sum, &konst) in self.node_sumctx.iter().zip(&self.node_const_s) {
            dec = dec.max(self.sec_per_ctx * sum as f64 + konst);
        }
        let mut time = self.base_time;
        time.attn_decode = dec;
        let mut energy = self.base_energy;
        let s = self.total_sumctx as f64;
        energy.attn_dram += self.attn_dram_j_per_ctx * s;
        energy.attn_comp += self.attn_comp_j_per_ctx * s;
        // Decode-only: prefill attention is zero, so the co-processing
        // overlap and the serialized sum coincide.
        let seconds = time.fc + dec + time.moe + time.comm;
        StageCost {
            seconds,
            time,
            energy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn delta(fresh: bool, admit: &[u64], retire: &[u64]) -> StageDelta {
        StageDelta {
            fresh,
            admit: admit.to_vec(),
            admit_ctx: Vec::new(),
            chunk: Vec::new(),
            retire: retire.to_vec(),
        }
    }

    #[test]
    fn apply_tracks_the_scheduler_lifecycle() {
        let mut b = BatchState::default();
        // Stage 1: admit two prompts of 100.
        assert!(b.apply(&delta(true, &[100, 100], &[])));
        assert_eq!(b.reqs(), 0, "prefills join the decode set next stage");
        // Stage 2: pure advance — the prefills land at ctx 101.
        assert!(
            b.apply(&delta(false, &[], &[])),
            "flushed prefills change membership"
        );
        assert_eq!(b.reqs(), 2);
        assert_eq!(b.ctx_sum(), 202);
        // Stage 3: advance only.
        assert!(!b.apply(&delta(false, &[], &[])));
        assert_eq!(b.ctx_sum(), 204);
        // Stage 4: one retires at its post-advance context 103.
        assert!(b.apply(&delta(false, &[], &[103])));
        assert_eq!(b.reqs(), 1);
        assert_eq!(b.ctx_sum(), 103);
    }

    #[test]
    fn reuse_admissions_join_at_full_history() {
        // A follow-up with 448 resident tokens prefills only 64 new
        // ones but joins the decode set over its full 512-token history.
        let mut b = BatchState::default();
        let mut d = delta(true, &[64], &[]);
        d.admit_ctx = vec![512];
        b.apply(&d);
        assert!(b.apply(&delta(false, &[], &[])));
        assert_eq!(b.reqs(), 1);
        assert_eq!(b.ctx_sum(), 513);
        // It retires at its post-advance full context, not the prefill.
        assert!(b.apply(&delta(false, &[], &[514])));
        assert_eq!(b.reqs(), 0);
    }

    #[test]
    fn fresh_delta_resets_leftover_state() {
        let mut b = BatchState::default();
        b.apply(&delta(true, &[50], &[]));
        b.apply(&delta(false, &[], &[]));
        assert_eq!(b.reqs(), 1);
        b.apply(&delta(true, &[10], &[]));
        assert_eq!(b.reqs(), 0);
        b.apply(&delta(false, &[], &[]));
        assert_eq!(b.ctx_sum(), 11);
    }

    #[test]
    #[should_panic(expected = "desynced")]
    fn desynced_state_rejects_non_fresh_deltas() {
        let mut b = BatchState::default();
        b.apply(&delta(false, &[], &[]));
    }

    #[test]
    fn rebuild_from_shape_resyncs() {
        let mut b = BatchState::default();
        b.desync();
        let shape = StageShape::mixed(&[10, 12, 10], &[99]);
        b.rebuild_from(&shape);
        assert!(b.is_synced());
        assert_eq!(b.reqs(), 3);
        assert_eq!(b.ctx_sum(), 32);
        // The shape's prefills are pending: they flush on the next advance.
        b.apply(&delta(false, &[], &[]));
        assert_eq!(b.reqs(), 4);
        assert_eq!(b.ctx_sum(), 35 + 100);
    }

    #[test]
    fn fill_shape_materializes_sorted_contexts() {
        let mut b = BatchState::default();
        b.apply(&delta(true, &[7, 5, 7], &[]));
        b.apply(&delta(false, &[], &[]));
        let mut shape = StageShape::default();
        let mut d = delta(false, &[256], &[]);
        d.admit_ctx = vec![900];
        d.chunk.push((64, 320));
        b.fill_shape(&mut shape, &d);
        assert_eq!(shape.decode_ctx, vec![6, 8, 8]);
        // The admission carries its reuse past (900 - 256), the held
        // chunk its own (new, past) pair.
        assert_eq!(shape.prefill_len, vec![256, 64]);
        assert_eq!(shape.prefill_past, vec![644, 320]);
        assert_eq!(shape.prefill_hold, vec![false, true]);
    }

    #[test]
    fn export_restore_round_trips_pricing_state() {
        let mut b = BatchState::default();
        let mut d = delta(true, &[64, 100], &[]);
        d.admit_ctx = vec![512, 100];
        b.apply(&d);
        b.apply(&delta(false, &[30], &[]));
        let (groups, pending) = b.export();
        assert_eq!(groups, vec![(101, 1), (513, 1)]);
        assert_eq!(pending, vec![30]);
        let mut r = BatchState::default();
        r.restore(&groups, &pending);
        assert!(r.is_synced());
        assert_eq!(r.export(), (groups, pending));
        // Both advance identically afterwards.
        b.apply(&delta(false, &[], &[]));
        r.apply(&delta(false, &[], &[]));
        assert_eq!(b.export(), r.export());
    }

    #[test]
    fn node_placement_matches_round_robin() {
        let mut b = BatchState::default();
        // Groups (5, x3) and (9, x2): cursor walks 0..3 then 3..5.
        b.rebuild_from(&StageShape::decode_only(&[5, 5, 5, 9, 9]));
        let (mut counts, mut sums) = (Vec::new(), Vec::new());
        b.node_placement(2, &mut counts, &mut sums);
        // Group (5,3): base=1, rem=1, start=0 -> node0: 2, node1: 1.
        // Group (9,2): base=1, rem=0, start=1 -> one request each.
        assert_eq!(counts, vec![3, 2]);
        assert_eq!(sums, vec![2 * 5 + 9, 5 + 9]);
        // Single node: everything lands on node 0.
        b.node_placement(1, &mut counts, &mut sums);
        assert_eq!(counts, vec![5]);
        assert_eq!(sums, vec![33]);
    }

    #[test]
    fn template_advance_tracks_counts() {
        let mut t = DecodeTemplate {
            node_count: vec![3, 2],
            node_sumctx: vec![19, 14],
            node_const_s: vec![0.0, 0.0],
            total_count: 5,
            total_sumctx: 33,
            sec_per_ctx: 1.0,
            ..DecodeTemplate::default()
        };
        t.advance();
        assert_eq!(t.node_sumctx, vec![22, 16]);
        assert_eq!(t.total_sumctx, 38);
        let cost = t.price();
        assert!(
            (cost.time.attn_decode - 22.0).abs() < 1e-12,
            "max node wins"
        );
    }
}
