//! Stage execution: maps every op of a stage onto the system's
//! processing units, prices time and energy, and implements the
//! operation flows of Fig. 10.
//!
//! One [`SystemExecutor`] models one serving system end to end:
//!
//! * **GPU** — everything on the xPU (Fig. 10 has no PIM lane);
//! * **Duplex** (base) — Logic-PIM runs MoE layers of decoding-only
//!   stages and all decode attention; the xPU runs the rest; the two
//!   never overlap (Fig. 10(a)/(b));
//! * **Duplex+PE** — expert co-processing splits each device's experts
//!   between the units, attention co-processing overlaps prefill
//!   attention (xPU) with decode attention (Logic-PIM) (Fig. 10(d));
//! * **Duplex+PE+ET** — additionally tensor-parallels experts within a
//!   node so each device sees *all* experts and the split gets finer
//!   (Sec. V-B);
//! * **Bank-PIM** — the low-Op/B unit is an in-bank PIM; in-bank reads
//!   occupy every bank, so there is no conflict-free co-processing;
//! * **hetero** — two GPUs plus two Logic-PIM devices (Fig. 5): the PIM
//!   devices own MoE (all stages!) and decode attention, which is
//!   exactly what makes mixed stages blow up.
//!
//! Timing uses the representative (most-loaded) node and takes maxima
//! across parallel devices; energy sums over all devices.

use duplex_compute::engine::default_profile;
use duplex_compute::kernel::{GemmShape, Kernel};
use duplex_compute::{Engine, EngineSpec, KernelCost};
use duplex_model::ops::{enumerate_stage, AttnOp, ExpertWork, StageShape};
use duplex_model::{ExpertRouter, ModelConfig};
use duplex_sched::{StageExecutor, StageOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::comm::{CommModel, LinkSpec};
use crate::coproc::split_experts;
use crate::parallel::CapacityPlan;

/// Bytes of device memory per device (80 GB, H100-class).
pub const DEVICE_MEM_BYTES: u64 = 80 << 30;

/// HBM stacks per device.
pub const STACKS_PER_DEVICE: u32 = 5;

/// What the device's low-Op/B unit is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Conventional accelerator only.
    Gpu,
    /// xPU + Logic-PIM (the paper's device).
    Duplex,
    /// xPU + in-bank PIM (the Fig. 14 baseline).
    BankPim,
}

/// Per-class wall-clock seconds of one stage (or a whole run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Batched FC layers (QKV gen, projection, gates, dense FFN, LM head).
    pub fc: f64,
    /// Attention of prefilling sequences.
    pub attn_prefill: f64,
    /// Attention of decoding sequences.
    pub attn_decode: f64,
    /// MoE expert FFNs.
    pub moe: f64,
    /// Collectives and device-to-device transfers.
    pub comm: f64,
}

impl TimeBreakdown {
    /// Sum of all classes (serialized time; the stage latency may be
    /// smaller under co-processing).
    pub fn total(&self) -> f64 {
        self.fc + self.attn_prefill + self.attn_decode + self.moe + self.comm
    }
}

impl std::ops::AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.fc += rhs.fc;
        self.attn_prefill += rhs.attn_prefill;
        self.attn_decode += rhs.attn_decode;
        self.moe += rhs.moe;
        self.comm += rhs.comm;
    }
}

/// Per-class energy in joules, split DRAM vs compute (Fig. 15 buckets).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBuckets {
    /// FC DRAM energy.
    pub fc_dram: f64,
    /// FC compute energy.
    pub fc_comp: f64,
    /// Attention DRAM energy (prefill + decode).
    pub attn_dram: f64,
    /// Attention compute energy.
    pub attn_comp: f64,
    /// MoE DRAM energy.
    pub moe_dram: f64,
    /// MoE compute energy.
    pub moe_comp: f64,
}

impl EnergyBuckets {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.fc_dram + self.fc_comp + self.attn_dram + self.attn_comp + self.moe_dram
            + self.moe_comp
    }

    fn add_fc(&mut self, c: &KernelCost) {
        self.fc_dram += c.dram_energy.total_j();
        self.fc_comp += c.compute_j;
    }

    fn add_attn(&mut self, c: &KernelCost) {
        self.attn_dram += c.dram_energy.total_j();
        self.attn_comp += c.compute_j;
    }

    fn add_moe(&mut self, c: &KernelCost) {
        self.moe_dram += c.dram_energy.total_j();
        self.moe_comp += c.compute_j;
    }
}

impl std::ops::AddAssign for EnergyBuckets {
    fn add_assign(&mut self, rhs: Self) {
        self.fc_dram += rhs.fc_dram;
        self.fc_comp += rhs.fc_comp;
        self.attn_dram += rhs.attn_dram;
        self.attn_comp += rhs.attn_comp;
        self.moe_dram += rhs.moe_dram;
        self.moe_comp += rhs.moe_comp;
    }
}

/// Cost of one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageCost {
    /// Effective stage latency in seconds (co-processing overlaps
    /// already applied).
    pub seconds: f64,
    /// Per-class serialized times.
    pub time: TimeBreakdown,
    /// Per-class energy.
    pub energy: EnergyBuckets,
}

impl std::ops::AddAssign for StageCost {
    fn add_assign(&mut self, rhs: Self) {
        self.seconds += rhs.seconds;
        self.time += rhs.time;
        self.energy += rhs.energy;
    }
}

/// Full description of one serving system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Display name ("GPU", "Duplex+PE+ET", ...).
    pub name: String,
    /// Device type.
    pub device: DeviceKind,
    /// Nodes in the cluster (data parallel).
    pub nodes: u32,
    /// Devices per node (tensor parallel).
    pub devices_per_node: u32,
    /// Expert and attention co-processing enabled.
    pub coproc: bool,
    /// Tensor-parallel experts within a node (ET); otherwise expert
    /// parallelism across all devices.
    pub expert_tensor_parallel: bool,
    /// Heterogeneous 2-GPU + 2-Logic-PIM system (overrides `device`).
    pub hetero: bool,
    /// Interconnect.
    pub link: LinkSpec,
    /// Override the low-Op/B unit's specification (for design-space
    /// ablations of the bandwidth multiple / machine balance); `None`
    /// uses the spec implied by `device`.
    pub pim_spec: Option<EngineSpec>,
}

impl SystemConfig {
    fn base(name: &str, device: DeviceKind, devices_per_node: u32, nodes: u32) -> Self {
        assert!(devices_per_node >= 1 && nodes >= 1, "cluster must be non-empty");
        Self {
            name: name.into(),
            device,
            nodes,
            devices_per_node,
            coproc: false,
            expert_tensor_parallel: false,
            hetero: false,
            link: LinkSpec::hgx(),
            pim_spec: None,
        }
    }

    /// Homogeneous GPU system.
    pub fn gpu(devices_per_node: u32, nodes: u32) -> Self {
        Self::base("GPU", DeviceKind::Gpu, devices_per_node, nodes)
    }

    /// Duplex without co-processing (Fig. 10(a)/(b)).
    pub fn duplex(devices_per_node: u32, nodes: u32) -> Self {
        Self::base("Duplex", DeviceKind::Duplex, devices_per_node, nodes)
    }

    /// Duplex with expert and attention co-processing (Fig. 10(d)).
    pub fn duplex_pe(devices_per_node: u32, nodes: u32) -> Self {
        let mut c = Self::base("Duplex+PE", DeviceKind::Duplex, devices_per_node, nodes);
        c.coproc = true;
        c
    }

    /// Duplex with co-processing and expert tensor parallelism.
    pub fn duplex_pe_et(devices_per_node: u32, nodes: u32) -> Self {
        let mut c = Self::base("Duplex+PE+ET", DeviceKind::Duplex, devices_per_node, nodes);
        c.coproc = true;
        c.expert_tensor_parallel = true;
        c
    }

    /// Bank-PIM device system. In-bank reads occupy every bank of the
    /// pseudo channel, so xPU/PIM co-processing is unavailable.
    pub fn bank_pim(devices_per_node: u32, nodes: u32) -> Self {
        Self::base("Bank-PIM", DeviceKind::BankPim, devices_per_node, nodes)
    }

    /// The heterogeneous system of Fig. 5: one node with two GPUs (FC +
    /// prefill attention) and two Logic-PIM devices (MoE + decode
    /// attention).
    pub fn hetero() -> Self {
        let mut c = Self::base("Hetero", DeviceKind::Gpu, 4, 1);
        c.hetero = true;
        c
    }

    /// The paper's default cluster shape for a model (Sec. VI):
    /// Mixtral/OPT/Llama3 on 1x4, GLaM on 1x8, Grok1 on 2x8.
    pub fn default_cluster(model: &ModelConfig) -> (u32, u32) {
        match model.name.as_str() {
            "GLaM" => (8, 1),
            "Grok1" => (8, 2),
            _ => (4, 1),
        }
    }

    /// A system with twice the devices (the paper's 2xGPU scaling rule:
    /// grow a node to eight devices, then add nodes).
    pub fn doubled(&self) -> Self {
        let mut c = self.clone();
        if c.devices_per_node < 8 {
            c.devices_per_node *= 2;
        } else {
            c.nodes *= 2;
        }
        c.name = format!("2x{}", self.name);
        c
    }

    /// Total devices in the system.
    pub fn total_devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }
}

/// Executes stages for one system; implements
/// [`duplex_sched::StageExecutor`].
#[derive(Debug)]
pub struct SystemExecutor {
    config: SystemConfig,
    model: ModelConfig,
    router: ExpertRouter,
    rng: StdRng,
    xpu: Engine,
    pim: Option<Engine>,
    comm: CommModel,
    node_comm: CommModel,
    plan: CapacityPlan,
    total: StageCost,
    stages: usize,
}

impl SystemExecutor {
    /// Build an executor for `model` on `config`, with deterministic
    /// expert routing from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the model's weights do not fit the system (see
    /// [`CapacityPlan`]).
    pub fn new(config: SystemConfig, model: ModelConfig, seed: u64) -> Self {
        let profile = default_profile();
        let xpu = Engine::from_profile(EngineSpec::h100_xpu(), profile, STACKS_PER_DEVICE);
        let pim = if let Some(spec) = config.pim_spec {
            Some(Engine::from_profile(spec, profile, STACKS_PER_DEVICE))
        } else if config.hetero {
            Some(Engine::from_profile(EngineSpec::logic_pim(STACKS_PER_DEVICE), profile, STACKS_PER_DEVICE))
        } else {
            match config.device {
                DeviceKind::Gpu => None,
                DeviceKind::Duplex => Some(Engine::from_profile(
                    EngineSpec::logic_pim(STACKS_PER_DEVICE),
                    profile,
                    STACKS_PER_DEVICE,
                )),
                DeviceKind::BankPim => Some(Engine::from_profile(
                    EngineSpec::bank_pim(STACKS_PER_DEVICE),
                    profile,
                    STACKS_PER_DEVICE,
                )),
            }
        };
        let plan = if config.hetero {
            CapacityPlan::hetero(&model, 2, 2, DEVICE_MEM_BYTES)
        } else {
            CapacityPlan::homogeneous(&model, config.nodes, config.devices_per_node, DEVICE_MEM_BYTES)
        };
        let router = if model.is_moe() {
            ExpertRouter::uniform(model.n_experts, model.top_k)
        } else {
            ExpertRouter::uniform(1, 1)
        };
        let comm = CommModel::new(config.link, config.nodes, config.devices_per_node);
        // Node-level collectives (EP across nodes) run on the IB links.
        let node_link = LinkSpec {
            intra_node_bytes_per_sec: config.link.inter_node_bytes_per_sec,
            ..config.link
        };
        let node_comm = CommModel::new(node_link, 1, config.nodes);
        Self {
            config,
            model,
            router,
            rng: StdRng::seed_from_u64(seed),
            xpu,
            pim,
            comm,
            node_comm,
            plan,
            total: StageCost::default(),
            stages: 0,
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The capacity plan (weights placed, KV budget).
    pub fn capacity(&self) -> &CapacityPlan {
        &self.plan
    }

    /// KV-cache budget for the scheduler.
    pub fn kv_capacity_bytes(&self) -> u64 {
        self.plan.kv_capacity_bytes
    }

    /// Accumulated cost over all executed stages.
    pub fn total_cost(&self) -> &StageCost {
        &self.total
    }

    /// Stages executed so far.
    pub fn stages_executed(&self) -> usize {
        self.stages
    }

    /// Reset accumulated totals (e.g. between warm-up and measurement).
    pub fn reset_totals(&mut self) {
        self.total = StageCost::default();
        self.stages = 0;
    }

    /// Replace the gate with a Zipf-skewed router (Sec. VIII-B: hot and
    /// cold experts). `skew = 0` restores the paper's uniform default.
    ///
    /// # Panics
    ///
    /// Panics if the model has no MoE layers or `skew` is negative.
    pub fn set_expert_skew(&mut self, skew: f64) {
        assert!(self.model.is_moe(), "expert skew needs an MoE model");
        self.router = ExpertRouter::zipf(self.model.n_experts, self.model.top_k, skew);
    }

    fn pim(&self) -> &Engine {
        self.pim.as_ref().expect("policy routed work to a PIM on a PIM-less system")
    }

    /// Price one expert invocation on `engine`, with the expert's
    /// matrices sharded to `frac` of their columns/rows.
    fn expert_cost(&self, engine: &Engine, tokens: u64, frac: f64) -> KernelCost {
        if tokens == 0 {
            return KernelCost::zero();
        }
        let work = ExpertWork::for_tokens(&self.model, tokens);
        let bpe = self.model.bytes_per_elem;
        let up_n = ((work.up_shape.n as f64 * frac).ceil() as u64).max(1);
        let down_k = ((work.down_shape.k as f64 * frac).ceil() as u64).max(1);
        let up = GemmShape { m: tokens, n: up_n, k: work.up_shape.k };
        let down = GemmShape { m: tokens, n: work.down_shape.n, k: down_k };
        let mut cost = KernelCost::zero();
        for _ in 0..work.up_count {
            cost += engine.gemm_cost_amortized(up, up.weight_bytes(bpe));
        }
        cost += engine.gemm_cost_amortized(down, down.weight_bytes(bpe));
        if work.activation_elems > 0 {
            let elems = (work.activation_elems as f64 * frac).ceil() as u64;
            cost += engine.kernel_cost(&Kernel::Elementwise { elems });
        }
        cost
    }

    /// Price one attention op on `engine`, head groups sharded over
    /// `tp` devices. Returns the per-device cost of all `count` layers.
    fn attn_cost(&self, engine: &Engine, op: &AttnOp, tp: u32) -> KernelCost {
        let groups_dev = (op.groups).div_ceil(u64::from(tp));
        let bpe = self.model.bytes_per_elem;
        let kv_dev = op.kv_dram_bytes(bpe) * groups_dev / op.groups;
        let mut score = op.score_shape();
        score.m = op.q_rows * groups_dev;
        let mut value = op.value_shape();
        value.m = op.q_rows * groups_dev;
        // Per-request attention within one layer is dispatched as one
        // batched kernel; overhead is added per layer in `stage_cost`.
        let mut cost = engine.gemm_cost_amortized(score, kv_dev / 2);
        cost += engine.kernel_cost(&Kernel::Softmax { rows: score.m, cols: score.n });
        cost += engine.gemm_cost_amortized(value, kv_dev - kv_dev / 2);
        scale(cost, op.count as f64)
    }

    /// Compute the cost of one stage without executing it through the
    /// scheduler (used by the figure harnesses for one-shot analysis).
    pub fn stage_cost(&mut self, shape: &StageShape) -> StageCost {
        let work = enumerate_stage(&self.model, shape, &self.router, &mut self.rng);
        let nodes = self.config.nodes as usize;
        let (tp_fc, tp_attn, moe_devices) = if self.config.hetero {
            (2u32, 2u32, 2u32)
        } else {
            let tp = self.config.devices_per_node;
            (tp, tp, self.config.total_devices())
        };
        let bpe = self.model.bytes_per_elem;

        // ------ data-parallel node assignment (round-robin) ------
        let mut node_tokens = vec![0u64; nodes];
        let mut node_lm_rows = vec![0u64; nodes];
        let mut node_attn: Vec<Vec<&AttnOp>> = vec![Vec::new(); nodes];
        let mut decode_i = 0usize;
        let mut prefill_i = 0usize;
        for op in &work.attn {
            let idx = if op.decode {
                decode_i += 1;
                (decode_i - 1) % nodes
            } else {
                prefill_i += 1;
                (prefill_i - 1) % nodes
            };
            node_attn[idx].push(op);
            node_tokens[idx] += if op.decode { 1 } else { op.ctx };
            node_lm_rows[idx] += 1;
        }
        let rep = (0..nodes).max_by_key(|&i| node_tokens[i]).unwrap_or(0);
        let m_fc = node_tokens[rep].max(1);
        let lm_rows_rep = node_lm_rows[rep].max(1);

        let mut time = TimeBreakdown::default();
        let mut energy = EnergyBuckets::default();

        // ------ FC layers (always on the xPU) ------
        for op in &work.fc_ops {
            let m = if op.name == "lm_head" { lm_rows_rep } else { m_fc };
            let sharded = GemmShape {
                m,
                n: op.shape.n.div_ceil(u64::from(tp_fc)),
                k: op.shape.k,
            };
            let dram = op.weight_bytes(bpe) / u64::from(tp_fc);
            let dev = scale(self.xpu.gemm_cost(sharded, dram), op.count as f64);
            time.fc += dev.seconds;
            // Every device of every node does symmetric work.
            let cluster = scale(dev, f64::from(tp_fc) * nodes as f64);
            energy.add_fc(&cluster);
        }

        // ------ attention ------
        let (prefill_engine, decode_engine): (&Engine, &Engine) = if self.config.hetero {
            (&self.xpu, self.pim())
        } else {
            match self.config.device {
                DeviceKind::Gpu => (&self.xpu, &self.xpu),
                _ => (&self.xpu, self.pim()),
            }
        };
        let mut pre_max = 0.0f64;
        let mut dec_max = 0.0f64;
        for ops in node_attn.iter() {
            let mut pre = 0.0;
            let mut dec = 0.0;
            let mut decode_tokens = 0u64;
            let mut prefill_tokens = 0u64;
            for op in ops {
                if op.decode {
                    let c = self.attn_cost(decode_engine, op, tp_attn);
                    dec += c.seconds;
                    energy.add_attn(&scale(c, f64::from(tp_attn)));
                    decode_tokens += 1;
                } else {
                    let c = self.attn_cost(prefill_engine, op, tp_attn);
                    pre += c.seconds;
                    energy.add_attn(&scale(c, f64::from(tp_attn)));
                    prefill_tokens += op.ctx;
                }
            }
            // KV append: decode KV written by the decode engine, prefill
            // KV by the prefill engine (later migrated; Sec. V-C).
            let kv_tok = self.model.kv_bytes_per_token();
            if decode_tokens > 0 {
                let bytes = decode_tokens * kv_tok / u64::from(tp_attn);
                let c = decode_engine.kernel_cost(&Kernel::Stream { bytes, write: true });
                dec += c.seconds;
                energy.add_attn(&scale(c, f64::from(tp_attn)));
            }
            if prefill_tokens > 0 {
                let bytes = prefill_tokens * kv_tok / u64::from(tp_attn);
                let c = prefill_engine.kernel_cost(&Kernel::Stream { bytes, write: true });
                pre += c.seconds;
                energy.add_attn(&scale(c, f64::from(tp_attn)));
            }
            // One batched kernel set (score, softmax, value) per layer
            // and class: charge the launch overhead once per layer.
            let layer_count = self.model.n_layers as f64;
            if decode_tokens > 0 {
                dec += 3.0 * decode_engine.spec().launch_overhead_s * layer_count;
            }
            if prefill_tokens > 0 {
                pre += 3.0 * prefill_engine.spec().launch_overhead_s * layer_count;
            }
            dec_max = dec.max(dec_max);
            pre_max = pre.max(pre_max);
        }
        time.attn_prefill = pre_max;
        time.attn_decode = dec_max;

        // ------ MoE ------
        if !work.moe.is_empty() {
            let mixed = work.mixed;
            for layer in &work.moe {
                let (t, e) = if self.config.expert_tensor_parallel {
                    self.moe_layer_et(&layer.expert_tokens, mixed, tp_fc)
                } else {
                    self.moe_layer_ep(&layer.expert_tokens, mixed, moe_devices)
                };
                time.moe += t;
                energy.moe_dram += e.moe_dram;
                energy.moe_comp += e.moe_comp;
            }
        }

        // ------ communication ------
        let act_bytes = m_fc * self.model.hidden * bpe;
        let layers = u64::from(self.model.n_layers);
        // Two tensor-parallel all-reduces per decoder layer.
        time.comm += 2.0 * self.comm.all_reduce_intra(act_bytes) * layers as f64;
        if !work.moe.is_empty() {
            let moe_blocks = self.model.moe_block_count() as f64;
            let dispatch_total =
                work.tokens * u64::from(self.model.top_k) * self.model.hidden * bpe;
            if self.config.expert_tensor_parallel {
                // EP across nodes only; tokens cross the IB links.
                if nodes > 1 {
                    let per_node = dispatch_total / nodes as u64;
                    time.comm += 2.0 * self.node_comm.all_to_all(per_node) * moe_blocks;
                }
                // On-device partial-sum all-reduce: the xPU reads each
                // Logic-PIM stack's partial outputs (Sec. V-A).
                let partial = m_fc * self.model.hidden * bpe;
                let c = self
                    .xpu
                    .kernel_cost(&Kernel::Stream { bytes: partial, write: false });
                time.moe += c.seconds * moe_blocks;
                energy.add_moe(&scale(c, moe_blocks * f64::from(tp_fc) * nodes as f64));
            } else {
                let per_device = dispatch_total / u64::from(self.config.total_devices());
                time.comm += 2.0 * self.comm.all_to_all(per_device) * moe_blocks;
            }
        }
        if self.config.hetero {
            // GPU <-> PIM handoffs: QKV/outputs for decode attention each
            // layer, activations to/from the MoE pool each MoE layer.
            let decode_tokens = shape.decode_ctx.len() as u64;
            if decode_tokens > 0 {
                let bytes = decode_tokens * self.model.hidden * bpe;
                time.comm += 2.0 * self.comm.p2p_intra(bytes) * layers as f64;
            }
            let moe_bytes = m_fc * self.model.hidden * bpe;
            time.comm +=
                2.0 * self.comm.p2p_intra(moe_bytes) * self.model.moe_block_count() as f64;
        }

        // ------ effective stage latency ------
        let attn_eff = if self.config.coproc {
            time.attn_prefill.max(time.attn_decode)
        } else {
            time.attn_prefill + time.attn_decode
        };
        let seconds = time.fc + attn_eff + time.moe + time.comm;

        StageCost { seconds, time, energy }
    }

    /// Expert-parallel MoE layer: experts distributed round-robin over
    /// `devices`; returns (time, energy).
    fn moe_layer_ep(
        &self,
        expert_tokens: &[u64],
        mixed: bool,
        devices: u32,
    ) -> (f64, EnergyBuckets) {
        let nex = expert_tokens.len() as u32;
        let mut energy = EnergyBuckets::default();
        // When devices outnumber experts each expert is tensor-sharded
        // over device groups (footnote 1 of the paper).
        let (frac, eff_devices) = if devices > nex {
            (f64::from(nex) / f64::from(devices), nex)
        } else {
            (1.0, devices)
        };
        let mut worst = 0.0f64;
        for d in 0..eff_devices {
            let owned: Vec<u64> = expert_tokens
                .iter()
                .copied()
                .enumerate()
                .filter(|(e, _)| (*e as u32) % eff_devices == d)
                .map(|(_, t)| t)
                .collect();
            let (t, e) = self.run_device_experts(&owned, mixed, frac);
            worst = worst.max(t);
            energy += e;
        }
        (worst, energy)
    }

    /// Expert-tensor-parallel MoE layer: every device of a node holds a
    /// `1/tp` shard of each expert owned by its node (EP across nodes).
    fn moe_layer_et(
        &self,
        expert_tokens: &[u64],
        mixed: bool,
        tp: u32,
    ) -> (f64, EnergyBuckets) {
        let nodes = self.config.nodes;
        let frac = 1.0 / f64::from(tp);
        let mut worst = 0.0f64;
        let mut energy = EnergyBuckets::default();
        for node in 0..nodes {
            let owned: Vec<u64> = expert_tokens
                .iter()
                .copied()
                .enumerate()
                .filter(|(e, _)| (*e as u32) % nodes == node)
                .map(|(_, t)| t)
                .collect();
            let (t, e) = self.run_device_experts(&owned, mixed, frac);
            worst = worst.max(t);
            // All tp devices of the node do symmetric shard work.
            let mut e_scaled = e;
            e_scaled.moe_dram *= f64::from(tp);
            e_scaled.moe_comp *= f64::from(tp);
            energy += e_scaled;
        }
        (worst, energy)
    }

    /// Run one device's expert list under the policy: GPU-only, PIM by
    /// stage type (base Duplex), or co-processing split.
    fn run_device_experts(
        &self,
        tokens: &[u64],
        mixed: bool,
        frac: f64,
    ) -> (f64, EnergyBuckets) {
        let mut energy = EnergyBuckets::default();
        // Experts in one layer dispatch as one grouped kernel per unit:
        // one launch-overhead set per unit that does any work.
        let launches = f64::from(self.model.ffn_fcs);
        let has_pim = self.pim.is_some() || self.config.hetero;
        if !has_pim {
            let mut t = 0.0;
            let mut any = false;
            for &tk in tokens {
                let c = self.expert_cost(&self.xpu, tk, frac);
                t += c.seconds;
                any |= tk > 0;
                energy.add_moe(&c);
            }
            if any {
                t += launches * self.xpu.spec().launch_overhead_s;
            }
            return (t, energy);
        }
        if self.config.coproc {
            let costs: Vec<(f64, f64)> = tokens
                .iter()
                .map(|&tk| {
                    (
                        self.expert_cost(self.pim(), tk, frac).seconds,
                        self.expert_cost(&self.xpu, tk, frac).seconds,
                    )
                })
                .collect();
            let split = split_experts(&costs);
            for &i in &split.pim_experts {
                energy.add_moe(&self.expert_cost(self.pim(), tokens[i], frac));
            }
            for &i in &split.xpu_experts {
                energy.add_moe(&self.expert_cost(&self.xpu, tokens[i], frac));
            }
            let pim_side = if split.pim_seconds > 0.0 {
                split.pim_seconds + launches * self.pim().spec().launch_overhead_s
            } else {
                0.0
            };
            let xpu_side = if split.xpu_seconds > 0.0 {
                split.xpu_seconds + launches * self.xpu.spec().launch_overhead_s
            } else {
                0.0
            };
            (pim_side.max(xpu_side), energy)
        } else {
            // Base Duplex / Bank-PIM / hetero: the PIM owns MoE in
            // decoding-only stages; the hetero system has no choice and
            // keeps MoE on its PIM pool even in mixed stages.
            let engine = if mixed && !self.config.hetero { &self.xpu } else { self.pim() };
            let mut t = 0.0;
            let mut any = false;
            for &tk in tokens {
                let c = self.expert_cost(engine, tk, frac);
                t += c.seconds;
                any |= tk > 0;
                energy.add_moe(&c);
            }
            if any {
                t += launches * engine.spec().launch_overhead_s;
            }
            (t, energy)
        }
    }
}

fn scale(c: KernelCost, by: f64) -> KernelCost {
    KernelCost {
        seconds: c.seconds * by,
        dram_energy: duplex_hbm::EnergyBreakdown {
            activation_j: c.dram_energy.activation_j * by,
            transfer_j: c.dram_energy.transfer_j * by,
        },
        compute_j: c.compute_j * by,
    }
}

impl StageExecutor for SystemExecutor {
    fn execute(&mut self, shape: &StageShape) -> StageOutcome {
        let cost = self.stage_cost(shape);
        self.total += cost;
        self.stages += 1;
        StageOutcome { seconds: cost.seconds }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_stage(batch: usize, ctx: u64) -> StageShape {
        StageShape::decode_only(&vec![ctx; batch])
    }

    fn mixed_stage(batch: usize, ctx: u64, lin: u64) -> StageShape {
        StageShape::mixed(&vec![ctx; batch], &[lin])
    }

    #[test]
    fn moe_dominates_gpu_decode_stages() {
        // Fig. 4(a): MoE + attention take most of a decode-only stage.
        let mut ex = SystemExecutor::new(SystemConfig::gpu(4, 1), ModelConfig::mixtral_8x7b(), 1);
        let c = ex.stage_cost(&decode_stage(64, 2048));
        let moe_attn = c.time.moe + c.time.attn_decode;
        assert!(
            moe_attn > 0.6 * c.time.total(),
            "moe+attn {:.2}ms of {:.2}ms",
            moe_attn * 1e3,
            c.time.total() * 1e3
        );
    }

    #[test]
    fn duplex_speeds_up_decode_stages() {
        // Batch 32 keeps each Mixtral expert at ~8 tokens (Op/B ~ 8),
        // squarely in Logic-PIM's memory-bound sweet spot.
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), model, 1);
        let shape = decode_stage(32, 2048);
        let tg = gpu.stage_cost(&shape).seconds;
        let td = dup.stage_cost(&shape).seconds;
        assert!(td < 0.65 * tg, "Duplex {td} vs GPU {tg}");

        // At batch 64 the experts go compute-bound on the PIM, but
        // Duplex must still win.
        let shape = decode_stage(64, 2048);
        let tg = gpu.stage_cost(&shape).seconds;
        let td = dup.stage_cost(&shape).seconds;
        assert!(td < 0.8 * tg, "Duplex {td} vs GPU {tg}");
    }

    #[test]
    fn coproc_never_hurts() {
        let model = ModelConfig::mixtral_8x7b();
        let mut base = SystemExecutor::new(SystemConfig::duplex(4, 1), model.clone(), 1);
        let mut pe = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model, 1);
        for shape in [decode_stage(32, 1024), mixed_stage(31, 1024, 2048)] {
            let tb = base.stage_cost(&shape).seconds;
            let tp = pe.stage_cost(&shape).seconds;
            assert!(tp <= tb * 1.02, "PE {tp} vs base {tb}");
        }
    }

    #[test]
    fn et_improves_expert_split_granularity() {
        // With EP, each Mixtral device owns 2 experts; with ET it sees
        // all 8 shards, so the co-processing split gets finer and the
        // MoE time cannot get worse.
        let model = ModelConfig::mixtral_8x7b();
        let mut pe = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model.clone(), 1);
        let mut et = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 1);
        let shape = decode_stage(64, 1024);
        let t_pe = pe.stage_cost(&shape).time.moe;
        let t_et = et.stage_cost(&shape).time.moe;
        assert!(t_et <= t_pe * 1.05, "ET {t_et} vs PE {t_pe}");
    }

    #[test]
    fn mixed_stage_moe_runs_on_xpu_for_base_duplex() {
        // In a mixed stage the MoE Op/B is high; base Duplex routes it
        // to the xPU, so MoE time should be near the GPU system's.
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), model, 1);
        let shape = mixed_stage(31, 1024, 2048);
        let mg = gpu.stage_cost(&shape).time.moe;
        let md = dup.stage_cost(&shape).time.moe;
        assert!((md - mg).abs() / mg < 0.05, "GPU {mg} vs Duplex {md}");
    }

    #[test]
    fn hetero_mixed_stages_blow_up() {
        // Fig. 5(b): the hetero system is slower than the GPU system on
        // mixed stages (compute-starved PIM devices run the MoE).
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut het = SystemExecutor::new(SystemConfig::hetero(), model, 1);
        let mixed = mixed_stage(31, 1024, 2048);
        let tg = gpu.stage_cost(&mixed).seconds;
        let th = het.stage_cost(&mixed).seconds;
        assert!(th > 2.0 * tg, "hetero {th} vs GPU {tg} on mixed stage");
        // ... but faster on decode-only stages.
        let dec = decode_stage(32, 1024);
        let tg = gpu.stage_cost(&dec).seconds;
        let th = het.stage_cost(&dec).seconds;
        assert!(th < tg, "hetero {th} vs GPU {tg} on decode stage");
    }

    #[test]
    fn bank_pim_wins_mha_loses_moe_vs_duplex() {
        // Fig. 14: Bank-PIM beats Duplex on OPT (MHA, Op/B ~1) decode
        // attention but loses on Mixtral MoE (Op/B > 1).
        let opt = ModelConfig::opt_66b();
        let mut bank = SystemExecutor::new(SystemConfig::bank_pim(4, 1), opt.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), opt, 1);
        let shape = decode_stage(32, 2048);
        let tb = bank.stage_cost(&shape).time.attn_decode;
        let td = dup.stage_cost(&shape).time.attn_decode;
        assert!(tb < td, "Bank-PIM attention {tb} vs Duplex {td} on MHA");

        let mixtral = ModelConfig::mixtral_8x7b();
        let mut bank = SystemExecutor::new(SystemConfig::bank_pim(4, 1), mixtral.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), mixtral, 1);
        let shape = decode_stage(64, 2048);
        let tb = bank.stage_cost(&shape).time.moe;
        let td = dup.stage_cost(&shape).time.moe;
        assert!(td < tb, "Duplex MoE {td} vs Bank-PIM {tb} at batch 64");
    }

    #[test]
    fn duplex_saves_energy() {
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 1);
        let shape = decode_stage(64, 2048);
        let eg = gpu.stage_cost(&shape).energy.total();
        let ed = dup.stage_cost(&shape).energy.total();
        assert!(ed < eg, "Duplex energy {ed} vs GPU {eg}");
    }

    #[test]
    fn doubled_system_scales_cluster() {
        let four = SystemConfig::gpu(4, 1);
        let eight = four.doubled();
        assert_eq!(eight.total_devices(), 8);
        assert_eq!(eight.nodes, 1);
        let sixteen = eight.doubled();
        assert_eq!(sixteen.nodes, 2);
        assert_eq!(sixteen.name, "2x2xGPU");
    }

    #[test]
    fn executor_accumulates_totals() {
        let mut ex =
            SystemExecutor::new(SystemConfig::gpu(4, 1), ModelConfig::mixtral_8x7b(), 1);
        let shape = decode_stage(8, 256);
        let c1 = ex.stage_cost(&shape);
        ex.execute(&shape);
        ex.execute(&shape);
        assert_eq!(ex.stages_executed(), 2);
        assert!(ex.total_cost().seconds > 1.5 * c1.seconds);
        ex.reset_totals();
        assert_eq!(ex.stages_executed(), 0);
        assert_eq!(ex.total_cost().seconds, 0.0);
    }

    #[test]
    fn grok_two_nodes_pay_communication() {
        let model = ModelConfig::grok1();
        let mut ex = SystemExecutor::new(SystemConfig::duplex_pe_et(8, 2), model, 1);
        let c = ex.stage_cost(&decode_stage(64, 1024));
        assert!(c.time.comm > 0.0);
        // Communication should be visible but not dominant on decode.
        assert!(c.time.comm < c.seconds * 0.5);
    }
}
