//! Stage execution: maps every op of a stage onto the system's
//! processing units, prices time and energy, and implements the
//! operation flows of Fig. 10.
//!
//! # The grouped fast path
//!
//! [`SystemExecutor::stage_cost`] is the simulator's innermost hot
//! loop: paper-scale sweeps price hundreds of thousands of stages, so
//! the executor works on *grouped* ops end to end:
//!
//! * attention arrives pre-grouped from
//!   [`enumerate_stage`](duplex_model::ops::enumerate_stage) — one
//!   [`AttnOp`] per distinct context length with a `reqs` multiplicity
//!   — and each group is priced **once** per node, then scaled by its
//!   multiplicity (seconds and energy are linear in the number of
//!   identical requests);
//! * data-parallel placement distributes each group's requests
//!   round-robin across nodes *by arithmetic* (a rotating cursor per
//!   class), reproducing exactly the per-request round-robin that an
//!   ungrouped enumeration would produce;
//! * MoE layers whose expert histograms are identical — always the
//!   case under the default expected-value routing — are priced once
//!   and scaled by the MoE block count;
//! * per-stage scratch (per-node token/row/op buffers) lives in the
//!   executor and is reused across stages instead of reallocated;
//! * kernel pricing underneath goes straight to the roofline math
//!   (`duplex_compute::Engine::kernel_cost_uncached` and friends): a
//!   price is a handful of multiplies, cheaper than probing the
//!   engines' memo table, so the executor memoizes only *aggregates*
//!   (the decode-stage constants keyed on `(m_fc, tokens)`).
//!
//! **Invariants.** Grouping is a pure batching of identical work: for
//! any stage shape and system, the fast path's [`StageCost`] equals the
//! per-request reference path ([`SystemExecutor::stage_cost_reference`])
//! up to floating-point associativity (pinned to 1e-9 relative by the
//! cross-crate property tests). Multiplicity never changes *which*
//! engine prices an op, only how many times its cost is counted, and
//! per-node request counts are identical to ungrouped round-robin
//! placement.
//!
//! # The incremental delta path
//!
//! On top of the grouped path, [`SystemExecutor::stage_cost_delta`]
//! carries a [`BatchState`] *across* stages: the scheduler announces
//! each stage as a [`StageDelta`] (advance + admissions +
//! retirements), and pure-advance decoding stages — the overwhelming
//! majority of a continuous-batching trace — are priced in O(1) from
//! `(batch size, Σctx)` aggregates through a cached
//! [`DecodeTemplate`]. Mixed stages and membership changes fall back
//! to the grouped full path (rebuilding the template from the carried
//! groups), and sampled expert routing disables the incremental path
//! entirely, since its histograms are per-stage draws. See
//! [`crate::incremental`] for the state machine and the exactness
//! argument, and `tests/prop_cross_crate.rs` for the trace-equivalence
//! property tests.
//!
//! One [`SystemExecutor`] models one serving system end to end:
//!
//! * **GPU** — everything on the xPU (Fig. 10 has no PIM lane);
//! * **Duplex** (base) — Logic-PIM runs MoE layers of decoding-only
//!   stages and all decode attention; the xPU runs the rest; the two
//!   never overlap (Fig. 10(a)/(b));
//! * **Duplex+PE** — expert co-processing splits each device's experts
//!   between the units, attention co-processing overlaps prefill
//!   attention (xPU) with decode attention (Logic-PIM) (Fig. 10(d));
//! * **Duplex+PE+ET** — additionally tensor-parallels experts within a
//!   node so each device sees *all* experts and the split gets finer
//!   (Sec. V-B);
//! * **Bank-PIM** — the low-Op/B unit is an in-bank PIM; in-bank reads
//!   occupy every bank, so there is no conflict-free co-processing;
//! * **hetero** — two GPUs plus two Logic-PIM devices (Fig. 5): the PIM
//!   devices own MoE (all stages!) and decode attention, which is
//!   exactly what makes mixed stages blow up.
//!
//! Timing uses the representative (most-loaded) node and takes maxima
//! across parallel devices; energy sums over all devices.

use std::cell::RefCell;

use duplex_compute::engine::{default_profile, AmortizedGemmPricer};
use duplex_compute::hash::FastMap;
use duplex_compute::kernel::{GemmShape, Kernel};
use duplex_compute::{Engine, EngineSpec, KernelCost};
use duplex_model::ops::{
    enumerate_stage_into, fill_fc_ops, AttnOp, ExpertWork, FcOp, StageShape, StageWork,
};
use duplex_model::routing::RoutingMode;
use duplex_model::{ExpertRouter, ModelConfig};
use duplex_sched::{BatchCheckpoint, StageDelta, StageExecutor, StageOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::comm::{CommModel, LinkSpec};
use crate::coproc::split_experts;
use crate::incremental::{BatchState, DecodeTemplate};
use crate::parallel::CapacityPlan;

/// Bytes of device memory per device (80 GB, H100-class).
pub const DEVICE_MEM_BYTES: u64 = 80 << 30;

/// HBM stacks per device.
pub const STACKS_PER_DEVICE: u32 = 5;

/// What the device's low-Op/B unit is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Conventional accelerator only.
    Gpu,
    /// xPU + Logic-PIM (the paper's device).
    Duplex,
    /// xPU + in-bank PIM (the Fig. 14 baseline).
    BankPim,
}

/// Per-class wall-clock seconds of one stage (or a whole run).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TimeBreakdown {
    /// Batched FC layers (QKV gen, projection, gates, dense FFN, LM head).
    pub fc: f64,
    /// Attention of prefilling sequences.
    pub attn_prefill: f64,
    /// Attention of decoding sequences.
    pub attn_decode: f64,
    /// MoE expert FFNs.
    pub moe: f64,
    /// Collectives and device-to-device transfers.
    pub comm: f64,
}

impl TimeBreakdown {
    /// Sum of all classes (serialized time; the stage latency may be
    /// smaller under co-processing).
    pub fn total(&self) -> f64 {
        self.fc + self.attn_prefill + self.attn_decode + self.moe + self.comm
    }
}

impl std::ops::AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.fc += rhs.fc;
        self.attn_prefill += rhs.attn_prefill;
        self.attn_decode += rhs.attn_decode;
        self.moe += rhs.moe;
        self.comm += rhs.comm;
    }
}

/// Per-class energy in joules, split DRAM vs compute (Fig. 15 buckets).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBuckets {
    /// FC DRAM energy.
    pub fc_dram: f64,
    /// FC compute energy.
    pub fc_comp: f64,
    /// Attention DRAM energy (prefill + decode).
    pub attn_dram: f64,
    /// Attention compute energy.
    pub attn_comp: f64,
    /// MoE DRAM energy.
    pub moe_dram: f64,
    /// MoE compute energy.
    pub moe_comp: f64,
}

impl EnergyBuckets {
    /// Total joules.
    pub fn total(&self) -> f64 {
        self.fc_dram
            + self.fc_comp
            + self.attn_dram
            + self.attn_comp
            + self.moe_dram
            + self.moe_comp
    }

    fn add_fc(&mut self, c: &KernelCost) {
        self.fc_dram += c.dram_energy.total_j();
        self.fc_comp += c.compute_j;
    }

    fn add_attn(&mut self, c: &KernelCost) {
        self.attn_dram += c.dram_energy.total_j();
        self.attn_comp += c.compute_j;
    }

    fn add_moe(&mut self, c: &KernelCost) {
        self.moe_dram += c.dram_energy.total_j();
        self.moe_comp += c.compute_j;
    }
}

impl std::ops::AddAssign for EnergyBuckets {
    fn add_assign(&mut self, rhs: Self) {
        self.fc_dram += rhs.fc_dram;
        self.fc_comp += rhs.fc_comp;
        self.attn_dram += rhs.attn_dram;
        self.attn_comp += rhs.attn_comp;
        self.moe_dram += rhs.moe_dram;
        self.moe_comp += rhs.moe_comp;
    }
}

/// Cost of one executed stage.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageCost {
    /// Effective stage latency in seconds (co-processing overlaps
    /// already applied).
    pub seconds: f64,
    /// Per-class serialized times.
    pub time: TimeBreakdown,
    /// Per-class energy.
    pub energy: EnergyBuckets,
}

impl std::ops::AddAssign for StageCost {
    fn add_assign(&mut self, rhs: Self) {
        self.seconds += rhs.seconds;
        self.time += rhs.time;
        self.energy += rhs.energy;
    }
}

/// Full description of one serving system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Display name ("GPU", "Duplex+PE+ET", ...).
    pub name: String,
    /// Device type.
    pub device: DeviceKind,
    /// Nodes in the cluster (data parallel).
    pub nodes: u32,
    /// Devices per node (tensor parallel).
    pub devices_per_node: u32,
    /// Expert and attention co-processing enabled.
    pub coproc: bool,
    /// Tensor-parallel experts within a node (ET); otherwise expert
    /// parallelism across all devices.
    pub expert_tensor_parallel: bool,
    /// Heterogeneous 2-GPU + 2-Logic-PIM system (overrides `device`).
    pub hetero: bool,
    /// Interconnect.
    pub link: LinkSpec,
    /// Override the low-Op/B unit's specification (for design-space
    /// ablations of the bandwidth multiple / machine balance); `None`
    /// uses the spec implied by `device`.
    pub pim_spec: Option<EngineSpec>,
}

impl SystemConfig {
    fn base(name: &str, device: DeviceKind, devices_per_node: u32, nodes: u32) -> Self {
        assert!(
            devices_per_node >= 1 && nodes >= 1,
            "cluster must be non-empty"
        );
        Self {
            name: name.into(),
            device,
            nodes,
            devices_per_node,
            coproc: false,
            expert_tensor_parallel: false,
            hetero: false,
            link: LinkSpec::hgx(),
            pim_spec: None,
        }
    }

    /// Homogeneous GPU system.
    pub fn gpu(devices_per_node: u32, nodes: u32) -> Self {
        Self::base("GPU", DeviceKind::Gpu, devices_per_node, nodes)
    }

    /// Duplex without co-processing (Fig. 10(a)/(b)).
    pub fn duplex(devices_per_node: u32, nodes: u32) -> Self {
        Self::base("Duplex", DeviceKind::Duplex, devices_per_node, nodes)
    }

    /// Duplex with expert and attention co-processing (Fig. 10(d)).
    pub fn duplex_pe(devices_per_node: u32, nodes: u32) -> Self {
        let mut c = Self::base("Duplex+PE", DeviceKind::Duplex, devices_per_node, nodes);
        c.coproc = true;
        c
    }

    /// Duplex with co-processing and expert tensor parallelism.
    pub fn duplex_pe_et(devices_per_node: u32, nodes: u32) -> Self {
        let mut c = Self::base("Duplex+PE+ET", DeviceKind::Duplex, devices_per_node, nodes);
        c.coproc = true;
        c.expert_tensor_parallel = true;
        c
    }

    /// Bank-PIM device system. In-bank reads occupy every bank of the
    /// pseudo channel, so xPU/PIM co-processing is unavailable.
    pub fn bank_pim(devices_per_node: u32, nodes: u32) -> Self {
        Self::base("Bank-PIM", DeviceKind::BankPim, devices_per_node, nodes)
    }

    /// The heterogeneous system of Fig. 5: one node with two GPUs (FC +
    /// prefill attention) and two Logic-PIM devices (MoE + decode
    /// attention).
    pub fn hetero() -> Self {
        let mut c = Self::base("Hetero", DeviceKind::Gpu, 4, 1);
        c.hetero = true;
        c
    }

    /// The paper's default cluster shape for a model (Sec. VI):
    /// Mixtral/OPT/Llama3 on 1x4, GLaM on 1x8, Grok1 on 2x8.
    pub fn default_cluster(model: &ModelConfig) -> (u32, u32) {
        match model.name.as_str() {
            "GLaM" => (8, 1),
            "Grok1" => (8, 2),
            _ => (4, 1),
        }
    }

    /// A system with twice the devices (the paper's 2xGPU scaling rule:
    /// grow a node to eight devices, then add nodes).
    pub fn doubled(&self) -> Self {
        let mut c = self.clone();
        if c.devices_per_node < 8 {
            c.devices_per_node *= 2;
        } else {
            c.nodes *= 2;
        }
        c.name = format!("2x{}", self.name);
        c
    }

    /// Total devices in the system.
    pub fn total_devices(&self) -> u32 {
        self.nodes * self.devices_per_node
    }
}

/// Stage-local pricer for decode-attention groups (see
/// [`SystemExecutor::decode_attn_pricer`]). All decode groups of a
/// stage share every parameter except the context length.
#[derive(Debug, Clone, Copy)]
struct DecodeAttnPricer {
    gemm: AmortizedGemmPricer,
    softmax_inv_flops: f64,
    softmax_j_per_flop: f64,
    /// KV bytes per unit of context (`2 * d_head * groups * bpe`).
    kv_unit: u64,
    groups: u64,
    groups_dev: u64,
    score_flops_base: f64,
    value_flops_per_ctx: f64,
    softmax_flops_base: f64,
    d_head_f: f64,
    count_f: f64,
}

impl DecodeAttnPricer {
    /// Per-device cost of all layers of one decode group at `ctx`.
    #[inline]
    fn cost(&self, ctx: u64) -> KernelCost {
        let kv_dev = ctx * self.kv_unit * self.groups_dev / self.groups;
        let ctx_f = ctx as f64;
        let score_flops = self.score_flops_base * ctx_f * self.d_head_f;
        let value_flops = self.value_flops_per_ctx * ctx_f;
        let mut cost = self.gemm.price(score_flops, kv_dev / 2);
        let sm_flops = self.softmax_flops_base * ctx_f;
        cost.seconds += sm_flops * self.softmax_inv_flops;
        cost.compute_j += sm_flops * self.softmax_j_per_flop;
        cost += self.gemm.price(value_flops, kv_dev - kv_dev / 2);
        KernelCost {
            seconds: cost.seconds * self.count_f,
            dram_energy: duplex_hbm::EnergyBreakdown {
                activation_j: cost.dram_energy.activation_j * self.count_f,
                transfer_j: cost.dram_energy.transfer_j * self.count_f,
            },
            compute_j: cost.compute_j * self.count_f,
        }
    }
}

/// Per-stage scratch buffers, hoisted into the executor so the hot
/// path allocates nothing per stage (capacities persist across stages).
#[derive(Debug, Default)]
struct StageScratch {
    /// Tokens landing on each data-parallel node.
    node_tokens: Vec<u64>,
    /// LM-head rows on each node.
    node_lm_rows: Vec<u64>,
    /// Grouped attention ops per node: `(group, requests on this node)`.
    node_attn: Vec<Vec<(AttnOp, u64)>>,
}

impl StageScratch {
    fn reset(&mut self, nodes: usize) {
        self.node_tokens.clear();
        self.node_tokens.resize(nodes, 0);
        self.node_lm_rows.clear();
        self.node_lm_rows.resize(nodes, 0);
        for v in &mut self.node_attn {
            v.clear();
        }
        if self.node_attn.len() < nodes {
            self.node_attn.resize_with(nodes, Vec::new);
        }
    }
}

/// Memo key for one device's expert-list pricing: the exact inputs
/// [`SystemExecutor::run_device_experts`] is a pure function of (the
/// engines and policy are fixed per executor).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct DeviceExpertsKey {
    tokens: Vec<u64>,
    mixed: bool,
    frac_bits: u64,
}

/// Safety valve for the device-experts memo (distinct histograms are
/// few in steady state but unbounded over adversarial workloads).
const EXPERT_MEMO_MAX_ENTRIES: usize = 1 << 18;

/// Per-stage constants of a decoding-only batch that depend only on
/// `(representative-node tokens, total tokens)`: FC, MoE and
/// communication times plus their energies. Cached in
/// [`SystemExecutor::decode_consts_memo`] because steady-state decode
/// repeats the same batch size for thousands of stages.
#[derive(Debug, Clone, Copy)]
struct DecodeConsts {
    time: TimeBreakdown,
    energy: EnergyBuckets,
}

/// Safety valve for the decode-consts memo.
const DECODE_CONSTS_MAX_ENTRIES: usize = 1 << 16;

/// Executes stages for one system; implements
/// [`duplex_sched::StageExecutor`].
#[derive(Debug)]
pub struct SystemExecutor {
    config: SystemConfig,
    model: ModelConfig,
    router: ExpertRouter,
    rng: StdRng,
    xpu: Engine,
    pim: Option<Engine>,
    comm: CommModel,
    node_comm: CommModel,
    plan: CapacityPlan,
    total: StageCost,
    stages: usize,
    scratch: StageScratch,
    /// Reusable stage enumeration (vectors keep their capacity).
    work: StageWork,
    /// Memoized per-device expert pricing: steady-state decode repeats
    /// the same histogram for thousands of stages.
    expert_memo: RefCell<FastMap<DeviceExpertsKey, (f64, EnergyBuckets)>>,
    /// Reusable probe key for `expert_memo` (hits stay allocation-free).
    expert_probe: RefCell<DeviceExpertsKey>,
    /// Decode-batch state carried across stages by the delta path.
    batch: BatchState,
    /// Cached linear pricing of the current decode membership.
    template: Option<DecodeTemplate>,
    /// Memoized decode-stage constants keyed by `(m_fc, total tokens)`.
    decode_consts_memo: FastMap<(u64, u64), DecodeConsts>,
    /// Reused shape buffer for materializing delta-path fallbacks.
    shape_scratch: StageShape,
    /// Reused FC-op list for decode-consts computation.
    fc_scratch: Vec<FcOp>,
    /// Reused expert histogram for decode-consts computation.
    hist_scratch: Vec<u64>,
}

impl SystemExecutor {
    /// Build an executor for `model` on `config`, with deterministic
    /// expert routing from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the model's weights do not fit the system (see
    /// [`CapacityPlan`]).
    pub fn new(config: SystemConfig, model: ModelConfig, seed: u64) -> Self {
        let profile = default_profile();
        let xpu = Engine::from_profile(EngineSpec::h100_xpu(), profile, STACKS_PER_DEVICE);
        let pim = if let Some(spec) = config.pim_spec {
            Some(Engine::from_profile(spec, profile, STACKS_PER_DEVICE))
        } else if config.hetero {
            Some(Engine::from_profile(
                EngineSpec::logic_pim(STACKS_PER_DEVICE),
                profile,
                STACKS_PER_DEVICE,
            ))
        } else {
            match config.device {
                DeviceKind::Gpu => None,
                DeviceKind::Duplex => Some(Engine::from_profile(
                    EngineSpec::logic_pim(STACKS_PER_DEVICE),
                    profile,
                    STACKS_PER_DEVICE,
                )),
                DeviceKind::BankPim => Some(Engine::from_profile(
                    EngineSpec::bank_pim(STACKS_PER_DEVICE),
                    profile,
                    STACKS_PER_DEVICE,
                )),
            }
        };
        let plan = if config.hetero {
            CapacityPlan::hetero(&model, 2, 2, DEVICE_MEM_BYTES)
        } else {
            CapacityPlan::homogeneous(
                &model,
                config.nodes,
                config.devices_per_node,
                DEVICE_MEM_BYTES,
            )
        };
        let router = if model.is_moe() {
            ExpertRouter::uniform(model.n_experts, model.top_k)
        } else {
            ExpertRouter::uniform(1, 1)
        };
        let comm = CommModel::new(config.link, config.nodes, config.devices_per_node);
        // Node-level collectives (EP across nodes) run on the IB links.
        let node_link = LinkSpec {
            intra_node_bytes_per_sec: config.link.inter_node_bytes_per_sec,
            ..config.link
        };
        let node_comm = CommModel::new(node_link, 1, config.nodes);
        Self {
            config,
            model,
            router,
            rng: StdRng::seed_from_u64(seed),
            xpu,
            pim,
            comm,
            node_comm,
            plan,
            total: StageCost::default(),
            stages: 0,
            scratch: StageScratch::default(),
            work: StageWork::default(),
            expert_memo: RefCell::new(FastMap::default()),
            expert_probe: RefCell::new(DeviceExpertsKey {
                tokens: Vec::new(),
                mixed: false,
                frac_bits: 0,
            }),
            batch: BatchState::default(),
            template: None,
            decode_consts_memo: FastMap::default(),
            shape_scratch: StageShape::default(),
            fc_scratch: Vec::new(),
            hist_scratch: Vec::new(),
        }
    }

    /// The system configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// The model being served.
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// The capacity plan (weights placed, KV budget).
    pub fn capacity(&self) -> &CapacityPlan {
        &self.plan
    }

    /// KV-cache budget for the scheduler.
    pub fn kv_capacity_bytes(&self) -> u64 {
        self.plan.kv_capacity_bytes
    }

    /// Accumulated cost over all executed stages.
    pub fn total_cost(&self) -> &StageCost {
        &self.total
    }

    /// Stages executed so far.
    pub fn stages_executed(&self) -> usize {
        self.stages
    }

    /// Reset accumulated totals (e.g. between warm-up and measurement).
    pub fn reset_totals(&mut self) {
        self.total = StageCost::default();
        self.stages = 0;
    }

    /// Replace the gate with a Zipf-skewed router (Sec. VIII-B: hot and
    /// cold experts). `skew = 0` restores the paper's uniform default.
    ///
    /// # Panics
    ///
    /// Panics if the model has no MoE layers or `skew` is negative.
    pub fn set_expert_skew(&mut self, skew: f64) {
        assert!(self.model.is_moe(), "expert skew needs an MoE model");
        self.router = ExpertRouter::zipf(self.model.n_experts, self.model.top_k, skew);
        // Cached decode constants embed the old router's histogram.
        self.template = None;
        self.decode_consts_memo.clear();
    }

    fn pim(&self) -> &Engine {
        self.pim
            .as_ref()
            .expect("policy routed work to a PIM on a PIM-less system")
    }

    /// Tensor-parallel degrees and MoE device pool of this system:
    /// `(tp_fc, tp_attn, moe_devices)`.
    fn parallel_dims(&self) -> (u32, u32, u32) {
        if self.config.hetero {
            (2, 2, 2)
        } else {
            let tp = self.config.devices_per_node;
            (tp, tp, self.config.total_devices())
        }
    }

    /// The engine decode attention runs on under this system's policy.
    fn decode_engine(&self) -> &Engine {
        if self.config.hetero {
            return self.pim();
        }
        match self.config.device {
            DeviceKind::Gpu => &self.xpu,
            _ => self.pim(),
        }
    }

    /// Price one expert invocation on `engine`, with the expert's
    /// matrices sharded to `frac` of their columns/rows.
    fn expert_cost(&self, engine: &Engine, tokens: u64, frac: f64) -> KernelCost {
        if tokens == 0 {
            return KernelCost::zero();
        }
        let work = ExpertWork::for_tokens(&self.model, tokens);
        let bpe = self.model.bytes_per_elem;
        let up_n = ((work.up_shape.n as f64 * frac).ceil() as u64).max(1);
        let down_k = ((work.down_shape.k as f64 * frac).ceil() as u64).max(1);
        let up = GemmShape {
            m: tokens,
            n: up_n,
            k: work.up_shape.k,
        };
        let down = GemmShape {
            m: tokens,
            n: work.down_shape.n,
            k: down_k,
        };
        let mut cost = KernelCost::zero();
        for _ in 0..work.up_count {
            cost += engine.gemm_cost_amortized_uncached(up, up.weight_bytes(bpe));
        }
        cost += engine.gemm_cost_amortized_uncached(down, down.weight_bytes(bpe));
        if work.activation_elems > 0 {
            let elems = (work.activation_elems as f64 * frac).ceil() as u64;
            cost += engine.kernel_cost_uncached(&Kernel::Elementwise { elems });
        }
        cost
    }

    /// Build the linear pricer for this stage's decode-attention groups
    /// on `engine`: decode groups differ only in context length, and
    /// within the family time/energy are linear in ctx, so each group
    /// prices with a few multiplies. Matches [`Self::attn_cost`] to
    /// floating-point associativity.
    fn decode_attn_pricer(&self, engine: &Engine, op: &AttnOp, tp: u32) -> DecodeAttnPricer {
        debug_assert!(op.decode && !op.causal && op.past == 0);
        let groups_dev = op.groups.div_ceil(u64::from(tp));
        let m = op.q_rows * groups_dev;
        let m_f = m as f64;
        DecodeAttnPricer {
            gemm: engine.amortized_gemm_pricer(m),
            softmax_inv_flops: engine.softmax_inv_flops(),
            softmax_j_per_flop: engine.compute_j_per_flop(),
            kv_unit: 2 * op.d_head * op.groups * self.model.bytes_per_elem,
            groups: op.groups,
            groups_dev,
            // Match GemmShape::flops()'s evaluation order exactly:
            // score flops = ((2m) * ctx) * d_head, value = ((2m) * d_head) * ctx.
            score_flops_base: 2.0 * m_f,
            value_flops_per_ctx: 2.0 * m_f * op.d_head as f64,
            softmax_flops_base: 5.0 * m_f,
            d_head_f: op.d_head as f64,
            count_f: op.count as f64,
        }
    }

    /// Price one attention op on `engine`, head groups sharded over
    /// `tp` devices. Returns the per-device cost of all `count` layers.
    fn attn_cost(&self, engine: &Engine, op: &AttnOp, tp: u32) -> KernelCost {
        let groups_dev = (op.groups).div_ceil(u64::from(tp));
        let bpe = self.model.bytes_per_elem;
        let kv_dev = op.kv_dram_bytes(bpe) * groups_dev / op.groups;
        let mut score = op.score_shape();
        score.m = op.q_rows * groups_dev;
        let mut value = op.value_shape();
        value.m = op.q_rows * groups_dev;
        // Per-request attention within one layer is dispatched as one
        // batched kernel; overhead is added per layer in `stage_cost`.
        // Attention shapes carry the context length, which advances
        // every stage and differs per request cohort — they almost
        // never repeat, so price them uncached instead of churning the
        // engines' memo tables.
        let mut cost = engine.kernel_cost_amortized_uncached(&Kernel::Gemm {
            shape: score,
            dram_bytes: kv_dev / 2,
        });
        cost += engine.kernel_cost_uncached(&Kernel::Softmax {
            rows: score.m,
            cols: score.n,
        });
        cost += engine.kernel_cost_amortized_uncached(&Kernel::Gemm {
            shape: value,
            dram_bytes: kv_dev - kv_dev / 2,
        });
        cost.scaled(op.count as f64)
    }

    /// Compute the cost of one stage without executing it through the
    /// scheduler (used by the figure harnesses for one-shot analysis).
    /// This is the grouped fast path; see the module docs for its
    /// invariants.
    pub fn stage_cost(&mut self, shape: &StageShape) -> StageCost {
        self.stage_cost_impl(shape, true)
    }

    /// Reference pricing: expands every attention group into
    /// per-request ops and prices each MoE layer separately, as the
    /// pre-fast-path executor did. Exists so tests can pin the fast
    /// path's equivalence; sweeps should never call this.
    pub fn stage_cost_reference(&mut self, shape: &StageShape) -> StageCost {
        self.stage_cost_impl(shape, false)
    }

    /// Price one stage described incrementally against the carried
    /// [`BatchState`] (see [`crate::incremental`] for the invariants).
    ///
    /// Pure-advance decoding stages — no admissions, no retirements —
    /// are priced in O(1) from the cached [`DecodeTemplate`]; membership
    /// changes rebuild the template from the carried groups; mixed
    /// stages and sampled expert routing fall back to the grouped full
    /// path on a materialized shape.
    ///
    /// # Panics
    ///
    /// Panics if the batch state is out of sync with the delta stream
    /// (a stage was executed without a delta) and `delta.fresh` is not
    /// set. The [`StageExecutor::execute_delta`] implementation instead
    /// resyncs from the materialized shape it is handed.
    pub fn stage_cost_delta(&mut self, delta: &StageDelta) -> StageCost {
        self.stage_cost_delta_inner(delta, None)
    }

    /// The delta-path body. `known_shape`, when provided (the scheduler
    /// already materialized this stage's shape), saves the fallback
    /// from re-materializing one from the carried groups.
    fn stage_cost_delta_inner(
        &mut self,
        delta: &StageDelta,
        known_shape: Option<&StageShape>,
    ) -> StageCost {
        let membership_changed = self.batch.apply(delta);
        let incremental_ok = self.router.mode() == RoutingMode::Expected
            && delta.admit.is_empty()
            && delta.chunk.is_empty()
            && self.batch.reqs() > 0;
        if !incremental_ok {
            // The template was not advanced through this stage; the
            // next decode stage rebuilds it from the carried groups.
            self.template = None;
            if let Some(shape) = known_shape {
                return self.stage_cost_impl(shape, true);
            }
            let mut shape = std::mem::take(&mut self.shape_scratch);
            self.batch.fill_shape(&mut shape, delta);
            let cost = self.stage_cost_impl(&shape, true);
            self.shape_scratch = shape;
            return cost;
        }
        match &mut self.template {
            Some(template) if !membership_changed => template.advance(),
            _ => self.rebuild_decode_template(),
        }
        self.template.as_ref().expect("rebuilt above").price()
    }

    /// Rebuild the decode template from the carried groups: per-node
    /// placement, memoized FC/MoE/comm constants, and the linear
    /// attention coefficients.
    fn rebuild_decode_template(&mut self) {
        let nodes = self.config.nodes as usize;
        let (tp_fc, tp_attn, moe_devices) = self.parallel_dims();
        let mut tpl = self.template.take().unwrap_or_default();
        self.batch
            .node_placement(nodes, &mut tpl.node_count, &mut tpl.node_sumctx);
        tpl.total_count = self.batch.reqs();
        tpl.total_sumctx = self.batch.ctx_sum();
        // Representative (most-loaded) node; for decode stages the node
        // token count is the node's request count. Mirrors
        // `max_by_key`'s last-max tie rule (the value is what matters).
        let mut rep = 0usize;
        for (n, &c) in tpl.node_count.iter().enumerate() {
            if c >= tpl.node_count[rep] {
                rep = n;
            }
        }
        let m_fc = tpl.node_count[rep].max(1);
        let consts = self.decode_stage_consts(m_fc, tpl.total_count, tp_fc, moe_devices);
        tpl.base_time = consts.time;
        tpl.base_energy = consts.energy;
        // Linear decode-attention coefficients: every decode group of a
        // stage shares all parameters but the context, and per-group
        // cost is exactly proportional to it (see crate::incremental).
        let proto = AttnOp {
            decode: true,
            ctx: 1,
            past: 0,
            q_rows: u64::from(self.model.deg_grp),
            groups: u64::from(self.model.kv_heads()),
            d_head: self.model.d_head(),
            causal: false,
            count: u64::from(self.model.n_layers),
            reqs: 1,
            samples: true,
        };
        let engine = self.decode_engine();
        let unit = self.decode_attn_pricer(engine, &proto, tp_attn).cost(1);
        tpl.sec_per_ctx = unit.seconds;
        tpl.attn_dram_j_per_ctx = unit.dram_energy.total_j() * f64::from(tp_attn);
        tpl.attn_comp_j_per_ctx = unit.compute_j * f64::from(tp_attn);
        // Per-node constants: KV-append stream + one launch-overhead
        // set per layer, for nodes that host any request.
        let kv_tok = self.model.kv_bytes_per_token();
        let layers = f64::from(self.model.n_layers);
        tpl.node_const_s.clear();
        for &cnt in &tpl.node_count {
            if cnt == 0 {
                tpl.node_const_s.push(0.0);
                continue;
            }
            let bytes = cnt * kv_tok / u64::from(tp_attn);
            let c = engine.kernel_cost_uncached(&Kernel::Stream { bytes, write: true });
            tpl.base_energy.add_attn(&c.scaled(f64::from(tp_attn)));
            tpl.node_const_s
                .push(c.seconds + 3.0 * engine.spec().launch_overhead_s * layers);
        }
        self.template = Some(tpl);
    }

    /// FC + MoE + communication cost of a decoding-only stage with
    /// `m_fc` tokens on the representative node and `tokens` total —
    /// the exact math of the corresponding `stage_cost_impl` sections,
    /// memoized on `(m_fc, tokens)`.
    fn decode_stage_consts(
        &mut self,
        m_fc: u64,
        tokens: u64,
        tp_fc: u32,
        moe_devices: u32,
    ) -> DecodeConsts {
        if let Some(&hit) = self.decode_consts_memo.get(&(m_fc, tokens)) {
            return hit;
        }
        let lm_rows = m_fc; // decode: one LM-head row per request
        let mut time = TimeBreakdown::default();
        let mut energy = EnergyBuckets::default();

        let mut fc_ops = std::mem::take(&mut self.fc_scratch);
        fill_fc_ops(&self.model, tokens, lm_rows, &mut fc_ops);
        self.price_fc_ops(&fc_ops, m_fc, lm_rows, tp_fc, &mut time, &mut energy);
        self.fc_scratch = fc_ops;

        if self.model.is_moe() {
            // Expected-value routing: one histogram shared by every MoE
            // layer — price one and scale by the block count.
            let mut hist = std::mem::take(&mut self.hist_scratch);
            self.router.route_expected_into(tokens, &mut hist);
            let blocks = self.model.moe_block_count() as f64;
            let (t, e) = self.price_moe_layer(&hist, false, tp_fc, moe_devices);
            time.moe += t * blocks;
            energy.moe_dram += e.moe_dram * blocks;
            energy.moe_comp += e.moe_comp * blocks;
            self.hist_scratch = hist;
        }

        // Decode-only: every request is one decode token.
        self.price_stage_comm(
            m_fc,
            tokens,
            tokens,
            self.model.is_moe(),
            tp_fc,
            &mut time,
            &mut energy,
        );

        let consts = DecodeConsts { time, energy };
        if self.decode_consts_memo.len() >= DECODE_CONSTS_MAX_ENTRIES {
            self.decode_consts_memo.clear();
        }
        self.decode_consts_memo.insert((m_fc, tokens), consts);
        consts
    }

    fn stage_cost_impl(&mut self, shape: &StageShape, grouped: bool) -> StageCost {
        let mut work = std::mem::take(&mut self.work);
        enumerate_stage_into(&self.model, shape, &self.router, &mut self.rng, &mut work);
        let mut scratch = std::mem::take(&mut self.scratch);
        if !grouped {
            // Ungroup: one op per request, multiplicity 1.
            work.attn = work
                .attn
                .iter()
                .flat_map(|op| std::iter::repeat_n(AttnOp { reqs: 1, ..*op }, op.reqs as usize))
                .collect();
        }
        let nodes = self.config.nodes as usize;
        let (tp_fc, tp_attn, moe_devices) = self.parallel_dims();

        // ------ data-parallel node assignment (round-robin) ------
        // Each group's requests spread across nodes exactly as if they
        // had been assigned one by one: a rotating per-class cursor
        // tracks where the next request would land.
        scratch.reset(nodes);
        let mut decode_cursor = 0u64;
        let mut prefill_cursor = 0u64;
        for op in &work.attn {
            let cursor = if op.decode {
                &mut decode_cursor
            } else {
                &mut prefill_cursor
            };
            let base = op.reqs / nodes as u64;
            let rem = op.reqs % nodes as u64;
            let start = *cursor % nodes as u64;
            for (n, (tokens, lm_rows)) in scratch
                .node_tokens
                .iter_mut()
                .zip(&mut scratch.node_lm_rows)
                .enumerate()
            {
                let offset = (n as u64 + nodes as u64 - start) % nodes as u64;
                let cnt = base + u64::from(offset < rem);
                if cnt > 0 {
                    scratch.node_attn[n].push((*op, cnt));
                    *tokens += if op.decode { cnt } else { op.ctx * cnt };
                    // Held prefill chunks sample no token: no LM row.
                    if op.samples {
                        *lm_rows += cnt;
                    }
                }
            }
            *cursor += op.reqs;
        }
        let rep = (0..nodes)
            .max_by_key(|&i| scratch.node_tokens[i])
            .unwrap_or(0);
        let m_fc = scratch.node_tokens[rep].max(1);
        let lm_rows_rep = scratch.node_lm_rows[rep].max(1);

        let mut time = TimeBreakdown::default();
        let mut energy = EnergyBuckets::default();

        // ------ FC layers (always on the xPU) ------
        self.price_fc_ops(
            &work.fc_ops,
            m_fc,
            lm_rows_rep,
            tp_fc,
            &mut time,
            &mut energy,
        );

        // ------ attention ------
        let (prefill_engine, decode_engine): (&Engine, &Engine) = (&self.xpu, self.decode_engine());
        // All decode groups share everything but ctx: hoist the linear
        // pricer once per stage instead of re-deriving shapes per group.
        let decode_pricer = work
            .attn
            .iter()
            .find(|op| op.decode)
            .map(|op| self.decode_attn_pricer(decode_engine, op, tp_attn));
        let mut pre_max = 0.0f64;
        let mut dec_max = 0.0f64;
        for ops in scratch.node_attn.iter().take(nodes) {
            let mut pre = 0.0;
            let mut dec = 0.0;
            let mut decode_tokens = 0u64;
            let mut prefill_tokens = 0u64;
            for (op, mult) in ops {
                let mult_f = *mult as f64;
                if op.decode {
                    let c = decode_pricer
                        .as_ref()
                        .expect("decode op implies decode pricer")
                        .cost(op.ctx);
                    dec += c.seconds * mult_f;
                    energy.add_attn(&c.scaled(f64::from(tp_attn) * mult_f));
                    decode_tokens += mult;
                } else {
                    let c = self.attn_cost(prefill_engine, op, tp_attn);
                    pre += c.seconds * mult_f;
                    energy.add_attn(&c.scaled(f64::from(tp_attn) * mult_f));
                    prefill_tokens += op.ctx * mult;
                }
            }
            // KV append: decode KV written by the decode engine, prefill
            // KV by the prefill engine (later migrated; Sec. V-C).
            let kv_tok = self.model.kv_bytes_per_token();
            if decode_tokens > 0 {
                let bytes = decode_tokens * kv_tok / u64::from(tp_attn);
                let c = decode_engine.kernel_cost_uncached(&Kernel::Stream { bytes, write: true });
                dec += c.seconds;
                energy.add_attn(&c.scaled(f64::from(tp_attn)));
            }
            if prefill_tokens > 0 {
                let bytes = prefill_tokens * kv_tok / u64::from(tp_attn);
                let c = prefill_engine.kernel_cost_uncached(&Kernel::Stream { bytes, write: true });
                pre += c.seconds;
                energy.add_attn(&c.scaled(f64::from(tp_attn)));
            }
            // One batched kernel set (score, softmax, value) per layer
            // and class: charge the launch overhead once per layer.
            let layer_count = self.model.n_layers as f64;
            if decode_tokens > 0 {
                dec += 3.0 * decode_engine.spec().launch_overhead_s * layer_count;
            }
            if prefill_tokens > 0 {
                pre += 3.0 * prefill_engine.spec().launch_overhead_s * layer_count;
            }
            dec_max = dec.max(dec_max);
            pre_max = pre.max(pre_max);
        }
        time.attn_prefill = pre_max;
        time.attn_decode = dec_max;

        // ------ MoE ------
        if !work.moe.is_empty() {
            let mixed = work.mixed;
            // Under expected-value routing every MoE layer of a stage
            // sees the same histogram (`moe_uniform`, with only `moe[0]`
            // materialized): price one layer, scale by the block count.
            // Sampled routing falls back to per-layer, with the equality
            // scan still collapsing histograms that happen to coincide.
            let identical = grouped
                && (work.moe_uniform
                    || work
                        .moe
                        .windows(2)
                        .all(|w| w[0].expert_tokens == w[1].expert_tokens));
            if identical {
                let multiplier = work.moe.len() as f64;
                let (t, e) =
                    self.price_moe_layer(&work.moe[0].expert_tokens, mixed, tp_fc, moe_devices);
                time.moe += t * multiplier;
                energy.moe_dram += e.moe_dram * multiplier;
                energy.moe_comp += e.moe_comp * multiplier;
            } else {
                // The reference path sums per-layer prices; a collapsed
                // uniform stage prices `moe[0]` once per layer, which
                // sums the same addends the materialized form would.
                for i in 0..work.moe.len() {
                    let idx = if work.moe_uniform { 0 } else { i };
                    let (t, e) = self.price_moe_layer(
                        &work.moe[idx].expert_tokens,
                        mixed,
                        tp_fc,
                        moe_devices,
                    );
                    time.moe += t;
                    energy.moe_dram += e.moe_dram;
                    energy.moe_comp += e.moe_comp;
                }
            }
        }

        // ------ communication ------
        self.price_stage_comm(
            m_fc,
            work.tokens,
            shape.decode_ctx.len() as u64,
            !work.moe.is_empty(),
            tp_fc,
            &mut time,
            &mut energy,
        );

        // ------ effective stage latency ------
        let attn_eff = if self.config.coproc {
            time.attn_prefill.max(time.attn_decode)
        } else {
            time.attn_prefill + time.attn_decode
        };
        let seconds = time.fc + attn_eff + time.moe + time.comm;

        self.scratch = scratch;
        self.work = work;
        StageCost {
            seconds,
            time,
            energy,
        }
    }

    /// Aggregate kernel-pricing cache statistics `(hits, misses)`
    /// across this executor's engines. The executor's own stage paths
    /// price kernels uncached (the roofline math is cheaper than a memo
    /// probe), so for simulator runs this reports `(0, 0)`; it stays
    /// for callers that price kernels through the engines directly.
    pub fn price_cache_stats(&self) -> (u64, u64) {
        let (mut h, mut m) = self.xpu.cache_stats();
        if let Some(pim) = &self.pim {
            let (ph, pm) = pim.cache_stats();
            h += ph;
            m += pm;
        }
        (h, m)
    }

    /// Price the batched FC layers (always on the xPU): `m_fc` tokens
    /// on the representative node, `lm_rows` LM-head rows. Shared by
    /// the per-stage path and the decode-consts path so the sharding
    /// math cannot drift between them.
    fn price_fc_ops(
        &self,
        ops: &[FcOp],
        m_fc: u64,
        lm_rows: u64,
        tp_fc: u32,
        time: &mut TimeBreakdown,
        energy: &mut EnergyBuckets,
    ) {
        let bpe = self.model.bytes_per_elem;
        let nodes = self.config.nodes as usize;
        for op in ops {
            let m = if op.name == "lm_head" { lm_rows } else { m_fc };
            let sharded = GemmShape {
                m,
                n: op.shape.n.div_ceil(u64::from(tp_fc)),
                k: op.shape.k,
            };
            let dram = op.weight_bytes(bpe) / u64::from(tp_fc);
            let dev = self
                .xpu
                .gemm_cost_uncached(sharded, dram)
                .scaled(op.count as f64);
            time.fc += dev.seconds;
            // Every device of every node does symmetric work.
            let cluster = dev.scaled(f64::from(tp_fc) * nodes as f64);
            energy.add_fc(&cluster);
        }
    }

    /// Price one MoE layer under the system's expert-parallelism policy.
    fn price_moe_layer(
        &self,
        expert_tokens: &[u64],
        mixed: bool,
        tp_fc: u32,
        moe_devices: u32,
    ) -> (f64, EnergyBuckets) {
        if self.config.expert_tensor_parallel {
            self.moe_layer_et(expert_tokens, mixed, tp_fc)
        } else {
            self.moe_layer_ep(expert_tokens, mixed, moe_devices)
        }
    }

    /// Price a stage's communication: tensor-parallel all-reduces, MoE
    /// dispatch (and the ET partial-sum stream, which lands in the MoE
    /// buckets), and the heterogeneous system's GPU <-> PIM handoffs.
    /// Shared by the per-stage path and the decode-consts path.
    #[allow(clippy::too_many_arguments)]
    fn price_stage_comm(
        &self,
        m_fc: u64,
        tokens: u64,
        decode_tokens: u64,
        moe_active: bool,
        tp_fc: u32,
        time: &mut TimeBreakdown,
        energy: &mut EnergyBuckets,
    ) {
        let bpe = self.model.bytes_per_elem;
        let nodes = self.config.nodes as usize;
        let act_bytes = m_fc * self.model.hidden * bpe;
        let layers = u64::from(self.model.n_layers);
        // Two tensor-parallel all-reduces per decoder layer.
        time.comm += 2.0 * self.comm.all_reduce_intra(act_bytes) * layers as f64;
        if moe_active {
            let moe_blocks = self.model.moe_block_count() as f64;
            let dispatch_total = tokens * u64::from(self.model.top_k) * self.model.hidden * bpe;
            if self.config.expert_tensor_parallel {
                // EP across nodes only; tokens cross the IB links.
                if nodes > 1 {
                    let per_node = dispatch_total / nodes as u64;
                    time.comm += 2.0 * self.node_comm.all_to_all(per_node) * moe_blocks;
                }
                // On-device partial-sum all-reduce: the xPU reads each
                // Logic-PIM stack's partial outputs (Sec. V-A).
                let partial = m_fc * self.model.hidden * bpe;
                let c = self.xpu.kernel_cost_uncached(&Kernel::Stream {
                    bytes: partial,
                    write: false,
                });
                time.moe += c.seconds * moe_blocks;
                energy.add_moe(&c.scaled(moe_blocks * f64::from(tp_fc) * nodes as f64));
            } else {
                let per_device = dispatch_total / u64::from(self.config.total_devices());
                time.comm += 2.0 * self.comm.all_to_all(per_device) * moe_blocks;
            }
        }
        if self.config.hetero {
            // GPU <-> PIM handoffs: QKV/outputs for decode attention each
            // layer, activations to/from the MoE pool each MoE layer.
            if decode_tokens > 0 {
                let bytes = decode_tokens * self.model.hidden * bpe;
                time.comm += 2.0 * self.comm.p2p_intra(bytes) * layers as f64;
            }
            let moe_bytes = m_fc * self.model.hidden * bpe;
            time.comm += 2.0 * self.comm.p2p_intra(moe_bytes) * self.model.moe_block_count() as f64;
        }
    }

    /// Expert-parallel MoE layer: experts distributed round-robin over
    /// `devices`; returns (time, energy).
    fn moe_layer_ep(
        &self,
        expert_tokens: &[u64],
        mixed: bool,
        devices: u32,
    ) -> (f64, EnergyBuckets) {
        let nex = expert_tokens.len() as u32;
        let mut energy = EnergyBuckets::default();
        // When devices outnumber experts each expert is tensor-sharded
        // over device groups (footnote 1 of the paper).
        let (frac, eff_devices) = if devices > nex {
            (f64::from(nex) / f64::from(devices), nex)
        } else {
            (1.0, devices)
        };
        let mut worst = 0.0f64;
        for d in 0..eff_devices {
            let owned: Vec<u64> = expert_tokens
                .iter()
                .copied()
                .enumerate()
                .filter(|(e, _)| (*e as u32) % eff_devices == d)
                .map(|(_, t)| t)
                .collect();
            let (t, e) = self.run_device_experts(&owned, mixed, frac);
            worst = worst.max(t);
            energy += e;
        }
        (worst, energy)
    }

    /// Expert-tensor-parallel MoE layer: every device of a node holds a
    /// `1/tp` shard of each expert owned by its node (EP across nodes).
    fn moe_layer_et(&self, expert_tokens: &[u64], mixed: bool, tp: u32) -> (f64, EnergyBuckets) {
        let nodes = self.config.nodes;
        let frac = 1.0 / f64::from(tp);
        let mut worst = 0.0f64;
        let mut energy = EnergyBuckets::default();
        for node in 0..nodes {
            let owned: Vec<u64> = expert_tokens
                .iter()
                .copied()
                .enumerate()
                .filter(|(e, _)| (*e as u32) % nodes == node)
                .map(|(_, t)| t)
                .collect();
            let (t, e) = self.run_device_experts(&owned, mixed, frac);
            worst = worst.max(t);
            // All tp devices of the node do symmetric shard work.
            let mut e_scaled = e;
            e_scaled.moe_dram *= f64::from(tp);
            e_scaled.moe_comp *= f64::from(tp);
            energy += e_scaled;
        }
        (worst, energy)
    }

    /// Run one device's expert list under the policy, memoized: the
    /// result is a pure function of `(tokens, mixed, frac)` for a given
    /// executor, and steady-state decode repeats the same histogram for
    /// thousands of stages (and across the symmetric devices of a
    /// layer).
    fn run_device_experts(&self, tokens: &[u64], mixed: bool, frac: f64) -> (f64, EnergyBuckets) {
        let mut probe = self.expert_probe.borrow_mut();
        probe.tokens.clear();
        probe.tokens.extend_from_slice(tokens);
        probe.mixed = mixed;
        probe.frac_bits = frac.to_bits();
        if let Some(&hit) = self.expert_memo.borrow().get(&*probe) {
            return hit;
        }
        let key = probe.clone();
        drop(probe);
        let result = self.run_device_experts_uncached(tokens, mixed, frac);
        let mut memo = self.expert_memo.borrow_mut();
        if memo.len() >= EXPERT_MEMO_MAX_ENTRIES {
            memo.clear();
        }
        memo.insert(key, result);
        result
    }

    /// The uncached policy pricing: GPU-only, PIM by stage type (base
    /// Duplex), or co-processing split.
    fn run_device_experts_uncached(
        &self,
        tokens: &[u64],
        mixed: bool,
        frac: f64,
    ) -> (f64, EnergyBuckets) {
        let mut energy = EnergyBuckets::default();
        // Experts in one layer dispatch as one grouped kernel per unit:
        // one launch-overhead set per unit that does any work.
        let launches = f64::from(self.model.ffn_fcs);
        let has_pim = self.pim.is_some() || self.config.hetero;
        if !has_pim {
            let mut t = 0.0;
            let mut any = false;
            for &tk in tokens {
                let c = self.expert_cost(&self.xpu, tk, frac);
                t += c.seconds;
                any |= tk > 0;
                energy.add_moe(&c);
            }
            if any {
                t += launches * self.xpu.spec().launch_overhead_s;
            }
            return (t, energy);
        }
        if self.config.coproc {
            let costs: Vec<(f64, f64)> = tokens
                .iter()
                .map(|&tk| {
                    (
                        self.expert_cost(self.pim(), tk, frac).seconds,
                        self.expert_cost(&self.xpu, tk, frac).seconds,
                    )
                })
                .collect();
            let split = split_experts(&costs);
            for &i in &split.pim_experts {
                energy.add_moe(&self.expert_cost(self.pim(), tokens[i], frac));
            }
            for &i in &split.xpu_experts {
                energy.add_moe(&self.expert_cost(&self.xpu, tokens[i], frac));
            }
            let pim_side = if split.pim_seconds > 0.0 {
                split.pim_seconds + launches * self.pim().spec().launch_overhead_s
            } else {
                0.0
            };
            let xpu_side = if split.xpu_seconds > 0.0 {
                split.xpu_seconds + launches * self.xpu.spec().launch_overhead_s
            } else {
                0.0
            };
            (pim_side.max(xpu_side), energy)
        } else {
            // Base Duplex / Bank-PIM / hetero: the PIM owns MoE in
            // decoding-only stages; the hetero system has no choice and
            // keeps MoE on its PIM pool even in mixed stages.
            let engine = if mixed && !self.config.hetero {
                &self.xpu
            } else {
                self.pim()
            };
            let mut t = 0.0;
            let mut any = false;
            for &tk in tokens {
                let c = self.expert_cost(engine, tk, frac);
                t += c.seconds;
                any |= tk > 0;
                energy.add_moe(&c);
            }
            if any {
                t += launches * engine.spec().launch_overhead_s;
            }
            (t, energy)
        }
    }
}

impl StageExecutor for SystemExecutor {
    fn execute(&mut self, shape: &StageShape) -> StageOutcome {
        // A stage executed without a delta desyncs the carried batch
        // state; a later execute_delta resyncs from its shape.
        self.batch.desync();
        let cost = self.stage_cost(shape);
        self.total += cost;
        self.stages += 1;
        StageOutcome {
            seconds: cost.seconds,
        }
    }

    fn execute_delta(&mut self, delta: &StageDelta, shape: &StageShape) -> StageOutcome {
        let cost = if !self.batch.is_synced() && !delta.fresh {
            // The delta stream was interrupted (a direct `execute`
            // call); the materialized shape is ground truth — resync
            // the batch state from it and price the full path once.
            self.batch.rebuild_from(shape);
            self.template = None;
            self.stage_cost_impl(shape, true)
        } else {
            let cost = self.stage_cost_delta_inner(delta, Some(shape));
            debug_assert_eq!(
                self.batch.reqs() as usize,
                shape.decode_ctx.len(),
                "batch state drifted from the scheduler's shape"
            );
            debug_assert_eq!(
                self.batch.ctx_sum(),
                shape.decode_ctx.iter().sum::<u64>(),
                "batch context sum drifted from the scheduler's shape"
            );
            cost
        };
        self.total += cost;
        self.stages += 1;
        StageOutcome {
            seconds: cost.seconds,
        }
    }

    fn export_batch(&self) -> Option<BatchCheckpoint> {
        let (decode_groups, pending_joins) = self.batch.export();
        Some(BatchCheckpoint {
            decode_groups,
            pending_joins,
            rng: self.rng.state(),
        })
    }

    fn import_batch(&mut self, checkpoint: &BatchCheckpoint) {
        self.batch
            .restore(&checkpoint.decode_groups, &checkpoint.pending_joins);
        // The decode template is a pure function of the groups; drop it
        // and let the next stage rebuild it (bit-identical).
        self.template = None;
        self.rng = StdRng::from_state(checkpoint.rng);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_stage(batch: usize, ctx: u64) -> StageShape {
        StageShape::decode_only(&vec![ctx; batch])
    }

    fn mixed_stage(batch: usize, ctx: u64, lin: u64) -> StageShape {
        StageShape::mixed(&vec![ctx; batch], &[lin])
    }

    #[test]
    fn moe_dominates_gpu_decode_stages() {
        // Fig. 4(a): MoE + attention take most of a decode-only stage.
        let mut ex = SystemExecutor::new(SystemConfig::gpu(4, 1), ModelConfig::mixtral_8x7b(), 1);
        let c = ex.stage_cost(&decode_stage(64, 2048));
        let moe_attn = c.time.moe + c.time.attn_decode;
        assert!(
            moe_attn > 0.6 * c.time.total(),
            "moe+attn {:.2}ms of {:.2}ms",
            moe_attn * 1e3,
            c.time.total() * 1e3
        );
    }

    #[test]
    fn duplex_speeds_up_decode_stages() {
        // Batch 32 keeps each Mixtral expert at ~8 tokens (Op/B ~ 8),
        // squarely in Logic-PIM's memory-bound sweet spot.
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), model, 1);
        let shape = decode_stage(32, 2048);
        let tg = gpu.stage_cost(&shape).seconds;
        let td = dup.stage_cost(&shape).seconds;
        assert!(td < 0.65 * tg, "Duplex {td} vs GPU {tg}");

        // At batch 64 the experts go compute-bound on the PIM, but
        // Duplex must still win.
        let shape = decode_stage(64, 2048);
        let tg = gpu.stage_cost(&shape).seconds;
        let td = dup.stage_cost(&shape).seconds;
        assert!(td < 0.8 * tg, "Duplex {td} vs GPU {tg}");
    }

    #[test]
    fn coproc_never_hurts() {
        let model = ModelConfig::mixtral_8x7b();
        let mut base = SystemExecutor::new(SystemConfig::duplex(4, 1), model.clone(), 1);
        let mut pe = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model, 1);
        for shape in [decode_stage(32, 1024), mixed_stage(31, 1024, 2048)] {
            let tb = base.stage_cost(&shape).seconds;
            let tp = pe.stage_cost(&shape).seconds;
            assert!(tp <= tb * 1.02, "PE {tp} vs base {tb}");
        }
    }

    #[test]
    fn et_improves_expert_split_granularity() {
        // With EP, each Mixtral device owns 2 experts; with ET it sees
        // all 8 shards, so the co-processing split gets finer and the
        // MoE time cannot get worse.
        let model = ModelConfig::mixtral_8x7b();
        let mut pe = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model.clone(), 1);
        let mut et = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 1);
        let shape = decode_stage(64, 1024);
        let t_pe = pe.stage_cost(&shape).time.moe;
        let t_et = et.stage_cost(&shape).time.moe;
        assert!(t_et <= t_pe * 1.05, "ET {t_et} vs PE {t_pe}");
    }

    #[test]
    fn mixed_stage_moe_runs_on_xpu_for_base_duplex() {
        // In a mixed stage the MoE Op/B is high; base Duplex routes it
        // to the xPU, so MoE time should be near the GPU system's.
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), model, 1);
        let shape = mixed_stage(31, 1024, 2048);
        let mg = gpu.stage_cost(&shape).time.moe;
        let md = dup.stage_cost(&shape).time.moe;
        assert!((md - mg).abs() / mg < 0.05, "GPU {mg} vs Duplex {md}");
    }

    #[test]
    fn hetero_mixed_stages_blow_up() {
        // Fig. 5(b): the hetero system is slower than the GPU system on
        // mixed stages (compute-starved PIM devices run the MoE).
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut het = SystemExecutor::new(SystemConfig::hetero(), model, 1);
        let mixed = mixed_stage(31, 1024, 2048);
        let tg = gpu.stage_cost(&mixed).seconds;
        let th = het.stage_cost(&mixed).seconds;
        assert!(th > 2.0 * tg, "hetero {th} vs GPU {tg} on mixed stage");
        // ... but faster on decode-only stages.
        let dec = decode_stage(32, 1024);
        let tg = gpu.stage_cost(&dec).seconds;
        let th = het.stage_cost(&dec).seconds;
        assert!(th < tg, "hetero {th} vs GPU {tg} on decode stage");
    }

    #[test]
    fn bank_pim_wins_mha_loses_moe_vs_duplex() {
        // Fig. 14: Bank-PIM beats Duplex on OPT (MHA, Op/B ~1) decode
        // attention but loses on Mixtral MoE (Op/B > 1).
        let opt = ModelConfig::opt_66b();
        let mut bank = SystemExecutor::new(SystemConfig::bank_pim(4, 1), opt.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), opt, 1);
        let shape = decode_stage(32, 2048);
        let tb = bank.stage_cost(&shape).time.attn_decode;
        let td = dup.stage_cost(&shape).time.attn_decode;
        assert!(tb < td, "Bank-PIM attention {tb} vs Duplex {td} on MHA");

        let mixtral = ModelConfig::mixtral_8x7b();
        let mut bank = SystemExecutor::new(SystemConfig::bank_pim(4, 1), mixtral.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex(4, 1), mixtral, 1);
        let shape = decode_stage(64, 2048);
        let tb = bank.stage_cost(&shape).time.moe;
        let td = dup.stage_cost(&shape).time.moe;
        assert!(td < tb, "Duplex MoE {td} vs Bank-PIM {tb} at batch 64");
    }

    #[test]
    fn duplex_saves_energy() {
        let model = ModelConfig::mixtral_8x7b();
        let mut gpu = SystemExecutor::new(SystemConfig::gpu(4, 1), model.clone(), 1);
        let mut dup = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 1);
        let shape = decode_stage(64, 2048);
        let eg = gpu.stage_cost(&shape).energy.total();
        let ed = dup.stage_cost(&shape).energy.total();
        assert!(ed < eg, "Duplex energy {ed} vs GPU {eg}");
    }

    #[test]
    fn doubled_system_scales_cluster() {
        let four = SystemConfig::gpu(4, 1);
        let eight = four.doubled();
        assert_eq!(eight.total_devices(), 8);
        assert_eq!(eight.nodes, 1);
        let sixteen = eight.doubled();
        assert_eq!(sixteen.nodes, 2);
        assert_eq!(sixteen.name, "2x2xGPU");
    }

    fn assert_costs_close(a: &StageCost, b: &StageCost, what: &str) {
        let rel = |x: f64, y: f64| (x - y).abs() / x.abs().max(y.abs()).max(f64::MIN_POSITIVE);
        assert!(
            rel(a.seconds, b.seconds) < 1e-9,
            "{what}: seconds {} vs {}",
            a.seconds,
            b.seconds
        );
        assert!(rel(a.time.fc, b.time.fc) < 1e-9, "{what}: fc");
        assert!(
            rel(a.time.attn_prefill, b.time.attn_prefill) < 1e-9,
            "{what}: attn_prefill"
        );
        assert!(
            rel(a.time.attn_decode, b.time.attn_decode) < 1e-9,
            "{what}: attn_decode"
        );
        assert!(rel(a.time.moe, b.time.moe) < 1e-9, "{what}: moe");
        assert!(rel(a.time.comm, b.time.comm) < 1e-9, "{what}: comm");
        assert!(
            rel(a.energy.total(), b.energy.total()) < 1e-9,
            "{what}: energy"
        );
    }

    #[test]
    fn grouped_fast_path_matches_reference() {
        let model = ModelConfig::mixtral_8x7b();
        let shapes = [
            decode_stage(64, 2048),
            mixed_stage(31, 1024, 2048),
            StageShape::decode_only(&[100, 200, 100, 300, 200, 100]),
            StageShape::mixed(&[512; 17], &[2048, 512, 2048]),
        ];
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex(4, 1),
            SystemConfig::duplex_pe(4, 1),
            SystemConfig::duplex_pe_et(4, 1),
            SystemConfig::bank_pim(4, 1),
            SystemConfig::hetero(),
        ] {
            for shape in &shapes {
                let mut fast = SystemExecutor::new(system.clone(), model.clone(), 1);
                let mut naive = SystemExecutor::new(system.clone(), model.clone(), 1);
                let a = fast.stage_cost(shape);
                let b = naive.stage_cost_reference(shape);
                assert_costs_close(&a, &b, &format!("{} / {:?}", system.name, shape));
            }
        }
    }

    #[test]
    fn grouped_fast_path_matches_reference_across_nodes() {
        // Two data-parallel nodes: group multiplicities split across
        // nodes must reproduce per-request round-robin placement.
        let model = ModelConfig::grok1();
        let shapes = [
            StageShape::decode_only(&[1024; 33]),
            StageShape::decode_only(&[100, 100, 200, 200, 200, 300, 100]),
            StageShape::mixed(&[512; 9], &[2048, 2048, 1024]),
        ];
        let mut fast = SystemExecutor::new(SystemConfig::duplex_pe_et(8, 2), model.clone(), 3);
        let mut naive = SystemExecutor::new(SystemConfig::duplex_pe_et(8, 2), model, 3);
        for shape in &shapes {
            let a = fast.stage_cost(shape);
            let b = naive.stage_cost_reference(shape);
            assert_costs_close(&a, &b, &format!("grok 2-node / {shape:?}"));
        }
    }

    #[test]
    fn stage_pricing_is_uncached_and_reproducible() {
        let mut ex = SystemExecutor::new(
            SystemConfig::duplex_pe_et(4, 1),
            ModelConfig::mixtral_8x7b(),
            1,
        );
        let shape = decode_stage(64, 2048);
        let a = ex.stage_cost(&shape);
        let b = ex.stage_cost(&shape);
        assert_eq!(
            a.seconds.to_bits(),
            b.seconds.to_bits(),
            "repeated identical stage must price bit-identically"
        );
        assert_eq!(
            ex.price_cache_stats(),
            (0, 0),
            "stage pricing must not touch the engine kernel memo"
        );
    }

    #[test]
    fn executor_accumulates_totals() {
        let mut ex = SystemExecutor::new(SystemConfig::gpu(4, 1), ModelConfig::mixtral_8x7b(), 1);
        let shape = decode_stage(8, 256);
        let c1 = ex.stage_cost(&shape);
        ex.execute(&shape);
        ex.execute(&shape);
        assert_eq!(ex.stages_executed(), 2);
        assert!(ex.total_cost().seconds > 1.5 * c1.seconds);
        ex.reset_totals();
        assert_eq!(ex.stages_executed(), 0);
        assert_eq!(ex.total_cost().seconds, 0.0);
    }

    /// Drive `inc` through a delta trace while pricing each stage's
    /// materialized shape on `oracle` via the reference path, asserting
    /// cost equality stage by stage. Returns the number of stages.
    fn assert_trace_matches_reference(
        system: SystemConfig,
        model: ModelConfig,
        trace: &[(Vec<u64>, Vec<u64>)], // (admits, retires) per stage
    ) {
        let mut inc = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut oracle = SystemExecutor::new(system.clone(), model, 1);
        let mut mirror: Vec<u64> = Vec::new();
        let mut pending: Vec<u64> = Vec::new();
        for (stage, (admits, retires)) in trace.iter().enumerate() {
            let delta = duplex_sched::StageDelta {
                fresh: stage == 0,
                admit: admits.clone(),
                admit_ctx: Vec::new(),
                chunk: Vec::new(),
                retire: retires.clone(),
            };
            for c in &mut mirror {
                *c += 1;
            }
            mirror.extend(pending.drain(..).map(|p| p + 1));
            for r in retires {
                let pos = mirror.iter().position(|c| c == r).expect("retire present");
                mirror.swap_remove(pos);
            }
            pending.extend_from_slice(admits);
            let shape = StageShape::mixed(&mirror, admits);
            let a = inc.stage_cost_delta(&delta);
            let b = oracle.stage_cost_reference(&shape);
            assert_costs_close(&a, &b, &format!("{} stage {stage}", system.name));
        }
    }

    /// A deterministic admit/decode/retire lifecycle exercising fresh
    /// start, prefill flush, pure advances, retirements (template
    /// rebuild) and re-admission.
    fn lifecycle_trace() -> Vec<(Vec<u64>, Vec<u64>)> {
        let mut trace: Vec<(Vec<u64>, Vec<u64>)> = Vec::new();
        trace.push((vec![512; 16], vec![])); // wave 1 prefills
        for _ in 0..6 {
            trace.push((vec![], vec![]));
        }
        // Four requests retire (ctx = 512 + 7 stages of decode), two
        // new ones are admitted in the same stage.
        trace.push((vec![256, 1024], vec![519, 519, 519, 519]));
        for _ in 0..3 {
            trace.push((vec![], vec![]));
        }
        // One of the latecomers retires, then pure decode to the end.
        trace.push((vec![], vec![1024 + 4]));
        for _ in 0..4 {
            trace.push((vec![], vec![]));
        }
        trace
    }

    #[test]
    fn delta_trace_matches_reference_on_every_system() {
        let model = ModelConfig::mixtral_8x7b();
        let trace = lifecycle_trace();
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex(4, 1),
            SystemConfig::duplex_pe(4, 1),
            SystemConfig::duplex_pe_et(4, 1),
            SystemConfig::bank_pim(4, 1),
            SystemConfig::hetero(),
        ] {
            assert_trace_matches_reference(system, model.clone(), &trace);
        }
    }

    #[test]
    fn delta_trace_matches_reference_across_nodes_and_models() {
        assert_trace_matches_reference(
            SystemConfig::duplex_pe_et(8, 2),
            ModelConfig::grok1(),
            &lifecycle_trace(),
        );
        assert_trace_matches_reference(
            SystemConfig::duplex_pe_et(8, 1),
            ModelConfig::glam(),
            &lifecycle_trace(),
        );
        // Dense models exercise the no-MoE constants.
        assert_trace_matches_reference(
            SystemConfig::duplex(4, 1),
            ModelConfig::llama3_70b(),
            &lifecycle_trace(),
        );
    }

    #[test]
    fn prefill_with_past_matches_reference() {
        let model = ModelConfig::mixtral_8x7b();
        let mut with_hold = StageShape::with_past(&[512; 9], &[(256, 768), (256, 768), (64, 0)]);
        with_hold.push_prefill(128, 384, true); // an intermediate chunk
        let shapes = [
            StageShape::with_past(&[100, 200, 100], &[(256, 768)]),
            with_hold,
            StageShape::with_past(&[], &[(128, 0), (128, 512), (128, 512)]),
        ];
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex(4, 1),
            SystemConfig::duplex_pe(4, 1),
            SystemConfig::duplex_pe_et(4, 1),
            SystemConfig::bank_pim(4, 1),
            SystemConfig::hetero(),
        ] {
            for shape in &shapes {
                let mut fast = SystemExecutor::new(system.clone(), model.clone(), 1);
                let mut naive = SystemExecutor::new(system.clone(), model.clone(), 1);
                let a = fast.stage_cost(shape);
                let b = naive.stage_cost_reference(shape);
                assert_costs_close(&a, &b, &format!("{} / {:?}", system.name, shape));
            }
        }
    }

    #[test]
    fn resident_past_is_charged() {
        // The tentpole fix: a reused turn's suffix prefill must pay for
        // its cross-attention over the resident history.
        let model = ModelConfig::mixtral_8x7b();
        let mut ex = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 1);
        let fresh = ex.stage_cost(&StageShape::with_past(&[512; 31], &[(256, 0)]));
        let reused = ex.stage_cost(&StageShape::with_past(&[512; 31], &[(256, 4096)]));
        assert!(
            reused.time.attn_prefill > 1.5 * fresh.time.attn_prefill,
            "past 4096 vs 0: {} vs {}",
            reused.time.attn_prefill,
            fresh.time.attn_prefill
        );
        // Everything except prefill attention is identical: the past
        // adds no FC/MoE tokens and no KV writes.
        assert!((reused.time.fc - fresh.time.fc).abs() < 1e-15);
        assert!((reused.time.moe - fresh.time.moe).abs() < 1e-15);
    }

    #[test]
    fn chunked_delta_trace_matches_reference() {
        // A long prompt prefilled in three chunks while a decode cohort
        // advances, followed by a fresh admission and pure decodes. The
        // delta stream must price every stage exactly as the reference
        // path prices the materialized shapes.
        let model = ModelConfig::mixtral_8x7b();
        let mk_delta = || duplex_sched::StageDelta::start();
        for system in [
            SystemConfig::gpu(4, 1),
            SystemConfig::duplex_pe_et(4, 1),
            SystemConfig::hetero(),
        ] {
            let mut inc = SystemExecutor::new(system.clone(), model.clone(), 1);
            let mut oracle = SystemExecutor::new(system.clone(), model.clone(), 1);

            // Stage 0: fresh cohort of 8 decodes-to-be (prompt 64).
            let mut delta = mk_delta();
            delta.admit = vec![64; 8];
            let mut shape = StageShape::mixed(&[], &[64; 8]);
            let a = inc.stage_cost_delta(&delta);
            let b = oracle.stage_cost_reference(&shape);
            assert_costs_close(&a, &b, &format!("{} stage 0", system.name));

            // Stages 1-2: decode + intermediate chunks of a 640-token
            // prompt (256, 256, then the final 128).
            delta.clear();
            delta.chunk.push((256, 0));
            shape = StageShape::decode_only(&[65; 8]);
            shape.push_prefill(256, 0, true);
            let a = inc.stage_cost_delta(&delta);
            let b = oracle.stage_cost_reference(&shape);
            assert_costs_close(&a, &b, &format!("{} stage 1", system.name));

            delta.clear();
            delta.chunk.push((256, 256));
            shape = StageShape::decode_only(&[66; 8]);
            shape.push_prefill(256, 256, true);
            let a = inc.stage_cost_delta(&delta);
            let b = oracle.stage_cost_reference(&shape);
            assert_costs_close(&a, &b, &format!("{} stage 2", system.name));

            // Stage 3: the final slice joins (admit 128 over past 512).
            delta.clear();
            delta.admit.push(128);
            delta.admit_ctx.push(640);
            shape = StageShape::decode_only(&[67; 8]);
            shape.push_prefill(128, 512, false);
            let a = inc.stage_cost_delta(&delta);
            let b = oracle.stage_cost_reference(&shape);
            assert_costs_close(&a, &b, &format!("{} stage 3", system.name));

            // Stages 4-6: pure decodes; the chunked request decodes at
            // its full 641-token context.
            delta.clear();
            for s in 0..3u64 {
                let mut ctx = vec![68 + s; 8];
                ctx.push(641 + s);
                let shape = StageShape::decode_only(&ctx);
                let a = inc.stage_cost_delta(&delta);
                let b = oracle.stage_cost_reference(&shape);
                assert_costs_close(&a, &b, &format!("{} stage {}", system.name, 4 + s));
            }
        }
    }

    #[test]
    fn sampled_routing_disables_the_incremental_path_correctly() {
        // With a skewed (sampled) router, histograms are per-stage
        // draws: the delta path must fall back to the full path and
        // still track the same RNG stream as a shape-driven executor.
        let model = ModelConfig::mixtral_8x7b();
        let mut inc = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model.clone(), 9);
        let mut oracle = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model, 9);
        inc.set_expert_skew(1.0);
        oracle.set_expert_skew(1.0);
        let mut delta = duplex_sched::StageDelta::start();
        delta.admit = vec![128; 8];
        let shapes = [
            StageShape::mixed(&[], &[128; 8]),
            StageShape::decode_only(&[129; 8]),
            StageShape::decode_only(&[130; 8]),
        ];
        let a0 = inc.stage_cost_delta(&delta);
        let b0 = oracle.stage_cost(&shapes[0]);
        assert_costs_close(&a0, &b0, "sampled stage 0");
        delta.clear();
        for (i, shape) in shapes.iter().enumerate().skip(1) {
            let a = inc.stage_cost_delta(&delta);
            let b = oracle.stage_cost(shape);
            assert_costs_close(&a, &b, &format!("sampled stage {i}"));
        }
    }

    #[test]
    fn execute_delta_resyncs_after_direct_execute() {
        let model = ModelConfig::mixtral_8x7b();
        let system = SystemConfig::duplex_pe_et(4, 1);
        let mut ex = SystemExecutor::new(system.clone(), model.clone(), 1);
        let mut oracle = SystemExecutor::new(system, model, 1);

        // Start a delta trace, then interrupt it with a direct execute.
        let mut delta = duplex_sched::StageDelta::start();
        delta.admit = vec![256; 4];
        ex.execute_delta(&delta, &StageShape::mixed(&[], &[256; 4]));
        ex.execute(&StageShape::decode_only(&[99; 7])); // desyncs

        // Resume the trace mid-stream: execute_delta resyncs from the
        // shape it is handed and keeps pricing correctly.
        delta.clear();
        let shape = StageShape::decode_only(&[300, 400, 500]);
        let out = ex.execute_delta(&delta, &shape);
        let want = oracle.stage_cost_reference(&shape);
        assert!((out.seconds - want.seconds).abs() / want.seconds < 1e-9);

        // Subsequent pure advances price incrementally off the resynced
        // state.
        let next = StageShape::decode_only(&[301, 401, 501]);
        let out = ex.execute_delta(&delta, &next);
        let want = oracle.stage_cost_reference(&next);
        assert!((out.seconds - want.seconds).abs() / want.seconds < 1e-9);
    }

    #[test]
    fn long_advance_runs_stay_consistent() {
        // 500 pure-advance stages: the O(1) path must track the oracle
        // without drift (aggregates are integers, coefficients fixed).
        let model = ModelConfig::mixtral_8x7b();
        let mut inc = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model.clone(), 1);
        let mut oracle = SystemExecutor::new(SystemConfig::duplex_pe_et(4, 1), model, 1);
        let mut delta = duplex_sched::StageDelta::start();
        delta.admit = vec![64; 32];
        inc.stage_cost_delta(&delta);
        delta.clear();
        for s in 0..500u64 {
            let a = inc.stage_cost_delta(&delta);
            if s % 97 == 0 || s == 499 {
                let shape = StageShape::decode_only(&vec![65 + s; 32]);
                let b = oracle.stage_cost_reference(&shape);
                assert_costs_close(&a, &b, &format!("advance stage {s}"));
            }
        }
    }

    #[test]
    fn grok_two_nodes_pay_communication() {
        let model = ModelConfig::grok1();
        let mut ex = SystemExecutor::new(SystemConfig::duplex_pe_et(8, 2), model, 1);
        let c = ex.stage_cost(&decode_stage(64, 1024));
        assert!(c.time.comm > 0.0);
        // Communication should be visible but not dominant on decode.
        assert!(c.time.comm < c.seconds * 0.5);
    }
}
