//! Collective-communication cost model.
//!
//! The paper interconnects up to eight devices per node with 900 GB/s
//! bidirectional NVLink (HGX-style) and nodes with 400 GB/s InfiniBand
//! (Sec. VI). We price collectives with the standard ring-algorithm
//! closed forms plus a fixed per-hop latency:
//!
//! * all-reduce of `B` bytes over `n` peers: `2·(n-1)/n · B / bw`
//! * all-gather / reduce-scatter: `(n-1)/n · B / bw`
//! * all-to-all of `B` bytes held per peer: `(n-1)/n · B / bw`
//!
//! When a collective spans nodes, the inter-node legs run at the IB
//! bandwidth, which dominates; we price the collective at the slowest
//! link it crosses (ring traversal order makes every byte cross the
//! slow link `(n-1)/n` of the time in the worst placement, which is the
//! paper's "relatively low bandwidth between nodes increases
//! communication overhead" effect for Grok1).

/// Link bandwidths and latency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Intra-node (NVLink) bandwidth in bytes/s per device.
    pub intra_node_bytes_per_sec: f64,
    /// Inter-node (InfiniBand) bandwidth in bytes/s per node.
    pub inter_node_bytes_per_sec: f64,
    /// Fixed per-collective latency in seconds (software + switch).
    pub latency_s: f64,
}

impl LinkSpec {
    /// HGX-class defaults: 900 GB/s NVLink, 400 GB/s InfiniBand, 2 us
    /// software latency per collective hop.
    pub fn hgx() -> Self {
        Self {
            intra_node_bytes_per_sec: 900e9,
            inter_node_bytes_per_sec: 400e9,
            latency_s: 2e-6,
        }
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        Self::hgx()
    }
}

/// Prices collectives over a `nodes x devices_per_node` cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommModel {
    link: LinkSpec,
    nodes: u32,
    devices_per_node: u32,
}

impl CommModel {
    /// Build a model for the given cluster shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(link: LinkSpec, nodes: u32, devices_per_node: u32) -> Self {
        assert!(
            nodes > 0 && devices_per_node > 0,
            "cluster must be non-empty"
        );
        Self {
            link,
            nodes,
            devices_per_node,
        }
    }

    /// Devices participating in an intra-node collective.
    pub fn devices_per_node(&self) -> u32 {
        self.devices_per_node
    }

    /// Nodes in the cluster.
    pub fn nodes(&self) -> u32 {
        self.nodes
    }

    fn ring_factor(n: u32) -> f64 {
        (n - 1) as f64 / n as f64
    }

    /// Time for an all-reduce of `bytes` (the full tensor size) across
    /// the devices of one node.
    pub fn all_reduce_intra(&self, bytes: u64) -> f64 {
        let n = self.devices_per_node;
        if n <= 1 || bytes == 0 {
            return 0.0;
        }
        2.0 * Self::ring_factor(n) * bytes as f64 / self.link.intra_node_bytes_per_sec
            + self.link.latency_s * n as f64
    }

    /// Time for an all-to-all where each device holds `bytes_per_device`
    /// to scatter, across the whole cluster (expert-parallel dispatch or
    /// combine). Inter-node legs run at IB speed.
    pub fn all_to_all(&self, bytes_per_device: u64) -> f64 {
        let total_devices = self.nodes * self.devices_per_node;
        if total_devices <= 1 || bytes_per_device == 0 {
            return 0.0;
        }
        let intra = Self::ring_factor(self.devices_per_node) * bytes_per_device as f64
            / self.link.intra_node_bytes_per_sec;
        let inter = if self.nodes > 1 {
            // The share of each device's data leaving the node.
            let leaving = bytes_per_device as f64 * Self::ring_factor(self.nodes);
            // All devices of a node share the node's IB links.
            leaving * self.devices_per_node as f64 / self.link.inter_node_bytes_per_sec
        } else {
            0.0
        };
        intra.max(inter) + self.link.latency_s * total_devices as f64
    }

    /// Point-to-point transfer of `bytes` between two devices in the
    /// same node (KV migration in split systems, GPU-to-PIM handoff in
    /// hetero systems).
    pub fn p2p_intra(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.link.intra_node_bytes_per_sec + self.link.latency_s
    }

    /// Point-to-point transfer of `bytes` between two nodes.
    pub fn p2p_inter(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.link.inter_node_bytes_per_sec + self.link.latency_s
    }

    /// The inter-node link as a scheduler-side
    /// [`KvLinkSpec`](duplex_sched::KvLinkSpec), for
    /// pricing cross-replica KV migrations in cluster fault drills
    /// with the same bandwidth/latency as [`p2p_inter`](Self::p2p_inter).
    pub fn kv_link(&self) -> duplex_sched::KvLinkSpec {
        duplex_sched::KvLinkSpec::new(self.link.inter_node_bytes_per_sec, self.link.latency_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(nodes: u32, per_node: u32) -> CommModel {
        CommModel::new(LinkSpec::hgx(), nodes, per_node)
    }

    #[test]
    fn single_device_collectives_are_free() {
        let m = model(1, 1);
        assert_eq!(m.all_reduce_intra(1 << 20), 0.0);
        assert_eq!(m.all_to_all(1 << 20), 0.0);
    }

    #[test]
    fn all_reduce_ring_scaling() {
        let m4 = model(1, 4);
        let m8 = model(1, 8);
        let bytes = 64 << 20;
        let t4 = m4.all_reduce_intra(bytes);
        let t8 = m8.all_reduce_intra(bytes);
        // Ring factor grows from 3/4 to 7/8: a little slower at 8.
        assert!(t8 > t4);
        assert!(t8 < 1.3 * t4);
    }

    #[test]
    fn all_reduce_closed_form() {
        let m = model(1, 4);
        let bytes = 900_000_000u64; // 1 second of link at 900 GB/s
        let expect = 2.0 * 0.75 * 1e-3 + 4.0 * 2e-6;
        assert!((m.all_reduce_intra(bytes) - expect).abs() < 1e-9);
    }

    #[test]
    fn inter_node_all_to_all_is_slower() {
        let one = model(1, 8);
        let two = model(2, 8);
        let bytes = 32 << 20;
        assert!(two.all_to_all(bytes) > 2.0 * one.all_to_all(bytes));
    }

    #[test]
    fn p2p_speeds() {
        let m = model(2, 4);
        let bytes = 900_000_000u64; // 1 ms of NVLink at 900 GB/s
        assert!((m.p2p_intra(bytes) - (1e-3 + 2e-6)).abs() < 1e-9);
        assert!(m.p2p_inter(bytes) > 2.0 * m.p2p_intra(bytes));
    }

    #[test]
    fn zero_bytes_cost_nothing() {
        let m = model(2, 8);
        assert_eq!(m.all_to_all(0), 0.0);
        assert_eq!(m.p2p_intra(0), 0.0);
        assert_eq!(m.p2p_inter(0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_cluster_rejected() {
        CommModel::new(LinkSpec::hgx(), 0, 4);
    }
}
