//! System-level models for the Duplex simulator: devices, clusters,
//! parallelism, collective communication, co-processing and stage
//! execution.
//!
//! This crate is the "cluster" half of the paper's simulator (Sec. VI).
//! It receives device specifications and system configuration, places
//! model weights and KV cache ([`parallel`]), prices collectives
//! ([`comm`]), schedules experts across xPU and Logic-PIM
//! ([`coproc`]), and executes stages ([`exec`]) for every system the
//! evaluation compares:
//!
//! * `GPU` / `2xGPU` — homogeneous H100-class devices;
//! * `Duplex`, `Duplex+PE`, `Duplex+PE+ET` — the paper's device with
//!   progressively enabled expert/attention co-processing and
//!   expert-tensor-parallelism (Fig. 10, Fig. 11);
//! * `Bank-PIM` — a device whose low-Op/B unit is an in-bank PIM
//!   (Fig. 14);
//! * the heterogeneous 2-GPU + 2-Logic-PIM system of Fig. 5;
//! * the Splitwise-style split prefill/decode system of Fig. 16
//!   ([`split`]).
//!
//! # Example
//!
//! ```
//! use duplex_model::ModelConfig;
//! use duplex_sched::{Simulation, SimulationConfig, Workload};
//! use duplex_system::{SystemConfig, SystemExecutor};
//!
//! let model = ModelConfig::mixtral_8x7b();
//! let gpu = SystemConfig::gpu(4, 1);
//! let duplex = SystemConfig::duplex_pe_et(4, 1);
//! let mut on_gpu = SystemExecutor::new(gpu, model.clone(), 1);
//! let mut on_duplex = SystemExecutor::new(duplex, model.clone(), 1);
//!
//! let run = |ex: &mut SystemExecutor| {
//!     let cfg = SimulationConfig {
//!         max_batch: 8,
//!         kv_capacity_bytes: ex.kv_capacity_bytes(),
//!         kv_bytes_per_token: ex.model().kv_bytes_per_token(),
//!         ..Default::default()
//!     };
//!     Simulation::closed_loop(cfg, Workload::fixed(256, 32), 8).run(ex)
//! };
//! let gpu_report = run(&mut on_gpu);
//! let duplex_report = run(&mut on_duplex);
//! assert!(
//!     duplex_report.throughput_tokens_per_s() > gpu_report.throughput_tokens_per_s(),
//!     "Duplex must beat the GPU baseline on MoE decode"
//! );
//! ```

pub mod comm;
pub mod coproc;
pub mod exec;
pub mod incremental;
pub mod parallel;
pub mod split;

pub use comm::{CommModel, LinkSpec};
pub use coproc::ExpertSplit;
pub use exec::{DeviceKind, EnergyBuckets, StageCost, SystemConfig, SystemExecutor, TimeBreakdown};
pub use incremental::BatchState;
pub use parallel::CapacityPlan;
pub use split::SplitSimulation;
