//! Splitwise-style split prefill/decode serving (Sec. VIII-A, Fig. 16).
//!
//! The cluster is partitioned into a *prefill pool* and a *decode
//! pool*, each holding a full copy of the model. New requests prefill
//! on the prefill pool (producing their first token), their KV cache
//! migrates over NVLink, and they then join the decode pool's
//! continuous batch. Decode stages never contain prefills, so TBT tail
//! latency is clean — but the pools underutilize, the duplicated
//! weights shrink KV capacity, and each pool has half the tensor
//! parallelism, all of which costs throughput. That trade is what
//! Fig. 16 shows.

use std::collections::VecDeque;

use duplex_model::ops::StageShape;
use duplex_model::ModelConfig;
use duplex_sched::workload::RequestSource;
use duplex_sched::{
    Arrivals, LatencyDigest, Request, RequestRecord, SimReport, StageRecord, StageStats, Workload,
};

use crate::comm::{CommModel, LinkSpec};
use crate::exec::{SystemConfig, SystemExecutor, DEVICE_MEM_BYTES};
use crate::parallel::CapacityPlan;

/// A split serving system built from two pools of Duplex (or GPU)
/// devices.
#[derive(Debug)]
pub struct SplitSimulation {
    prefill_pool: SystemExecutor,
    decode_pool: SystemExecutor,
    plan: CapacityPlan,
    comm: CommModel,
    model: ModelConfig,
    workload: Workload,
    total_requests: usize,
    max_batch: usize,
}

impl SplitSimulation {
    /// Split system with `pool_devices` devices in each pool, using the
    /// given per-pool system template (its `devices_per_node` is
    /// overridden by `pool_devices`; the pools are single nodes).
    ///
    /// # Panics
    ///
    /// Panics if the full model does not fit in one pool.
    pub fn new(
        template: &SystemConfig,
        model: ModelConfig,
        pool_devices: u32,
        workload: Workload,
        total_requests: usize,
        max_batch: usize,
    ) -> Self {
        let mut pool_cfg = template.clone();
        pool_cfg.devices_per_node = pool_devices;
        pool_cfg.nodes = 1;
        pool_cfg.name = format!("{}-Split", template.name);
        let plan = CapacityPlan::split(&model, pool_devices, pool_devices, DEVICE_MEM_BYTES);
        let prefill_pool = SystemExecutor::new(pool_cfg.clone(), model.clone(), 11);
        let decode_pool = SystemExecutor::new(pool_cfg, model.clone(), 13);
        Self {
            prefill_pool,
            decode_pool,
            plan,
            comm: CommModel::new(LinkSpec::hgx(), 1, 2 * pool_devices),
            model,
            workload,
            total_requests,
            max_batch,
        }
    }

    /// KV capacity of the decode pool (weights duplicated, so smaller
    /// than the non-split system's).
    pub fn kv_capacity_bytes(&self) -> u64 {
        self.plan.kv_capacity_bytes
    }

    /// The decode-pool executor (for inspecting accumulated costs).
    pub fn decode_pool(&self) -> &SystemExecutor {
        &self.decode_pool
    }

    /// Run the split system closed-loop and report.
    pub fn run(mut self) -> SimReport {
        struct InFlight {
            request: Request,
            /// When the request's KV lands in the decode pool.
            ready_at: f64,
            /// First token time (produced by the prefill pool).
            first_token: f64,
        }
        struct Decoding {
            request: Request,
            generated: u64,
            first_token_s: f64,
            last_token_s: f64,
        }

        impl Decoding {
            fn record(&self) -> RequestRecord {
                RequestRecord {
                    request: self.request,
                    first_token_s: self.first_token_s,
                    last_token_s: self.last_token_s,
                    tokens: self.generated,
                }
            }
        }

        let mut source = RequestSource::new(self.workload.clone(), Arrivals::ClosedLoop);
        let mut backlog: VecDeque<Request> = (0..self.total_requests)
            .map(|_| source.next_request())
            .collect();

        let mut prefill_clock = 0.0f64;
        let mut migrated: Vec<InFlight> = Vec::new();
        // Prefill pool: FIFO, one prompt per prefill stage.
        while let Some(request) = backlog.pop_front() {
            let shape = StageShape::mixed(&[], &[request.input_len]);
            let cost = self.prefill_pool.stage_cost(&shape);
            prefill_clock = prefill_clock.max(request.arrival_s) + cost.seconds;
            let kv_bytes = self.model.kv_bytes(request.input_len);
            let ready_at = prefill_clock + self.comm.p2p_intra(kv_bytes);
            migrated.push(InFlight {
                request,
                ready_at,
                first_token: prefill_clock,
            });
        }
        migrated.sort_by(|a, b| a.ready_at.partial_cmp(&b.ready_at).expect("finite times"));
        let mut incoming: VecDeque<InFlight> = migrated.into();

        // Decode pool: continuous batching over decode-only stages.
        let mut clock = 0.0f64;
        let mut active: Vec<Decoding> = Vec::new();
        let mut completed: Vec<RequestRecord> = Vec::new();
        let mut stages: Vec<StageRecord> = Vec::new();
        let mut stage_stats = StageStats::default();
        let mut tbt_digest = LatencyDigest::default();
        let kv_per_token = self.model.kv_bytes_per_token();

        while completed.len() < self.total_requests {
            // Admit migrated requests whose KV has landed.
            let mut reserved: u64 = active
                .iter()
                .map(|a| a.request.max_kv_tokens() * kv_per_token)
                .sum();
            while active.len() < self.max_batch {
                let Some(front) = incoming.front() else { break };
                if front.ready_at > clock && !active.is_empty() {
                    break;
                }
                let need = front.request.max_kv_tokens() * kv_per_token;
                if reserved.saturating_add(need) > self.plan.kv_capacity_bytes {
                    break;
                }
                reserved += need;
                let inflight = incoming.pop_front().expect("front exists");
                clock = clock.max(inflight.ready_at);
                active.push(Decoding {
                    request: inflight.request,
                    generated: 1,
                    first_token_s: inflight.first_token,
                    last_token_s: inflight.first_token,
                });
            }

            // Retire single-token requests immediately.
            let mut i = 0;
            while i < active.len() {
                if active[i].generated >= active[i].request.output_len {
                    let d = active.swap_remove(i);
                    completed.push(d.record());
                } else {
                    i += 1;
                }
            }
            if active.is_empty() {
                if completed.len() >= self.total_requests || incoming.is_empty() {
                    break;
                }
                continue;
            }

            let ctxs: Vec<u64> = active
                .iter()
                .map(|a| a.request.input_len + a.generated)
                .collect();
            let shape = StageShape::decode_only(&ctxs);
            let cost = self.decode_pool.stage_cost(&shape);
            clock += cost.seconds;
            let record = StageRecord {
                seconds: cost.seconds,
                mixed: false,
                batch: shape.batch_size(),
                tokens: shape.tokens(),
            };
            stage_stats.record(&record);
            stages.push(record);
            for a in &mut active {
                a.generated += 1;
                // Unlike the monolithic scheduler, the first decode gap
                // of a migrated request spans its KV transfer and queue
                // wait, so gaps differ per request: record individually.
                tbt_digest.record(clock - a.last_token_s);
                a.last_token_s = clock;
            }
            let mut i = 0;
            while i < active.len() {
                if active[i].generated >= active[i].request.output_len {
                    let d = active.swap_remove(i);
                    completed.push(d.record());
                } else {
                    i += 1;
                }
            }
        }

        // Wall-clock spans whichever pool finished last.
        let total_time_s = clock.max(prefill_clock);
        SimReport {
            completed,
            stages,
            stage_stats,
            tbt_digest,
            total_time_s,
            ..SimReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use duplex_sched::{Simulation, SimulationConfig};

    #[test]
    fn split_completes_all_requests() {
        let model = ModelConfig::mixtral_8x7b();
        let sim = SplitSimulation::new(
            &SystemConfig::duplex_pe(2, 1),
            model,
            2,
            Workload::fixed(256, 8),
            6,
            4,
        );
        let report = sim.run();
        assert_eq!(report.completed.len(), 6);
        for r in &report.completed {
            assert_eq!(r.tokens, r.request.output_len);
        }
        assert!(
            report.stages.iter().all(|s| !s.mixed),
            "decode pool never sees prefills"
        );
        assert_eq!(report.stage_stats.mixed, 0);
    }

    #[test]
    fn split_kv_capacity_is_smaller() {
        let model = ModelConfig::mixtral_8x7b();
        let split = CapacityPlan::split(&model, 2, 2, DEVICE_MEM_BYTES);
        let homo = CapacityPlan::homogeneous(&model, 1, 4, DEVICE_MEM_BYTES);
        assert!(split.kv_capacity_bytes < homo.kv_capacity_bytes);
    }

    #[test]
    fn split_loses_throughput_to_non_split() {
        // Fig. 16: the non-split Duplex system out-serves Duplex-Split
        // at the same total device count.
        let model = ModelConfig::mixtral_8x7b();
        let requests = 12;
        let split = SplitSimulation::new(
            &SystemConfig::duplex_pe(2, 1),
            model.clone(),
            2,
            Workload::fixed(512, 16),
            requests,
            16,
        );
        let split_report = split.run();

        let mut non_split = SystemExecutor::new(SystemConfig::duplex_pe(4, 1), model.clone(), 1);
        let cfg = SimulationConfig {
            max_batch: 16,
            kv_capacity_bytes: non_split.kv_capacity_bytes(),
            kv_bytes_per_token: model.kv_bytes_per_token(),
            ..Default::default()
        };
        let report =
            Simulation::closed_loop(cfg, Workload::fixed(512, 16), requests).run(&mut non_split);

        assert!(
            report.throughput_tokens_per_s() > split_report.throughput_tokens_per_s(),
            "non-split {} vs split {}",
            report.throughput_tokens_per_s(),
            split_report.throughput_tokens_per_s()
        );
    }

    #[test]
    fn split_tbt_is_clean() {
        // No mixed stages on the decode pool: p99 TBT ~ p50 TBT.
        let model = ModelConfig::mixtral_8x7b();
        let sim = SplitSimulation::new(
            &SystemConfig::duplex_pe(2, 1),
            model,
            2,
            Workload::fixed(256, 32),
            8,
            8,
        );
        let report = sim.run();
        let tbt = report.tbt();
        assert!(
            tbt.p99 < 2.0 * tbt.p50,
            "p99 {} vs p50 {}",
            tbt.p99,
            tbt.p50
        );
    }
}
