//! Expert and attention co-processing (Sec. V-B).
//!
//! Expert FFNs have no data dependencies between them, and the gate
//! gives every expert a different token count. Duplex exploits both:
//! the experts with the fewest tokens (lowest Op/B) go to Logic-PIM,
//! the rest to the xPU, and the two process concurrently. The paper
//! uses a latency lookup table indexed by token count; we evaluate the
//! same family of splits — PIM takes a prefix of the token-count-sorted
//! expert list — exactly, which is optimal within that family because
//! PIM time grows and xPU time shrinks monotonically in the prefix
//! length.

/// Outcome of splitting one device's experts between its two units.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpertSplit {
    /// Indices (into the input list) assigned to Logic-PIM.
    pub pim_experts: Vec<usize>,
    /// Indices assigned to the xPU.
    pub xpu_experts: Vec<usize>,
    /// Time Logic-PIM spends on its share, seconds.
    pub pim_seconds: f64,
    /// Time the xPU spends on its share, seconds.
    pub xpu_seconds: f64,
}

impl ExpertSplit {
    /// The concurrent makespan: max of the two sides.
    pub fn makespan(&self) -> f64 {
        self.pim_seconds.max(self.xpu_seconds)
    }
}

/// Choose the best split of `experts` (given as per-expert execution
/// times on each unit) between Logic-PIM and the xPU.
///
/// `costs[i] = (pim_seconds_i, xpu_seconds_i)` must be the runtime of
/// expert `i` on each unit, typically produced from the engines' cost
/// model — the runtime analogue of the paper's lookup table. Experts
/// with fewer tokens should have smaller times on both units; the
/// algorithm sorts by PIM time ascending and evaluates every prefix
/// split, returning the makespan-minimizing one.
///
/// Zero-token experts (zero cost on both units) land on the PIM side
/// harmlessly.
pub fn split_experts(costs: &[(f64, f64)]) -> ExpertSplit {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by(|&a, &b| {
        costs[a]
            .0
            .partial_cmp(&costs[b].0)
            .expect("expert costs are finite")
    });

    // Suffix sums of xPU times in sorted order.
    let mut xpu_suffix = vec![0.0f64; order.len() + 1];
    for i in (0..order.len()).rev() {
        xpu_suffix[i] = xpu_suffix[i + 1] + costs[order[i]].1;
    }

    let mut best_k = 0usize;
    let mut best_makespan = f64::INFINITY;
    let mut pim_prefix = 0.0f64;
    // k = number of experts (smallest first) on the PIM.
    for k in 0..=order.len() {
        let makespan = pim_prefix.max(xpu_suffix[k]);
        if makespan < best_makespan {
            best_makespan = makespan;
            best_k = k;
        }
        if k < order.len() {
            pim_prefix += costs[order[k]].0;
        }
    }

    let pim_experts: Vec<usize> = order[..best_k].to_vec();
    let xpu_experts: Vec<usize> = order[best_k..].to_vec();
    let pim_seconds: f64 = pim_experts.iter().map(|&i| costs[i].0).sum();
    let xpu_seconds: f64 = xpu_experts.iter().map(|&i| costs[i].1).sum();
    ExpertSplit {
        pim_experts,
        xpu_experts,
        pim_seconds,
        xpu_seconds,
    }
}

/// Brute-force optimal split over *all* 2^n partitions; test oracle for
/// small expert counts.
#[cfg(test)]
pub fn split_experts_exhaustive(costs: &[(f64, f64)]) -> f64 {
    let n = costs.len();
    assert!(n <= 20, "exhaustive split is exponential");
    let mut best = f64::INFINITY;
    for mask in 0u32..(1 << n) {
        let mut pim = 0.0;
        let mut xpu = 0.0;
        for (i, c) in costs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                pim += c.0;
            } else {
                xpu += c.1;
            }
        }
        best = best.min(pim.max(xpu));
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_on_xpu_when_pim_is_useless() {
        // PIM so slow that everything should go to the xPU.
        let costs = vec![(100.0, 1.0), (100.0, 1.0)];
        let s = split_experts(&costs);
        assert!(s.pim_experts.is_empty());
        assert!((s.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn all_on_pim_when_pim_dominates() {
        let costs = vec![(1.0, 50.0), (1.0, 50.0)];
        let s = split_experts(&costs);
        assert!(s.xpu_experts.is_empty());
        assert!((s.makespan() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn balanced_split_beats_either_extreme() {
        // Four equal experts, PIM twice as fast.
        let costs = vec![(1.0, 2.0); 4];
        let s = split_experts(&costs);
        let all_pim = 4.0f64;
        let all_xpu = 8.0f64;
        assert!(s.makespan() < all_pim.min(all_xpu));
        assert!((s.makespan() - 3.0).abs() < 1e-9, "got {}", s.makespan());
    }

    #[test]
    fn prefers_small_experts_on_pim() {
        // One hot expert (many tokens), three cold ones: the hot expert
        // belongs on the xPU (Sec. V-B).
        let costs = vec![(8.0, 1.0), (1.0, 0.9), (1.0, 0.9), (1.0, 0.9)];
        let s = split_experts(&costs);
        assert!(s.xpu_experts.contains(&0), "hot expert on xPU: {s:?}");
    }

    #[test]
    fn empty_and_singleton() {
        let s = split_experts(&[]);
        assert_eq!(s.makespan(), 0.0);
        let s = split_experts(&[(2.0, 3.0)]);
        assert!(
            (s.makespan() - 2.0).abs() < 1e-12,
            "single expert goes to faster unit"
        );
    }

    #[test]
    fn zero_cost_experts_are_harmless() {
        let costs = vec![(0.0, 0.0), (1.0, 2.0), (0.0, 0.0)];
        let s = split_experts(&costs);
        assert!((s.makespan() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn matches_exhaustive_oracle_when_costs_are_proportional() {
        // When per-expert PIM/xPU times are proportional (same shape,
        // different token counts), the sorted-prefix family contains an
        // optimal split; verify against brute force.
        let token_counts = [3.0, 1.0, 7.0, 2.0, 5.0, 1.0, 9.0, 4.0];
        let costs: Vec<(f64, f64)> = token_counts.iter().map(|&t| (t, 0.4 * t + 2.0)).collect();
        let fast = split_experts(&costs).makespan();
        let oracle = split_experts_exhaustive(&costs);
        assert!(
            fast <= oracle * 1.10 + 1e-12,
            "prefix split {fast} should be within 10% of oracle {oracle}"
        );
    }

    #[test]
    fn makespan_never_worse_than_single_unit() {
        let costs = vec![(2.0, 1.5), (0.5, 3.0), (1.0, 1.0), (4.0, 2.5)];
        let s = split_experts(&costs);
        let all_pim: f64 = costs.iter().map(|c| c.0).sum();
        let all_xpu: f64 = costs.iter().map(|c| c.1).sum();
        assert!(s.makespan() <= all_pim + 1e-12);
        assert!(s.makespan() <= all_xpu + 1e-12);
    }
}
