//! Area model (Sec. VII-E) and the energy-delay-area product of Fig. 8.
//!
//! The paper synthesizes Logic-PIM's processing units at 7 nm and
//! reports, per Logic-PIM stack:
//!
//! * 32 GEMM modules (512 FP16 MACs + 8 KB buffer each): **3.02 mm²**
//! * two 1 MB input/temporal buffers: **2.26 mm²**
//! * softmax unit (comparator tree, adders, exp units, dividers,
//!   128 KB buffers): **1.64 mm²**
//! * added TSVs (4x per channel at 22 um pitch): **10.89 mm²**
//!
//! for a total of **17.80 mm²**, 14.71% of a 121 mm² HBM3 logic die.
//! Bank-PIM and BankGroup-PIM implement their processing units in the
//! DRAM process, which the paper notes costs ~10x the area of the same
//! logic at equal feature size; commercial in-DRAM PIMs spend 20–27% of
//! the die. We size both baselines so their *relative* EDAP matches
//! Fig. 8: BankGroup-PIM carries Logic-PIM's full datapath on DRAM
//! dies; Bank-PIM's 1-Op/B units are smaller but replicated per bank.

use crate::spec::EngineKind;

/// Synthesized area numbers, all in mm² per HBM stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaModel {
    /// 32 GEMM modules on the logic die.
    pub logic_pim_gemm_mm2: f64,
    /// Input/temporal SRAM buffers on the logic die.
    pub logic_pim_buffers_mm2: f64,
    /// Softmax + activation unit on the logic die.
    pub logic_pim_softmax_mm2: f64,
    /// Added TSV area.
    pub logic_pim_tsv_mm2: f64,
    /// Reference HBM3 logic-die area.
    pub hbm3_logic_die_mm2: f64,
    /// BankGroup-PIM processing-unit area (DRAM process, per stack).
    pub bank_group_pim_mm2: f64,
    /// Bank-PIM processing-unit area (DRAM process, per stack).
    pub bank_pim_mm2: f64,
}

impl AreaModel {
    /// The paper's synthesized values.
    pub fn micro24() -> Self {
        Self {
            logic_pim_gemm_mm2: 3.02,
            logic_pim_buffers_mm2: 2.26,
            logic_pim_softmax_mm2: 1.64,
            logic_pim_tsv_mm2: 10.89,
            hbm3_logic_die_mm2: 121.0,
            bank_group_pim_mm2: 26.0,
            bank_pim_mm2: 20.0,
        }
    }

    /// Total Logic-PIM overhead per stack (17.80 mm² in the paper).
    pub fn logic_pim_total_mm2(&self) -> f64 {
        self.logic_pim_gemm_mm2
            + self.logic_pim_buffers_mm2
            + self.logic_pim_softmax_mm2
            + self.logic_pim_tsv_mm2
    }

    /// Logic-PIM overhead as a fraction of the HBM3 logic die
    /// (14.71% in the paper).
    pub fn logic_pim_overhead_fraction(&self) -> f64 {
        self.logic_pim_total_mm2() / self.hbm3_logic_die_mm2
    }

    /// Processing-area overhead per stack for a PIM engine kind.
    ///
    /// # Panics
    ///
    /// Panics for [`EngineKind::Xpu`], which is not a PIM overhead.
    pub fn pim_area_mm2(&self, kind: EngineKind) -> f64 {
        match kind {
            EngineKind::LogicPim => self.logic_pim_total_mm2(),
            EngineKind::BankGroupPim => self.bank_group_pim_mm2,
            EngineKind::BankPim => self.bank_pim_mm2,
            EngineKind::Xpu => panic!("xPU is not a PIM area overhead"),
        }
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        Self::micro24()
    }
}

/// Energy-delay-area product, the metric of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edap {
    /// Energy in joules.
    pub energy_j: f64,
    /// Delay in seconds.
    pub delay_s: f64,
    /// Area in mm².
    pub area_mm2: f64,
}

impl Edap {
    /// The product E·D·A (J·s·mm²).
    pub fn value(&self) -> f64 {
        self.energy_j * self.delay_s * self.area_mm2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper() {
        let a = AreaModel::micro24();
        assert!((a.logic_pim_total_mm2() - 17.81).abs() < 0.02);
        let frac = a.logic_pim_overhead_fraction();
        assert!((frac - 0.1471).abs() < 0.002, "got {frac}");
    }

    #[test]
    fn dram_process_units_cost_more_area_than_logic_units() {
        let a = AreaModel::micro24();
        // Compare compute-only area (exclude TSVs, which BankGroup-PIM
        // does not need): 6.92 mm² of logic vs 30 mm² of DRAM die.
        let logic_compute =
            a.logic_pim_gemm_mm2 + a.logic_pim_buffers_mm2 + a.logic_pim_softmax_mm2;
        assert!(a.bank_group_pim_mm2 > 3.0 * logic_compute);
    }

    #[test]
    fn edap_multiplies() {
        let e = Edap {
            energy_j: 2.0,
            delay_s: 3.0,
            area_mm2: 4.0,
        };
        assert_eq!(e.value(), 24.0);
    }

    #[test]
    #[should_panic(expected = "not a PIM")]
    fn xpu_has_no_pim_area() {
        AreaModel::micro24().pim_area_mm2(EngineKind::Xpu);
    }
}
