//! Compute-side energy constants.
//!
//! The paper synthesizes its arithmetic units with a 7 nm predictive
//! PDK (ASAP7) and models SRAM buffers with FinCACTI (Sec. VI). We
//! encode the resulting energy-per-operation figures directly. The
//! interesting *relative* facts, which the tests pin down, are:
//!
//! * Logic-PIM MACs are cheaper per FLOP than the xPU's tensor pipeline
//!   (lower frequency, shorter data movement from the TSV buffer);
//! * in-DRAM MACs (Bank-PIM / BankGroup-PIM) pay the DRAM-process
//!   penalty, landing between the two, with Bank-PIM worst because its
//!   units are the most area-constrained and replicated per bank.

use crate::spec::EngineKind;

/// Per-engine compute energy in picojoules per FLOP (FP16, including
/// local SRAM/register movement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeEnergy {
    /// xPU tensor-core pipeline, pJ/FLOP.
    pub xpu_pj_per_flop: f64,
    /// Logic-PIM GEMM modules on the logic die, pJ/FLOP.
    pub logic_pim_pj_per_flop: f64,
    /// BankGroup-PIM units on the DRAM die, pJ/FLOP.
    pub bank_group_pim_pj_per_flop: f64,
    /// In-bank units, pJ/FLOP.
    pub bank_pim_pj_per_flop: f64,
}

impl ComputeEnergy {
    /// 7 nm-era constants used by the evaluation.
    pub fn asap7() -> Self {
        Self {
            xpu_pj_per_flop: 0.80,
            logic_pim_pj_per_flop: 0.40,
            bank_group_pim_pj_per_flop: 0.55,
            bank_pim_pj_per_flop: 0.70,
        }
    }

    /// pJ/FLOP for `kind`.
    pub fn pj_per_flop(&self, kind: EngineKind) -> f64 {
        match kind {
            EngineKind::Xpu => self.xpu_pj_per_flop,
            EngineKind::LogicPim => self.logic_pim_pj_per_flop,
            EngineKind::BankGroupPim => self.bank_group_pim_pj_per_flop,
            EngineKind::BankPim => self.bank_pim_pj_per_flop,
        }
    }

    /// Joules to execute `flops` floating-point operations on `kind`.
    pub fn energy_j(&self, kind: EngineKind, flops: f64) -> f64 {
        flops * self.pj_per_flop(kind) * 1e-12
    }
}

impl Default for ComputeEnergy {
    fn default() -> Self {
        Self::asap7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_pim_is_cheapest_per_flop() {
        let e = ComputeEnergy::asap7();
        assert!(e.logic_pim_pj_per_flop < e.xpu_pj_per_flop);
        assert!(e.logic_pim_pj_per_flop < e.bank_group_pim_pj_per_flop);
        assert!(e.logic_pim_pj_per_flop < e.bank_pim_pj_per_flop);
    }

    #[test]
    fn dram_process_units_pay_a_penalty() {
        let e = ComputeEnergy::asap7();
        assert!(e.bank_group_pim_pj_per_flop > e.logic_pim_pj_per_flop);
        assert!(e.bank_pim_pj_per_flop > e.bank_group_pim_pj_per_flop);
    }

    #[test]
    fn energy_scales_with_flops() {
        let e = ComputeEnergy::asap7();
        let one = e.energy_j(EngineKind::Xpu, 1e12);
        assert!((one - 0.8).abs() < 1e-12);
        assert!((e.energy_j(EngineKind::Xpu, 2e12) - 2.0 * one).abs() < 1e-12);
    }
}
