//! A fast non-cryptographic hasher for the simulator's hot-path memo
//! tables (kernel prices, expert-device costs, stage-group indices).
//!
//! The default `std` hasher (SipHash) is DoS-resistant but costs more
//! than the roofline math it guards on small integer keys. This is an
//! FxHash-style multiply-mix: fold each word into the state with a
//! rotate, xor and multiply by a large odd constant. Keys here are
//! small tuples of integers produced by the simulator itself, so
//! flooding resistance buys nothing.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-mix hasher state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FastHasher(u64);

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn distinct_keys_hash_differently() {
        let a = hash_of(&(1u64, 2u64, 3u64));
        let b = hash_of(&(1u64, 2u64, 4u64));
        let c = hash_of(&(2u64, 2u64, 3u64));
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn equal_keys_hash_equally() {
        let k = vec![5u64, 6, 7];
        assert_eq!(hash_of(&k), hash_of(&k.clone()));
    }

    #[test]
    fn fast_map_works_with_enum_keys() {
        use crate::kernel::{GemmShape, Kernel};
        let mut m: FastMap<Kernel, u32> = FastMap::default();
        let k1 = Kernel::Gemm {
            shape: GemmShape { m: 1, n: 2, k: 3 },
            dram_bytes: 4,
        };
        let k2 = Kernel::Stream {
            bytes: 4,
            write: false,
        };
        m.insert(k1, 1);
        m.insert(k2, 2);
        assert_eq!(m.get(&k1), Some(&1));
        assert_eq!(m.get(&k2), Some(&2));
    }
}
