//! Processing-unit models for the Duplex simulator.
//!
//! The paper pairs two classes of processing units inside one device:
//!
//! * the **xPU** — an H100-class accelerator die behind the interposer,
//!   built for high-Op/B GEMMs (~989 TFLOPS dense FP16, ~3.35 TB/s of
//!   HBM3);
//! * **Logic-PIM** — GEMM/softmax/activation modules on the HBM logic
//!   die, fed 4x the conventional bandwidth through added TSVs, sized
//!   for Op/B 1–32 (21.3 TFLOPS per stack, Sec. VI);
//!
//! plus two prior-PIM baselines used in Fig. 8 and Fig. 14:
//!
//! * **Bank-PIM** — in-bank processing units, 16x conventional peak
//!   bandwidth but peak Op/B of 1;
//! * **BankGroup-PIM** — Logic-PIM's bandwidth and compute placed on
//!   the DRAM die, paying the DRAM-process area penalty.
//!
//! This crate turns those descriptions into a cost model: [`spec`]
//! declares each engine, [`kernel`] describes the work (GEMM shapes,
//! softmax, element-wise ops), [`engine`] prices a kernel on an engine
//! (roofline over the *sustained* bandwidth calibrated by
//! [`duplex_hbm`]), [`energy`] adds compute energy, and [`area`] holds
//! the synthesized area numbers of Sec. VII-E together with the EDAP
//! metric of Fig. 8.
//!
//! # Example
//!
//! Price one decode-style expert GEMM on the xPU and on Logic-PIM:
//!
//! ```
//! use duplex_compute::{Engine, kernel::GemmShape};
//!
//! let xpu = Engine::h100_xpu();
//! let pim = Engine::logic_pim();
//! let gemm = GemmShape { m: 8, n: 14336, k: 4096 };
//! let weight_bytes = gemm.weight_bytes(2);
//! let on_xpu = xpu.gemm_cost(gemm, weight_bytes);
//! let on_pim = pim.gemm_cost(gemm, weight_bytes);
//! // Low-Op/B work is memory bound: the PIM's 4x bandwidth wins.
//! assert!(on_pim.seconds < on_xpu.seconds);
//! ```

pub mod area;
pub mod energy;
pub mod engine;
pub mod hash;
pub mod kernel;
pub mod spec;

pub use area::{AreaModel, Edap};
pub use energy::ComputeEnergy;
pub use engine::{Engine, KernelCost};
pub use kernel::{GemmShape, Kernel};
pub use spec::{EngineKind, EngineSpec};
