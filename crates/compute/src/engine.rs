//! Kernel pricing: roofline timing over calibrated sustained bandwidth,
//! plus DRAM and compute energy.
//!
//! An [`Engine`] binds an [`EngineSpec`] to the sustained bandwidth its
//! access path achieves on the calibrated HBM3 stack (from
//! [`duplex_hbm::BandwidthProfile`]) and prices [`Kernel`]s:
//!
//! ```text
//! time  = max(flops / effective_flops(m), dram_bytes / sustained_bw)
//!         + launch_overhead
//! energy = dram(path, bytes) + pj_per_flop(kind) * flops
//! ```
//!
//! This is the analytic steady-state of the command-level engine — the
//! same quantity the paper's Ramulator backend converges to for the
//! multi-megabyte streams that dominate LLM layers.
//!
//! Pricing is memoized: decode serving re-prices the same kernel shapes
//! across layers, requests and stages (weights are fixed, contexts
//! advance in lockstep), so each [`Engine`] keeps a hash cache keyed by
//! the full [`Kernel`] description. Hits skip the roofline/energy math;
//! [`Engine::cache_stats`] exposes hit/miss counters so tests can pin
//! the fast path. The cache is dropped whenever an engine is cloned or
//! rescaled (`with_bandwidth_fraction` / `with_resource_fraction`),
//! because cached costs are only valid for the exact engine parameters
//! they were priced under.

use std::cell::{Cell, RefCell};
use std::sync::OnceLock;

use crate::hash::FastMap;

use duplex_hbm::{BandwidthProfile, DramEnergyModel, EnergyBreakdown, HbmGeometry, HbmTiming};

use crate::energy::ComputeEnergy;
use crate::kernel::{GemmShape, Kernel};
use crate::spec::EngineSpec;

/// The calibrated bandwidth profile for the default HBM3 stack, shared
/// process-wide (calibration replays several megabytes of DRAM commands
/// per access path; doing that once is plenty).
pub fn default_profile() -> &'static BandwidthProfile {
    static PROFILE: OnceLock<BandwidthProfile> = OnceLock::new();
    PROFILE
        .get_or_init(|| BandwidthProfile::calibrate(&HbmGeometry::hbm3_8hi(), &HbmTiming::hbm3()))
}

/// Cost of running one or more kernels on an engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelCost {
    /// Wall-clock seconds.
    pub seconds: f64,
    /// DRAM energy.
    pub dram_energy: EnergyBreakdown,
    /// Compute (arithmetic + local SRAM) energy in joules.
    pub compute_j: f64,
}

impl KernelCost {
    /// A zero cost.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total joules, DRAM plus compute.
    pub fn total_energy_j(&self) -> f64 {
        self.dram_energy.total_j() + self.compute_j
    }

    /// Combine with a cost incurred *after* this one (times add).
    pub fn then(self, later: KernelCost) -> KernelCost {
        KernelCost {
            seconds: self.seconds + later.seconds,
            dram_energy: self.dram_energy + later.dram_energy,
            compute_j: self.compute_j + later.compute_j,
        }
    }

    /// Combine with a cost incurred *concurrently* on other hardware
    /// (times max, energies add).
    pub fn alongside(self, other: KernelCost) -> KernelCost {
        KernelCost {
            seconds: self.seconds.max(other.seconds),
            dram_energy: self.dram_energy + other.dram_energy,
            compute_j: self.compute_j + other.compute_j,
        }
    }

    /// The cost of `by` identical instances of this work (seconds and
    /// every energy component scale linearly).
    pub fn scaled(self, by: f64) -> KernelCost {
        KernelCost {
            seconds: self.seconds * by,
            dram_energy: duplex_hbm::EnergyBreakdown {
                activation_j: self.dram_energy.activation_j * by,
                transfer_j: self.dram_energy.transfer_j * by,
            },
            compute_j: self.compute_j * by,
        }
    }
}

impl std::ops::Add for KernelCost {
    type Output = KernelCost;
    fn add(self, rhs: KernelCost) -> KernelCost {
        self.then(rhs)
    }
}

impl std::ops::AddAssign for KernelCost {
    fn add_assign(&mut self, rhs: KernelCost) {
        *self = *self + rhs;
    }
}

impl std::iter::Sum for KernelCost {
    fn sum<I: Iterator<Item = KernelCost>>(iter: I) -> KernelCost {
        iter.fold(KernelCost::zero(), |a, b| a + b)
    }
}

/// Memoized kernel prices with hit/miss accounting.
///
/// Cloning yields an *empty* cache (cached values are parameter-bound),
/// and caches never participate in equality.
#[derive(Debug, Default)]
struct PriceCache {
    map: RefCell<FastMap<Kernel, KernelCost>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

/// Safety valve: decode contexts grow without bound over very long
/// simulations, so cap the cache and start over if it fills.
const PRICE_CACHE_MAX_ENTRIES: usize = 1 << 20;

impl PriceCache {
    fn get(&self, kernel: &Kernel) -> Option<KernelCost> {
        let hit = self.map.borrow().get(kernel).copied();
        match hit {
            Some(c) => {
                self.hits.set(self.hits.get() + 1);
                Some(c)
            }
            None => {
                self.misses.set(self.misses.get() + 1);
                None
            }
        }
    }

    fn insert(&self, kernel: Kernel, cost: KernelCost) {
        let mut map = self.map.borrow_mut();
        if map.len() >= PRICE_CACHE_MAX_ENTRIES {
            map.clear();
        }
        map.insert(kernel, cost);
    }
}

impl Clone for PriceCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for PriceCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

/// A processing unit bound to its memory system.
#[derive(Debug, Clone, PartialEq)]
pub struct Engine {
    spec: EngineSpec,
    bytes_per_sec: f64,
    /// Cached reciprocal: memory time is `bytes * inv_bytes_per_sec`
    /// (multiplication instead of division on the hot pricing path).
    inv_bytes_per_sec: f64,
    activations_per_byte: f64,
    dram: DramEnergyModel,
    compute_energy: ComputeEnergy,
    cache: PriceCache,
}

impl Engine {
    /// Build an engine from a spec and a calibrated profile for a device
    /// with `stacks` HBM stacks.
    pub fn from_profile(spec: EngineSpec, profile: &BandwidthProfile, stacks: u32) -> Self {
        let path = spec.kind.access_path();
        let bytes_per_sec = profile.device_bytes_per_sec(path, stacks);
        Self {
            spec,
            bytes_per_sec,
            inv_bytes_per_sec: bytes_per_sec.recip(),
            activations_per_byte: profile.activations_per_byte(path),
            dram: DramEnergyModel::default(),
            compute_energy: ComputeEnergy::default(),
            cache: PriceCache::default(),
        }
    }

    /// H100-class xPU on a five-stack, 80 GB device.
    pub fn h100_xpu() -> Self {
        Self::from_profile(EngineSpec::h100_xpu(), default_profile(), 5)
    }

    /// Logic-PIM on a five-stack device (4x internal bandwidth,
    /// 106.5 TFLOPS).
    pub fn logic_pim() -> Self {
        Self::from_profile(EngineSpec::logic_pim(5), default_profile(), 5)
    }

    /// Bank-PIM baseline on a five-stack device.
    pub fn bank_pim() -> Self {
        Self::from_profile(EngineSpec::bank_pim(5), default_profile(), 5)
    }

    /// BankGroup-PIM baseline on a five-stack device.
    pub fn bank_group_pim() -> Self {
        Self::from_profile(EngineSpec::bank_group_pim(5), default_profile(), 5)
    }

    /// The engine's specification.
    pub fn spec(&self) -> &EngineSpec {
        &self.spec
    }

    /// Sustained DRAM bandwidth in bytes/s at device scope.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Scale the engine to a fraction of its DRAM bandwidth (used when
    /// an engine may only touch a subset of the bank bundles during
    /// co-processing, or a tensor-parallel shard of the device).
    pub fn with_bandwidth_fraction(&self, fraction: f64) -> Engine {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let mut e = self.clone();
        e.bytes_per_sec *= fraction;
        e.inv_bytes_per_sec = e.bytes_per_sec.recip();
        e
    }

    /// Scale compute and bandwidth together (a tensor-parallel slice of
    /// the engine across devices is priced on one device's slice).
    pub fn with_resource_fraction(&self, fraction: f64) -> Engine {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1]"
        );
        let mut e = self.clone();
        e.bytes_per_sec *= fraction;
        e.inv_bytes_per_sec = e.bytes_per_sec.recip();
        e.spec.peak_flops *= fraction;
        e
    }

    /// Price a GEMM that streams `dram_bytes` from memory.
    pub fn gemm_cost(&self, shape: GemmShape, dram_bytes: u64) -> KernelCost {
        self.kernel_cost(&Kernel::Gemm { shape, dram_bytes })
    }

    /// Price a GEMM without the per-kernel launch overhead. Use this
    /// when many small operations are dispatched as one fused/batched
    /// kernel (per-request attention within a layer, grouped expert
    /// GEMMs) and add the overhead once at the batch level.
    pub fn gemm_cost_amortized(&self, shape: GemmShape, dram_bytes: u64) -> KernelCost {
        self.without_overhead(
            self.gemm_cost(shape, dram_bytes),
            shape.m * shape.n * shape.k,
        )
    }

    /// Price one kernel without the launch overhead (see
    /// [`Engine::gemm_cost_amortized`]).
    pub fn kernel_cost_amortized(&self, kernel: &Kernel) -> KernelCost {
        self.without_overhead(self.kernel_cost(kernel), Self::amortizable_work(kernel))
    }

    /// Like [`Engine::gemm_cost`] but bypassing the memo cache. The
    /// roofline math is a handful of multiplies — cheaper than a probe
    /// of the memo table — so per-stage pricing paths use this and
    /// reserve memoization for aggregates (see `kernel_cost`).
    pub fn gemm_cost_uncached(&self, shape: GemmShape, dram_bytes: u64) -> KernelCost {
        self.price_kernel(&Kernel::Gemm { shape, dram_bytes })
    }

    /// Like [`Engine::gemm_cost_amortized`] but bypassing the memo
    /// cache (see [`Engine::gemm_cost_uncached`]).
    pub fn gemm_cost_amortized_uncached(&self, shape: GemmShape, dram_bytes: u64) -> KernelCost {
        self.without_overhead(
            self.gemm_cost_uncached(shape, dram_bytes),
            shape.m * shape.n * shape.k,
        )
    }

    /// Like [`Engine::kernel_cost_amortized`] but bypassing the memo
    /// cache. Use for kernels whose shapes rarely repeat (per-context
    /// attention score/value GEMMs advance every stage), where caching
    /// only pays hash-and-insert overhead and bloats the table.
    pub fn kernel_cost_amortized_uncached(&self, kernel: &Kernel) -> KernelCost {
        self.without_overhead(self.price_kernel(kernel), Self::amortizable_work(kernel))
    }

    /// Uncached single-kernel pricing (see
    /// [`Engine::kernel_cost_amortized_uncached`] for when to prefer
    /// this over the memoized [`Engine::kernel_cost`]).
    pub fn kernel_cost_uncached(&self, kernel: &Kernel) -> KernelCost {
        self.price_kernel(kernel)
    }

    fn amortizable_work(kernel: &Kernel) -> u64 {
        match kernel {
            Kernel::Gemm { shape, .. } => shape.m * shape.n * shape.k,
            Kernel::Stream { bytes, .. } => *bytes,
            // Softmax / elementwise never carry overhead.
            _ => 0,
        }
    }

    fn without_overhead(&self, mut cost: KernelCost, work: u64) -> KernelCost {
        if work > 0 {
            cost.seconds = (cost.seconds - self.spec.launch_overhead_s).max(0.0);
        }
        cost
    }

    /// Cache hit/miss counters `(hits, misses)` accumulated over this
    /// engine's lifetime (misses count first-time pricings).
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.cache.hits.get(), self.cache.misses.get())
    }

    /// Drop all memoized prices (counters are kept).
    pub fn clear_price_cache(&self) {
        self.cache.map.borrow_mut().clear();
    }

    /// Price one kernel, memoized on the full kernel description.
    pub fn kernel_cost(&self, kernel: &Kernel) -> KernelCost {
        if let Some(cost) = self.cache.get(kernel) {
            return cost;
        }
        let cost = self.price_kernel(kernel);
        self.cache.insert(*kernel, cost);
        cost
    }

    /// The uncached roofline + energy math behind [`Engine::kernel_cost`].
    fn price_kernel(&self, kernel: &Kernel) -> KernelCost {
        match kernel {
            Kernel::Gemm { shape, dram_bytes } => {
                if shape.m == 0 || shape.n == 0 || shape.k == 0 {
                    return KernelCost::zero();
                }
                let compute_s = shape.flops() / self.spec.effective_flops(shape.m);
                let memory_s = *dram_bytes as f64 * self.inv_bytes_per_sec;
                let seconds = compute_s.max(memory_s) + self.spec.launch_overhead_s;
                KernelCost {
                    seconds,
                    dram_energy: self.dram.read_energy(
                        self.spec.kind.access_path(),
                        *dram_bytes,
                        self.activations_per_byte,
                    ),
                    compute_j: self.compute_energy.energy_j(self.spec.kind, shape.flops()),
                }
            }
            Kernel::Softmax { rows, cols } => {
                if *rows == 0 || *cols == 0 {
                    return KernelCost::zero();
                }
                // Softmax runs on the vector/softmax units at a few
                // percent of peak; it is fused, so no DRAM traffic.
                let softmax_flops = self.spec.peak_flops * 0.04;
                KernelCost {
                    seconds: kernel.flops() / softmax_flops,
                    dram_energy: EnergyBreakdown::default(),
                    compute_j: self.compute_energy.energy_j(self.spec.kind, kernel.flops()),
                }
            }
            Kernel::Elementwise { elems } => {
                if *elems == 0 {
                    return KernelCost::zero();
                }
                let vector_flops = self.spec.peak_flops * 0.05;
                KernelCost {
                    seconds: kernel.flops() / vector_flops,
                    dram_energy: EnergyBreakdown::default(),
                    compute_j: self.compute_energy.energy_j(self.spec.kind, kernel.flops()),
                }
            }
            Kernel::Stream { bytes, write } => {
                if *bytes == 0 {
                    return KernelCost::zero();
                }
                let seconds = *bytes as f64 * self.inv_bytes_per_sec + self.spec.launch_overhead_s;
                let path = self.spec.kind.access_path();
                let dram_energy = if *write {
                    self.dram
                        .write_energy(path, *bytes, self.activations_per_byte)
                } else {
                    self.dram
                        .read_energy(path, *bytes, self.activations_per_byte)
                };
                KernelCost {
                    seconds,
                    dram_energy,
                    compute_j: 0.0,
                }
            }
        }
    }

    /// Price a sequence of kernels run back to back.
    pub fn sequence_cost<'a, I>(&self, kernels: I) -> KernelCost
    where
        I: IntoIterator<Item = &'a Kernel>,
    {
        kernels.into_iter().map(|k| self.kernel_cost(k)).sum()
    }

    /// Precompute the linear pricing coefficients for a *family* of
    /// amortized GEMMs that share the activation row count `m` on this
    /// engine (engine efficiency depends only on `m`). Within the
    /// family, time and energy are linear in FLOPs and DRAM bytes, so
    /// [`AmortizedGemmPricer::price`] is a handful of multiplies — the
    /// grouped-attention hot loop prices one group per distinct context
    /// with it. Results match [`Engine::kernel_cost_amortized_uncached`]
    /// to floating-point associativity (~1 ulp).
    pub fn amortized_gemm_pricer(&self, m: u64) -> AmortizedGemmPricer {
        let unit =
            self.dram
                .read_energy(self.spec.kind.access_path(), 1, self.activations_per_byte);
        AmortizedGemmPricer {
            inv_eff_flops: self.spec.effective_flops(m).recip(),
            inv_bytes_per_sec: self.inv_bytes_per_sec,
            act_j_per_byte: unit.activation_j,
            transfer_j_per_byte: unit.transfer_j,
            compute_j_per_flop: self.compute_j_per_flop(),
        }
    }

    /// Reciprocal of the softmax unit's sustained FLOP/s (softmax time
    /// is `flops * inv`; fused, no DRAM traffic).
    pub fn softmax_inv_flops(&self) -> f64 {
        (self.spec.peak_flops * 0.04).recip()
    }

    /// Joules per FLOP on this engine's compute pipeline.
    pub fn compute_j_per_flop(&self) -> f64 {
        self.compute_energy.pj_per_flop(self.spec.kind) * 1e-12
    }
}

/// Linear pricing coefficients for one amortized-GEMM family (see
/// [`Engine::amortized_gemm_pricer`]).
#[derive(Debug, Clone, Copy)]
pub struct AmortizedGemmPricer {
    inv_eff_flops: f64,
    inv_bytes_per_sec: f64,
    act_j_per_byte: f64,
    transfer_j_per_byte: f64,
    compute_j_per_flop: f64,
}

impl AmortizedGemmPricer {
    /// Price one GEMM of the family: roofline seconds (launch overhead
    /// amortized away) plus DRAM and compute energy.
    #[inline]
    pub fn price(&self, flops: f64, dram_bytes: u64) -> KernelCost {
        let b = dram_bytes as f64;
        KernelCost {
            seconds: (flops * self.inv_eff_flops).max(b * self.inv_bytes_per_sec),
            dram_energy: EnergyBreakdown {
                activation_j: b * self.act_j_per_byte,
                transfer_j: b * self.transfer_j_per_byte,
            },
            compute_j: flops * self.compute_j_per_flop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::EngineKind;

    #[test]
    fn decode_gemm_is_memory_bound_on_xpu() {
        // Batch-8 expert GEMM: Op/B 8 << the xPU's machine balance
        // (989 TFLOPS / 3.3 TB/s ~ 300).
        let xpu = Engine::h100_xpu();
        let shape = GemmShape {
            m: 8,
            n: 14336,
            k: 4096,
        };
        let bytes = shape.weight_bytes(2);
        let cost = xpu.gemm_cost(shape, bytes);
        let memory_s = bytes as f64 / xpu.bytes_per_sec();
        assert!((cost.seconds - memory_s - xpu.spec().launch_overhead_s).abs() < memory_s * 0.01);
    }

    #[test]
    fn prefill_gemm_is_compute_bound_on_logic_pim() {
        // 2048 prefill tokens: Op/B 2048 >> Logic-PIM's balance of 8.
        let pim = Engine::logic_pim();
        let shape = GemmShape {
            m: 2048,
            n: 14336,
            k: 4096,
        };
        let bytes = shape.weight_bytes(2);
        let cost = pim.gemm_cost(shape, bytes);
        let compute_s = shape.flops() / pim.spec().effective_flops(shape.m);
        assert!((cost.seconds - compute_s - pim.spec().launch_overhead_s).abs() < compute_s * 0.01);
    }

    #[test]
    fn pim_wins_low_op_b_xpu_wins_high_op_b() {
        let xpu = Engine::h100_xpu();
        let pim = Engine::logic_pim();
        let low = GemmShape {
            m: 4,
            n: 14336,
            k: 4096,
        };
        let high = GemmShape {
            m: 4096,
            n: 14336,
            k: 4096,
        };
        assert!(
            pim.gemm_cost(low, low.weight_bytes(2)).seconds
                < xpu.gemm_cost(low, low.weight_bytes(2)).seconds
        );
        assert!(
            xpu.gemm_cost(high, high.weight_bytes(2)).seconds
                < pim.gemm_cost(high, high.weight_bytes(2)).seconds
        );
    }

    #[test]
    fn crossover_sits_between_pim_and_xpu_balance() {
        // The Op/B at which xPU catches Logic-PIM must lie between
        // Logic-PIM's machine balance (~8, where PIM goes compute-bound)
        // and the xPU's (~300).
        let xpu = Engine::h100_xpu();
        let pim = Engine::logic_pim();
        let mut crossover = None;
        for m in 1..4096u64 {
            let g = GemmShape {
                m,
                n: 16384,
                k: 4096,
            };
            let b = g.weight_bytes(2);
            if xpu.gemm_cost(g, b).seconds <= pim.gemm_cost(g, b).seconds {
                crossover = Some(m);
                break;
            }
        }
        let m = crossover.expect("xPU must eventually win");
        assert!(m > 8 && m < 320, "crossover at Op/B ~ {m}");
    }

    #[test]
    fn zero_work_costs_nothing() {
        let xpu = Engine::h100_xpu();
        assert_eq!(
            xpu.gemm_cost(
                GemmShape {
                    m: 0,
                    n: 4096,
                    k: 4096
                },
                0
            ),
            KernelCost::zero()
        );
        assert_eq!(
            xpu.kernel_cost(&Kernel::Softmax { rows: 0, cols: 64 }),
            KernelCost::zero()
        );
        assert_eq!(
            xpu.kernel_cost(&Kernel::Elementwise { elems: 0 }),
            KernelCost::zero()
        );
        assert_eq!(
            xpu.kernel_cost(&Kernel::Stream {
                bytes: 0,
                write: true
            }),
            KernelCost::zero()
        );
    }

    #[test]
    fn costs_compose() {
        let xpu = Engine::h100_xpu();
        let g = GemmShape {
            m: 16,
            n: 4096,
            k: 4096,
        };
        let one = xpu.gemm_cost(g, g.weight_bytes(2));
        let kernels = [
            Kernel::Gemm {
                shape: g,
                dram_bytes: g.weight_bytes(2),
            },
            Kernel::Gemm {
                shape: g,
                dram_bytes: g.weight_bytes(2),
            },
        ];
        let two = xpu.sequence_cost(&kernels);
        assert!((two.seconds - 2.0 * one.seconds).abs() < 1e-12);
        assert!((two.total_energy_j() - 2.0 * one.total_energy_j()).abs() < 1e-12);
    }

    #[test]
    fn scaled_multiplies_every_component() {
        let xpu = Engine::h100_xpu();
        let g = GemmShape {
            m: 16,
            n: 4096,
            k: 4096,
        };
        let one = xpu.gemm_cost(g, g.weight_bytes(2));
        let three = one.scaled(3.0);
        assert!((three.seconds - 3.0 * one.seconds).abs() < 1e-15);
        assert!((three.total_energy_j() - 3.0 * one.total_energy_j()).abs() < 1e-12);
    }

    #[test]
    fn alongside_takes_max_time_and_sums_energy() {
        let a = KernelCost {
            seconds: 2.0,
            dram_energy: Default::default(),
            compute_j: 1.0,
        };
        let b = KernelCost {
            seconds: 3.0,
            dram_energy: Default::default(),
            compute_j: 2.0,
        };
        let c = a.alongside(b);
        assert_eq!(c.seconds, 3.0);
        assert_eq!(c.compute_j, 3.0);
    }

    #[test]
    fn bandwidth_fraction_scales_memory_time() {
        let pim = Engine::logic_pim();
        let half = pim.with_bandwidth_fraction(0.5);
        let g = GemmShape {
            m: 1,
            n: 14336,
            k: 4096,
        };
        let b = g.weight_bytes(2);
        let full_t = pim.gemm_cost(g, b).seconds - pim.spec().launch_overhead_s;
        let half_t = half.gemm_cost(g, b).seconds - half.spec().launch_overhead_s;
        assert!((half_t / full_t - 2.0).abs() < 0.01);
    }

    #[test]
    fn engine_kinds_price_energy_differently() {
        let xpu = Engine::h100_xpu();
        let pim = Engine::logic_pim();
        let g = GemmShape {
            m: 64,
            n: 4096,
            k: 4096,
        };
        let b = g.weight_bytes(2);
        let ex = xpu.gemm_cost(g, b);
        let ep = pim.gemm_cost(g, b);
        assert!(
            ep.total_energy_j() < ex.total_energy_j(),
            "PIM path must save energy"
        );
        assert_eq!(xpu.spec().kind, EngineKind::Xpu);
    }

    #[test]
    fn repeated_pricings_hit_the_cache() {
        let xpu = Engine::h100_xpu();
        let g = GemmShape {
            m: 8,
            n: 14336,
            k: 4096,
        };
        let first = xpu.gemm_cost(g, g.weight_bytes(2));
        let (h0, m0) = xpu.cache_stats();
        assert_eq!(h0, 0);
        assert!(m0 >= 1);
        for _ in 0..10 {
            assert_eq!(xpu.gemm_cost(g, g.weight_bytes(2)), first);
        }
        let (h1, m1) = xpu.cache_stats();
        assert_eq!(h1, 10, "10 repeat pricings must all hit");
        assert_eq!(m1, m0, "no new misses on repeats");
    }

    #[test]
    fn rescaled_engines_start_with_a_cold_correct_cache() {
        let pim = Engine::logic_pim();
        let g = GemmShape {
            m: 1,
            n: 14336,
            k: 4096,
        };
        let b = g.weight_bytes(2);
        let full = pim.gemm_cost(g, b);
        let half = pim.with_bandwidth_fraction(0.5);
        assert_eq!(
            half.cache_stats(),
            (0, 0),
            "clone must not inherit the cache"
        );
        let halved = half.gemm_cost(g, b);
        assert!(
            halved.seconds > full.seconds,
            "half bandwidth must not reuse stale prices"
        );
    }

    #[test]
    fn clearing_the_cache_keeps_prices_identical() {
        let xpu = Engine::h100_xpu();
        let kernels = [
            Kernel::Gemm {
                shape: GemmShape {
                    m: 4,
                    n: 4096,
                    k: 4096,
                },
                dram_bytes: 1 << 24,
            },
            Kernel::Softmax {
                rows: 128,
                cols: 2048,
            },
            Kernel::Elementwise { elems: 1 << 20 },
            Kernel::Stream {
                bytes: 1 << 22,
                write: true,
            },
        ];
        let before: Vec<KernelCost> = kernels.iter().map(|k| xpu.kernel_cost(k)).collect();
        xpu.clear_price_cache();
        let after: Vec<KernelCost> = kernels.iter().map(|k| xpu.kernel_cost(k)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn family_pricer_matches_generic_amortized_pricing() {
        for engine in [Engine::h100_xpu(), Engine::logic_pim(), Engine::bank_pim()] {
            let m = 32u64;
            let pricer = engine.amortized_gemm_pricer(m);
            for ctx in [1u64, 17, 512, 4096, 100_000] {
                let shape = GemmShape { m, n: ctx, k: 128 };
                let bytes = 2 * ctx * 128 * 8;
                let fast = pricer.price(shape.flops(), bytes);
                let generic = engine.kernel_cost_amortized_uncached(&Kernel::Gemm {
                    shape,
                    dram_bytes: bytes,
                });
                let rel = |a: f64, b: f64| (a - b).abs() / a.abs().max(b.abs()).max(1e-300);
                assert!(
                    rel(fast.seconds, generic.seconds) < 1e-9,
                    "seconds at ctx {ctx}"
                );
                assert!(
                    rel(fast.total_energy_j(), generic.total_energy_j()) < 1e-9,
                    "energy at ctx {ctx}"
                );
            }
        }
    }

    #[test]
    fn stream_write_costs_more_energy_than_read() {
        let pim = Engine::logic_pim();
        let r = pim.kernel_cost(&Kernel::Stream {
            bytes: 1 << 20,
            write: false,
        });
        let w = pim.kernel_cost(&Kernel::Stream {
            bytes: 1 << 20,
            write: true,
        });
        assert!(w.total_energy_j() > r.total_energy_j());
        assert_eq!(w.seconds, r.seconds);
    }
}
