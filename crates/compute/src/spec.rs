//! Engine specifications.
//!
//! Each engine is characterized by its peak FP16 throughput, how that
//! throughput degrades for skinny GEMMs (tensor-core tile quantization
//! on the xPU; near-immediate saturation for the PIM GEMM modules), a
//! per-kernel dispatch overhead, and the [`duplex_hbm::AccessPath`] it
//! reads DRAM through.

use duplex_hbm::AccessPath;

/// Which processing-unit family an engine belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// H100-class accelerator die (high Op/B).
    Xpu,
    /// GEMM modules on the HBM logic die (Duplex's low-Op/B unit).
    LogicPim,
    /// In-bank PIM baseline (extremely low Op/B).
    BankPim,
    /// Logic-PIM's configuration implemented on the DRAM die.
    BankGroupPim,
}

impl EngineKind {
    /// The DRAM access path this engine reads through.
    pub fn access_path(&self) -> AccessPath {
        match self {
            EngineKind::Xpu => AccessPath::Xpu,
            EngineKind::LogicPim => AccessPath::LogicPim,
            EngineKind::BankPim => AccessPath::BankPim,
            EngineKind::BankGroupPim => AccessPath::BankGroupPim,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            EngineKind::Xpu => "xPU",
            EngineKind::LogicPim => "Logic-PIM",
            EngineKind::BankPim => "Bank-PIM",
            EngineKind::BankGroupPim => "BankGroup-PIM",
        };
        f.write_str(name)
    }
}

/// Performance description of one engine at device scope (all stacks).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineSpec {
    /// Engine family.
    pub kind: EngineKind,
    /// Peak dense FP16 throughput in FLOP/s at device scope.
    pub peak_flops: f64,
    /// Fraction of peak reachable by large, well-tiled GEMMs.
    pub base_efficiency: f64,
    /// GEMM `m` (token) dimension at which efficiency saturates.
    /// Below this the engine runs at `base_efficiency * m / m_saturation`
    /// (floored at `min_efficiency`).
    pub m_saturation: f64,
    /// Efficiency floor for degenerate shapes (GEMV on tensor cores
    /// falls back to vector ALUs, etc.).
    pub min_efficiency: f64,
    /// Fixed per-kernel dispatch overhead in seconds.
    pub launch_overhead_s: f64,
    /// Operating frequency in GHz (1 GHz xPU, 0.65 GHz Logic-PIM per
    /// Sec. VI; informational, the FLOP/s already account for it).
    pub frequency_ghz: f64,
}

impl EngineSpec {
    /// H100-class xPU: 989 TFLOPS dense FP16, tensor cores that need
    /// a reasonably tall `m` to reach ~80% of peak, ~3 us kernel launch.
    pub fn h100_xpu() -> Self {
        Self {
            kind: EngineKind::Xpu,
            peak_flops: 989e12,
            base_efficiency: 0.80,
            m_saturation: 32.0,
            min_efficiency: 0.05,
            launch_overhead_s: 3e-6,
            frequency_ghz: 1.0,
        }
    }

    /// Logic-PIM at device scope: 32 GEMM modules x 512 FP16 MACs
    /// x 650 MHz per stack = 21.3 TFLOPS/stack, five stacks per device
    /// (Sec. VI / Sec. VII-E). The vector-style modules saturate almost
    /// immediately in `m`.
    pub fn logic_pim(stacks: u32) -> Self {
        let per_stack = 32.0 * 512.0 * 2.0 * 0.65e9; // = 21.3 TFLOPS
        Self {
            kind: EngineKind::LogicPim,
            peak_flops: per_stack * f64::from(stacks),
            base_efficiency: 0.85,
            m_saturation: 1.0,
            min_efficiency: 0.85,
            launch_overhead_s: 2e-6,
            frequency_ghz: 0.65,
        }
    }

    /// Bank-PIM at device scope: 16x conventional peak bandwidth with a
    /// peak Op/B of one (Sec. VI), i.e. FLOP/s equal to bytes/s.
    pub fn bank_pim(stacks: u32) -> Self {
        // Conventional stack peak: 32 pCH x 32 B / 1.5 ns = 683 GB/s.
        let conventional_stack_bw = 32.0 * 32.0 / 1.5e-9;
        Self {
            kind: EngineKind::BankPim,
            peak_flops: 16.0 * conventional_stack_bw * f64::from(stacks),
            base_efficiency: 0.90,
            m_saturation: 1.0,
            min_efficiency: 0.90,
            launch_overhead_s: 2e-6,
            frequency_ghz: 0.35,
        }
    }

    /// BankGroup-PIM: Logic-PIM's bandwidth and compute on the DRAM die
    /// (Sec. VI). Performance-identical to Logic-PIM; it differs in area
    /// and energy.
    pub fn bank_group_pim(stacks: u32) -> Self {
        Self {
            kind: EngineKind::BankGroupPim,
            ..Self::logic_pim(stacks)
        }
    }

    /// Effective FLOP/s for a GEMM whose token dimension is `m`.
    pub fn effective_flops(&self, m: u64) -> f64 {
        let scale = (m as f64 / self.m_saturation).min(1.0);
        let eff = (self.base_efficiency * scale).max(self.min_efficiency);
        self.peak_flops * eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn logic_pim_matches_paper_per_stack_flops() {
        let spec = EngineSpec::logic_pim(1);
        assert!(
            (spec.peak_flops / 1e12 - 21.3).abs() < 0.2,
            "got {}",
            spec.peak_flops / 1e12
        );
    }

    #[test]
    fn five_stack_device_totals() {
        let pim = EngineSpec::logic_pim(5);
        assert!((pim.peak_flops / 1e12 - 106.5).abs() < 1.0);
        let bank = EngineSpec::bank_pim(5);
        // 16 x 683 GB/s x 5 = ~54.6 TFLOP/s at Op/B 1.
        assert!(
            (bank.peak_flops / 1e12 - 54.6).abs() < 1.0,
            "got {}",
            bank.peak_flops / 1e12
        );
    }

    #[test]
    fn xpu_dwarfs_pim_compute() {
        let xpu = EngineSpec::h100_xpu();
        let pim = EngineSpec::logic_pim(5);
        assert!(xpu.peak_flops > 9.0 * pim.peak_flops);
    }

    #[test]
    fn efficiency_curve_monotone_and_bounded() {
        let xpu = EngineSpec::h100_xpu();
        let mut prev = 0.0;
        for m in [1u64, 2, 4, 8, 16, 32, 64, 4096] {
            let f = xpu.effective_flops(m);
            assert!(f >= prev);
            assert!(f <= xpu.peak_flops);
            prev = f;
        }
        assert!(xpu.effective_flops(1) >= xpu.peak_flops * xpu.min_efficiency * 0.999);
        assert!((xpu.effective_flops(4096) - xpu.peak_flops * 0.8).abs() < 1e6);
    }

    #[test]
    fn pim_saturates_immediately() {
        let pim = EngineSpec::logic_pim(5);
        assert_eq!(pim.effective_flops(1), pim.effective_flops(1024));
    }

    #[test]
    fn access_paths_line_up() {
        assert_eq!(EngineKind::Xpu.access_path(), AccessPath::Xpu);
        assert_eq!(EngineKind::LogicPim.access_path(), AccessPath::LogicPim);
        assert_eq!(EngineKind::BankPim.access_path(), AccessPath::BankPim);
        assert_eq!(
            EngineKind::BankGroupPim.access_path(),
            AccessPath::BankGroupPim
        );
    }
}
