//! Kernel descriptions and arithmetic-intensity math.
//!
//! Everything an LLM stage executes reduces to three kernel families
//! for costing purposes:
//!
//! * [`GemmShape`] — a GEMM between an `m x k` activation and a
//!   `k x n` weight (or KV) matrix. The token dimension `m` controls
//!   both the Op/B and the engine efficiency.
//! * [`Kernel::Softmax`] — the row-wise softmax inside attention
//!   (a dedicated module on the logic die for the PIM engines).
//! * [`Kernel::Elementwise`] — gated activations, residual adds,
//!   weighted expert summation.

/// Dimensions of one GEMM: activations `m x k` times weights `k x n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemmShape {
    /// Token (row) dimension of the activations.
    pub m: u64,
    /// Output-feature dimension.
    pub n: u64,
    /// Inner (reduction) dimension.
    pub k: u64,
}

impl GemmShape {
    /// Floating-point operations: 2·m·n·k multiply-accumulates.
    pub fn flops(&self) -> f64 {
        2.0 * self.m as f64 * self.n as f64 * self.k as f64
    }

    /// Bytes of resident weights streamed from DRAM at `bytes_per_elem`
    /// precision (2 for FP16).
    pub fn weight_bytes(&self, bytes_per_elem: u64) -> u64 {
        self.n * self.k * bytes_per_elem
    }

    /// Bytes of activations in and out at `bytes_per_elem` precision.
    pub fn activation_bytes(&self, bytes_per_elem: u64) -> u64 {
        (self.m * self.k + self.m * self.n) * bytes_per_elem
    }

    /// Arithmetic intensity in FLOP per DRAM byte, counting only the
    /// weight traffic (the paper's convention: activations stay
    /// on-chip for the layer shapes of interest).
    ///
    /// For an expert FFN GEMM this evaluates to ~`m`, the number of
    /// tokens routed to the expert — the paper's observation that MoE
    /// Op/B is "at least 1" and rises with batched tokens.
    pub fn op_b(&self, bytes_per_elem: u64) -> f64 {
        self.flops() / self.weight_bytes(bytes_per_elem) as f64
    }
}

/// One costed unit of work.
///
/// All fields are integers, so a `Kernel` is `Eq + Hash` and doubles as
/// the memoization key for [`crate::Engine`]'s pricing cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// GEMM with an explicit count of DRAM bytes it must stream (weights
    /// or KV cache; the caller decides what is resident).
    Gemm {
        /// The GEMM dimensions.
        shape: GemmShape,
        /// Bytes read from DRAM.
        dram_bytes: u64,
    },
    /// Row-wise softmax over `rows x cols` scores (fused: no DRAM
    /// round-trip, priced on the vector/softmax units).
    Softmax {
        /// Number of independent rows.
        rows: u64,
        /// Row length.
        cols: u64,
    },
    /// Element-wise map over `elems` elements (gated activation,
    /// residual add, expert-weighted summation), fused with producers.
    Elementwise {
        /// Element count.
        elems: u64,
    },
    /// A raw DRAM transfer of `bytes` (KV-cache migration, partial-sum
    /// reads for the on-device all-reduce).
    Stream {
        /// Bytes moved.
        bytes: u64,
        /// Whether the transfer writes (writes pay the write premium).
        write: bool,
    },
}

impl Kernel {
    /// FLOPs performed by the kernel.
    pub fn flops(&self) -> f64 {
        match self {
            Kernel::Gemm { shape, .. } => shape.flops(),
            // max + sub + exp + sum + div ~ 5 ops per element.
            Kernel::Softmax { rows, cols } => 5.0 * (*rows as f64) * (*cols as f64),
            Kernel::Elementwise { elems } => 2.0 * *elems as f64,
            Kernel::Stream { .. } => 0.0,
        }
    }

    /// Bytes the kernel must move through DRAM.
    pub fn dram_bytes(&self) -> u64 {
        match self {
            Kernel::Gemm { dram_bytes, .. } => *dram_bytes,
            Kernel::Softmax { .. } | Kernel::Elementwise { .. } => 0,
            Kernel::Stream { bytes, .. } => *bytes,
        }
    }

    /// Arithmetic intensity (FLOP per DRAM byte); `None` when the kernel
    /// touches no DRAM.
    pub fn op_b(&self) -> Option<f64> {
        let bytes = self.dram_bytes();
        (bytes > 0).then(|| self.flops() / bytes as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expert_gemm_op_b_tracks_token_count() {
        // Paper Sec. III-A: an expert processing t tokens has Op/B ~ t.
        for t in [1u64, 4, 17, 64] {
            let g = GemmShape {
                m: t,
                n: 14336,
                k: 4096,
            };
            assert!((g.op_b(2) - t as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn gqa_attention_op_b_matches_group_degree() {
        // Decode attention for one GQA group: (deg x d_head) Q times
        // (d_head x L) K^T; DRAM traffic is the K slice. Op/B ~ deg.
        let deg = 4u64;
        let d_head = 128u64;
        let ctx = 2048u64;
        let score = GemmShape {
            m: deg,
            n: ctx,
            k: d_head,
        };
        let k_bytes = ctx * d_head * 2;
        let op_b = score.flops() / k_bytes as f64;
        assert!((op_b - deg as f64).abs() < 1e-9);
    }

    #[test]
    fn flops_and_bytes_scale() {
        let g = GemmShape { m: 2, n: 3, k: 5 };
        assert_eq!(g.flops(), 60.0);
        assert_eq!(g.weight_bytes(2), 30);
        assert_eq!(g.activation_bytes(2), (2 * 5 + 2 * 3) * 2);
    }

    #[test]
    fn kernel_accessors() {
        let k = Kernel::Gemm {
            shape: GemmShape { m: 1, n: 2, k: 3 },
            dram_bytes: 12,
        };
        assert_eq!(k.dram_bytes(), 12);
        assert_eq!(k.flops(), 12.0);
        assert_eq!(k.op_b(), Some(1.0));

        let s = Kernel::Softmax {
            rows: 10,
            cols: 100,
        };
        assert_eq!(s.flops(), 5000.0);
        assert_eq!(s.op_b(), None);

        let e = Kernel::Elementwise { elems: 8 };
        assert_eq!(e.flops(), 16.0);

        let st = Kernel::Stream {
            bytes: 64,
            write: false,
        };
        assert_eq!(st.flops(), 0.0);
        assert_eq!(st.dram_bytes(), 64);
    }
}
