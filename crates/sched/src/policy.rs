//! Pluggable admission policies for the scenario scheduler.
//!
//! The base [`crate::Simulation`] admits strictly FIFO. Scenario runs
//! (see [`crate::scenario`]) instead consult a [`SchedulingPolicy`]
//! each time a batch slot opens: the policy sees every request that
//! has arrived and not yet been admitted, plus a [`PolicyContext`]
//! describing the scheduler's stage (current clock, the chunked-prefill
//! budget, batch occupancy), and picks which one prefills next. Three
//! classic policies ship here; anything implementing the trait plugs
//! in.
//!
//! # Admission control
//!
//! Beyond *ordering* the queue, a policy may also *defer* it: the
//! scheduler asks [`SchedulingPolicy::admit_now`], and a `None` answer
//! leaves the remaining queue waiting for a later stage. The
//! [`ShedBatchTier`] wrapper uses this to shed batch-tier load near
//! saturation: once batch occupancy crosses its utilization threshold,
//! only latency-sensitive tiers are admitted, so interactive
//! attainment holds while the backlog drains — the open-items
//! admission-control policy from the roadmap.
//!
//! # Starvation
//!
//! Length-biased policies can starve: shortest-prompt-first never
//! admits a long prompt while shorter ones keep arriving. The
//! scheduler therefore maintains [`PendingRequest::skipped`] — how many
//! admissions have gone past a waiting request — and
//! [`ShortestPromptFirst`] ages on it: once a request has been skipped
//! [`ShortestPromptFirst::age_after`] times, it outranks every un-aged
//! request and aged requests drain FIFO. Chunked prefill (see
//! [`PolicyContext::prefill_chunk`]) independently softens the bias:
//! with a bounded per-stage prefill budget, a long prompt's *first
//! stage* costs no more than the chunk, so the policy ranks prompts by
//! their bounded first-stage cost instead of their full length.

use crate::preempt::{MultiplexSpec, PreemptSpec, PreemptionPolicy};
use crate::scenario::PendingRequest;

/// What the scheduler tells a policy about the stage being formed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyContext {
    /// Simulated time at which the admission decision is made.
    pub now_s: f64,
    /// Per-stage prefill token budget under chunked prefill; `None`
    /// when prompts prefill whole in one stage.
    pub prefill_chunk: Option<u64>,
    /// Requests already holding a batch slot for this stage (decoding,
    /// freshly admitted, or mid-chunk).
    pub in_flight: usize,
    /// Batch slots in total.
    pub max_batch: usize,
}

impl PolicyContext {
    /// An unchunked, empty-batch context at `now_s` (tests and simple
    /// drivers).
    pub fn at(now_s: f64) -> Self {
        Self {
            now_s,
            prefill_chunk: None,
            in_flight: 0,
            max_batch: 1,
        }
    }

    /// Fraction of batch slots already committed to this stage — the
    /// utilization estimate admission-control wrappers act on.
    pub fn utilization(&self) -> f64 {
        if self.max_batch == 0 {
            return 0.0;
        }
        self.in_flight as f64 / self.max_batch as f64
    }

    /// The prefill tokens request `p`'s first stage would process: the
    /// non-resident part of its prompt (a reuse follow-up prefills only
    /// its suffix, assuming its history is still parked), capped by the
    /// chunk budget when chunking.
    pub fn first_stage_tokens(&self, p: &PendingRequest) -> u64 {
        let suffix = p.request.input_len - p.history_tokens;
        match self.prefill_chunk {
            Some(chunk) => suffix.min(chunk),
            None => suffix,
        }
    }
}

/// Picks the next pending request to admit.
///
/// `Send` is a supertrait so boxed policies can ride along when the
/// cluster simulator steps replicas on worker threads; policies are
/// replica-local state machines, so this costs implementors nothing.
pub trait SchedulingPolicy: Send {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Index into `pending` of the request to admit next. Called with a
    /// non-empty slice in which every request has already arrived
    /// (`arrival_s <= ctx.now_s`); invoked again after each admission.
    fn pick(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> usize;

    /// Like [`SchedulingPolicy::pick`], but may answer `None` to admit
    /// nothing this stage (admission control): the queue keeps waiting
    /// and the scheduler re-asks at the next stage boundary. The
    /// default always admits.
    fn admit_now(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> Option<usize> {
        Some(self.pick(pending, ctx))
    }

    /// Preemption cost model, when this policy arms the scheduler's
    /// preemption machinery (see [`crate::preempt::PreemptionPolicy`]).
    /// The default — plain admission policies — never preempts.
    fn preempt_spec(&self) -> Option<&PreemptSpec> {
        None
    }

    /// Batch-multiplexing configuration, when this policy lets paused
    /// batch-tier work re-enter as fractional slots. Only consulted
    /// when [`SchedulingPolicy::preempt_spec`] is `Some`.
    fn multiplex_spec(&self) -> Option<&MultiplexSpec> {
        None
    }
}

/// First-come-first-served: strictly by arrival time (ties by id), the
/// base scheduler's order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&mut self, pending: &[PendingRequest], _ctx: &PolicyContext) -> usize {
        argmin(pending, |p| (p.request.arrival_s, p.request.id, 0))
    }
}

/// Shortest-prompt-first: admit the cheapest first prefill stage (ties
/// by arrival, then id). Improves mean T2FT under bursts, but unguarded
/// it starves long prompts; the aging guard promotes any request that
/// has been skipped [`ShortestPromptFirst::age_after`] times to the
/// front of the queue (aged requests drain FIFO among themselves).
#[derive(Debug, Clone, Copy)]
pub struct ShortestPromptFirst {
    /// Skipped-admission count after which a waiting request outranks
    /// every un-aged one. `u64::MAX` disables the guard (the classic,
    /// starvation-prone policy).
    pub age_after: u64,
}

impl ShortestPromptFirst {
    /// Default skipped-admission budget before a request is aged.
    pub const DEFAULT_AGE_AFTER: u64 = 32;

    /// A guard tripping after `age_after` skipped admissions.
    pub fn with_aging(age_after: u64) -> Self {
        Self { age_after }
    }

    /// The unguarded classic policy (starves long prompts; ablations
    /// and tests only).
    pub fn unguarded() -> Self {
        Self {
            age_after: u64::MAX,
        }
    }
}

impl Default for ShortestPromptFirst {
    fn default() -> Self {
        Self {
            age_after: Self::DEFAULT_AGE_AFTER,
        }
    }
}

impl SchedulingPolicy for ShortestPromptFirst {
    fn name(&self) -> &'static str {
        "spf"
    }

    fn pick(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> usize {
        // Aged requests (skipped too many admissions) preempt the
        // length order and drain FIFO; otherwise rank by the bounded
        // first-stage prefill cost, ties by arrival then id.
        let aged = self.age_after;
        argmin(pending, |p| {
            if p.skipped >= aged {
                (0u8, 0.0, p.request.arrival_s, p.request.id)
            } else {
                (
                    1u8,
                    ctx.first_stage_tokens(p) as f64,
                    p.request.arrival_s,
                    p.request.id,
                )
            }
        })
    }
}

/// Priority tiers with earliest-deadline-first inside each tier: lower
/// tier priority wins outright, then the nearest SLO deadline, then
/// arrival order. The SLO-serving policy for tiered scenarios.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityTiers;

impl SchedulingPolicy for PriorityTiers {
    fn name(&self) -> &'static str {
        "priority-edf"
    }

    fn pick(&mut self, pending: &[PendingRequest], _ctx: &PolicyContext) -> usize {
        argmin(pending, |p| {
            (f64::from(p.priority), p.deadline_s, p.request.arrival_s)
        })
    }
}

/// Admission-control wrapper: sheds (defers) batch-tier requests while
/// estimated utilization sits above a threshold, delegating ordering to
/// an inner policy. Near saturation the batch tier's long prompts stop
/// stealing slots from deadline-bound traffic, lifting interactive
/// attainment at the cost of batch-tier queueing delay — the deferred
/// requests are *not* dropped, they drain once load falls back under
/// the threshold.
pub struct ShedBatchTier {
    inner: Box<dyn SchedulingPolicy>,
    /// Batch-occupancy fraction above which sheddable tiers defer.
    pub utilization_threshold: f64,
    /// Requests with `priority >= shed_priority` are sheddable (2 =
    /// the default tier set's batch tier).
    pub shed_priority: u32,
    /// Reused scratch for the saturated path (indices into the full
    /// queue and the filtered view shown to the inner policy), so a
    /// deep backlog — exactly the regime shedding targets — costs no
    /// per-admission allocations.
    eligible: Vec<usize>,
    subset: Vec<PendingRequest>,
}

impl ShedBatchTier {
    /// Default occupancy fraction above which batch traffic defers.
    pub const DEFAULT_THRESHOLD: f64 = 0.85;

    /// Wrap `inner` with the given threshold and sheddable priority
    /// floor. The threshold must be positive: at zero an empty batch
    /// could defer forever and the scheduler would never advance.
    pub fn new(
        inner: Box<dyn SchedulingPolicy>,
        utilization_threshold: f64,
        shed_priority: u32,
    ) -> Self {
        assert!(
            utilization_threshold > 0.0,
            "a zero threshold would defer admissions into an empty batch"
        );
        Self {
            inner,
            utilization_threshold,
            shed_priority,
            eligible: Vec::new(),
            subset: Vec::new(),
        }
    }

    /// The default SLO-serving stack: priority-EDF ordering, batch
    /// tier (priority >= 2) shed above 85% occupancy.
    pub fn edf() -> Self {
        Self::new(Box::new(PriorityTiers), Self::DEFAULT_THRESHOLD, 2)
    }
}

impl std::fmt::Debug for ShedBatchTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShedBatchTier")
            .field("inner", &self.inner.name())
            .field("utilization_threshold", &self.utilization_threshold)
            .field("shed_priority", &self.shed_priority)
            .finish()
    }
}

impl SchedulingPolicy for ShedBatchTier {
    fn name(&self) -> &'static str {
        "shed-batch"
    }

    fn pick(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> usize {
        self.inner.pick(pending, ctx)
    }

    fn admit_now(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> Option<usize> {
        if ctx.utilization() < self.utilization_threshold {
            return Some(self.inner.pick(pending, ctx));
        }
        // Saturated: only non-sheddable tiers may take the slot.
        self.eligible.clear();
        self.subset.clear();
        for (i, p) in pending.iter().enumerate() {
            if p.priority < self.shed_priority {
                self.eligible.push(i);
                self.subset.push(p.clone());
            }
        }
        if self.eligible.is_empty() {
            return None;
        }
        Some(self.eligible[self.inner.pick(&self.subset, ctx)])
    }
}

/// The shipped policies, as a value type for sweep drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fcfs`].
    Fcfs,
    /// [`ShortestPromptFirst`] with the default aging guard.
    ShortestPromptFirst,
    /// [`PriorityTiers`].
    PriorityTiers,
    /// [`ShedBatchTier`] over priority-EDF with the default threshold.
    ShedBatchTier,
    /// [`crate::preempt::PreemptionPolicy`] over priority-EDF with the
    /// default cost model.
    Preempt,
    /// [`crate::preempt::PreemptionPolicy`] with batch multiplexing at
    /// the default exchange rate.
    Multiplex,
}

impl PolicyKind {
    /// Every shipped policy.
    pub const ALL: [PolicyKind; 6] = [
        PolicyKind::Fcfs,
        PolicyKind::ShortestPromptFirst,
        PolicyKind::PriorityTiers,
        PolicyKind::ShedBatchTier,
        PolicyKind::Preempt,
        PolicyKind::Multiplex,
    ];

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::ShortestPromptFirst => Box::new(ShortestPromptFirst::default()),
            PolicyKind::PriorityTiers => Box::new(PriorityTiers),
            PolicyKind::ShedBatchTier => Box::new(ShedBatchTier::edf()),
            PolicyKind::Preempt => Box::new(PreemptionPolicy::edf()),
            PolicyKind::Multiplex => {
                Box::new(PreemptionPolicy::edf().with_multiplex(MultiplexSpec::new()))
            }
        }
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::ShortestPromptFirst => "spf",
            PolicyKind::PriorityTiers => "priority-edf",
            PolicyKind::ShedBatchTier => "shed-batch",
            PolicyKind::Preempt => "preempt",
            PolicyKind::Multiplex => "preempt-mux",
        }
    }
}

/// Index of the minimum key; deterministic (first minimum wins).
fn argmin<K: PartialOrd, F: Fn(&PendingRequest) -> K>(pending: &[PendingRequest], key: F) -> usize {
    assert!(!pending.is_empty(), "policy consulted with an empty queue");
    let mut best = 0;
    for i in 1..pending.len() {
        if key(&pending[i]) < key(&pending[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn pending(id: u64, arrival: f64, input: u64, priority: u32, deadline: f64) -> PendingRequest {
        PendingRequest {
            request: Request {
                id,
                arrival_s: arrival,
                input_len: input,
                output_len: 8,
            },
            tier: priority as usize,
            priority,
            deadline_s: deadline,
            conversation: id,
            round: 1,
            history_tokens: 0,
            skipped: 0,
        }
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let q = [
            pending(0, 2.0, 10, 0, 9.0),
            pending(1, 1.0, 900, 0, 9.0),
            pending(2, 3.0, 5, 0, 9.0),
        ];
        assert_eq!(Fcfs.pick(&q, &PolicyContext::at(3.0)), 1);
    }

    #[test]
    fn spf_orders_by_prompt_length() {
        let q = [
            pending(0, 1.0, 100, 0, 9.0),
            pending(1, 2.0, 8, 0, 9.0),
            pending(2, 0.5, 600, 0, 9.0),
        ];
        assert_eq!(
            ShortestPromptFirst::default().pick(&q, &PolicyContext::at(3.0)),
            1
        );
    }

    #[test]
    fn spf_aging_promotes_skipped_requests() {
        let mut q = [
            pending(0, 0.0, 900, 0, 9.0),
            pending(1, 1.0, 10, 0, 9.0),
            pending(2, 0.5, 800, 0, 9.0),
        ];
        let mut spf = ShortestPromptFirst::with_aging(4);
        let ctx = PolicyContext::at(2.0);
        assert_eq!(spf.pick(&q, &ctx), 1, "short prompt wins un-aged");
        // Both long prompts cross the aging threshold: FIFO among aged.
        q[0].skipped = 4;
        q[2].skipped = 5;
        assert_eq!(spf.pick(&q, &ctx), 0, "earliest aged request wins");
        // The unguarded policy ignores skips entirely.
        assert_eq!(ShortestPromptFirst::unguarded().pick(&q, &ctx), 1);
    }

    #[test]
    fn spf_ranks_by_bounded_first_stage_under_chunking() {
        // With a 64-token chunk budget both long prompts cost one full
        // chunk up front; the tie breaks by arrival, not total length.
        let q = [pending(3, 0.0, 900, 0, 9.0), pending(1, 1.0, 400, 0, 9.0)];
        let ctx = PolicyContext {
            prefill_chunk: Some(64),
            ..PolicyContext::at(2.0)
        };
        assert_eq!(ShortestPromptFirst::default().pick(&q, &ctx), 0);
        // Unchunked, total length decides.
        assert_eq!(
            ShortestPromptFirst::default().pick(&q, &PolicyContext::at(2.0)),
            1
        );
    }

    #[test]
    fn spf_keys_reuse_followups_by_their_suffix() {
        // A 900-token follow-up with 890 resident tokens prefills only
        // 10: it must beat a fresh 100-token prompt.
        let mut follow = pending(7, 1.0, 900, 0, 9.0);
        follow.history_tokens = 890;
        let q = [pending(0, 0.0, 100, 0, 9.0), follow];
        let ctx = PolicyContext::at(2.0);
        assert_eq!(ctx.first_stage_tokens(&q[1]), 10);
        assert_eq!(ShortestPromptFirst::default().pick(&q, &ctx), 1);
    }

    #[test]
    fn tiers_beat_deadlines_beat_arrival() {
        let q = [
            pending(0, 0.1, 10, 2, 0.5), // low tier, urgent deadline
            pending(1, 0.2, 10, 1, 9.0), // high tier, late deadline
            pending(2, 0.3, 10, 1, 4.0), // high tier, nearer deadline
        ];
        assert_eq!(PriorityTiers.pick(&q, &PolicyContext::at(1.0)), 2);
        // Without the high tier, the urgent low-tier request wins.
        let q2 = [pending(0, 0.1, 10, 2, 0.5), pending(3, 0.0, 10, 2, 8.0)];
        assert_eq!(PriorityTiers.pick(&q2, &PolicyContext::at(1.0)), 0);
    }

    #[test]
    fn utilization_tracks_occupancy() {
        let ctx = PolicyContext {
            in_flight: 6,
            max_batch: 8,
            ..PolicyContext::at(0.0)
        };
        assert!((ctx.utilization() - 0.75).abs() < 1e-12);
        assert_eq!(PolicyContext::at(0.0).utilization(), 0.0);
    }

    #[test]
    fn shed_batch_defers_only_when_saturated() {
        let q = [
            pending(0, 0.0, 10, 2, 100.0), // batch tier
            pending(1, 0.1, 10, 0, 0.5),   // interactive
        ];
        let mut shed = ShedBatchTier::edf();
        let idle = PolicyContext {
            in_flight: 1,
            max_batch: 8,
            ..PolicyContext::at(1.0)
        };
        // Under the threshold the wrapper is transparent: EDF picks the
        // interactive request first either way.
        assert_eq!(shed.admit_now(&q, &idle), Some(1));
        let hot = PolicyContext {
            in_flight: 7,
            max_batch: 8,
            ..PolicyContext::at(1.0)
        };
        // Saturated: the interactive request still admits ...
        assert_eq!(shed.admit_now(&q, &hot), Some(1));
        // ... but a batch-only queue defers entirely.
        let batch_only = [pending(0, 0.0, 10, 2, 100.0), pending(2, 0.2, 10, 2, 50.0)];
        assert_eq!(shed.admit_now(&batch_only, &hot), None);
        // `pick` (ordering without admission control) stays inner-EDF:
        // the nearer deadline wins.
        assert_eq!(shed.pick(&batch_only, &hot), 1);
    }

    #[test]
    fn shed_batch_maps_subset_indices_back() {
        // Two interactive requests interleaved with batch ones: the
        // returned index must point into the *full* queue.
        let q = [
            pending(0, 0.0, 10, 2, 100.0),
            pending(1, 0.3, 10, 1, 5.0),
            pending(2, 0.1, 10, 2, 90.0),
            pending(3, 0.2, 10, 1, 2.0), // nearest deadline among tier 1
        ];
        let hot = PolicyContext {
            in_flight: 8,
            max_batch: 8,
            ..PolicyContext::at(1.0)
        };
        assert_eq!(ShedBatchTier::edf().admit_now(&q, &hot), Some(3));
    }

    #[test]
    #[should_panic(expected = "zero threshold")]
    fn shed_batch_rejects_zero_threshold() {
        ShedBatchTier::new(Box::new(PriorityTiers), 0.0, 2);
    }

    #[test]
    fn default_admit_now_always_admits() {
        let q = [pending(0, 0.0, 10, 0, 1.0)];
        assert_eq!(Fcfs.admit_now(&q, &PolicyContext::at(1.0)), Some(0));
    }

    #[test]
    fn policies_have_names() {
        assert_eq!(Fcfs.name(), "fcfs");
        assert_eq!(ShortestPromptFirst::default().name(), "spf");
        assert_eq!(PriorityTiers.name(), "priority-edf");
        assert_eq!(ShedBatchTier::edf().name(), "shed-batch");
        assert_eq!(PolicyKind::ShedBatchTier.build().name(), "shed-batch");
    }
}
