//! Pluggable admission policies for the scenario scheduler.
//!
//! The base [`crate::Simulation`] admits strictly FIFO. Scenario runs
//! (see [`crate::scenario`]) instead consult a [`SchedulingPolicy`]
//! each time a batch slot opens: the policy sees every request that
//! has arrived and not yet been admitted, and picks which one prefills
//! next. Three classic policies ship here; anything implementing the
//! trait plugs in.

use crate::scenario::PendingRequest;

/// Picks the next pending request to admit.
pub trait SchedulingPolicy {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Index into `pending` of the request to admit next. Called with a
    /// non-empty slice in which every request has already arrived
    /// (`arrival_s <= now_s`); invoked again after each admission.
    fn pick(&mut self, pending: &[PendingRequest], now_s: f64) -> usize;
}

/// First-come-first-served: strictly by arrival time (ties by id), the
/// base scheduler's order.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fcfs;

impl SchedulingPolicy for Fcfs {
    fn name(&self) -> &'static str {
        "fcfs"
    }

    fn pick(&mut self, pending: &[PendingRequest], _now_s: f64) -> usize {
        argmin(pending, |p| (p.request.arrival_s, p.request.id, 0))
    }
}

/// Shortest-prompt-first: admit the cheapest prefill (ties by arrival,
/// then id). Improves mean T2FT under bursts at the cost of starving
/// long prompts.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestPromptFirst;

impl SchedulingPolicy for ShortestPromptFirst {
    fn name(&self) -> &'static str {
        "spf"
    }

    fn pick(&mut self, pending: &[PendingRequest], _now_s: f64) -> usize {
        argmin(pending, |p| {
            (
                p.request.input_len as f64,
                p.request.arrival_s,
                p.request.id,
            )
        })
    }
}

/// Priority tiers with earliest-deadline-first inside each tier: lower
/// tier priority wins outright, then the nearest SLO deadline, then
/// arrival order. The SLO-serving policy for tiered scenarios.
#[derive(Debug, Clone, Copy, Default)]
pub struct PriorityTiers;

impl SchedulingPolicy for PriorityTiers {
    fn name(&self) -> &'static str {
        "priority-edf"
    }

    fn pick(&mut self, pending: &[PendingRequest], _now_s: f64) -> usize {
        argmin(pending, |p| {
            (f64::from(p.priority), p.deadline_s, p.request.arrival_s)
        })
    }
}

/// The shipped policies, as a value type for sweep drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fcfs`].
    Fcfs,
    /// [`ShortestPromptFirst`].
    ShortestPromptFirst,
    /// [`PriorityTiers`].
    PriorityTiers,
}

impl PolicyKind {
    /// Every shipped policy.
    pub const ALL: [PolicyKind; 3] = [
        PolicyKind::Fcfs,
        PolicyKind::ShortestPromptFirst,
        PolicyKind::PriorityTiers,
    ];

    /// Instantiate the policy.
    pub fn build(self) -> Box<dyn SchedulingPolicy> {
        match self {
            PolicyKind::Fcfs => Box::new(Fcfs),
            PolicyKind::ShortestPromptFirst => Box::new(ShortestPromptFirst),
            PolicyKind::PriorityTiers => Box::new(PriorityTiers),
        }
    }

    /// The policy's display name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::ShortestPromptFirst => "spf",
            PolicyKind::PriorityTiers => "priority-edf",
        }
    }
}

/// Index of the minimum key; deterministic (first minimum wins).
fn argmin<K: PartialOrd, F: Fn(&PendingRequest) -> K>(pending: &[PendingRequest], key: F) -> usize {
    assert!(!pending.is_empty(), "policy consulted with an empty queue");
    let mut best = 0;
    for i in 1..pending.len() {
        if key(&pending[i]) < key(&pending[best]) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn pending(id: u64, arrival: f64, input: u64, priority: u32, deadline: f64) -> PendingRequest {
        PendingRequest {
            request: Request {
                id,
                arrival_s: arrival,
                input_len: input,
                output_len: 8,
            },
            tier: priority as usize,
            priority,
            deadline_s: deadline,
            conversation: id,
            round: 1,
            history_tokens: 0,
        }
    }

    #[test]
    fn fcfs_orders_by_arrival() {
        let q = [
            pending(0, 2.0, 10, 0, 9.0),
            pending(1, 1.0, 900, 0, 9.0),
            pending(2, 3.0, 5, 0, 9.0),
        ];
        assert_eq!(Fcfs.pick(&q, 3.0), 1);
    }

    #[test]
    fn spf_orders_by_prompt_length() {
        let q = [
            pending(0, 1.0, 100, 0, 9.0),
            pending(1, 2.0, 8, 0, 9.0),
            pending(2, 0.5, 600, 0, 9.0),
        ];
        assert_eq!(ShortestPromptFirst.pick(&q, 3.0), 1);
    }

    #[test]
    fn tiers_beat_deadlines_beat_arrival() {
        let q = [
            pending(0, 0.1, 10, 2, 0.5), // low tier, urgent deadline
            pending(1, 0.2, 10, 1, 9.0), // high tier, late deadline
            pending(2, 0.3, 10, 1, 4.0), // high tier, nearer deadline
        ];
        assert_eq!(PriorityTiers.pick(&q, 1.0), 2);
        // Without the high tier, the urgent low-tier request wins.
        let q2 = [pending(0, 0.1, 10, 2, 0.5), pending(3, 0.0, 10, 2, 8.0)];
        assert_eq!(PriorityTiers.pick(&q2, 1.0), 0);
    }

    #[test]
    fn policies_have_names() {
        assert_eq!(Fcfs.name(), "fcfs");
        assert_eq!(ShortestPromptFirst.name(), "spf");
        assert_eq!(PriorityTiers.name(), "priority-edf");
    }
}
