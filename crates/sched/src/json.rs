//! A minimal JSON reader for the trace files and benchmark reports
//! this workspace exchanges. The build environment is offline (no
//! serde), so this hand-rolled recursive-descent parser covers the
//! JSON subset those files use: objects, arrays, strings without
//! escapes beyond `\" \\ \/ \n \t \r`, f64 numbers, booleans and null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The number as a non-negative integer (truncating), if numeric.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|x| *x >= 0.0 && x.is_finite())
            .map(|x| x as u64)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }
}

/// Parse a complete JSON document.
///
/// # Errors
///
/// Returns a message with a byte offset on malformed input or trailing
/// garbage.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing characters at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&ch) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", ch as char, pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".into()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number slice");
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let escaped = match bytes.get(*pos) {
                    Some(b'"') => '"',
                    Some(b'\\') => '\\',
                    Some(b'/') => '/',
                    Some(b'n') => '\n',
                    Some(b't') => '\t',
                    Some(b'r') => '\r',
                    other => return Err(format!("unsupported escape {other:?} at byte {pos}")),
                };
                out.push(escaped);
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through untouched).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| format!("invalid UTF-8 at byte {pos}"))?;
                let ch = rest.chars().next().expect("non-empty checked above");
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(
            r#"{"schema": "x/v1", "ok": true, "none": null,
               "nums": [1, -2.5, 3e2], "nested": {"a": {"b": 7}}}"#,
        )
        .expect("valid");
        assert_eq!(v.get("schema").and_then(JsonValue::as_str), Some("x/v1"));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        let nums = v.get("nums").and_then(JsonValue::as_array).expect("array");
        assert_eq!(nums[1].as_f64(), Some(-2.5));
        assert_eq!(nums[2].as_f64(), Some(300.0));
        let b = v
            .get("nested")
            .and_then(|n| n.get("a"))
            .and_then(|a| a.get("b"));
        assert_eq!(b.and_then(JsonValue::as_u64), Some(7));
    }

    #[test]
    fn parses_strings_with_escapes() {
        let v = parse(r#"["a\"b", "tab\there", "slash\/ok"]"#).expect("valid");
        let items = v.as_array().expect("array");
        assert_eq!(items[0].as_str(), Some("a\"b"));
        assert_eq!(items[1].as_str(), Some("tab\there"));
        assert_eq!(items[2].as_str(), Some("slash/ok"));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1, 2,]").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("nope").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn empty_containers_parse() {
        assert_eq!(parse("{}").expect("obj"), JsonValue::Obj(vec![]));
        assert_eq!(parse("[]").expect("arr"), JsonValue::Arr(vec![]));
        assert_eq!(parse(" 4 ").expect("num").as_u64(), Some(4));
    }

    #[test]
    fn duplicate_keys_keep_the_last() {
        let v = parse(r#"{"a": 1, "a": 2}"#).expect("valid");
        assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(2));
    }
}
