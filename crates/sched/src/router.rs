//! Request routing across a fleet of replicas (see [`crate::cluster`]).
//!
//! A [`Router`] is the cluster's load balancer: every arriving request
//! (fresh conversations *and* multi-turn follow-ups) is shown a
//! [`ReplicaSnapshot`] per replica and the router picks where it
//! queues. Three classic disciplines ship here:
//!
//! * [`RoundRobin`] — ignore state, cycle through replicas: the
//!   baseline every serving fleet starts with.
//! * [`LeastOutstandingWork`] — join-shortest-queue over committed
//!   requests (with outstanding tokens as a bounded tiebreak), scaled
//!   by each replica's capacity weight so heterogeneous fleets load
//!   faster replicas proportionally harder.
//! * [`SessionAffinity`] — pin a conversation's follow-up rounds to
//!   the replica holding their parked KV, so multi-turn prefix reuse
//!   survives behind the load balancer; spill to the
//!   least-outstanding replica when the pinned one saturates (or the
//!   history was evicted). Fresh requests route least-outstanding.
//! * [`KvMigration`] — affinity that, when the pinned replica is down
//!   or saturated, weighs *shipping* the parked history over the
//!   interconnect against re-prefilling it at the new replica, and
//!   asks the cluster to migrate when the transfer is cheaper (see
//!   [`Router::decide`] and [`crate::fault::KvLinkSpec`]).
//!
//! Routers are deterministic: same arrival stream + same snapshots =
//! same placement, which is what keeps cluster runs seed-stable.
//!
//! # Two-dimensional placement
//!
//! A disaggregated fleet (see [`crate::cluster::DisaggPlan`]) splits
//! replicas into a prefill pool and a decode pool, so a request needs
//! *two* replica picks: where its prompt runs and where its generated
//! KV lands. [`Router::place`] is that decision — a [`Placement`]
//! holding one [`PoolTarget`] per phase. The default implementation
//! makes every one-dimensional router pool-aware for free: in a
//! colocated fleet it wraps [`Router::decide`] exactly once (so the
//! classic path is byte-identical to the pre-placement API), and in a
//! disaggregated fleet it runs the router once per pool against a
//! masked snapshot view in which the other pool's replicas are shown
//! as non-accepting — a discipline every shipped router already
//! honors. See `docs/placement-api.md` for the full model.

use crate::fault::KvLinkSpec;
use crate::scenario::PendingRequest;

/// A replica's role in the fleet. Classic fleets are entirely
/// [`PoolRole::Colocated`]; a [`crate::cluster::DisaggPlan`] splits
/// the fleet into prefill-only and decode-only pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PoolRole {
    /// Runs both phases (the classic, non-disaggregated default).
    #[default]
    Colocated,
    /// Runs prompts only and hands finished KV to a decode replica.
    Prefill,
    /// Runs decode batches only; joins arrive as priced KV transfers.
    Decode,
}

/// A placement target inside one pool: the replica's index in the
/// cluster's replica list.
pub type PoolTarget = usize;

/// One replica's state as shown to a [`Router`] at routing time.
/// Replicas run on one shared virtual clock but their local frontiers
/// drift (each sits at its own stage boundary); the snapshot exposes
/// queue state the way a real load balancer would poll it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaSnapshot {
    /// The replica's local clock (end of its last executed stage).
    pub now_s: f64,
    /// Requests holding a batch slot (decoding or mid-prefill).
    pub in_flight: usize,
    /// Requests routed here but not yet admitted.
    pub queued: usize,
    /// The replica's batch-slot budget.
    pub max_batch: usize,
    /// Prefill + generation tokens still ahead of this replica's
    /// in-flight and queued requests.
    pub outstanding_tokens: u64,
    /// KV bytes reserved by in-flight work.
    pub kv_reserved_bytes: u64,
    /// The replica's KV budget.
    pub kv_capacity_bytes: u64,
    /// Relative serving capacity (1.0 = fleet average; a replica twice
    /// as fast carries weight 2.0). Heterogeneous fleets set this from
    /// probed stage latencies.
    pub weight: f64,
    /// Resident tokens of the routed request's conversation history
    /// parked in this replica's KV pool (0 = none). Replicas that
    /// served earlier rounds hold shorter, stale prefixes; the current
    /// holder reports the full history.
    pub resident_history_tokens: u64,
    /// Whether this replica still accepts work (false once its stage
    /// cap truncated it); routers must avoid non-accepting replicas
    /// while an accepting one exists.
    pub accepting: bool,
    /// The replica's pool role ([`PoolRole::Colocated`] in a classic
    /// fleet). [`Router::place`]'s default masks the snapshots by this
    /// field, so one-dimensional routers never need to read it.
    pub role: PoolRole,
    /// Bytes of KV committed to this replica but not currently in the
    /// live batch: finished prefill KV assigned to stream here but not
    /// yet delivered (disaggregated decode replicas), plus the
    /// swapped-out KV of preempted decodes paused on this replica —
    /// both re-enter as priced work (a transfer, a restore), so
    /// placement policies weighing the interconnect should count them
    /// together. Pending joins also count in
    /// [`ReplicaSnapshot::queued`], so load-based routers price them
    /// without reading this field.
    pub transfer_backlog_bytes: u64,
}

impl ReplicaSnapshot {
    /// Committed requests (in-flight + queued, the admission-delay
    /// signal) plus a token-scale tiebreak, normalized by the
    /// replica's capacity weight — the estimated admission delay the
    /// balancing routers minimize. Queue depth dominates because a
    /// new request's time-to-first-token is bounded by the requests
    /// holding and waiting for slots ahead of it, not by their
    /// residual token counts.
    pub fn weighted_load(&self) -> f64 {
        let slots = (self.in_flight + self.queued) as f64;
        let drain = self.outstanding_tokens as f64;
        (slots + drain / (1.0 + drain)) / self.weight.max(f64::MIN_POSITIVE)
    }

    /// Queue-pressure estimate: committed slots (in-flight + queued)
    /// per batch slot. 1.0 means a full second batch is already
    /// waiting... 2.0 means two batches' worth, and so on.
    pub fn queue_pressure(&self) -> f64 {
        (self.in_flight + self.queued) as f64 / self.max_batch.max(1) as f64
    }

    /// Whether any of the routed request's conversation KV is parked
    /// here.
    pub fn holds_conversation(&self) -> bool {
        self.resident_history_tokens > 0
    }
}

/// Deterministic argmin over the accepting replicas (all of them when
/// none accepts — the run is truncating and the pick is moot); first
/// minimum wins.
fn argmin_accepting<K: PartialOrd, F: Fn(&ReplicaSnapshot) -> K>(
    replicas: &[ReplicaSnapshot],
    key: F,
) -> usize {
    assert!(!replicas.is_empty(), "router consulted with no replicas");
    let mut best: Option<usize> = None;
    for (i, r) in replicas.iter().enumerate() {
        if !r.accepting {
            continue;
        }
        match best {
            Some(b) if key(&replicas[b]) <= key(r) => {}
            _ => best = Some(i),
        }
    }
    best.unwrap_or(0)
}

/// A routing decision: where the request queues, whether its parked
/// conversation KV should be migrated there first, and whether the
/// fleet sheds it instead of placing it at all.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteDecision {
    /// The replica the request queues on.
    pub replica: usize,
    /// Migrate the conversation's parked KV from this replica to
    /// [`RouteDecision::replica`] before queueing (a priced transfer
    /// over the interconnect; see [`crate::fault::KvLinkSpec`]). The
    /// cluster ignores it when it equals the target or the source no
    /// longer holds the history.
    pub migrate_from: Option<usize>,
    /// Fleet-level shed: do not place the request now — requeue it
    /// into the arrival stream at this virtual time instead (its
    /// absolute SLO deadline is unchanged, so the shed still costs
    /// attainment if overdone). `replica`/`migrate_from` are ignored
    /// when set. Emitted by [`FleetShed`]; `None` everywhere else.
    pub defer_until_s: Option<f64>,
}

impl RouteDecision {
    /// A plain placement on `replica` (no migration, no shed).
    pub fn place(replica: usize) -> Self {
        Self {
            replica,
            migrate_from: None,
            defer_until_s: None,
        }
    }
}

/// A two-dimensional routing decision: which replica runs the
/// request's prompt and which replica its generated tokens — the
/// colocated case being the degenerate one where both targets are the
/// same replica. Produced by [`Router::place`]; the extra fields
/// carry the [`RouteDecision`] escape hatches (KV migration, fleet
/// shed) through unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Placement {
    /// The replica that runs the prompt.
    pub prefill: PoolTarget,
    /// The replica the request decodes on. Equal to
    /// [`Placement::prefill`] when colocated; in a disaggregated fleet
    /// this is fixed at admission time and the finished KV is shipped
    /// there as one priced transfer.
    pub decode: PoolTarget,
    /// As [`RouteDecision::migrate_from`] (colocated placements only;
    /// disaggregated handoffs move KV through the prefill→decode
    /// transfer instead).
    pub migrate_from: Option<usize>,
    /// As [`RouteDecision::defer_until_s`].
    pub defer_until_s: Option<f64>,
}

impl Placement {
    /// The degenerate placement: both phases on `replica`.
    pub fn colocated(replica: usize) -> Self {
        Self {
            prefill: replica,
            decode: replica,
            migrate_from: None,
            defer_until_s: None,
        }
    }

    /// A split placement: prompt on `prefill`, generation on `decode`.
    pub fn split(prefill: PoolTarget, decode: PoolTarget) -> Self {
        Self {
            prefill,
            decode,
            migrate_from: None,
            defer_until_s: None,
        }
    }

    /// Lift a one-dimensional [`RouteDecision`] into the placement
    /// space (prefill and decode on the decided replica).
    pub fn from_decision(decision: RouteDecision) -> Self {
        Self {
            prefill: decision.replica,
            decode: decision.replica,
            migrate_from: decision.migrate_from,
            defer_until_s: decision.defer_until_s,
        }
    }

    /// Whether both phases land on one replica.
    pub fn is_colocated(&self) -> bool {
        self.prefill == self.decode
    }
}

/// A copy of `replicas` in which every replica outside `role`'s pool
/// is shown as non-accepting — the masking that turns a
/// one-dimensional router into a per-pool picker.
fn pool_view(replicas: &[ReplicaSnapshot], role: PoolRole) -> Vec<ReplicaSnapshot> {
    replicas
        .iter()
        .map(|r| {
            let mut r = *r;
            if r.role != role {
                r.accepting = false;
            }
            r
        })
        .collect()
}

/// Picks the replica an arriving request queues on.
pub trait Router {
    /// Display name for reports.
    fn name(&self) -> &'static str;

    /// Index of the replica `request` is routed to. `replicas` is
    /// non-empty and indexed like the cluster's replica list.
    fn route(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> usize;

    /// Full routing decision, including an optional KV-migration
    /// request. The default wraps [`Router::route`] with no migration;
    /// migration-aware routers override this instead.
    fn decide(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> RouteDecision {
        RouteDecision::place(self.route(request, replicas))
    }

    /// Two-dimensional placement: where the prompt runs and where the
    /// request decodes. The default makes any router pool-aware:
    ///
    /// * No prefill pool in the fleet → one [`Router::decide`] call,
    ///   lifted to a colocated placement — *byte-identical* to the
    ///   one-dimensional API (the cluster pins this by proptest).
    /// * Disaggregated fleet → one [`Router::decide`] call per pool
    ///   against a masked view where the other pool is non-accepting
    ///   (`pool_view`); KV migration is dropped (the handoff moves
    ///   the KV), deferrals from either pool are honored.
    fn place(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> Placement {
        if !replicas.iter().any(|r| r.role == PoolRole::Prefill) {
            return Placement::from_decision(self.decide(request, replicas));
        }
        let prefill = self.decide(request, &pool_view(replicas, PoolRole::Prefill));
        let decode = self.decide(request, &pool_view(replicas, PoolRole::Decode));
        Placement {
            prefill: prefill.replica,
            decode: decode.replica,
            migrate_from: None,
            defer_until_s: prefill.defer_until_s.or(decode.defer_until_s),
        }
    }

    /// The router's mutable state as opaque words, for cluster
    /// snapshots. Stateless routers (the default) export nothing;
    /// [`RoundRobin`] exports its rotation cursor.
    fn export_state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Restore state captured by [`export_state`](Self::export_state).
    /// The default ignores it (stateless routers).
    fn import_state(&mut self, state: &[u64]) {
        let _ = state;
    }
}

/// State-blind rotation: request k goes to replica k mod N.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
    /// Decode-pool rotation cursor, touched only by split placements —
    /// a shared cursor parity-locks on contiguous pool layouts (the
    /// masked skips advance it by a full cycle per placement, so both
    /// pools would pin to one replica each).
    decode_next: usize,
}

impl Router for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> usize {
        assert!(!replicas.is_empty(), "router consulted with no replicas");
        // Rotate, skipping replicas that no longer accept (a full
        // cycle of non-accepting replicas falls back to the plain
        // rotation so the pick is still total).
        for _ in 0..replicas.len() {
            let pick = self.next % replicas.len();
            self.next = (self.next + 1) % replicas.len();
            if replicas[pick].accepting {
                return pick;
            }
        }
        let pick = self.next % replicas.len();
        self.next = (self.next + 1) % replicas.len();
        pick
    }

    fn place(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> Placement {
        if !replicas.iter().any(|r| r.role == PoolRole::Prefill) {
            return Placement::from_decision(self.decide(request, replicas));
        }
        let prefill = self.route(request, &pool_view(replicas, PoolRole::Prefill));
        core::mem::swap(&mut self.next, &mut self.decode_next);
        let decode = self.route(request, &pool_view(replicas, PoolRole::Decode));
        core::mem::swap(&mut self.next, &mut self.decode_next);
        Placement {
            prefill,
            decode,
            migrate_from: None,
            defer_until_s: None,
        }
    }

    fn export_state(&self) -> Vec<u64> {
        vec![self.next as u64, self.decode_next as u64]
    }

    fn import_state(&mut self, state: &[u64]) {
        if let Some(&next) = state.first() {
            self.next = next as usize;
        }
        if let Some(&next) = state.get(1) {
            self.decode_next = next as usize;
        }
    }
}

/// Join-shortest-queue: route to the replica with the least
/// capacity-weighted committed work (see
/// [`ReplicaSnapshot::weighted_load`]; ties to the lowest index).
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastOutstandingWork;

impl Router for LeastOutstandingWork {
    fn name(&self) -> &'static str {
        "least-outstanding"
    }

    fn route(&mut self, _request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> usize {
        argmin_accepting(replicas, ReplicaSnapshot::weighted_load)
    }
}

/// The shared core of the affinity-family routers
/// ([`SessionAffinity`], [`KvMigration`] and their pool-aware uses
/// through [`Router::place`]): find the replica holding the longest
/// resident prefix of a conversation, and decide whether to pin there
/// or spill under a queue-pressure threshold. Exists so the two
/// routers (which historically copy-pasted this) stay behaviorally
/// identical by construction.
#[derive(Debug, Clone, Copy)]
pub struct AffinityCore {
    /// Spill threshold in [`ReplicaSnapshot::queue_pressure`] units:
    /// when the pinned replica's committed slots exceed this many
    /// batches, the follow-up spills to the least-loaded replica
    /// instead (re-prefilling its history there beats queueing behind
    /// a hot spot).
    pub spill_pressure: f64,
}

impl AffinityCore {
    /// A core spilling past `spill_pressure` batches of committed
    /// work on the pinned replica.
    pub fn new(spill_pressure: f64) -> Self {
        assert!(spill_pressure > 0.0, "spill pressure must be positive");
        Self { spill_pressure }
    }

    /// The replica holding the longest resident prefix of the routed
    /// conversation (several replicas may hold stale, shorter parks
    /// from earlier rounds); first maximum wins on ties. With
    /// `require_accepting`, non-accepting holders are invisible;
    /// without it a downed holder is still found (it cannot take the
    /// request but can be a migration source).
    pub fn holder(
        replicas: &[ReplicaSnapshot],
        require_accepting: bool,
    ) -> Option<(usize, &ReplicaSnapshot)> {
        replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| (!require_accepting || r.accepting) && r.holds_conversation())
            .max_by(|(ia, a), (ib, b)| {
                a.resident_history_tokens
                    .cmp(&b.resident_history_tokens)
                    // First maximum wins on ties.
                    .then(ib.cmp(ia))
            })
    }

    /// Whether the follow-up pins to `holder` rather than spilling.
    pub fn pins(&self, holder: &ReplicaSnapshot) -> bool {
        holder.queue_pressure() <= self.spill_pressure
    }
}

/// Session-affinity routing: a follow-up whose conversation KV is
/// still parked on a replica goes back to that replica — the routing
/// discipline that lets multi-turn prefix reuse survive behind a load
/// balancer. Everything else (fresh conversations, evicted histories,
/// and follow-ups whose pinned replica is saturated) falls through to
/// [`LeastOutstandingWork`]. Pin/spill logic lives in
/// [`AffinityCore`].
///
/// Affinity only follows *conversation* parks
/// ([`ReplicaSnapshot::resident_history_tokens`]). The swapped-out KV
/// of preemption-paused decodes shares the parked pool but belongs to
/// a request already in flight on that replica — it is never an
/// affinity target and surfaces only as
/// [`ReplicaSnapshot::transfer_backlog_bytes`].
#[derive(Debug, Clone, Copy)]
pub struct SessionAffinity {
    /// The pin/spill core (see [`AffinityCore::spill_pressure`]).
    pub core: AffinityCore,
    fallback: LeastOutstandingWork,
}

impl SessionAffinity {
    /// Default spill threshold: two full batches of committed work.
    pub const DEFAULT_SPILL_PRESSURE: f64 = 2.0;

    /// Affinity routing spilling past `spill_pressure` batches of
    /// committed work on the pinned replica.
    pub fn with_spill(spill_pressure: f64) -> Self {
        Self {
            core: AffinityCore::new(spill_pressure),
            fallback: LeastOutstandingWork,
        }
    }
}

impl Default for SessionAffinity {
    fn default() -> Self {
        Self::with_spill(Self::DEFAULT_SPILL_PRESSURE)
    }
}

impl Router for SessionAffinity {
    fn name(&self) -> &'static str {
        "session-affinity"
    }

    fn route(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> usize {
        assert!(!replicas.is_empty(), "router consulted with no replicas");
        if request.history_tokens > 0 {
            // Pin to the longest resident prefix — the one that saves
            // the most prefill.
            if let Some((pinned, holder)) = AffinityCore::holder(replicas, true) {
                if self.core.pins(holder) {
                    return pinned;
                }
            }
        }
        self.fallback.route(request, replicas)
    }
}

/// Migration-aware session affinity: follow-ups pin to their KV
/// holder like [`SessionAffinity`], but when the holder is down or
/// saturated the router weighs *shipping* the parked pages over the
/// interconnect against re-prefilling the history at the new replica,
/// and requests a migration (via [`Router::decide`]) when the
/// transfer is cheaper. The estimates here only steer the decision;
/// the cluster prices the actual transfer with the replica's exact
/// KV geometry.
///
/// Like [`SessionAffinity`], this router migrates *conversation*
/// parks only: a preemption-paused decode's swapped-out KV is pinned
/// to its replica (the request is still in flight there) and counts
/// toward [`ReplicaSnapshot::transfer_backlog_bytes`] instead, where
/// a placement policy can price the pending restores.
#[derive(Debug, Clone, Copy)]
pub struct KvMigration {
    /// The pin/spill core, as in [`SessionAffinity::core`]. The
    /// default threshold is lower (one batch, not two): with a cheap
    /// migration path, diverting off a hot holder early costs a
    /// transfer instead of a re-prefill, so pinning through congestion
    /// pays off less.
    pub core: AffinityCore,
    /// The interconnect the migration would cross.
    pub link: KvLinkSpec,
    /// Estimated KV bytes per parked token (decision-making only).
    pub kv_bytes_per_token: u64,
    /// Estimated prefill throughput of a replica, tokens/s: the
    /// re-prefill cost a migration competes with.
    pub prefill_tokens_per_s: f64,
    fallback: LeastOutstandingWork,
}

impl KvMigration {
    /// Default spill threshold: one full batch of committed work.
    pub const DEFAULT_SPILL_PRESSURE: f64 = 1.0;

    /// Migration-aware affinity over `link`, estimating parked
    /// entries at `kv_bytes_per_token` and re-prefill at
    /// `prefill_tokens_per_s`.
    pub fn new(link: KvLinkSpec, kv_bytes_per_token: u64, prefill_tokens_per_s: f64) -> Self {
        assert!(
            prefill_tokens_per_s > 0.0,
            "prefill throughput must be positive"
        );
        Self {
            core: AffinityCore::new(Self::DEFAULT_SPILL_PRESSURE),
            link,
            kv_bytes_per_token,
            prefill_tokens_per_s,
            fallback: LeastOutstandingWork,
        }
    }

    /// Override the spill threshold.
    pub fn with_spill(mut self, spill_pressure: f64) -> Self {
        self.core = AffinityCore::new(spill_pressure);
        self
    }

    /// Whether shipping `resident` parked tokens beats re-prefilling
    /// them, under this router's estimates.
    fn migration_pays(&self, resident: u64) -> bool {
        let transfer_s = self
            .link
            .transfer_seconds(resident * self.kv_bytes_per_token);
        transfer_s < resident as f64 / self.prefill_tokens_per_s
    }
}

impl Default for KvMigration {
    /// Generic large-model estimates: the default interconnect,
    /// ~100 KB of KV per token, ~10k prefill tokens/s. Fleets with
    /// real numbers should use [`KvMigration::new`].
    fn default() -> Self {
        Self::new(KvLinkSpec::default(), 100_000, 10_000.0)
    }
}

impl Router for KvMigration {
    fn name(&self) -> &'static str {
        "kv-migration"
    }

    fn route(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> usize {
        self.decide(request, replicas).replica
    }

    fn decide(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> RouteDecision {
        assert!(!replicas.is_empty(), "router consulted with no replicas");
        if request.history_tokens > 0 {
            // The longest resident prefix, wherever it is — a downed
            // holder cannot take the request but can still be a
            // migration source.
            if let Some((src, holder)) = AffinityCore::holder(replicas, false) {
                if holder.accepting && self.core.pins(holder) {
                    return RouteDecision::place(src);
                }
                // The holder is down or hot: divert, and bring the KV
                // along when the wire beats the re-prefill.
                let target = self.fallback.route(request, replicas);
                let migrate = target != src && self.migration_pays(holder.resident_history_tokens);
                return RouteDecision {
                    replica: target,
                    migrate_from: migrate.then_some(src),
                    defer_until_s: None,
                };
            }
        }
        RouteDecision::place(self.fallback.route(request, replicas))
    }
}

/// Cluster-wide admission control: the fleet-level analogue of the
/// per-replica [`crate::policy::ShedBatchTier`] wrapper. While the
/// fleet's aggregate utilization (committed slots over total batch
/// slots of the admitting replicas) is at or above
/// [`FleetShed::utilization_threshold`], arrivals of priority
/// [`FleetShed::shed_priority`] or lower (numerically greater-or-
/// equal) are not placed at all — the router defers them
/// [`FleetShed::defer_s`] of virtual time back into the arrival
/// stream, with their absolute SLO deadlines unchanged. Interactive
/// tiers keep routing through the wrapped inner router untouched.
///
/// Deferrals are counted in
/// [`crate::fault::RecoveryStats::requests_deferred`]. Because the
/// utilization signal is a pure function of the snapshots every
/// router already sees, shedding keeps cluster runs deterministic.
pub struct FleetShed {
    inner: Box<dyn Router>,
    /// Fleet utilization (committed slots / total batch slots of the
    /// admitting replicas) at or above which sheddable arrivals defer.
    pub utilization_threshold: f64,
    /// Lowest priority value that is *kept* under load; requests with
    /// `priority >= shed_priority` (lower tiers) shed. Matches
    /// [`crate::policy::ShedBatchTier::shed_priority`].
    pub shed_priority: u32,
    /// Virtual seconds a shed arrival is pushed back before it retries
    /// admission.
    pub defer_s: f64,
}

impl FleetShed {
    /// Default utilization threshold, matching the per-replica
    /// [`crate::policy::ShedBatchTier`].
    pub const DEFAULT_UTILIZATION_THRESHOLD: f64 = 0.85;
    /// Default shed priority: the batch tier of the default tier set.
    pub const DEFAULT_SHED_PRIORITY: u32 = 2;
    /// Default deferral: half a virtual second per shed.
    pub const DEFAULT_DEFER_S: f64 = 0.5;

    /// Wrap `inner` with fleet-level shedding at the default
    /// threshold, priority and deferral.
    pub fn new(inner: Box<dyn Router>) -> Self {
        Self {
            inner,
            utilization_threshold: Self::DEFAULT_UTILIZATION_THRESHOLD,
            shed_priority: Self::DEFAULT_SHED_PRIORITY,
            defer_s: Self::DEFAULT_DEFER_S,
        }
    }

    /// Override the threshold, shed priority and deferral.
    pub fn with_shedding(mut self, threshold: f64, shed_priority: u32, defer_s: f64) -> Self {
        assert!(
            threshold > 0.0 && threshold.is_finite(),
            "utilization threshold must be positive and finite"
        );
        assert!(defer_s > 0.0, "deferral must be positive");
        self.utilization_threshold = threshold;
        self.shed_priority = shed_priority;
        self.defer_s = defer_s;
        self
    }

    /// Committed slots over total batch slots of the admitting
    /// replicas (0 when none admits — nothing to shed toward).
    fn utilization(replicas: &[ReplicaSnapshot]) -> f64 {
        let (mut committed, mut slots) = (0usize, 0usize);
        for r in replicas.iter().filter(|r| r.accepting) {
            committed += r.in_flight + r.queued;
            slots += r.max_batch;
        }
        if slots == 0 {
            return 0.0;
        }
        committed as f64 / slots as f64
    }
}

impl Router for FleetShed {
    fn name(&self) -> &'static str {
        "fleet-shed"
    }

    fn route(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> usize {
        self.inner.route(request, replicas)
    }

    fn decide(&mut self, request: &PendingRequest, replicas: &[ReplicaSnapshot]) -> RouteDecision {
        if request.priority >= self.shed_priority
            && Self::utilization(replicas) >= self.utilization_threshold
        {
            return RouteDecision {
                replica: 0,
                migrate_from: None,
                defer_until_s: Some(request.request.arrival_s + self.defer_s),
            };
        }
        self.inner.decide(request, replicas)
    }

    fn export_state(&self) -> Vec<u64> {
        self.inner.export_state()
    }

    fn import_state(&mut self, state: &[u64]) {
        self.inner.import_state(state);
    }
}

/// Fleet-derived parameters a router is built against (see
/// [`RouterKind::build_with`]): the interconnect and KV geometry that
/// [`KvMigration`]'s estimates should match instead of guessing.
/// Sweep drivers derive one from the fleet's comm model and replica
/// configs rather than re-deriving the numbers ad hoc per call site.
#[derive(Debug, Clone, Copy)]
pub struct ClusterContext {
    /// The interconnect KV transfers cross.
    pub kv_link: KvLinkSpec,
    /// KV bytes per parked token of the fleet's replicas.
    pub kv_bytes_per_token: u64,
    /// Estimated prefill throughput of a replica, tokens/s.
    pub prefill_tokens_per_s: f64,
}

impl Default for ClusterContext {
    /// The same generic large-model estimates as
    /// [`KvMigration::default`], so `build_with(&Default::default())`
    /// and [`RouterKind::build`] agree.
    fn default() -> Self {
        Self {
            kv_link: KvLinkSpec::default(),
            kv_bytes_per_token: 100_000,
            prefill_tokens_per_s: 10_000.0,
        }
    }
}

/// The shipped routers, as a value type for sweep drivers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstandingWork`].
    LeastOutstandingWork,
    /// [`SessionAffinity`] with the default spill threshold.
    SessionAffinity,
    /// [`KvMigration`] with the default link and cost estimates.
    KvMigration,
}

impl RouterKind {
    /// Every shipped router.
    pub const ALL: [RouterKind; 4] = [
        RouterKind::RoundRobin,
        RouterKind::LeastOutstandingWork,
        RouterKind::SessionAffinity,
        RouterKind::KvMigration,
    ];

    /// Instantiate the router with its hardcoded default estimates
    /// (equivalent to [`RouterKind::build_with`] over
    /// [`ClusterContext::default`]).
    pub fn build(self) -> Box<dyn Router> {
        self.build_with(&ClusterContext::default())
    }

    /// Instantiate the router against fleet-derived parameters:
    /// [`KvMigration`] prices its ship-vs-reprefill decision with the
    /// fleet's actual link and KV geometry; the state-only routers
    /// ignore the context.
    pub fn build_with(self, ctx: &ClusterContext) -> Box<dyn Router> {
        match self {
            RouterKind::RoundRobin => Box::new(RoundRobin::default()),
            RouterKind::LeastOutstandingWork => Box::new(LeastOutstandingWork),
            RouterKind::SessionAffinity => Box::new(SessionAffinity::default()),
            RouterKind::KvMigration => Box::new(KvMigration::new(
                ctx.kv_link,
                ctx.kv_bytes_per_token,
                ctx.prefill_tokens_per_s,
            )),
        }
    }

    /// The router's display name.
    pub fn name(self) -> &'static str {
        match self {
            RouterKind::RoundRobin => "round-robin",
            RouterKind::LeastOutstandingWork => "least-outstanding",
            RouterKind::SessionAffinity => "session-affinity",
            RouterKind::KvMigration => "kv-migration",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    fn snapshot(outstanding: u64, weight: f64) -> ReplicaSnapshot {
        ReplicaSnapshot {
            now_s: 0.0,
            in_flight: 0,
            queued: 0,
            max_batch: 8,
            outstanding_tokens: outstanding,
            kv_reserved_bytes: 0,
            kv_capacity_bytes: 1 << 30,
            weight,
            resident_history_tokens: 0,
            accepting: true,
            role: PoolRole::Colocated,
            transfer_backlog_bytes: 0,
        }
    }

    fn request(history: u64) -> PendingRequest {
        PendingRequest {
            request: Request {
                id: 1,
                arrival_s: 0.0,
                input_len: 128,
                output_len: 16,
            },
            tier: 0,
            priority: 0,
            deadline_s: f64::INFINITY,
            conversation: 1,
            round: if history > 0 { 2 } else { 1 },
            history_tokens: history,
            skipped: 0,
        }
    }

    #[test]
    fn round_robin_cycles() {
        let mut rr = RoundRobin::default();
        let snaps = vec![snapshot(0, 1.0); 3];
        let picks: Vec<usize> = (0..7).map(|_| rr.route(&request(0), &snaps)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn least_outstanding_balances_by_weighted_queue_depth() {
        let mut jsq = LeastOutstandingWork;
        // Queue depth dominates: 2 committed requests beat 5, whatever
        // the token backlogs say.
        let mut deep = snapshot(100, 1.0);
        deep.in_flight = 5;
        let mut shallow = snapshot(900, 1.0);
        shallow.in_flight = 1;
        shallow.queued = 1;
        assert_eq!(jsq.route(&request(0), &[deep, shallow]), 1);
        // Equal depths fall back to the token tiebreak.
        let snaps = vec![snapshot(500, 1.0), snapshot(100, 1.0), snapshot(300, 1.0)];
        assert_eq!(jsq.route(&request(0), &snaps), 1);
        // A replica twice as fast absorbs twice the committed work: 4
        // slots at weight 2 beat 3 slots at weight 1.
        let mut fast = snapshot(0, 2.0);
        fast.in_flight = 4;
        let mut slow = snapshot(0, 1.0);
        slow.in_flight = 3;
        assert_eq!(jsq.route(&request(0), &[fast, slow]), 0);
        // Ties go to the lowest index, deterministically.
        let tied = vec![snapshot(100, 1.0), snapshot(100, 1.0)];
        assert_eq!(jsq.route(&request(0), &tied), 0);
    }

    #[test]
    fn affinity_pins_followups_to_the_kv_holder() {
        let mut aff = SessionAffinity::default();
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0)];
        snaps[0].resident_history_tokens = 64;
        // The follow-up returns to its KV even though replica 1 is
        // nearly idle ...
        assert_eq!(aff.route(&request(64), &snaps), 0);
        // ... but a fresh request load-balances.
        assert_eq!(aff.route(&request(0), &snaps), 1);
        // An evicted history (no holder) also load-balances.
        snaps[0].resident_history_tokens = 0;
        assert_eq!(aff.route(&request(64), &snaps), 1);
    }

    #[test]
    fn affinity_spills_off_a_saturated_holder() {
        let mut aff = SessionAffinity::with_spill(1.5);
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0)];
        snaps[0].resident_history_tokens = 64;
        snaps[0].in_flight = 8;
        snaps[0].queued = 3;
        // 11 committed slots over 8 = 1.375 batches: still pinned.
        assert_eq!(aff.route(&request(64), &snaps), 0);
        snaps[0].queued = 5;
        // 13/8 = 1.625 > 1.5: spill to the least-loaded replica.
        assert_eq!(aff.route(&request(64), &snaps), 1);
    }

    #[test]
    fn affinity_pins_to_the_longest_resident_prefix() {
        // Two replicas hold prefixes of the same conversation (a stale
        // park from round 1 and the current round-2 history): the
        // follow-up goes to the fuller one, whatever the load says.
        let mut aff = SessionAffinity::default();
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0), snapshot(0, 1.0)];
        snaps[0].resident_history_tokens = 68; // stale round-1 prefix
        snaps[2].resident_history_tokens = 88; // current history
        assert_eq!(aff.route(&request(88), &snaps), 2);
        // If the fuller holder stops accepting, the stale prefix still
        // beats a re-prefill.
        snaps[2].accepting = false;
        assert_eq!(aff.route(&request(88), &snaps), 0);
    }

    #[test]
    fn routers_skip_non_accepting_replicas() {
        // A stage-capped replica must stop receiving work while any
        // live replica remains.
        let mut snaps = vec![snapshot(0, 1.0), snapshot(500, 1.0), snapshot(400, 1.0)];
        snaps[0].accepting = false;
        let mut rr = RoundRobin::default();
        let picks: Vec<usize> = (0..4).map(|_| rr.route(&request(0), &snaps)).collect();
        assert_eq!(picks, vec![1, 2, 1, 2], "rotation skips the capped replica");
        // JSQ ignores the capped replica's tempting empty queue.
        assert_eq!(LeastOutstandingWork.route(&request(0), &snaps), 2);
        // With the whole fleet capped the pick is total (run is
        // truncating anyway).
        for s in snaps.iter_mut() {
            s.accepting = false;
        }
        assert_eq!(LeastOutstandingWork.route(&request(0), &snaps), 0);
        let _ = RoundRobin::default().route(&request(0), &snaps);
    }

    #[test]
    fn kv_migration_pins_until_the_holder_goes_down() {
        let mut mig = KvMigration::default();
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0)];
        snaps[0].resident_history_tokens = 64;
        // Healthy holder under the spill threshold: plain affinity.
        assert_eq!(mig.decide(&request(64), &snaps), RouteDecision::place(0));
        // Holder down (crash/drain): divert and ship the KV — the
        // default estimates price the wire far under the re-prefill.
        snaps[0].accepting = false;
        assert_eq!(
            mig.decide(&request(64), &snaps),
            RouteDecision {
                replica: 1,
                migrate_from: Some(0),
                defer_until_s: None
            }
        );
        // Fresh requests just load-balance.
        assert_eq!(mig.decide(&request(0), &snaps), RouteDecision::place(1));
    }

    #[test]
    fn kv_migration_declines_a_transfer_slower_than_reprefill() {
        // A 1 B/s link: shipping anything loses to re-prefilling.
        let mut mig = KvMigration::new(KvLinkSpec::new(1.0, 0.0), 100_000, 10_000.0);
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0)];
        snaps[0].resident_history_tokens = 64;
        snaps[0].accepting = false;
        assert_eq!(mig.decide(&request(64), &snaps), RouteDecision::place(1));
    }

    #[test]
    fn kv_migration_spills_a_hot_holder_earlier_than_affinity() {
        // One full batch committed on the holder: affinity (spill 2.0)
        // still pins, migration (spill 1.0 + cheap wire) diverts and
        // ships.
        let mut aff = SessionAffinity::default();
        let mut mig = KvMigration::default();
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0)];
        snaps[0].resident_history_tokens = 64;
        snaps[0].in_flight = 8;
        snaps[0].queued = 2;
        assert_eq!(aff.route(&request(64), &snaps), 0);
        assert_eq!(
            mig.decide(&request(64), &snaps),
            RouteDecision {
                replica: 1,
                migrate_from: Some(0),
                defer_until_s: None
            }
        );
    }

    #[test]
    fn kinds_build_their_routers() {
        for kind in RouterKind::ALL {
            assert_eq!(kind.build().name(), kind.name());
        }
    }

    #[test]
    fn fleet_shed_defers_only_the_batch_tier_under_load() {
        let mut shed = FleetShed::new(Box::new(LeastOutstandingWork));
        // A saturated two-replica fleet: 14 committed slots over 16.
        let mut snaps = vec![snapshot(100, 1.0), snapshot(100, 1.0)];
        snaps[0].in_flight = 8;
        snaps[1].in_flight = 5;
        snaps[1].queued = 1;
        let mut batch = request(0);
        batch.priority = 2;
        batch.request.arrival_s = 3.0;
        let decision = shed.decide(&batch, &snaps);
        assert_eq!(
            decision.defer_until_s,
            Some(3.0 + FleetShed::DEFAULT_DEFER_S),
            "batch tier sheds at 87.5% fleet utilization"
        );
        // The interactive tier routes straight through the inner
        // router, untouched.
        let interactive = request(0);
        assert_eq!(shed.decide(&interactive, &snaps), RouteDecision::place(1));
        // Under the threshold the batch tier routes normally too.
        snaps[0].in_flight = 2;
        snaps[1].in_flight = 2;
        snaps[1].queued = 0;
        assert_eq!(shed.decide(&batch, &snaps), RouteDecision::place(0));
    }

    #[test]
    fn fleet_shed_ignores_non_admitting_capacity() {
        // A downed replica's empty batch is not real capacity: with
        // one of two replicas down and the survivor full, utilization
        // is 8/8, not 8/16.
        let mut shed = FleetShed::new(Box::new(LeastOutstandingWork)).with_shedding(0.9, 1, 0.25);
        let mut snaps = vec![snapshot(0, 1.0), snapshot(0, 1.0)];
        snaps[0].accepting = false;
        snaps[1].in_flight = 8;
        let mut batch = request(0);
        batch.priority = 1;
        assert!(shed.decide(&batch, &snaps).defer_until_s.is_some());
        // With the whole fleet down there is nothing to defer toward.
        snaps[1].accepting = false;
        assert!(shed.decide(&batch, &snaps).defer_until_s.is_none());
        // State pass-through: the wrapper exports the inner router's
        // words verbatim.
        assert!(Router::export_state(&shed).is_empty());
        assert_eq!(shed.name(), "fleet-shed");
    }

    #[test]
    fn colocated_place_wraps_decide_exactly() {
        // In a fleet with no prefill pool, place() must be the
        // one-dimensional decision lifted verbatim — for every shipped
        // router, including the stateful ones (one decide per place,
        // so RoundRobin's cursor advances identically).
        for kind in RouterKind::ALL {
            let mut via_decide = kind.build();
            let mut via_place = kind.build();
            let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0), snapshot(90, 1.0)];
            snaps[2].resident_history_tokens = 64;
            for (i, req) in [request(0), request(64), request(0), request(64)]
                .iter()
                .enumerate()
            {
                snaps[i % 3].queued += i;
                let d = via_decide.decide(req, &snaps);
                let p = via_place.place(req, &snaps);
                assert_eq!(p, Placement::from_decision(d), "{}", kind.name());
                assert!(p.is_colocated());
            }
        }
    }

    #[test]
    fn disaggregated_place_picks_one_replica_per_pool() {
        let mut snaps = vec![
            snapshot(500, 1.0),
            snapshot(10, 1.0),
            snapshot(400, 1.0),
            snapshot(20, 1.0),
        ];
        snaps[0].role = PoolRole::Prefill;
        snaps[1].role = PoolRole::Prefill;
        snaps[2].role = PoolRole::Decode;
        snaps[3].role = PoolRole::Decode;
        let mut jsq = LeastOutstandingWork;
        let p = jsq.place(&request(0), &snaps);
        assert_eq!(
            p,
            Placement::split(1, 3),
            "least-outstanding picks the lightest replica of each pool"
        );
        assert!(!p.is_colocated());
        // Round-robin cycles within each pool (independent cursors, so
        // contiguous pool layouts don't parity-lock onto one replica).
        let mut rr = RoundRobin::default();
        let first = rr.place(&request(0), &snaps);
        let second = rr.place(&request(0), &snaps);
        assert_eq!(first, Placement::split(0, 2));
        assert_eq!(second, Placement::split(1, 3));
        // Migration requests are dropped in split placements: the
        // prefill→decode handoff moves the KV instead.
        snaps[2].resident_history_tokens = 64;
        snaps[2].queued = 64;
        let mut mig = KvMigration::default();
        let p = mig.place(&request(64), &snaps);
        assert_eq!(p.migrate_from, None);
        assert_eq!(p.decode, 3, "spilled off the hot holder within the pool");
    }

    #[test]
    fn pool_masking_respects_downed_replicas() {
        // A drained prefill replica is skipped within its pool.
        let mut snaps = vec![snapshot(0, 1.0), snapshot(500, 1.0), snapshot(0, 1.0)];
        snaps[0].role = PoolRole::Prefill;
        snaps[1].role = PoolRole::Prefill;
        snaps[0].accepting = false;
        snaps[2].role = PoolRole::Decode;
        let p = LeastOutstandingWork.place(&request(0), &snaps);
        assert_eq!(p, Placement::split(1, 2));
    }

    #[test]
    fn affinity_core_matches_the_router_filters() {
        // require_accepting=true is SessionAffinity's view;
        // false is KvMigration's (a downed holder is still a source).
        let mut snaps = vec![snapshot(0, 1.0), snapshot(0, 1.0)];
        snaps[0].resident_history_tokens = 88;
        snaps[1].resident_history_tokens = 68;
        snaps[0].accepting = false;
        assert_eq!(AffinityCore::holder(&snaps, true).map(|(i, _)| i), Some(1));
        assert_eq!(AffinityCore::holder(&snaps, false).map(|(i, _)| i), Some(0));
        let core = AffinityCore::new(1.0);
        let mut hot = snapshot(0, 1.0);
        hot.in_flight = 8;
        hot.queued = 1;
        assert!(!core.pins(&hot), "9/8 batches exceeds a 1.0 threshold");
        hot.queued = 0;
        assert!(core.pins(&hot));
    }

    #[test]
    fn build_with_threads_the_cluster_context() {
        // A 1 B/s link through the context must make the built
        // kv-migration router decline transfers, exactly like
        // constructing it by hand.
        let ctx = ClusterContext {
            kv_link: KvLinkSpec::new(1.0, 0.0),
            kv_bytes_per_token: 100_000,
            prefill_tokens_per_s: 10_000.0,
        };
        let mut built = RouterKind::KvMigration.build_with(&ctx);
        let mut snaps = vec![snapshot(500, 1.0), snapshot(10, 1.0)];
        snaps[0].resident_history_tokens = 64;
        snaps[0].accepting = false;
        assert_eq!(
            built.decide(&request(64), &snaps),
            RouteDecision::place(1),
            "slow link declines the migration"
        );
        for kind in RouterKind::ALL {
            assert_eq!(kind.build_with(&ctx).name(), kind.name());
        }
    }

    #[test]
    fn round_robin_state_round_trips_mid_rotation() {
        let snaps = vec![snapshot(0, 1.0); 3];
        let mut rr = RoundRobin::default();
        rr.route(&request(0), &snaps);
        rr.route(&request(0), &snaps);
        let state = rr.export_state();
        let mut restored = RoundRobin::default();
        restored.import_state(&state);
        for _ in 0..4 {
            assert_eq!(
                restored.route(&request(0), &snaps),
                rr.route(&request(0), &snaps)
            );
        }
        // Stateless routers export nothing and ignore imports.
        let mut jsq = LeastOutstandingWork;
        assert!(Router::export_state(&jsq).is_empty());
        jsq.import_state(&[7]);
    }
}
