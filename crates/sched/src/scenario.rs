//! The scenario scheduler: SLO tiers, pluggable admission policies,
//! and multi-turn conversations with reuse-aware KV accounting.
//!
//! The base [`crate::Simulation`] reproduces the paper's setup: one
//! synthetic workload shape, FIFO admission. A [`ScenarioSimulation`]
//! generalizes it along three axes:
//!
//! * **arrivals** — any [`Arrivals`] process, including the bursty
//!   on/off and diurnal curves and recorded-trace replay;
//! * **multi-turn conversations** — a completed request may spawn a
//!   follow-up after an exponential think time, carrying its whole
//!   history as the new prompt. Finished histories are *parked* in a
//!   [`PagedKvCache`]; if a follow-up arrives while its history is
//!   still resident, only the new turn's tokens prefill (prefix reuse)
//!   and the admission announces the split through
//!   [`StageDelta::admit_ctx`], keeping the incremental executor's
//!   carried batch state exact;
//! * **SLO tiers and policies** — requests draw a [`SloTier`]
//!   (deadline + priority) and a [`SchedulingPolicy`] picks admission
//!   order; the report gains per-tier attainment and goodput.
//!
//! Unlike the base loop, the waiting queue is materialized (policies
//! need to see every arrived request), so memory is O(waiting), not
//! O(batch). Stage execution still flows through the PR 2
//! [`StageDelta`] fast path: pure-decode stages price in O(1), mixed
//! admit/retire stages fall back to the grouped full path.
//!
//! # Reused prefixes price exactly
//!
//! A reuse-admitted follow-up prefills only its suffix but decodes over
//! its full history (`admit_ctx`), exactly like prefix caching. The
//! admission announces the split to the executor *and* to the stage
//! shape (`prefill_past`), so the suffix's cross-attention over the
//! resident history is charged exactly — the pricing approximation
//! that previously underpriced long-history turns is closed; see
//! `duplex_model::ops::StageShape` on prefill-with-past.
//!
//! # Chunked prefill
//!
//! A long prompt in a mixed stage stalls every decoding request for the
//! whole prefill, spiking the token-between-token tail. With
//! [`Scenario::prefill_chunk`] set, each stage prefills at most that
//! many prompt tokens: a long prompt is split into bounded slices
//! processed across consecutive stages, each slice a prefill-with-past
//! over the slices before it (announced via [`StageDelta::chunk`]).
//! Only the final slice samples the first token and joins the decode
//! set, so decode requests interleave with short mixed stages instead
//! of one long one. Throughput is nearly unchanged (the same tokens are
//! processed; only per-chunk launch overheads repeat), while the
//! mixed-stage TBT p99 drops by roughly the prompt/chunk ratio.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use duplex_model::kv_cache::{EvictionPolicy, PagedKvCache};
use duplex_model::ops::StageShape;

use crate::delta::StageDelta;
use crate::metrics::{
    KvReuseStats, LatencyDigest, SimReport, SloStats, StageRecord, StageStats, TierStats,
};
use crate::policy::{PolicyContext, SchedulingPolicy};
use crate::request::{Request, RequestRecord};
use crate::scheduler::{SimulationConfig, StageExecutor};
use crate::workload::{exp_sample, sample_len, Arrivals, RequestSource, Workload};

/// One service tier: a share of traffic, a priority, and deadlines.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTier {
    /// Display name.
    pub name: String,
    /// Relative share of arriving requests landing in this tier.
    pub weight: f64,
    /// Admission priority (lower = more urgent) for tier-aware
    /// policies.
    pub priority: u32,
    /// Time-to-first-token deadline in seconds.
    pub t2ft_deadline_s: f64,
    /// Mean token-between-token deadline in seconds (0 = no TBT SLO).
    pub tbt_deadline_s: f64,
}

impl SloTier {
    /// A tier with the given share, priority and deadlines.
    pub fn new(name: &str, weight: f64, priority: u32, t2ft_s: f64, tbt_s: f64) -> Self {
        assert!(weight > 0.0, "tier weight must be positive");
        assert!(t2ft_s > 0.0, "t2ft deadline must be positive");
        assert!(tbt_s >= 0.0, "tbt deadline must be non-negative");
        Self {
            name: name.into(),
            weight,
            priority,
            t2ft_deadline_s: t2ft_s,
            tbt_deadline_s: tbt_s,
        }
    }
}

/// Multi-turn conversation behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversationSpec {
    /// Probability that a completed round spawns a follow-up.
    pub followup_prob: f64,
    /// Hard cap on rounds per conversation (>= 1, counts the first).
    pub max_rounds: u32,
    /// Mean think time between a reply and the follow-up, seconds.
    pub mean_think_s: f64,
    /// Mean new-user-turn prompt tokens appended each round (sampled
    /// with the workload's cv).
    pub turn_tokens: u64,
    /// Page size (tokens) of the parked-history KV pool.
    pub page_tokens: u64,
}

impl ConversationSpec {
    /// A chat-like spec: geometric continuation at `followup_prob`.
    pub fn chat(followup_prob: f64, max_rounds: u32, mean_think_s: f64, turn_tokens: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&followup_prob),
            "probability in [0, 1]"
        );
        assert!(max_rounds >= 1, "at least one round");
        assert!(
            mean_think_s > 0.0 && turn_tokens > 0,
            "think time and turn must be positive"
        );
        Self {
            followup_prob,
            max_rounds,
            mean_think_s,
            turn_tokens,
            page_tokens: 16,
        }
    }
}

/// A complete serving scenario: shapes, arrivals, conversations, SLOs.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Request-shape distribution (also seeds all scenario RNG).
    pub workload: Workload,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Initial requests (= conversations when multi-turn); follow-up
    /// rounds come on top. Clamped to the trace length under replay.
    pub requests: usize,
    /// Multi-turn behavior; `None` for single-shot requests.
    pub conversation: Option<ConversationSpec>,
    /// Service tiers; empty runs without SLO accounting.
    pub tiers: Vec<SloTier>,
    /// Per-stage prefill token budget: prompts longer than this are
    /// split into chunks across consecutive stages (see the
    /// [module docs](self)). 0 disables chunking (whole-prompt
    /// prefills, the paper's behavior).
    pub prefill_chunk: u64,
}

impl Scenario {
    /// A single-shot scenario without tiers.
    pub fn new(name: &str, workload: Workload, arrivals: Arrivals, requests: usize) -> Self {
        Self {
            name: name.into(),
            workload,
            arrivals,
            requests,
            conversation: None,
            tiers: Vec::new(),
            prefill_chunk: 0,
        }
    }

    /// Attach a conversation spec.
    pub fn with_conversation(mut self, spec: ConversationSpec) -> Self {
        self.conversation = Some(spec);
        self
    }

    /// Bound each stage's prefill work to `tokens` prompt tokens
    /// (chunked prefill; 0 disables).
    pub fn with_prefill_chunk(mut self, tokens: u64) -> Self {
        self.prefill_chunk = tokens;
        self
    }

    /// Attach SLO tiers.
    pub fn with_tiers(mut self, tiers: Vec<SloTier>) -> Self {
        self.tiers = tiers;
        self
    }

    /// The paper-external default tier set: interactive / standard /
    /// batch at 60/30/10% with tightening deadlines. Deadlines are in
    /// units of `stage_s`, a rough per-stage latency for the system
    /// under test, so the same tiers make sense at quick and paper
    /// scales.
    pub fn default_tiers(stage_s: f64) -> Vec<SloTier> {
        vec![
            SloTier::new("interactive", 0.6, 0, 10.0 * stage_s, 1.8 * stage_s),
            SloTier::new("standard", 0.3, 1, 60.0 * stage_s, 4.0 * stage_s),
            SloTier::new("batch", 0.1, 2, 1000.0 * stage_s, 0.0),
        ]
    }
}

/// A request waiting for admission, as shown to a
/// [`SchedulingPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRequest {
    /// The request; `input_len` is the *full* prompt including any
    /// conversation history.
    pub request: Request,
    /// Index into the scenario's tier list (0 when untiered).
    pub tier: usize,
    /// The tier's priority (0 when untiered).
    pub priority: u32,
    /// Absolute T2FT deadline (arrival + tier deadline; infinity when
    /// untiered).
    pub deadline_s: f64,
    /// Conversation id (the root request's id).
    pub conversation: u64,
    /// 1-based round within the conversation.
    pub round: u32,
    /// Prompt prefix that may still be KV-resident from the previous
    /// round (0 for fresh requests).
    pub history_tokens: u64,
    /// Admissions that have gone past this request while it waited —
    /// the aging signal for starvation guards (see
    /// [`crate::policy::ShortestPromptFirst`]).
    pub skipped: u64,
}

#[derive(Debug)]
struct ActiveRequest {
    pending: PendingRequest,
    /// Tokens actually prefilled at admission (= input_len, or the new
    /// suffix under prefix reuse).
    generated: u64,
    first_token_s: f64,
}

/// A request whose prompt is being prefilled in chunks: admitted (its
/// KV is reserved, it holds a batch slot) but not yet decoding.
#[derive(Debug)]
struct ChunkingRequest {
    pending: PendingRequest,
    /// Resident history its chunks attend over (prefix reuse).
    history: u64,
    /// New prompt tokens already prefilled by earlier chunks.
    processed: u64,
    /// Total new tokens to prefill (input_len - resident history).
    prefill_total: u64,
}

impl ActiveRequest {
    fn decode_ctx(&self) -> u64 {
        self.pending.request.input_len + self.generated
    }

    fn kv_reserved(&self, bytes_per_token: u64) -> u64 {
        self.pending.request.max_kv_tokens() * bytes_per_token
    }
}

/// A configured scenario run, ready for a policy and an executor.
#[derive(Debug)]
pub struct ScenarioSimulation {
    config: SimulationConfig,
    scenario: Scenario,
}

impl ScenarioSimulation {
    /// Bind a scenario to scheduler limits. Under trace replay the
    /// request count is clamped to the trace length.
    pub fn new(config: SimulationConfig, scenario: Scenario) -> Self {
        let mut scenario = scenario;
        if let Arrivals::Trace { requests } = &scenario.arrivals {
            scenario.requests = scenario.requests.min(requests.len());
        }
        let total_weight: f64 = scenario.tiers.iter().map(|t| t.weight).sum();
        assert!(
            scenario.tiers.is_empty() || total_weight > 0.0,
            "tier weights must sum to a positive value"
        );
        Self { config, scenario }
    }

    /// Run to completion (or the stage cap) under `policy` and report.
    pub fn run<E: StageExecutor + ?Sized>(
        self,
        policy: &mut dyn SchedulingPolicy,
        executor: &mut E,
    ) -> SimReport {
        let Self { config, scenario } = self;
        let bytes_per_token = config.kv_bytes_per_token;
        let mut source = RequestSource::new(scenario.workload.clone(), scenario.arrivals.clone());
        // Scenario-side draws (tier assignment, think times, follow-up
        // lengths) use an independent stream so they never perturb the
        // arrival process.
        let mut rng = StdRng::seed_from_u64(scenario.workload.seed ^ 0x5C3A_A110);
        let mut drawn = 0usize;
        let mut next_id = scenario.requests as u64;
        let mut peeked: Option<Request> = None;
        // Follow-ups not yet arrived, sorted by descending arrival time
        // (pop from the back).
        let mut followups: Vec<PendingRequest> = Vec::new();
        let mut pending: Vec<PendingRequest> = Vec::new();
        let mut active: Vec<ActiveRequest> = Vec::new();
        let mut admitted: Vec<ActiveRequest> = Vec::new();
        // Requests mid-way through a chunked prompt prefill, in
        // admission order (each stage continues them FIFO).
        let mut chunking: Vec<ChunkingRequest> = Vec::new();
        // Whether deltas must carry decode-join contexts: reuse
        // admissions and chunked final slices join above their
        // prefilled length.
        let announce_ctx = scenario.conversation.is_some() || scenario.prefill_chunk > 0;
        // Reused per-stage tier-occupancy counts for per-tier TBT.
        let mut tier_active: Vec<u64> = vec![0; scenario.tiers.len()];
        let mut completed: Vec<RequestRecord> = Vec::new();
        let mut stages: Vec<StageRecord> = Vec::new();
        let mut stage_stats = StageStats::default();
        let mut tbt_digest = LatencyDigest::default();
        let mut tier_stats: Vec<TierStats> = scenario
            .tiers
            .iter()
            .map(|t| TierStats {
                name: t.name.clone(),
                t2ft_deadline_s: t.t2ft_deadline_s,
                tbt_deadline_s: t.tbt_deadline_s,
                ..TierStats::default()
            })
            .collect();
        let tier_weight_total: f64 = scenario.tiers.iter().map(|t| t.weight).sum();
        let mut kv_reuse = KvReuseStats::default();
        // Finished conversations' KV, parked between turns. Recompute
        // policy: an evicted history is simply re-prefilled.
        let mut parked = scenario.conversation.as_ref().map(|spec| {
            PagedKvCache::new(
                config.kv_capacity_bytes,
                spec.page_tokens,
                bytes_per_token.max(1),
                EvictionPolicy::Recompute,
            )
        });
        let mut reserved: u64 = 0;
        let mut clock = 0.0f64;
        let mut delta = StageDelta::start();
        let mut shape = StageShape::default();

        loop {
            if (stage_stats.stages as usize) >= config.max_stages {
                break;
            }
            // ---- pull arrivals into the waiting queue ----
            loop {
                if peeked.is_none() && drawn < scenario.requests {
                    peeked = Some(source.next_request());
                    drawn += 1;
                }
                match &peeked {
                    Some(r) if r.arrival_s <= clock => {
                        let request = peeked.take().expect("peeked request exists");
                        let tier = draw_tier(&scenario.tiers, tier_weight_total, &mut rng);
                        pending.push(make_pending(request, tier, &scenario.tiers));
                    }
                    _ => break,
                }
            }
            while followups
                .last()
                .is_some_and(|f| f.request.arrival_s <= clock)
            {
                pending.push(followups.pop().expect("checked non-empty"));
            }

            // ---- per-stage prefill token budget (chunked prefill) ----
            let mut budget = if scenario.prefill_chunk == 0 {
                u64::MAX
            } else {
                scenario.prefill_chunk
            };

            // ---- continue in-flight chunked prompts, FIFO ----
            let mut ci = 0;
            while ci < chunking.len() && budget > 0 {
                let c = &mut chunking[ci];
                let remaining = c.prefill_total - c.processed;
                let slice = remaining.min(budget);
                let past = c.history + c.processed;
                budget -= slice;
                if slice == remaining {
                    // Final slice: samples the first token and joins the
                    // decode set at the full prompt context.
                    delta.admit.push(slice);
                    if announce_ctx {
                        delta.admit_ctx.push(c.pending.request.input_len);
                    }
                    shape.push_prefill(slice, past, false);
                    let done = chunking.remove(ci);
                    admitted.push(ActiveRequest {
                        pending: done.pending,
                        generated: 0,
                        first_token_s: 0.0,
                    });
                } else {
                    delta.chunk.push((slice, past));
                    shape.push_prefill(slice, past, true);
                    c.processed += slice;
                    ci += 1;
                }
            }

            // ---- policy-driven admission ----
            let pctx = PolicyContext {
                now_s: clock,
                prefill_chunk: (scenario.prefill_chunk > 0).then_some(scenario.prefill_chunk),
            };
            while active.len() + admitted.len() + chunking.len() < config.max_batch
                && !pending.is_empty()
                && budget > 0
            {
                let idx = policy.pick(&pending, &pctx);
                assert!(
                    idx < pending.len(),
                    "policy picked index {idx} of {}",
                    pending.len()
                );
                let need = pending[idx].request.max_kv_tokens() * bytes_per_token;
                if reserved.saturating_add(need) > config.kv_capacity_bytes {
                    // Even evicting every parked history cannot admit:
                    // wait for retirements (head-of-line block).
                    assert!(
                        !(active.is_empty()
                            && admitted.is_empty()
                            && chunking.is_empty()
                            && reserved == 0),
                        "request {} needs {need} KV bytes, capacity {}",
                        pending[idx].request.id,
                        config.kv_capacity_bytes
                    );
                    break;
                }
                let p = pending.swap_remove(idx);
                // Everyone still waiting was passed over by this
                // admission: the aging signal for starvation guards.
                for q in pending.iter_mut() {
                    q.skipped += 1;
                }
                // Reuse-aware accounting: claim a resident history (its
                // bytes migrate from the parked pool into the active
                // reservation), then evict other parked histories until
                // the new reservation fits.
                let mut prefill = p.request.input_len;
                if let Some(cache) = parked.as_mut() {
                    if p.history_tokens > 0 {
                        if cache.is_resident(p.conversation) {
                            cache.release(p.conversation);
                            prefill = p.request.input_len - p.history_tokens;
                            kv_reuse.reuse_hits += 1;
                            kv_reuse.reused_prefill_tokens += p.history_tokens;
                        } else {
                            kv_reuse.reuse_misses += 1;
                        }
                    }
                    while reserved + cache.resident_bytes() + need > config.kv_capacity_bytes {
                        cache
                            .evict_one()
                            .expect("over budget implies a parked victim");
                        kv_reuse.parked_evictions += 1;
                    }
                }
                kv_reuse.prefilled_tokens += prefill;
                reserved += need;
                // The new tokens cross-attend over any reused history.
                let resident = p.request.input_len - prefill;
                let slice = prefill.min(budget);
                budget -= slice;
                if slice < prefill {
                    // Prompt longer than the remaining budget: start
                    // chunking — this slice attends, writes KV, holds.
                    delta.chunk.push((slice, resident));
                    shape.push_prefill(slice, resident, true);
                    chunking.push(ChunkingRequest {
                        pending: p,
                        history: resident,
                        processed: slice,
                        prefill_total: prefill,
                    });
                } else {
                    delta.admit.push(prefill);
                    if announce_ctx {
                        delta.admit_ctx.push(p.request.input_len);
                    }
                    shape.push_prefill(prefill, resident, false);
                    admitted.push(ActiveRequest {
                        pending: p,
                        generated: 0,
                        first_token_s: 0.0,
                    });
                }
            }

            if active.is_empty() && admitted.is_empty() && chunking.is_empty() {
                // Idle: jump to the next arrival, if any.
                let next_source = peeked.as_ref().map(|r| r.arrival_s);
                let next_follow = followups.last().map(|f| f.request.arrival_s);
                let next = match (next_source, next_follow) {
                    (Some(a), Some(b)) => a.min(b),
                    (Some(a), None) => a,
                    (None, Some(b)) => b,
                    (None, None) => break,
                };
                clock = clock.max(next);
                shape.clear_prefills();
                continue;
            }

            // ---- execute the stage ----
            shape.decode_ctx.clear();
            shape
                .decode_ctx
                .extend(active.iter().map(ActiveRequest::decode_ctx));
            debug_assert_eq!(shape.prefill_len.len(), admitted.len() + delta.chunk.len());
            let outcome = executor.execute_delta(&delta, &shape);
            delta.clear();
            clock += outcome.seconds;
            let record = StageRecord {
                seconds: outcome.seconds,
                mixed: shape.is_mixed(),
                batch: shape.batch_size(),
                tokens: shape.tokens(),
            };
            stage_stats.record(&record);
            if config.record_stages {
                stages.push(record);
            }
            shape.clear_prefills();

            tbt_digest.record_n(outcome.seconds, active.len() as u64);
            if !tier_stats.is_empty() {
                tier_active.iter_mut().for_each(|c| *c = 0);
                for a in &active {
                    tier_active[a.pending.tier] += 1;
                }
                for (stats, &n) in tier_stats.iter_mut().zip(&tier_active) {
                    stats.tbt_digest.record_n(outcome.seconds, n);
                }
            }
            for a in &mut active {
                a.generated += 1;
            }
            for mut a in admitted.drain(..) {
                a.generated = 1;
                a.first_token_s = clock;
                active.push(a);
            }

            // ---- retire, account SLOs, spawn follow-ups ----
            let mut i = 0;
            while i < active.len() {
                if active[i].generated < active[i].pending.request.output_len {
                    i += 1;
                    continue;
                }
                let done = active.swap_remove(i);
                reserved -= done.kv_reserved(bytes_per_token);
                delta.retire.push(done.decode_ctx());
                let record = RequestRecord {
                    first_token_s: done.first_token_s,
                    last_token_s: clock,
                    tokens: done.generated,
                    request: done.pending.request,
                };
                if !tier_stats.is_empty() {
                    let tier = &scenario.tiers[done.pending.tier];
                    let stats = &mut tier_stats[done.pending.tier];
                    stats.completed += 1;
                    let met_t2ft = record.t2ft() <= tier.t2ft_deadline_s;
                    let met_tbt =
                        tier.tbt_deadline_s == 0.0 || record.mean_tbt() <= tier.tbt_deadline_s;
                    if met_t2ft && met_tbt {
                        stats.met += 1;
                        stats.good_tokens += record.tokens;
                    }
                }
                if let (Some(spec), Some(cache)) = (&scenario.conversation, parked.as_mut()) {
                    let continues = done.pending.round < spec.max_rounds
                        && rng.random::<f64>() < spec.followup_prob;
                    if continues {
                        let history = done.pending.request.input_len + done.generated;
                        // Park the history; if it cannot fit alone the
                        // follow-up simply re-prefills.
                        if let Ok(events) = cache.admit(done.pending.conversation, history) {
                            kv_reuse.parked_evictions += events.len() as u64
                        }
                        let think = exp_sample(&mut rng, 1.0 / spec.mean_think_s);
                        let turn = sample_len(&mut rng, spec.turn_tokens, scenario.workload.cv);
                        let output = sample_len(
                            &mut rng,
                            scenario.workload.mean_output,
                            scenario.workload.cv,
                        );
                        let request = Request {
                            id: next_id,
                            arrival_s: clock + think,
                            input_len: history + turn,
                            output_len: output,
                        };
                        next_id += 1;
                        let follow = PendingRequest {
                            deadline_s: request.arrival_s
                                + scenario
                                    .tiers
                                    .get(done.pending.tier)
                                    .map_or(f64::INFINITY, |t| t.t2ft_deadline_s),
                            request,
                            tier: done.pending.tier,
                            priority: done.pending.priority,
                            conversation: done.pending.conversation,
                            round: done.pending.round + 1,
                            history_tokens: history,
                            skipped: 0,
                        };
                        // Keep descending arrival order (pop from back).
                        let pos = followups
                            .partition_point(|f| f.request.arrival_s > follow.request.arrival_s);
                        followups.insert(pos, follow);
                    } else {
                        // The conversation is over; drop any parked KV.
                        cache.release(done.pending.conversation);
                    }
                }
                completed.push(record);
            }
        }

        SimReport {
            completed,
            stages,
            stage_stats,
            tbt_digest,
            total_time_s: clock,
            slo: SloStats { tiers: tier_stats },
            kv_reuse,
        }
    }
}

fn draw_tier(tiers: &[SloTier], weight_total: f64, rng: &mut StdRng) -> usize {
    if tiers.is_empty() {
        return 0;
    }
    let mut u: f64 = rng.random::<f64>() * weight_total;
    for (i, t) in tiers.iter().enumerate() {
        u -= t.weight;
        if u < 0.0 {
            return i;
        }
    }
    tiers.len() - 1
}

fn make_pending(request: Request, tier: usize, tiers: &[SloTier]) -> PendingRequest {
    let (priority, deadline_s) = tiers.get(tier).map_or((0, f64::INFINITY), |t| {
        (t.priority, request.arrival_s + t.t2ft_deadline_s)
    });
    PendingRequest {
        request,
        tier,
        priority,
        deadline_s,
        conversation: request.id,
        round: 1,
        history_tokens: 0,
        skipped: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fcfs, PriorityTiers, ShortestPromptFirst};
    use crate::scheduler::StageOutcome;

    struct Fixed(f64);
    impl StageExecutor for Fixed {
        fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
            StageOutcome { seconds: self.0 }
        }
    }

    /// Records every delta/shape pair, for contract checks.
    struct Recording {
        shapes: Vec<StageShape>,
        deltas: Vec<StageDelta>,
    }
    impl Recording {
        fn new() -> Self {
            Self {
                shapes: Vec::new(),
                deltas: Vec::new(),
            }
        }
    }
    impl StageExecutor for Recording {
        fn execute(&mut self, shape: &StageShape) -> StageOutcome {
            self.shapes.push(shape.clone());
            StageOutcome { seconds: 0.01 }
        }
        fn execute_delta(&mut self, delta: &StageDelta, shape: &StageShape) -> StageOutcome {
            self.deltas.push(delta.clone());
            self.execute(shape)
        }
    }

    fn config(max_batch: usize) -> SimulationConfig {
        SimulationConfig {
            max_batch,
            ..SimulationConfig::default()
        }
    }

    fn run_scenario(
        scenario: Scenario,
        cfg: SimulationConfig,
        policy: &mut dyn SchedulingPolicy,
    ) -> SimReport {
        ScenarioSimulation::new(cfg, scenario).run(policy, &mut Fixed(0.01))
    }

    #[test]
    fn single_shot_matches_base_semantics() {
        let scenario = Scenario::new("plain", Workload::fixed(64, 5), Arrivals::ClosedLoop, 20);
        let report = run_scenario(scenario, config(8), &mut Fcfs);
        assert_eq!(report.completed.len(), 20);
        for r in &report.completed {
            assert_eq!(r.tokens, r.request.output_len);
        }
        assert!(report.slo.is_empty());
        assert_eq!(report.kv_reuse.reuse_hits, 0);
    }

    #[test]
    fn fcfs_scenario_equals_base_simulation_timeline() {
        // Under FCFS with no conversations and no tiers, the scenario
        // loop must reproduce the base Simulation exactly.
        let w = Workload::gaussian(64, 6).with_seed(11);
        let base = crate::scheduler::Simulation::closed_loop(config(4), w.clone(), 12)
            .run(&mut Fixed(0.01));
        let scenario = Scenario::new("plain", w, Arrivals::ClosedLoop, 12);
        let report = run_scenario(scenario, config(4), &mut Fcfs);
        assert_eq!(report.stage_stats, base.stage_stats);
        assert_eq!(report.total_time_s, base.total_time_s);
        assert_eq!(report.completed.len(), base.completed.len());
    }

    #[test]
    fn bursty_arrivals_flow_through() {
        let scenario = Scenario::new(
            "bursty",
            Workload::fixed(32, 4).with_seed(3),
            Arrivals::Bursty {
                base_qps: 0.0,
                burst_qps: 500.0,
                mean_off_s: 0.5,
                mean_on_s: 0.1,
            },
            40,
        );
        let report = run_scenario(scenario, config(8), &mut Fcfs);
        assert_eq!(report.completed.len(), 40);
        assert!(report.total_time_s > 0.0);
    }

    #[test]
    fn multi_turn_spawns_followups_and_reuses_kv() {
        let scenario = Scenario::new(
            "chat",
            Workload::fixed(64, 8).with_seed(5),
            Arrivals::Poisson { qps: 200.0 },
            20,
        )
        .with_conversation(ConversationSpec::chat(1.0, 3, 0.001, 16));
        let report = run_scenario(scenario, config(16), &mut Fcfs);
        // Every conversation runs exactly 3 rounds at prob 1.0.
        assert_eq!(report.completed.len(), 60);
        assert!(report.kv_reuse.reuse_hits > 0, "{:?}", report.kv_reuse);
        assert!(report.kv_reuse.reused_prefill_tokens > 0);
        // Follow-up prompts grow: round 2 input = 64 + 8 + 16 = 88.
        let follow = report
            .completed
            .iter()
            .find(|r| r.request.id >= 20)
            .expect("follow-ups completed");
        assert!(follow.request.input_len >= 88);
    }

    #[test]
    fn reuse_admissions_announce_admit_ctx() {
        let scenario = Scenario::new(
            "chat",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            2,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.001, 16));
        let mut rec = Recording::new();
        let report = ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert_eq!(report.completed.len(), 4);
        // Find the admission of a follow-up with resident history:
        // prefill (admit) is the 20-token suffix? No: turn=16, output=4
        // => suffix = 16 + 4 = 20... admit is input - history = 16.
        let reuse_delta = rec
            .deltas
            .iter()
            .find(|d| !d.admit_ctx.is_empty() && d.admit_ctx != d.admit)
            .expect("a reuse admission exists");
        let (i, _) = reuse_delta
            .admit_ctx
            .iter()
            .enumerate()
            .find(|(i, ctx)| **ctx != reuse_delta.admit[*i])
            .expect("mismatched entry");
        // Full prompt is history (64 + 4) + turn 16 = 84; prefill is 16.
        assert_eq!(reuse_delta.admit_ctx[i], 84);
        assert_eq!(reuse_delta.admit[i], 16);
        // The shape's prefill matches the suffix, and decode contexts in
        // later stages include the full history.
        assert!(report.kv_reuse.reuse_hits >= 1);
    }

    #[test]
    fn evicted_history_reprefills_in_full() {
        // KV capacity fits barely more than one conversation: parking a
        // history evicts the other's, so reuse misses happen.
        let cfg = SimulationConfig {
            max_batch: 2,
            kv_capacity_bytes: 260,
            kv_bytes_per_token: 1,
            ..SimulationConfig::default()
        };
        let scenario = Scenario::new(
            "tight",
            Workload::fixed(64, 8).with_seed(9),
            Arrivals::Poisson { qps: 50.0 },
            6,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.01, 16));
        let report = run_scenario(scenario, cfg, &mut Fcfs);
        assert_eq!(report.completed.len(), 12);
        assert!(
            report.kv_reuse.reuse_misses + report.kv_reuse.parked_evictions > 0,
            "{:?}",
            report.kv_reuse
        );
    }

    #[test]
    fn tiers_report_attainment_and_goodput() {
        let tiers = vec![
            SloTier::new("interactive", 0.5, 0, 0.05, 0.02),
            SloTier::new("batch", 0.5, 1, 100.0, 0.0),
        ];
        let scenario = Scenario::new(
            "tiered",
            Workload::fixed(32, 8).with_seed(2),
            Arrivals::Poisson { qps: 100.0 },
            40,
        )
        .with_tiers(tiers);
        let report = run_scenario(scenario, config(4), &mut PriorityTiers);
        assert_eq!(report.completed.len(), 40);
        assert_eq!(report.slo.tiers.len(), 2);
        assert_eq!(report.slo.completed(), 40);
        // The generous batch tier always attains; overall attainment is
        // a proper fraction.
        let batch = &report.slo.tiers[1];
        assert_eq!(batch.met, batch.completed);
        assert!(report.slo_attainment() > 0.0 && report.slo_attainment() <= 1.0);
        assert!(report.goodput_tokens_per_s() > 0.0);
        assert!(report.goodput_tokens_per_s() <= report.generation_throughput() + 1e-9);
    }

    #[test]
    fn spf_admits_short_prompts_first() {
        // Two long prompts and one short arrive together; batch 1.
        let trace = vec![
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 500,
                output_len: 2,
            },
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 400,
                output_len: 2,
            },
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 10,
                output_len: 2,
            },
        ];
        let scenario = Scenario::new("spf", Workload::fixed(1, 1), Arrivals::trace(trace), 3);
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(1), scenario.clone())
            .run(&mut ShortestPromptFirst::default(), &mut rec);
        assert_eq!(rec.shapes[0].prefill_len, vec![10]);
        let mut rec2 = Recording::new();
        ScenarioSimulation::new(config(1), scenario).run(&mut Fcfs, &mut rec2);
        assert_eq!(rec2.shapes[0].prefill_len, vec![500]);
    }

    #[test]
    fn aging_rescues_a_starving_long_prompt() {
        // One 500-token prompt plus a dense stream of 10-token prompts
        // at batch 1: unguarded shortest-prompt-first admits every
        // short first — with an unbounded stream the long prompt would
        // starve forever. The aging guard admits it after 6 skipped
        // admissions.
        let mk_trace = || {
            let mut trace = vec![crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 500,
                output_len: 2,
            }];
            for i in 0..60u32 {
                trace.push(crate::trace::TraceRequest {
                    arrival_s: f64::from(i) * 0.001,
                    input_len: 10,
                    output_len: 2,
                });
            }
            trace
        };
        let run = |policy: &mut dyn SchedulingPolicy| {
            let scenario = Scenario::new(
                "starve",
                Workload::fixed(1, 1),
                Arrivals::trace(mk_trace()),
                61,
            );
            ScenarioSimulation::new(config(1), scenario).run(policy, &mut Fixed(0.01))
        };
        let long_first_token = |report: &SimReport| {
            report
                .completed
                .iter()
                .find(|r| r.request.input_len == 500)
                .expect("long prompt completes in a finite trace")
                .first_token_s
        };

        let unguarded = run(&mut ShortestPromptFirst::unguarded());
        let guarded = run(&mut ShortestPromptFirst::with_aging(6));
        let t_unguarded = long_first_token(&unguarded);
        let t_guarded = long_first_token(&guarded);
        // Unguarded: every one of the 60 shorts (2 stages each) goes
        // first; the long prompt is served dead last.
        assert!(
            t_unguarded > 60.0 * 2.0 * 0.01 - 1e-9,
            "unguarded long prompt served at {t_unguarded}"
        );
        // Aged after 6 skipped admissions: served an order of magnitude
        // earlier, and the stream is not reordered wholesale.
        assert!(
            t_guarded < t_unguarded / 4.0,
            "guarded {t_guarded} vs unguarded {t_unguarded}"
        );
        assert_eq!(guarded.completed.len(), 61);
    }

    #[test]
    fn trace_replay_clamps_request_count() {
        let trace = vec![
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 16,
                output_len: 2,
            },
            crate::trace::TraceRequest {
                arrival_s: 0.1,
                input_len: 16,
                output_len: 2,
            },
        ];
        let scenario = Scenario::new("trace", Workload::fixed(1, 1), Arrivals::trace(trace), 1000);
        let report = run_scenario(scenario, config(4), &mut Fcfs);
        assert_eq!(report.completed.len(), 2);
    }

    #[test]
    fn stage_cap_stops_runaway() {
        let cfg = SimulationConfig {
            max_stages: 5,
            ..config(1)
        };
        let scenario = Scenario::new("cap", Workload::fixed(8, 100), Arrivals::ClosedLoop, 3);
        let report = run_scenario(scenario, cfg, &mut Fcfs);
        assert_eq!(report.stage_stats.stages, 5);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn chunked_prefill_splits_long_prompts() {
        // One 300-token prompt under a 128-token budget: two held
        // chunks, then a 44-token final slice that samples and joins.
        let scenario = Scenario::new("chunk", Workload::fixed(300, 3), Arrivals::ClosedLoop, 1)
            .with_prefill_chunk(128);
        let mut rec = Recording::new();
        let report = ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert_eq!(report.completed.len(), 1);

        assert_eq!(rec.shapes[0].prefill_len, vec![128]);
        assert_eq!(rec.shapes[0].prefill_hold, vec![true]);
        assert_eq!(rec.deltas[0].chunk, vec![(128, 0)]);
        assert!(rec.deltas[0].admit.is_empty());

        assert_eq!(rec.shapes[1].prefill_len, vec![128]);
        assert_eq!(rec.shapes[1].prefill_past, vec![128]);
        assert_eq!(rec.deltas[1].chunk, vec![(128, 128)]);

        assert_eq!(rec.shapes[2].prefill_len, vec![44]);
        assert_eq!(rec.shapes[2].prefill_past, vec![256]);
        assert!(rec.shapes[2].prefill_samples(0), "final slice samples");
        assert_eq!(rec.deltas[2].admit, vec![44]);
        assert_eq!(rec.deltas[2].admit_ctx, vec![300], "joins at full prompt");

        // Decoding over the full context from the next stage on.
        assert_eq!(rec.shapes[3].decode_ctx, vec![301]);
        assert!(rec.shapes[3].prefill_len.is_empty());
        // First token lands after the final slice: 3 prefill stages.
        let done = &report.completed[0];
        assert!((done.t2ft() - 0.03).abs() < 1e-9, "t2ft {}", done.t2ft());
    }

    #[test]
    fn chunk_budget_bounds_every_stage() {
        // A burst of long prompts: no stage may prefill more than the
        // budget, decodes interleave, and everything still completes.
        let scenario = Scenario::new(
            "budget",
            Workload::fixed(200, 6).with_seed(3),
            Arrivals::Poisson { qps: 500.0 },
            12,
        )
        .with_prefill_chunk(96);
        let mut rec = Recording::new();
        let report = ScenarioSimulation::new(config(6), scenario).run(&mut Fcfs, &mut rec);
        assert_eq!(report.completed.len(), 12);
        for (i, shape) in rec.shapes.iter().enumerate() {
            let prefill: u64 = shape.prefill_len.iter().sum();
            assert!(prefill <= 96, "stage {i} prefills {prefill} tokens");
        }
        // The budget forces held chunks to actually occur.
        assert!(rec.deltas.iter().any(|d| !d.chunk.is_empty()));
        // Chunks attend over their prompt's earlier slices.
        assert!(rec
            .deltas
            .iter()
            .flat_map(|d| &d.chunk)
            .any(|&(_, past)| past > 0));
    }

    #[test]
    fn chunked_run_matches_unchunked_completions() {
        let mk = |chunk: u64| {
            let scenario = Scenario::new(
                "cmp",
                Workload::gaussian(220, 8).with_seed(11),
                Arrivals::Poisson { qps: 300.0 },
                15,
            )
            .with_prefill_chunk(chunk);
            run_scenario(scenario, config(4), &mut Fcfs)
        };
        let plain = mk(0);
        let chunked = mk(64);
        assert_eq!(plain.completed.len(), chunked.completed.len());
        // Chunking only adds stages (slices), never loses tokens.
        assert!(chunked.stage_stats.stages > plain.stage_stats.stages);
        assert_eq!(plain.total_tokens(), chunked.total_tokens());
        assert_eq!(
            plain.stage_stats.token_sum, chunked.stage_stats.token_sum,
            "same FC tokens processed overall"
        );
    }

    #[test]
    fn chunked_deltas_replay_to_materialized_shapes() {
        // The delta/shape contract under chunking + conversations:
        // decode membership follows admit/retire alone, and each
        // stage's prefills are exactly the delta's admissions (with
        // their reuse past) plus its held chunks.
        let scenario = Scenario::new(
            "chunkchat",
            Workload::gaussian(180, 6).with_seed(23),
            Arrivals::Poisson { qps: 400.0 },
            10,
        )
        .with_conversation(ConversationSpec::chat(0.8, 3, 0.002, 48))
        .with_prefill_chunk(80);
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert!(rec.deltas.iter().any(|d| !d.chunk.is_empty()));
        let mut mirror: Vec<u64> = Vec::new();
        let mut pend: Vec<u64> = Vec::new();
        for (delta, shape) in rec.deltas.iter().zip(&rec.shapes) {
            if delta.fresh {
                mirror.clear();
                pend.clear();
            }
            for c in &mut mirror {
                *c += 1;
            }
            mirror.extend(pend.drain(..).map(|p| p + 1));
            for r in &delta.retire {
                let pos = mirror
                    .iter()
                    .position(|c| c == r)
                    .expect("retired ctx present");
                mirror.swap_remove(pos);
            }
            pend.extend_from_slice(delta.join_contexts());
            let mut want = shape.decode_ctx.clone();
            want.sort_unstable();
            let mut got = mirror.clone();
            got.sort_unstable();
            assert_eq!(got, want);
            // Prefills = admissions (len, past, sampling) + chunks
            // (len, past, held), as multisets.
            let mut want_pre: Vec<(u64, u64, bool)> = (0..delta.admit.len())
                .map(|i| (delta.admit[i], delta.admit_past(i), false))
                .chain(delta.chunk.iter().map(|&(len, past)| (len, past, true)))
                .collect();
            let mut got_pre: Vec<(u64, u64, bool)> = (0..shape.prefill_len.len())
                .map(|i| {
                    (
                        shape.prefill_len[i],
                        shape.prefill_past_of(i),
                        !shape.prefill_samples(i),
                    )
                })
                .collect();
            want_pre.sort_unstable();
            got_pre.sort_unstable();
            assert_eq!(got_pre, want_pre);
        }
    }

    #[test]
    fn reuse_admissions_carry_past_in_the_shape() {
        let scenario = Scenario::new(
            "chat",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            2,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.001, 16));
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        // A reused follow-up prefills its 16-token suffix over the
        // 68-token resident history, and the shape says so.
        let (i, shape) = rec
            .shapes
            .iter()
            .enumerate()
            .find(|(_, s)| !s.prefill_past.is_empty() && s.prefill_past.iter().any(|&p| p > 0))
            .expect("a reuse admission with past exists");
        let j = shape
            .prefill_past
            .iter()
            .position(|&p| p > 0)
            .expect("past");
        assert_eq!(shape.prefill_past[j], 68);
        assert_eq!(shape.prefill_len[j], 16);
        assert_eq!(rec.deltas[i].admit_past(j), 68);
    }

    #[test]
    fn deltas_replay_to_materialized_shapes_with_reuse() {
        // The delta stream must mirror the shapes exactly, including
        // reuse admissions joining at their full history context.
        let scenario = Scenario::new(
            "chat",
            Workload::gaussian(48, 6).with_seed(7),
            Arrivals::Poisson { qps: 300.0 },
            10,
        )
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.002, 12));
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        let mut mirror: Vec<u64> = Vec::new();
        let mut pend: Vec<u64> = Vec::new();
        for (delta, shape) in rec.deltas.iter().zip(&rec.shapes) {
            if delta.fresh {
                mirror.clear();
                pend.clear();
            }
            for c in &mut mirror {
                *c += 1;
            }
            mirror.extend(pend.drain(..).map(|p| p + 1));
            for r in &delta.retire {
                let pos = mirror
                    .iter()
                    .position(|c| c == r)
                    .expect("retired ctx present");
                mirror.swap_remove(pos);
            }
            pend.extend_from_slice(delta.join_contexts());
            let mut want = shape.decode_ctx.clone();
            want.sort_unstable();
            let mut got = mirror.clone();
            got.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(delta.admit, shape.prefill_len);
        }
    }
}
