//! The scenario scheduler: SLO tiers, pluggable admission policies,
//! and multi-turn conversations with reuse-aware KV accounting.
//!
//! The base [`crate::Simulation`] reproduces the paper's setup: one
//! synthetic workload shape, FIFO admission. A [`ScenarioSimulation`]
//! generalizes it along three axes:
//!
//! * **arrivals** — any [`Arrivals`] process, including the bursty
//!   on/off and diurnal curves and recorded-trace replay;
//! * **multi-turn conversations** — a completed request may spawn a
//!   follow-up after an exponential think time, carrying its whole
//!   history as the new prompt. Finished histories are *parked* in a
//!   [`PagedKvCache`]; if a follow-up arrives while its history is
//!   still resident, only the new turn's tokens prefill (prefix reuse)
//!   and the admission announces the split through
//!   [`StageDelta::admit_ctx`], keeping the incremental executor's
//!   carried batch state exact;
//! * **SLO tiers and policies** — requests draw a [`SloTier`]
//!   (deadline + priority) and a [`SchedulingPolicy`] picks admission
//!   order; the report gains per-tier attainment and goodput.
//!
//! Unlike the base loop, the waiting queue is materialized (policies
//! need to see every arrived request), so memory is O(waiting), not
//! O(batch). Stage execution still flows through the PR 2
//! [`StageDelta`] fast path: pure-decode stages price in O(1), mixed
//! admit/retire stages fall back to the grouped full path.
//!
//! Internally the run is split into two pieces the cluster scheduler
//! ([`crate::cluster`]) reuses verbatim: a `ScenarioStream` owning
//! the arrival process, tier draws and follow-up spawning, and a
//! `ReplicaSim` owning one continuous-batching event loop (queues,
//! KV accounting, stage formation, metrics). A plain
//! [`ScenarioSimulation`] is exactly a one-replica cluster.
//!
//! # Reused prefixes price exactly
//!
//! A reuse-admitted follow-up prefills only its suffix but decodes over
//! its full history (`admit_ctx`), exactly like prefix caching. The
//! admission announces the split to the executor *and* to the stage
//! shape (`prefill_past`), so the suffix's cross-attention over the
//! resident history is charged exactly — the pricing approximation
//! that previously underpriced long-history turns is closed; see
//! `duplex_model::ops::StageShape` on prefill-with-past.
//!
//! # Chunked prefill
//!
//! A long prompt in a mixed stage stalls every decoding request for the
//! whole prefill, spiking the token-between-token tail. With
//! [`Scenario::prefill_chunk`] set, each stage prefills at most that
//! many prompt tokens: a long prompt is split into bounded slices
//! processed across consecutive stages, each slice a prefill-with-past
//! over the slices before it (announced via [`StageDelta::chunk`]).
//! Only the final slice samples the first token and joins the decode
//! set, so decode requests interleave with short mixed stages instead
//! of one long one. Throughput is nearly unchanged (the same tokens are
//! processed; only per-chunk launch overheads repeat), while the
//! mixed-stage TBT p99 drops by roughly the prompt/chunk ratio.
//!
//! A fixed budget throttles prefill bandwidth even when nobody is
//! decoding; [`Scenario::with_prefill_chunk_adaptive`] instead scales
//! the budget with the current decode-batch occupancy (see
//! [`AdaptiveChunk`]), spending idle stages on big prefill slices and
//! tightening the budget only when a full decode cohort is exposed to
//! the prefill stall.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use duplex_model::kv_cache::{EvictionPolicy, PagedKvCache};
use duplex_model::ops::StageShape;

use crate::delta::StageDelta;
use crate::metrics::{
    KvReuseStats, LatencyDigest, SimReport, SloStats, StageRecord, StageStats, TierStats,
};
use crate::policy::{PolicyContext, SchedulingPolicy};
use crate::preempt::{MultiplexSpec, PreemptSpec, PreemptStats};
use crate::request::{Request, RequestRecord};
use crate::router::PoolRole;
use crate::scheduler::{SimulationConfig, StageExecutor};
use crate::snapshot::{
    ActiveState, ChunkingState, DigestState, KvState, MuxMemberState, MuxState, PausedState,
    ReplicaState, ResumeState, StreamState, TierState,
};
use crate::trace::TraceRecorder;
use crate::workload::{exp_sample, sample_len, Arrivals, RequestSource, Workload};

/// One service tier: a share of traffic, a priority, and deadlines.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTier {
    /// Display name.
    pub name: String,
    /// Relative share of arriving requests landing in this tier.
    pub weight: f64,
    /// Admission priority (lower = more urgent) for tier-aware
    /// policies.
    pub priority: u32,
    /// Time-to-first-token deadline in seconds.
    pub t2ft_deadline_s: f64,
    /// Mean token-between-token deadline in seconds (0 = no TBT SLO).
    pub tbt_deadline_s: f64,
}

impl SloTier {
    /// A tier with the given share, priority and deadlines.
    pub fn new(name: &str, weight: f64, priority: u32, t2ft_s: f64, tbt_s: f64) -> Self {
        assert!(weight > 0.0, "tier weight must be positive");
        assert!(t2ft_s > 0.0, "t2ft deadline must be positive");
        assert!(tbt_s >= 0.0, "tbt deadline must be non-negative");
        Self {
            name: name.into(),
            weight,
            priority,
            t2ft_deadline_s: t2ft_s,
            tbt_deadline_s: tbt_s,
        }
    }
}

/// Multi-turn conversation behavior.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConversationSpec {
    /// Probability that a completed round spawns a follow-up.
    pub followup_prob: f64,
    /// Hard cap on rounds per conversation (>= 1, counts the first).
    pub max_rounds: u32,
    /// Mean think time between a reply and the follow-up, seconds.
    pub mean_think_s: f64,
    /// Mean new-user-turn prompt tokens appended each round (sampled
    /// with the workload's cv).
    pub turn_tokens: u64,
    /// Page size (tokens) of the parked-history KV pool.
    pub page_tokens: u64,
}

impl ConversationSpec {
    /// A chat-like spec: geometric continuation at `followup_prob`.
    pub fn chat(followup_prob: f64, max_rounds: u32, mean_think_s: f64, turn_tokens: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&followup_prob),
            "probability in [0, 1]"
        );
        assert!(max_rounds >= 1, "at least one round");
        assert!(
            mean_think_s > 0.0 && turn_tokens > 0,
            "think time and turn must be positive"
        );
        Self {
            followup_prob,
            max_rounds,
            mean_think_s,
            turn_tokens,
            page_tokens: 16,
        }
    }
}

/// A per-stage prefill budget that adapts to decode occupancy: a full
/// decode cohort gets the latency-protecting `min_tokens` budget, an
/// idle batch gets `max_tokens` of prefill bandwidth, and occupancies
/// in between interpolate linearly. This closes the fixed-chunk
/// throughput gap near saturation noted in
/// `duplex::experiments::scenario_suite`: the fixed budget throttles
/// prefill even when no decoding request would feel the stall.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveChunk {
    /// Budget when every batch slot is decoding (most TBT-sensitive).
    pub min_tokens: u64,
    /// Budget when nothing is decoding (prefill bandwidth is free).
    pub max_tokens: u64,
}

impl AdaptiveChunk {
    /// The stage budget at `decoding` active requests out of
    /// `max_batch` slots: linear from `max_tokens` (idle) down to
    /// `min_tokens` (full).
    pub fn budget(&self, decoding: usize, max_batch: usize) -> u64 {
        let slots = max_batch.max(1) as u64;
        let occupied = (decoding as u64).min(slots);
        let span = self.max_tokens - self.min_tokens;
        (self.max_tokens - span * occupied / slots).max(1)
    }
}

/// A complete serving scenario: shapes, arrivals, conversations, SLOs.
///
/// Construct with [`Scenario::new`] plus the `with_*` builders — the
/// struct is `#[non_exhaustive]`, so literal construction outside this
/// crate is not supported (new knobs may be added without a breaking
/// change).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Scenario {
    /// Display name.
    pub name: String,
    /// Request-shape distribution (also seeds all scenario RNG).
    pub workload: Workload,
    /// Arrival process.
    pub arrivals: Arrivals,
    /// Initial requests (= conversations when multi-turn); follow-up
    /// rounds come on top. Clamped to the trace length under replay.
    pub requests: usize,
    /// Multi-turn behavior; `None` for single-shot requests.
    pub conversation: Option<ConversationSpec>,
    /// Service tiers; empty runs without SLO accounting.
    pub tiers: Vec<SloTier>,
    /// Per-stage prefill token budget: prompts longer than this are
    /// split into chunks across consecutive stages (see the
    /// [module docs](self)). 0 disables chunking (whole-prompt
    /// prefills, the paper's behavior).
    pub prefill_chunk: u64,
    /// Occupancy-adaptive prefill budget; overrides the fixed
    /// [`Scenario::prefill_chunk`] when set.
    pub adaptive_chunk: Option<AdaptiveChunk>,
}

impl Scenario {
    /// A single-shot scenario without tiers.
    pub fn new(name: &str, workload: Workload, arrivals: Arrivals, requests: usize) -> Self {
        Self {
            name: name.into(),
            workload,
            arrivals,
            requests,
            conversation: None,
            tiers: Vec::new(),
            prefill_chunk: 0,
            adaptive_chunk: None,
        }
    }

    /// Attach a conversation spec.
    pub fn with_conversation(mut self, spec: ConversationSpec) -> Self {
        self.conversation = Some(spec);
        self
    }

    /// Bound each stage's prefill work to `tokens` prompt tokens
    /// (chunked prefill; 0 disables).
    pub fn with_prefill_chunk(mut self, tokens: u64) -> Self {
        self.prefill_chunk = tokens;
        self
    }

    /// Scale the per-stage prefill budget with decode occupancy: from
    /// `max_tokens` when the batch is idle down to `min_tokens` when
    /// every slot decodes (see [`AdaptiveChunk`]).
    pub fn with_prefill_chunk_adaptive(mut self, min_tokens: u64, max_tokens: u64) -> Self {
        assert!(min_tokens > 0, "adaptive chunk floor must be positive");
        assert!(
            max_tokens >= min_tokens,
            "adaptive chunk ceiling below its floor"
        );
        self.adaptive_chunk = Some(AdaptiveChunk {
            min_tokens,
            max_tokens,
        });
        self
    }

    /// Attach SLO tiers.
    pub fn with_tiers(mut self, tiers: Vec<SloTier>) -> Self {
        self.tiers = tiers;
        self
    }

    /// Whether any stage may carry a prefill budget (fixed or
    /// adaptive).
    pub fn chunked(&self) -> bool {
        self.prefill_chunk > 0 || self.adaptive_chunk.is_some()
    }

    /// Validate the scenario and clamp its request count to the trace
    /// length under replay — the shared front door of
    /// [`ScenarioSimulation::new`] and
    /// [`crate::cluster::ClusterSimulation::new`], so the two entry
    /// points cannot drift.
    ///
    /// # Panics
    ///
    /// Panics when tiers are declared with a non-positive total
    /// weight.
    pub(crate) fn normalized(mut self) -> Self {
        if let Arrivals::Trace { requests } = &self.arrivals {
            self.requests = self.requests.min(requests.len());
        }
        let total_weight: f64 = self.tiers.iter().map(|t| t.weight).sum();
        assert!(
            self.tiers.is_empty() || total_weight > 0.0,
            "tier weights must sum to a positive value"
        );
        self
    }

    /// The paper-external default tier set: interactive / standard /
    /// batch at 60/30/10% with tightening deadlines. Deadlines are in
    /// units of `stage_s`, a rough per-stage latency for the system
    /// under test, so the same tiers make sense at quick and paper
    /// scales.
    pub fn default_tiers(stage_s: f64) -> Vec<SloTier> {
        vec![
            SloTier::new("interactive", 0.6, 0, 10.0 * stage_s, 1.8 * stage_s),
            SloTier::new("standard", 0.3, 1, 60.0 * stage_s, 4.0 * stage_s),
            SloTier::new("batch", 0.1, 2, 1000.0 * stage_s, 0.0),
        ]
    }
}

/// A request waiting for admission, as shown to a
/// [`SchedulingPolicy`].
#[derive(Debug, Clone, PartialEq)]
pub struct PendingRequest {
    /// The request; `input_len` is the *full* prompt including any
    /// conversation history.
    pub request: Request,
    /// Index into the scenario's tier list (0 when untiered).
    pub tier: usize,
    /// The tier's priority (0 when untiered).
    pub priority: u32,
    /// Absolute T2FT deadline (arrival + tier deadline; infinity when
    /// untiered).
    pub deadline_s: f64,
    /// Conversation id (the root request's id).
    pub conversation: u64,
    /// 1-based round within the conversation.
    pub round: u32,
    /// Prompt prefix that may still be KV-resident from the previous
    /// round (0 for fresh requests).
    pub history_tokens: u64,
    /// Admissions that have gone past this request while it waited —
    /// the aging signal for starvation guards (see
    /// [`crate::policy::ShortestPromptFirst`]).
    pub skipped: u64,
}

#[derive(Debug)]
struct ActiveRequest {
    pending: PendingRequest,
    /// Tokens actually generated so far.
    generated: u64,
    first_token_s: f64,
}

/// A request whose prompt is being prefilled in chunks: admitted (its
/// KV is reserved, it holds a batch slot) but not yet decoding.
#[derive(Debug)]
struct ChunkingRequest {
    pending: PendingRequest,
    /// Resident history its chunks attend over (prefix reuse).
    history: u64,
    /// New prompt tokens already prefilled by earlier chunks.
    processed: u64,
    /// Total new tokens to prefill (input_len - resident history).
    prefill_total: u64,
    /// Mid-decode state carried by a recompute-on-resume re-prefill
    /// (`None` for ordinary prompts): the final slice restores this
    /// instead of sampling a first token.
    resumed: Option<ResumeCarry>,
}

/// Mid-decode progress a preempted request carries through its
/// recompute re-prefill: generation continues where the pause left
/// off, and the original first-token time survives for T2FT.
#[derive(Debug, Clone, Copy)]
struct ResumeCarry {
    generated: u64,
    first_token_s: f64,
}

/// A batch-tier decode paused by the preemption policy: off the batch
/// (its slot and KV reservation are released) but not abandoned — it
/// resumes deterministically once slots free up. `swapped` records the
/// cost model's choice: the context is parked in the replica's paged
/// pool (restored later as a priced transfer) or dropped for a full
/// re-prefill.
#[derive(Debug)]
struct PausedRequest {
    pending: PendingRequest,
    /// Tokens generated before the pause.
    generated: u64,
    first_token_s: f64,
    /// Resident context at the pause: prompt + generated tokens.
    ctx: u64,
    /// KV swap-out (true) vs recompute-on-resume (false).
    swapped: bool,
    /// Replica clock at the pause, for the paused-time metric.
    paused_at_s: f64,
}

/// One member of a multiplex slot: a batch-tier request advancing one
/// token per stage on the slot's shared compute.
#[derive(Debug)]
struct MuxMember {
    pending: PendingRequest,
    generated: u64,
    first_token_s: f64,
}

/// A multiplex slot: several compatible paused batch-tier requests
/// sharing one batch slot (RevMUX-style). The slot is one ordinary
/// decode row in the stage — it joined at the longest member's context
/// and advances one token per stage — while every live member
/// generates a token per stage, credited to goodput at the slot's
/// quality exchange rate.
#[derive(Debug)]
struct MuxSlot {
    /// Decode context the slot joined at (max member context).
    ctx: u64,
    /// Tokens the slot has advanced since joining.
    generated: u64,
    /// KV bytes reserved for the slot (released when it retires).
    kv_bytes: u64,
    /// Goodput credit per multiplexed token, from the
    /// [`crate::MultiplexSpec`] at formation time.
    quality: f64,
    members: Vec<MuxMember>,
}

impl MuxSlot {
    /// Post-advance decode context for the stage being formed (same
    /// convention as [`ActiveRequest::decode_ctx`]).
    fn decode_ctx(&self) -> u64 {
        self.ctx + self.generated
    }

    /// Members still generating.
    fn live_members(&self) -> u64 {
        self.members
            .iter()
            .filter(|m| m.generated < m.pending.request.output_len)
            .count() as u64
    }
}

impl ActiveRequest {
    fn decode_ctx(&self) -> u64 {
        self.pending.request.input_len + self.generated
    }

    fn kv_reserved(&self, bytes_per_token: u64) -> u64 {
        self.pending.request.max_kv_tokens() * bytes_per_token
    }
}

/// The scenario-global side of a run: the arrival process, tier draws,
/// follow-up spawning and (optionally) trace recording. One stream
/// feeds every replica of a cluster; the replicas never touch RNG, so
/// the draw order — and with it seeded determinism — is fixed by the
/// global event order alone.
pub(crate) struct ScenarioStream<'a> {
    workload: Workload,
    conversation: Option<ConversationSpec>,
    tiers: Vec<SloTier>,
    tier_weight_total: f64,
    source: RequestSource,
    rng: StdRng,
    drawn: usize,
    requests: usize,
    next_id: u64,
    peeked: Option<Request>,
    /// Follow-ups not yet arrived, sorted by descending arrival time
    /// (pop from the back).
    followups: Vec<PendingRequest>,
    recorder: Option<&'a mut TraceRecorder>,
}

impl<'a> ScenarioStream<'a> {
    pub(crate) fn new(scenario: &Scenario, recorder: Option<&'a mut TraceRecorder>) -> Self {
        let total_weight: f64 = scenario.tiers.iter().map(|t| t.weight).sum();
        assert!(
            scenario.tiers.is_empty() || total_weight > 0.0,
            "tier weights must sum to a positive value"
        );
        Self {
            workload: scenario.workload.clone(),
            conversation: scenario.conversation,
            tiers: scenario.tiers.clone(),
            tier_weight_total: total_weight,
            source: RequestSource::new(scenario.workload.clone(), scenario.arrivals.clone()),
            // Scenario-side draws (tier assignment, think times,
            // follow-up lengths) use an independent stream so they
            // never perturb the arrival process.
            rng: StdRng::seed_from_u64(scenario.workload.seed ^ 0x5C3A_A110),
            drawn: 0,
            requests: scenario.requests,
            next_id: scenario.requests as u64,
            peeked: None,
            followups: Vec::new(),
            recorder,
        }
    }

    fn peek_source(&mut self) -> Option<&Request> {
        if self.peeked.is_none() && self.drawn < self.requests {
            self.peeked = Some(self.source.next_request());
            self.drawn += 1;
        }
        self.peeked.as_ref()
    }

    /// Arrival time of the next request (source or follow-up), if any.
    pub(crate) fn next_arrival_time(&mut self) -> Option<f64> {
        let source = self.peek_source().map(|r| r.arrival_s);
        let follow = self.followups.last().map(|f| f.request.arrival_s);
        match (source, follow) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    /// Pop the earliest pending arrival (source wins exact ties so the
    /// one-replica cluster reproduces the plain scheduler's queue
    /// order), drawing its tier when it comes from the source.
    pub(crate) fn pop_next(&mut self) -> Option<PendingRequest> {
        let source = self.peek_source().map(|r| r.arrival_s);
        let follow = self.followups.last().map(|f| f.request.arrival_s);
        let from_source = match (source, follow) {
            (Some(a), Some(b)) => a <= b,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => return None,
        };
        let pending = if from_source {
            let request = self.peeked.take().expect("peeked request exists");
            let tier = self.draw_tier();
            make_pending(request, tier, &self.tiers)
        } else {
            self.followups.pop().expect("checked non-empty")
        };
        if let Some(rec) = self.recorder.as_deref_mut() {
            rec.record_request(&pending.request);
        }
        Some(pending)
    }

    fn draw_tier(&mut self) -> usize {
        if self.tiers.is_empty() {
            return 0;
        }
        let mut u: f64 = self.rng.random::<f64>() * self.tier_weight_total;
        for (i, t) in self.tiers.iter().enumerate() {
            u -= t.weight;
            if u < 0.0 {
                return i;
            }
        }
        self.tiers.len() - 1
    }

    /// Roll the continuation die for a finished round.
    fn roll_followup(&mut self, prob: f64) -> bool {
        self.rng.random::<f64>() < prob
    }

    /// Draw think time and lengths for the next round and queue the
    /// follow-up (absolute arrival time).
    fn spawn_followup(&mut self, done: &PendingRequest, history: u64, now_s: f64) {
        let spec = self.conversation.expect("spawn requires a conversation");
        let think = exp_sample(&mut self.rng, 1.0 / spec.mean_think_s);
        let turn = sample_len(&mut self.rng, spec.turn_tokens, self.workload.cv);
        let output = sample_len(&mut self.rng, self.workload.mean_output, self.workload.cv);
        let request = Request {
            id: self.next_id,
            arrival_s: now_s + think,
            input_len: history + turn,
            output_len: output,
        };
        self.next_id += 1;
        let follow = PendingRequest {
            deadline_s: request.arrival_s
                + self
                    .tiers
                    .get(done.tier)
                    .map_or(f64::INFINITY, |t| t.t2ft_deadline_s),
            request,
            tier: done.tier,
            priority: done.priority,
            conversation: done.conversation,
            round: done.round + 1,
            history_tokens: history,
            skipped: 0,
        };
        // Keep descending arrival order (pop from back).
        let pos = self
            .followups
            .partition_point(|f| f.request.arrival_s > follow.request.arrival_s);
        self.followups.insert(pos, follow);
    }

    /// Re-enqueue a request that left the fleet (crash retry, drain
    /// reroute) so it flows back through the router at its (possibly
    /// rewritten) arrival time. Rides the follow-up queue: the request
    /// merges into the global arrival order and is captured by stream
    /// snapshots like any other queued arrival. No RNG is drawn — the
    /// request keeps its identity, tier and history.
    pub(crate) fn requeue(&mut self, p: PendingRequest) {
        let pos = self
            .followups
            .partition_point(|f| f.request.arrival_s > p.request.arrival_s);
        self.followups.insert(pos, p);
    }

    /// Capture the stream's dynamic state (both RNG streams, draw
    /// counters, the peeked request and queued follow-ups) for a
    /// [`crate::ClusterSnapshot`]. Static configuration (workload,
    /// tiers, conversation spec) is not captured: a resume rebuilds it
    /// from the same [`Scenario`].
    pub(crate) fn export_state(&self) -> StreamState {
        let (source_rng, source_next_id, source_clock, source_burst_on, source_phase_until) =
            self.source.export_state();
        StreamState {
            source_rng,
            source_next_id,
            source_clock,
            source_burst_on,
            source_phase_until,
            rng: self.rng.state(),
            drawn: self.drawn as u64,
            next_id: self.next_id,
            peeked: self.peeked,
            followups: self.followups.clone(),
        }
    }

    /// Restore state captured by [`export_state`](Self::export_state)
    /// onto a freshly built stream for the same scenario.
    pub(crate) fn import_state(&mut self, s: &StreamState) {
        self.source.import_state(
            s.source_rng,
            s.source_next_id,
            s.source_clock,
            s.source_burst_on,
            s.source_phase_until,
        );
        self.rng = StdRng::from_state(s.rng);
        self.drawn = s.drawn as usize;
        self.next_id = s.next_id;
        self.peeked = s.peeked;
        self.followups = s.followups.clone();
    }
}

fn make_pending(request: Request, tier: usize, tiers: &[SloTier]) -> PendingRequest {
    let (priority, deadline_s) = tiers.get(tier).map_or((0, f64::INFINITY), |t| {
        (t.priority, request.arrival_s + t.t2ft_deadline_s)
    });
    PendingRequest {
        request,
        tier,
        priority,
        deadline_s,
        conversation: request.id,
        round: 1,
        history_tokens: 0,
        skipped: 0,
    }
}

/// A conversation-lifecycle action buffered during
/// [`ReplicaSim::step`] and applied to the shared [`ScenarioStream`]
/// at the next merge point, in buffer order. Deferring these (instead
/// of mutating the stream mid-step) is what makes replica stepping
/// side-effect-free between synchronization points.
pub(crate) enum RetireEvent {
    /// A round below the conversation's round cap finished: roll the
    /// continuation die; on success park `history` tokens and spawn
    /// the follow-up round (think time measured from `now_s`), on
    /// failure release the conversation's parked KV.
    MaybeFollowup {
        /// The finished round, owning conversation identity and tier.
        pending: PendingRequest,
        /// Prompt + generated tokens: the parked-history length.
        history: u64,
        /// The replica clock when the round retired.
        now_s: f64,
    },
    /// The round cap was reached: drop parked KV, no die roll.
    Release {
        /// The conversation whose KV is released.
        conversation: u64,
    },
}

/// A finished prefill waiting to ship to its decode replica: buffered
/// during [`ReplicaSim::step`] exactly like [`RetireEvent`]s and
/// delivered by the cluster at the next merge point, where the KV
/// transfer is priced over the pool interconnect.
pub(crate) struct HandoffEvent {
    /// The request whose prompt just finished prefilling here.
    pub(crate) pending: PendingRequest,
    /// The replica clock when the last prefill slice completed.
    pub(crate) done_s: f64,
}

/// One replica's continuous-batching event loop: routed requests enter
/// through [`ReplicaSim::enqueue`], [`ReplicaSim::step`] forms and
/// executes one stage, and the accumulated metrics leave through
/// [`ReplicaSim::into_report`]. The plain [`ScenarioSimulation`] is a
/// one-replica instance of exactly this machine.
pub(crate) struct ReplicaSim {
    config: SimulationConfig,
    tiers: Vec<SloTier>,
    conversation: Option<ConversationSpec>,
    prefill_chunk: u64,
    adaptive_chunk: Option<AdaptiveChunk>,
    /// Whether deltas must carry decode-join contexts: reuse
    /// admissions and chunked final slices join above their prefilled
    /// length.
    announce_ctx: bool,
    /// Routed requests not yet folded into the waiting queue, sorted
    /// by descending arrival time (pop from the back).
    inbox: Vec<PendingRequest>,
    pending: Vec<PendingRequest>,
    active: Vec<ActiveRequest>,
    admitted: Vec<ActiveRequest>,
    /// Requests mid-way through a chunked prompt prefill, in admission
    /// order (each stage continues them FIFO).
    chunking: Vec<ChunkingRequest>,
    /// Batch-tier decodes paused by the preemption policy, in pause
    /// order (resumed FIFO).
    paused: Vec<PausedRequest>,
    /// Within-step scratch: paused requests rejoining the stage being
    /// formed (one-token swap joins and final recompute slices). They
    /// keep their mid-decode state, unlike `admitted` — drained into
    /// `active` after the stage executes. Empty at merge points.
    resumed: Vec<ActiveRequest>,
    /// Live multiplex slots: each is one decode row shared by several
    /// batch-tier requests.
    mux: Vec<MuxSlot>,
    /// Within-step scratch: multiplex slots joining the stage being
    /// formed. Empty at merge points.
    mux_admitted: Vec<MuxSlot>,
    /// Preemption and multiplexing counters.
    preempt: PreemptStats,
    /// Finished conversations' KV, parked between turns. Recompute
    /// policy: an evicted history is simply re-prefilled.
    parked: Option<PagedKvCache>,
    reserved: u64,
    clock: f64,
    delta: StageDelta,
    shape: StageShape,
    completed: Vec<RequestRecord>,
    stages: Vec<StageRecord>,
    stage_stats: StageStats,
    tbt_digest: LatencyDigest,
    tier_stats: Vec<TierStats>,
    /// Reused per-stage tier-occupancy counts for per-tier TBT.
    tier_active: Vec<u64>,
    kv_reuse: KvReuseStats,
    /// Conversation events buffered by [`ReplicaSim::step`], applied
    /// at the next merge point (capacity reused across steps).
    retire_events: Vec<RetireEvent>,
    /// Pool role under disaggregated serving: `Colocated` replicas run
    /// both phases (the default, byte-identical to the pre-pool
    /// behavior), `Prefill` replicas only run prompts and hand the KV
    /// off, `Decode` replicas receive those handoffs as parked KV.
    role: PoolRole,
    /// Finished prefill-pool prompts awaiting KV transfer, buffered
    /// like `retire_events` and drained by the cluster at merge points.
    handoffs: Vec<HandoffEvent>,
    /// Within-step scratch: prompts whose final prefill slice is in the
    /// stage being formed; they become [`HandoffEvent`]s once the stage
    /// executes and the clock advances (capacity reused across steps).
    finished_prefills: Vec<PendingRequest>,
    /// Router-facing admission flag: false while a fault plan has this
    /// replica down or draining. Orthogonal to the stage cap.
    admitting: bool,
    /// Whether the replica is finishing its batch under a drain fault.
    draining: bool,
    /// Virtual-time multiplier on stage latency (restart warm-up,
    /// transient slowdown). 1.0 is bit-exact pass-through.
    perf_factor: f64,
    /// When this replica last went down (crash applied, drain handoff
    /// completed, or parked in the standby pool); `None` while up.
    down_since: Option<f64>,
    /// Closed down time accumulated by earlier outages, in virtual
    /// seconds (the open interval, if any, is closed by `restart`).
    down_seconds: f64,
    /// During-failure SLO windows `[start, end)` from the fault plan
    /// (empty without one) and the per-window, per-tier
    /// (completed, met) counts.
    fault_windows: Vec<(f64, f64)>,
    window_counts: Vec<Vec<(u64, u64)>>,
    /// Generated-token timeline: bucket width (0 = disabled) and
    /// per-bucket token counts in bucket order.
    timeline_bucket_s: f64,
    timeline: Vec<(u64, u64)>,
}

impl ReplicaSim {
    pub(crate) fn new(config: SimulationConfig, scenario: &Scenario) -> Self {
        let parked = scenario.conversation.as_ref().map(|spec| {
            PagedKvCache::new(
                config.kv_capacity_bytes,
                spec.page_tokens,
                config.kv_bytes_per_token.max(1),
                EvictionPolicy::Recompute,
            )
        });
        let tier_stats: Vec<TierStats> = scenario
            .tiers
            .iter()
            .map(|t| TierStats {
                name: t.name.clone(),
                t2ft_deadline_s: t.t2ft_deadline_s,
                tbt_deadline_s: t.tbt_deadline_s,
                ..TierStats::default()
            })
            .collect();
        Self {
            tiers: scenario.tiers.clone(),
            conversation: scenario.conversation,
            prefill_chunk: scenario.prefill_chunk,
            adaptive_chunk: scenario.adaptive_chunk,
            announce_ctx: scenario.conversation.is_some() || scenario.chunked(),
            inbox: Vec::new(),
            pending: Vec::new(),
            active: Vec::new(),
            admitted: Vec::new(),
            chunking: Vec::new(),
            paused: Vec::new(),
            resumed: Vec::new(),
            mux: Vec::new(),
            mux_admitted: Vec::new(),
            preempt: PreemptStats::default(),
            parked,
            reserved: 0,
            clock: 0.0,
            delta: StageDelta::start(),
            shape: StageShape::default(),
            completed: Vec::new(),
            stages: Vec::new(),
            stage_stats: StageStats::default(),
            tbt_digest: LatencyDigest::default(),
            tier_active: vec![0; tier_stats.len()],
            tier_stats,
            kv_reuse: KvReuseStats::default(),
            retire_events: Vec::new(),
            role: PoolRole::Colocated,
            handoffs: Vec::new(),
            finished_prefills: Vec::new(),
            admitting: true,
            draining: false,
            perf_factor: 1.0,
            down_since: None,
            down_seconds: 0.0,
            fault_windows: Vec::new(),
            window_counts: Vec::new(),
            timeline_bucket_s: 0.0,
            timeline: Vec::new(),
            config,
        }
    }

    /// Hand a routed request to this replica.
    pub(crate) fn enqueue(&mut self, p: PendingRequest) {
        let pos = self
            .inbox
            .partition_point(|q| q.request.arrival_s > p.request.arrival_s);
        self.inbox.insert(pos, p);
    }

    pub(crate) fn in_flight(&self) -> bool {
        !self.active.is_empty()
            || !self.chunking.is_empty()
            || !self.admitted.is_empty()
            || !self.resumed.is_empty()
            || !self.mux.is_empty()
            || !self.mux_admitted.is_empty()
            // Paused work still belongs to this replica: it must resume
            // and finish here before the replica counts as drained.
            || !self.paused.is_empty()
    }

    /// Whether the stage cap still allows this replica to run.
    pub(crate) fn can_accept(&self) -> bool {
        (self.stage_stats.stages as usize) < self.config.max_stages
    }

    /// When this replica's next stage would start: its clock while it
    /// has work, the earliest routed arrival while idle, `None` when
    /// drained (or stage-capped).
    pub(crate) fn next_start(&self) -> Option<f64> {
        if !self.can_accept() {
            return None;
        }
        if self.in_flight() || !self.pending.is_empty() {
            return Some(self.clock);
        }
        self.inbox
            .last()
            .map(|p| self.clock.max(p.request.arrival_s))
    }

    /// Resident tokens of this conversation's parked history in this
    /// replica's KV pool (0 when absent) — the session-affinity
    /// routing signal. A stale entry from an earlier round reports its
    /// own (shorter) prefix length.
    pub(crate) fn resident_history(&self, conversation: u64) -> u64 {
        self.parked
            .as_ref()
            .and_then(|cache| cache.resident_tokens(conversation))
            .unwrap_or(0)
    }

    /// Router-facing load metrics: (in-flight requests, queued
    /// requests, outstanding work in tokens). A queued follow-up is
    /// charged the prefill *this* replica would actually run: its
    /// history counts as reused only up to the prefix parked here —
    /// a spilled follow-up re-prefills everything, and the load says
    /// so. Exact O(queue) walk per snapshot; revisit with running
    /// counters if fleets outgrow the suite's backlog sizes.
    pub(crate) fn load(&self) -> (usize, usize, u64) {
        let mux_members: usize = self.mux.iter().map(|s| s.live_members() as usize).sum();
        let in_flight = self.active.len() + self.admitted.len() + self.chunking.len() + mux_members;
        // Paused requests are queued-but-displaced: they will re-enter
        // this replica's batch, so the router prices them as queue.
        let queued = self.pending.len() + self.inbox.len() + self.paused.len();
        let mut tokens: u64 = self
            .active
            .iter()
            .map(|a| a.pending.request.output_len.saturating_sub(a.generated))
            .sum();
        tokens += self
            .chunking
            .iter()
            .map(|c| c.prefill_total - c.processed + c.pending.request.output_len)
            .sum::<u64>();
        tokens += self
            .mux
            .iter()
            .flat_map(|s| s.members.iter())
            .map(|m| m.pending.request.output_len.saturating_sub(m.generated))
            .sum::<u64>();
        tokens += self
            .paused
            .iter()
            .map(|p| {
                // A recompute resume re-prefills the whole paused
                // context before generation continues.
                let reprefill = if p.swapped { 0 } else { p.ctx };
                reprefill + p.pending.request.output_len.saturating_sub(p.generated)
            })
            .sum::<u64>();
        tokens += self
            .pending
            .iter()
            .chain(self.inbox.iter())
            .map(|p| {
                let reused = self.resident_history(p.conversation).min(p.history_tokens);
                p.request.input_len - reused + p.request.output_len
            })
            .sum::<u64>();
        (in_flight, queued, tokens)
    }

    /// KV bytes of swapped-out paused contexts parked in this
    /// replica's pool — displaced state still bound to this replica,
    /// advertised to routers through
    /// [`crate::router::ReplicaSnapshot::transfer_backlog_bytes`].
    pub(crate) fn paused_swap_bytes(&self) -> u64 {
        self.paused
            .iter()
            .filter(|p| p.swapped)
            .map(|p| p.ctx * self.config.kv_bytes_per_token)
            .sum()
    }

    /// Arm the preemption machinery before the run starts (and before
    /// any snapshot import) when `policy` preempts: resumes join the
    /// batch above their prefilled length, so deltas must announce
    /// decode-join contexts, and swap-out needs a parked pool even in
    /// single-shot scenarios. A no-op for plain policies.
    pub(crate) fn prepare_preempt(&mut self, policy: &dyn SchedulingPolicy) {
        if policy.preempt_spec().is_none() {
            return;
        }
        self.announce_ctx = true;
        if self.parked.is_none() {
            self.parked = Some(PagedKvCache::new(
                self.config.kv_capacity_bytes,
                Self::HANDOFF_PAGE_TOKENS,
                self.config.kv_bytes_per_token.max(1),
                EvictionPolicy::Recompute,
            ));
        }
    }

    /// KV bytes reserved by in-flight work, and the replica's budget.
    pub(crate) fn kv_usage(&self) -> (u64, u64) {
        (self.reserved, self.config.kv_capacity_bytes)
    }

    pub(crate) fn clock(&self) -> f64 {
        self.clock
    }

    pub(crate) fn max_batch(&self) -> usize {
        self.config.max_batch
    }

    /// Router-facing admission: the stage cap allows more work *and*
    /// no fault has this replica down or draining. What dispatch
    /// advertises as [`crate::router::ReplicaSnapshot::accepting`].
    pub(crate) fn is_admitting(&self) -> bool {
        self.admitting && self.can_accept()
    }

    pub(crate) fn is_draining(&self) -> bool {
        self.draining
    }

    /// Arm fault-plan recording: the during-failure SLO windows (one
    /// per scripted fault) and the generated-token timeline bucket.
    /// Must be called before the run starts (and before any snapshot
    /// import) so no-fault runs skip the recording entirely.
    pub(crate) fn set_fault_recording(&mut self, windows: Vec<(f64, f64)>, bucket_s: f64) {
        self.window_counts = vec![vec![(0, 0); self.tier_stats.len()]; windows.len()];
        self.fault_windows = windows;
        self.timeline_bucket_s = bucket_s;
    }

    /// Scale this replica's stage latency (warm-up, slowdown; 1.0 =
    /// nominal).
    pub(crate) fn set_perf_factor(&mut self, factor: f64) {
        self.perf_factor = factor;
    }

    /// Page granularity for the parked pool a decode replica creates to
    /// receive prefill handoffs when the scenario itself has no
    /// conversation spec (and hence no pool of its own).
    const HANDOFF_PAGE_TOKENS: u64 = 16;

    /// Assign this replica's pool role before the run starts (or before
    /// a snapshot import). A `Decode` replica must announce decode-join
    /// contexts — handed-off prompts join above their shipped KV — and
    /// needs a parked pool to receive that KV even in single-shot
    /// scenarios.
    pub(crate) fn set_role(&mut self, role: PoolRole) {
        self.role = role;
        if role == PoolRole::Decode {
            self.announce_ctx = true;
            if self.parked.is_none() {
                self.parked = Some(PagedKvCache::new(
                    self.config.kv_capacity_bytes,
                    Self::HANDOFF_PAGE_TOKENS,
                    self.config.kv_bytes_per_token.max(1),
                    EvictionPolicy::Recompute,
                ));
            }
        }
    }

    pub(crate) fn role(&self) -> PoolRole {
        self.role
    }

    /// Whether [`ReplicaSim::step`] buffered finished prefills whose KV
    /// must ship to the decode pool before this replica's window can
    /// continue.
    pub(crate) fn has_handoffs(&self) -> bool {
        !self.handoffs.is_empty()
    }

    /// Take the buffered prefill→decode handoffs, in completion order.
    pub(crate) fn take_handoffs(&mut self) -> Vec<HandoffEvent> {
        std::mem::take(&mut self.handoffs)
    }

    /// Hard-crash this replica at a merge point: every queued,
    /// chunking and decoding request is lost (returned sorted by
    /// request id for deterministic retry order), the parked KV pool
    /// is wiped, and the replica stops admitting until restarted. The
    /// carried stage delta resets to a fresh one, so the executor's
    /// next `execute_delta` rebuilds its batch state from scratch.
    pub(crate) fn crash(&mut self) -> Vec<PendingRequest> {
        debug_assert!(
            self.admitted.is_empty()
                && self.resumed.is_empty()
                && self.mux_admitted.is_empty()
                && self.retire_events.is_empty()
                && self.handoffs.is_empty(),
            "crash applied outside a merge point"
        );
        let mut lost: Vec<PendingRequest> = Vec::new();
        lost.append(&mut self.inbox);
        lost.append(&mut self.pending);
        lost.extend(self.chunking.drain(..).map(|c| c.pending));
        lost.extend(self.active.drain(..).map(|a| a.pending));
        // Paused requests and multiplex-slot members die with the
        // replica like any other in-flight decode (their parked KV is
        // wiped below either way).
        lost.extend(self.paused.drain(..).map(|p| p.pending));
        lost.extend(
            self.mux
                .drain(..)
                .flat_map(|s| s.members.into_iter().map(|m| m.pending)),
        );
        lost.sort_by_key(|p| p.request.id);
        for n in self.tier_active.iter_mut() {
            *n = 0;
        }
        self.reserved = 0;
        self.delta = StageDelta::start();
        if self.parked.is_some() {
            // Wipe the parked pool (conversation histories or received
            // prefill handoffs alike are gone with the replica).
            let page_tokens = self
                .conversation
                .as_ref()
                .map_or(Self::HANDOFF_PAGE_TOKENS, |spec| spec.page_tokens);
            self.parked = Some(PagedKvCache::new(
                self.config.kv_capacity_bytes,
                page_tokens,
                self.config.kv_bytes_per_token.max(1),
                EvictionPolicy::Recompute,
            ));
        }
        self.admitting = false;
        self.draining = false;
        lost
    }

    /// Begin a graceful drain: stop admitting, return the
    /// queued-but-unstarted requests (sorted by request id) for
    /// rerouting, keep the in-flight batch running. The cluster
    /// completes the drain (KV handoff, down window) once
    /// [`ReplicaSim::in_flight`] empties.
    pub(crate) fn begin_drain(&mut self) -> Vec<PendingRequest> {
        let mut displaced: Vec<PendingRequest> = Vec::new();
        displaced.append(&mut self.inbox);
        displaced.append(&mut self.pending);
        displaced.sort_by_key(|p| p.request.id);
        self.admitting = false;
        self.draining = true;
        displaced
    }

    /// The drain's batch finished and its KV was handed off: the
    /// replica is now plain down (not admitting) until restarted.
    pub(crate) fn finish_drain(&mut self) {
        debug_assert!(self.draining && !self.in_flight());
        self.draining = false;
    }

    /// Bring a downed replica back at virtual time `at`: it admits
    /// again, its clock cannot run before the restart, and the open
    /// down interval (if any) closes into the down-time total.
    pub(crate) fn restart(&mut self, at: f64) {
        if let Some(since) = self.down_since.take() {
            self.down_seconds += (at - since).max(0.0);
        }
        self.admitting = true;
        self.clock = self.clock.max(at);
    }

    /// Record that this replica went down at virtual time `at` (the
    /// fault time for a crash, the handoff completion for a drain, the
    /// provisioning time for a scale-down): provisioned "up" time
    /// stops accruing until [`ReplicaSim::restart`]. Idempotent while
    /// already down.
    pub(crate) fn mark_down(&mut self, at: f64) {
        if self.down_since.is_none() {
            self.down_since = Some(at);
        }
    }

    /// Park this replica in the standby pool before the run starts:
    /// it does not admit and counts as down from time 0 until an
    /// autoscaler provisions it via [`ReplicaSim::restart`].
    pub(crate) fn deactivate(&mut self) {
        debug_assert!(
            !self.in_flight() && self.inbox.is_empty() && self.pending.is_empty(),
            "only an untouched replica can join the standby pool"
        );
        self.admitting = false;
        self.draining = false;
        self.down_since = Some(0.0);
    }

    /// Virtual seconds this replica spent down in `[0, until]`: closed
    /// outages plus the still-open one, if any. `until` minus this is
    /// the replica's provisioned (billable) up time.
    pub(crate) fn down_seconds_until(&self, until: f64) -> f64 {
        self.down_seconds + self.down_since.map_or(0.0, |s| (until - s).max(0.0))
    }

    /// Cumulative (met, completed) SLO counts of the first
    /// (interactive) tier — the autoscaler differences these between
    /// evaluations for its windowed attainment signal.
    pub(crate) fn interactive_slo_counts(&self) -> (u64, u64) {
        self.tier_stats
            .first()
            .map_or((0, 0), |t| (t.met, t.completed))
    }

    /// Resident parked tokens of `conversation` (None when absent or
    /// evicted) — the migration-source probe.
    pub(crate) fn parked_tokens(&self, conversation: u64) -> Option<u64> {
        self.parked
            .as_ref()
            .and_then(|cache| cache.resident_tokens(conversation))
    }

    /// Drop `conversation`'s parked entry (its pages just shipped
    /// elsewhere).
    pub(crate) fn release_parked(&mut self, conversation: u64) {
        if let Some(cache) = self.parked.as_mut() {
            cache.release(conversation);
        }
    }

    /// Park a migrated conversation history here. Returns false when
    /// the entry cannot fit even after evicting everything else (the
    /// migration is abandoned and the conversation re-prefills later).
    pub(crate) fn receive_parked(&mut self, conversation: u64, tokens: u64) -> bool {
        let Some(cache) = self.parked.as_mut() else {
            return false;
        };
        // A stale shorter prefix of the same conversation may already
        // be parked here; the shipped entry supersedes it.
        cache.release(conversation);
        match cache.admit(conversation, tokens) {
            Ok(evicted) => {
                self.kv_reuse.parked_evictions += evicted.len() as u64;
                true
            }
            Err(_) => false,
        }
    }

    /// Take every parked entry for a drain handoff, in deterministic
    /// (request-id) order: resident `(conversation, tokens)` pairs.
    /// Leaves the pool empty.
    pub(crate) fn take_parked(&mut self) -> Vec<(u64, u64)> {
        let Some(cache) = self.parked.as_mut() else {
            return Vec::new();
        };
        let (_, entries) = cache.export_entries();
        let mut moved = Vec::new();
        for e in &entries {
            cache.release(e.request);
            if e.resident {
                moved.push((e.request, e.tokens));
            }
        }
        moved
    }

    /// Charge a KV-migration transfer to this (receiving) replica's
    /// clock: the interconnect and the pool are busy for `seconds`.
    pub(crate) fn add_transfer_time(&mut self, seconds: f64) {
        self.clock += seconds;
    }

    /// Per-fault during-failure SLO counts (window x tier), for the
    /// cluster's recovery report.
    pub(crate) fn window_counts(&self) -> &[Vec<(u64, u64)>] {
        &self.window_counts
    }

    /// The generated-token timeline (bucket index, tokens), for the
    /// cluster's recovery report.
    pub(crate) fn timeline(&self) -> &[(u64, u64)] {
        &self.timeline
    }

    /// Deterministic victim choice for preemption: among active
    /// requests at or below the victim priority class (larger value =
    /// more batch-like), pick the most batch-like first, break ties
    /// toward the smallest resident context (cheapest to resume), then
    /// the smallest request id.
    fn pick_victim(&self, victim_priority: u32) -> Option<usize> {
        let mut best: Option<usize> = None;
        for (i, a) in self.active.iter().enumerate() {
            if a.pending.priority < victim_priority {
                continue;
            }
            let key = (
                std::cmp::Reverse(a.pending.priority),
                a.decode_ctx(),
                a.pending.request.id,
            );
            best = match best {
                Some(b) => {
                    let cur = &self.active[b];
                    let cur_key = (
                        std::cmp::Reverse(cur.pending.priority),
                        cur.decode_ctx(),
                        cur.pending.request.id,
                    );
                    if key < cur_key {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
                None => Some(i),
            };
        }
        best
    }

    /// Pause one active decode mid-flight: retire it from the stage
    /// delta exactly as a completion would (the batch-state advance
    /// then matches), release its slot and KV reservation, and park
    /// its context when the cost model prefers swap-out and the pool
    /// accepts it — otherwise the context is dropped for a
    /// recompute-on-resume.
    fn pause_victim(&mut self, idx: usize, spec: &PreemptSpec) {
        let bytes_per_token = self.config.kv_bytes_per_token;
        let victim = self.active.swap_remove(idx);
        if !self.tier_active.is_empty() {
            self.tier_active[victim.pending.tier] -= 1;
        }
        self.reserved -= victim.kv_reserved(bytes_per_token);
        let ctx = victim.decode_ctx();
        self.delta.retire.push(ctx);
        let swapped = spec.prefers_swap(ctx, ctx * bytes_per_token)
            && self.receive_parked(victim.pending.conversation, ctx);
        self.preempt.preemptions += 1;
        self.paused.push(PausedRequest {
            pending: victim.pending,
            generated: victim.generated,
            first_token_s: victim.first_token_s,
            ctx,
            swapped,
            paused_at_s: self.clock,
        });
    }

    /// Whether a paused request's swapped-out context is still fully
    /// resident in the parked pool (it may have been evicted under KV
    /// pressure since the pause, which forces a recompute instead).
    fn swap_resident(&self, pr: &PausedRequest) -> bool {
        pr.swapped
            && self
                .parked
                .as_ref()
                .and_then(|c| c.resident_tokens(pr.pending.conversation))
                .is_some_and(|t| t >= pr.ctx)
    }

    /// Greedy FIFO multiplex-slot formation: anchor on the oldest
    /// swapped-resident paused request, pack later ones whose contexts
    /// agree within the tolerance (up to `lanes` members), and price
    /// each member's KV restore on the clock. Returns `None` when no
    /// two compatible members exist or the slot's padded KV
    /// reservation cannot fit.
    fn form_mux_slot(&mut self, spec: &PreemptSpec, mspec: &MultiplexSpec) -> Option<MuxSlot> {
        let bytes_per_token = self.config.kv_bytes_per_token;
        let anchor = (0..self.paused.len()).find(|&i| self.swap_resident(&self.paused[i]))?;
        let anchor_ctx = self.paused[anchor].ctx;
        let mut picked = vec![anchor];
        for i in anchor + 1..self.paused.len() {
            if picked.len() >= mspec.lanes {
                break;
            }
            let pr = &self.paused[i];
            if pr.ctx.abs_diff(anchor_ctx) <= mspec.ctx_tolerance && self.swap_resident(pr) {
                picked.push(i);
            }
        }
        if picked.len() < 2 {
            return None;
        }
        let slot_ctx = picked
            .iter()
            .map(|&i| self.paused[i].ctx)
            .max()
            .expect("picked is non-empty");
        let max_remaining = picked
            .iter()
            .map(|&i| {
                let pr = &self.paused[i];
                pr.pending.request.output_len - pr.generated
            })
            .max()
            .expect("picked is non-empty");
        // The slot is padded to the longest member and decodes until
        // the longest remaining stream finishes.
        let kv_bytes = (slot_ctx + max_remaining) * bytes_per_token;
        if self.reserved.saturating_add(kv_bytes) > self.config.kv_capacity_bytes {
            return None;
        }
        let mut members = Vec::with_capacity(picked.len());
        // Remove back-to-front so earlier indices stay valid, then
        // restore FIFO order below.
        for &i in picked.iter().rev() {
            let pr = self.paused.remove(i);
            self.preempt.paused_time_s += (self.clock - pr.paused_at_s).max(0.0);
            if let Some(cache) = self.parked.as_mut() {
                cache.release(pr.pending.conversation);
            }
            let restore = spec.swap_restore_seconds(pr.ctx * bytes_per_token);
            self.clock += restore;
            self.preempt.swap_restore_seconds += restore;
            self.preempt.swaps += 1;
            self.preempt.resumes += 1;
            members.push(MuxMember {
                pending: pr.pending,
                generated: pr.generated,
                first_token_s: pr.first_token_s,
            });
        }
        members.reverse();
        self.preempt.mux_slots += 1;
        Some(MuxSlot {
            ctx: slot_ctx,
            generated: 0,
            kv_bytes,
            quality: mspec.quality,
            members,
        })
    }

    /// Resume paused work into this stage's free slots, multiplexed
    /// slots first, then individual FIFO resumes (swap restore when the
    /// parked context survived, recompute otherwise).
    fn resume_paused(
        &mut self,
        policy: &dyn SchedulingPolicy,
        spec: &PreemptSpec,
        force: bool,
        budget: &mut u64,
    ) {
        let bytes_per_token = self.config.kv_bytes_per_token;
        let occupied = self.active.len()
            + self.admitted.len()
            + self.chunking.len()
            + self.finished_prefills.len()
            + self.mux.len()
            + self.mux_admitted.len();
        let free = self.config.max_batch.saturating_sub(occupied);
        let mut allowance = free;
        if force {
            allowance = allowance.max(1);
            *budget = (*budget).max(1);
        }
        if let Some(mspec) = policy.multiplex_spec().copied() {
            while allowance > 0 && *budget > 0 {
                let Some(slot) = self.form_mux_slot(spec, &mspec) else {
                    break;
                };
                // One-token join at the slot's padded context: the
                // slot decodes one row that all members share.
                self.delta.admit.push(1);
                if self.announce_ctx {
                    self.delta.admit_ctx.push(slot.ctx);
                }
                self.shape.push_prefill(1, slot.ctx - 1, false);
                self.reserved += slot.kv_bytes;
                *budget -= 1;
                allowance -= 1;
                self.mux_admitted.push(slot);
            }
        }
        while allowance > 0 && *budget > 0 {
            let Some(front) = self.paused.first() else {
                break;
            };
            let need = front.pending.request.max_kv_tokens() * bytes_per_token;
            if self.reserved.saturating_add(need) > self.config.kv_capacity_bytes {
                // Head-of-line block: wait for retirements rather
                // than resuming out of order.
                break;
            }
            let pr = self.paused.remove(0);
            let use_swap = self.swap_resident(&pr);
            self.preempt.paused_time_s += (self.clock - pr.paused_at_s).max(0.0);
            self.preempt.resumes += 1;
            self.reserved += need;
            if pr.swapped {
                // Release the parked context (restored below, or
                // stale after an eviction forced recompute).
                if let Some(cache) = self.parked.as_mut() {
                    cache.release(pr.pending.conversation);
                }
            }
            if let Some(cache) = self.parked.as_mut() {
                while self.reserved + cache.resident_bytes() > self.config.kv_capacity_bytes {
                    cache
                        .evict_one()
                        .expect("over budget implies a parked victim");
                    self.kv_reuse.parked_evictions += 1;
                }
            }
            if use_swap {
                // Priced restore of the parked KV, then a one-token
                // rejoin at the parked context.
                let restore = spec.swap_restore_seconds(pr.ctx * bytes_per_token);
                self.clock += restore;
                self.preempt.swap_restore_seconds += restore;
                self.preempt.swaps += 1;
                self.delta.admit.push(1);
                if self.announce_ctx {
                    self.delta.admit_ctx.push(pr.ctx);
                }
                self.shape.push_prefill(1, pr.ctx - 1, false);
                *budget -= 1;
                self.resumed.push(ActiveRequest {
                    pending: pr.pending,
                    generated: pr.generated,
                    first_token_s: pr.first_token_s,
                });
            } else {
                self.preempt.recomputes += 1;
                let total = pr.ctx;
                self.kv_reuse.prefilled_tokens += total;
                let slice = total.min(*budget);
                *budget -= slice;
                if slice < total {
                    self.delta.chunk.push((slice, 0));
                    self.shape.push_prefill(slice, 0, true);
                    self.chunking.push(ChunkingRequest {
                        pending: pr.pending,
                        history: 0,
                        processed: slice,
                        prefill_total: total,
                        resumed: Some(ResumeCarry {
                            generated: pr.generated,
                            first_token_s: pr.first_token_s,
                        }),
                    });
                } else {
                    self.delta.admit.push(total);
                    if self.announce_ctx {
                        self.delta.admit_ctx.push(total);
                    }
                    self.shape.push_prefill(total, 0, false);
                    self.resumed.push(ActiveRequest {
                        pending: pr.pending,
                        generated: pr.generated,
                        first_token_s: pr.first_token_s,
                    });
                }
            }
            allowance -= 1;
        }
    }

    /// Form and execute one stage at this replica's `next_start` time.
    ///
    /// `step` never touches the shared [`ScenarioStream`]: completed
    /// conversations are *buffered* as [`RetireEvent`]s in retirement
    /// order, and the caller applies them against the stream with
    /// [`ReplicaSim::drain_retire_events`]. Draining immediately after
    /// each step reproduces the historical inline behavior exactly
    /// (same RNG sequence, same parked-KV operation order); the
    /// cluster drains at its merge points instead, which is what lets
    /// replicas step concurrently between router events.
    pub(crate) fn step<E: StageExecutor + ?Sized>(
        &mut self,
        policy: &mut dyn SchedulingPolicy,
        executor: &mut E,
    ) {
        let bytes_per_token = self.config.kv_bytes_per_token;
        // Idle replicas jump to their earliest routed arrival.
        if !self.in_flight() && self.pending.is_empty() {
            if let Some(p) = self.inbox.last() {
                self.clock = self.clock.max(p.request.arrival_s);
            }
        }
        // ---- fold arrived inbox entries into the waiting queue ----
        while self
            .inbox
            .last()
            .is_some_and(|p| p.request.arrival_s <= self.clock)
        {
            self.pending
                .push(self.inbox.pop().expect("checked non-empty"));
        }

        // ---- preemptive slot reclaim ----
        // When the policy arms preemption and urgent (interactive)
        // work is waiting behind a saturated batch, pause batch-tier
        // decodes mid-flight: each victim retires from the stage delta
        // exactly as a completion would, releases its slot and KV
        // reservation, and parks (swap-out) or drops (recompute) its
        // context per the cost model. Paused work resumes below once
        // slots free up — nothing is dropped.
        if let Some(spec) = policy.preempt_spec().copied() {
            if self.role != PoolRole::Prefill && !self.active.is_empty() {
                let urgent = self
                    .pending
                    .iter()
                    .filter(|p| p.priority < spec.urgent_priority)
                    .count();
                let occupied = self.active.len() + self.chunking.len() + self.mux.len();
                let occupancy = if self.config.max_batch == 0 {
                    0.0
                } else {
                    occupied as f64 / self.config.max_batch as f64
                };
                // The cheapest urgent KV need: when even it cannot
                // fit, capacity (not slots) is the binding constraint
                // and preemption frees reservations — regardless of
                // how many batch *slots* are occupied.
                let urgent_min_need = self
                    .pending
                    .iter()
                    .filter(|p| p.priority < spec.urgent_priority)
                    .map(|p| p.request.max_kv_tokens() * bytes_per_token)
                    .min()
                    .unwrap_or(0);
                let kv_blocked =
                    self.reserved.saturating_add(urgent_min_need) > self.config.kv_capacity_bytes;
                if urgent > 0 && (occupancy >= spec.utilization_threshold || kv_blocked) {
                    let mut preempts = 0;
                    while preempts < spec.max_preempts_per_stage {
                        let occupied = self.active.len() + self.chunking.len() + self.mux.len();
                        let free = self.config.max_batch.saturating_sub(occupied);
                        let slot_short = urgent > free;
                        let kv_short = self.reserved.saturating_add(urgent_min_need)
                            > self.config.kv_capacity_bytes;
                        if !(slot_short || kv_short) {
                            break;
                        }
                        let Some(idx) = self.pick_victim(spec.victim_priority) else {
                            break;
                        };
                        self.pause_victim(idx, &spec);
                        preempts += 1;
                    }
                }
            }
        }

        // ---- per-stage prefill token budget (chunked prefill) ----
        let stage_budget = if let Some(adaptive) = self.adaptive_chunk {
            adaptive.budget(self.active.len(), self.config.max_batch)
        } else if self.prefill_chunk == 0 {
            u64::MAX
        } else {
            self.prefill_chunk
        };
        let mut budget = stage_budget;

        // ---- continue in-flight chunked prompts, FIFO ----
        let mut ci = 0;
        while ci < self.chunking.len() && budget > 0 {
            let c = &mut self.chunking[ci];
            let remaining = c.prefill_total - c.processed;
            let slice = remaining.min(budget);
            let past = c.history + c.processed;
            budget -= slice;
            if slice == remaining {
                if self.role == PoolRole::Prefill {
                    // Final slice of a prefill-pool prompt: held like
                    // any other chunk (the decode replica samples the
                    // first token at the join), then ships after this
                    // stage executes.
                    self.delta.chunk.push((slice, past));
                    self.shape.push_prefill(slice, past, true);
                    let done = self.chunking.remove(ci);
                    self.finished_prefills.push(done.pending);
                    continue;
                }
                // Final slice: samples the first token and joins the
                // decode set at the full prompt context. A resumed
                // recompute joins at its paused context (history +
                // prefill_total) and keeps its original counters.
                self.delta.admit.push(slice);
                if self.announce_ctx {
                    let join_ctx = match &c.resumed {
                        Some(_) => c.history + c.prefill_total,
                        None => c.pending.request.input_len,
                    };
                    self.delta.admit_ctx.push(join_ctx);
                }
                self.shape.push_prefill(slice, past, false);
                let done = self.chunking.remove(ci);
                match done.resumed {
                    Some(carry) => self.resumed.push(ActiveRequest {
                        pending: done.pending,
                        generated: carry.generated,
                        first_token_s: carry.first_token_s,
                    }),
                    None => self.admitted.push(ActiveRequest {
                        pending: done.pending,
                        generated: 0,
                        first_token_s: 0.0,
                    }),
                }
            } else {
                self.delta.chunk.push((slice, past));
                self.shape.push_prefill(slice, past, true);
                c.processed += slice;
                ci += 1;
            }
        }

        // ---- resume paused work ----
        // Paused requests re-enter FIFO once slots free up, leaving
        // room for urgent arrivals. A swapped-out victim whose parked
        // context is still resident restores it as a priced link
        // transfer and rejoins as a one-token prefill; otherwise it
        // re-prefills its whole context with no history (recompute:
        // the kept token ids are teacher-forced) and resumes its
        // counters at the join. When multiplexing is armed, compatible
        // swapped victims pack into shared decode slots first.
        if !self.paused.is_empty() && self.role != PoolRole::Prefill {
            let spec = policy.preempt_spec().copied().unwrap_or_default();
            let urgent = self
                .pending
                .iter()
                .filter(|p| p.priority < spec.urgent_priority)
                .count();
            let occupied = self.active.len()
                + self.admitted.len()
                + self.chunking.len()
                + self.finished_prefills.len()
                + self.mux.len()
                + self.mux_admitted.len();
            // With the batch otherwise empty and nothing to admit, at
            // least one resume must land this stage, or the replica
            // would execute an empty shape and the clock would never
            // advance.
            let force = occupied == 0 && self.pending.is_empty();
            // Resumes yield to waiting urgent work entirely: a
            // recompute re-prefill would eat the stage budget the
            // urgent prompt needs, re-creating the very head-of-line
            // blocking preemption exists to remove.
            if urgent == 0 || force {
                self.resume_paused(policy, &spec, force, &mut budget);
            }
        }

        // ---- policy-driven admission ----
        // `finished_prefills` holds this stage's final slices: they
        // still occupy batch slots until the stage executes (always
        // empty outside prefill-pool replicas).
        while self.active.len()
            + self.admitted.len()
            + self.chunking.len()
            + self.finished_prefills.len()
            + self.resumed.len()
            + self.mux.len()
            + self.mux_admitted.len()
            < self.config.max_batch
            && !self.pending.is_empty()
            && budget > 0
        {
            let pctx = PolicyContext {
                now_s: self.clock,
                prefill_chunk: (stage_budget != u64::MAX).then_some(stage_budget),
                in_flight: self.active.len()
                    + self.admitted.len()
                    + self.chunking.len()
                    + self.finished_prefills.len()
                    + self.resumed.len()
                    + self.mux.len()
                    + self.mux_admitted.len(),
                max_batch: self.config.max_batch,
            };
            let Some(idx) = policy.admit_now(&self.pending, &pctx) else {
                // Admission control deferred the rest of the queue.
                assert!(
                    self.in_flight(),
                    "policy deferred every admission with an empty batch"
                );
                break;
            };
            assert!(
                idx < self.pending.len(),
                "policy picked index {idx} of {}",
                self.pending.len()
            );
            // A prefill-pool replica only ever holds the prompt's KV
            // (the decode reservation happens at the decode replica);
            // colocated and decode replicas reserve the full budget.
            let need = if self.role == PoolRole::Prefill {
                self.pending[idx].request.input_len * bytes_per_token
            } else {
                self.pending[idx].request.max_kv_tokens() * bytes_per_token
            };
            if self.reserved.saturating_add(need) > self.config.kv_capacity_bytes {
                // Even evicting every parked history cannot admit:
                // wait for retirements (head-of-line block).
                assert!(
                    !(self.active.is_empty()
                        && self.admitted.is_empty()
                        && self.chunking.is_empty()
                        && self.reserved == 0),
                    "request {} needs {need} KV bytes, capacity {}",
                    self.pending[idx].request.id,
                    self.config.kv_capacity_bytes
                );
                break;
            }
            let p = self.pending.swap_remove(idx);
            // Everyone still waiting was passed over by this
            // admission: the aging signal for starvation guards.
            for q in self.pending.iter_mut() {
                q.skipped += 1;
            }
            // Reuse-aware accounting: claim a resident history (its
            // bytes migrate from the parked pool into the active
            // reservation), then evict other parked histories until
            // the new reservation fits.
            let mut prefill = p.request.input_len;
            if let Some(cache) = self.parked.as_mut() {
                if p.history_tokens > 0 {
                    // The parked entry may be *stale*: in a cluster, an
                    // earlier round parked here while later rounds ran
                    // elsewhere. Histories are append-only, so a stale
                    // entry is a valid prefix — reuse exactly the
                    // resident tokens, never the full history the
                    // request wishes were here.
                    match cache.resident_tokens(p.conversation) {
                        Some(resident_tokens) => {
                            let reused = resident_tokens.min(p.history_tokens);
                            cache.release(p.conversation);
                            prefill = p.request.input_len - reused;
                            self.kv_reuse.reuse_hits += 1;
                            self.kv_reuse.reused_prefill_tokens += reused;
                        }
                        None => self.kv_reuse.reuse_misses += 1,
                    }
                }
                while self.reserved + cache.resident_bytes() + need > self.config.kv_capacity_bytes
                {
                    cache
                        .evict_one()
                        .expect("over budget implies a parked victim");
                    self.kv_reuse.parked_evictions += 1;
                }
            }
            self.reserved += need;
            // The new tokens cross-attend over any reused history.
            let resident = p.request.input_len - prefill;
            if self.role == PoolRole::Prefill {
                // Prefill pool: run all but the final prompt token here
                // — that one prefills at the decode replica when the
                // shipped KV joins its batch — and never decode.
                let total = prefill.saturating_sub(1);
                self.kv_reuse.prefilled_tokens += total;
                if total == 0 {
                    // One-token prompt: the KV handoff is the whole
                    // job, no stage work at all.
                    self.reserved -= need;
                    self.handoffs.push(HandoffEvent {
                        pending: p,
                        done_s: self.clock,
                    });
                    continue;
                }
                let slice = total.min(budget);
                budget -= slice;
                self.delta.chunk.push((slice, resident));
                self.shape.push_prefill(slice, resident, true);
                if slice == total {
                    self.finished_prefills.push(p);
                } else {
                    self.chunking.push(ChunkingRequest {
                        pending: p,
                        history: resident,
                        processed: slice,
                        prefill_total: total,
                        resumed: None,
                    });
                }
                continue;
            }
            self.kv_reuse.prefilled_tokens += prefill;
            let slice = prefill.min(budget);
            budget -= slice;
            if slice < prefill {
                // Prompt longer than the remaining budget: start
                // chunking — this slice attends, writes KV, holds.
                self.delta.chunk.push((slice, resident));
                self.shape.push_prefill(slice, resident, true);
                self.chunking.push(ChunkingRequest {
                    pending: p,
                    history: resident,
                    processed: slice,
                    prefill_total: prefill,
                    resumed: None,
                });
            } else {
                self.delta.admit.push(prefill);
                if self.announce_ctx {
                    self.delta.admit_ctx.push(p.request.input_len);
                }
                self.shape.push_prefill(prefill, resident, false);
                self.admitted.push(ActiveRequest {
                    pending: p,
                    generated: 0,
                    first_token_s: 0.0,
                });
            }
        }

        // A prefill-pool stage may consist entirely of final slices
        // (nothing survives into `chunking`), and one-token prompts
        // hand off with no stage at all.
        if !self.in_flight() && self.finished_prefills.is_empty() {
            assert!(
                !self.handoffs.is_empty(),
                "step called with no admissible work (queue {} requests)",
                self.pending.len() + self.inbox.len()
            );
            return;
        }

        // ---- execute the stage ----
        self.shape.decode_ctx.clear();
        self.shape
            .decode_ctx
            .extend(self.active.iter().map(ActiveRequest::decode_ctx));
        // Each mux slot decodes exactly one shared row.
        self.shape
            .decode_ctx
            .extend(self.mux.iter().map(MuxSlot::decode_ctx));
        debug_assert_eq!(
            self.shape.prefill_len.len(),
            self.admitted.len()
                + self.resumed.len()
                + self.mux_admitted.len()
                + self.delta.chunk.len()
        );
        let outcome = executor.execute_delta(&self.delta, &self.shape);
        self.delta.clear();
        // `perf_factor` is 1.0 outside fault plans, and x * 1.0 == x
        // is bit-exact in IEEE 754, so no-fault runs are unchanged.
        let stage_seconds = outcome.seconds * self.perf_factor;
        self.clock += stage_seconds;
        // Live multiplexed streams: ongoing slots decode one token per
        // live member per stage; joining slots sample first tokens.
        let mux_live: u64 = self.mux.iter().map(MuxSlot::live_members).sum();
        let mux_joining: u64 = self.mux_admitted.iter().map(MuxSlot::live_members).sum();
        // Recovery timeline: bucket the tokens this stage generated
        // (decodes plus sampled first tokens) by virtual time.
        if self.timeline_bucket_s > 0.0 {
            let tokens = (self.active.len() + self.admitted.len() + self.resumed.len()) as u64
                + mux_live
                + mux_joining;
            if tokens > 0 {
                let bucket = (self.clock / self.timeline_bucket_s) as u64;
                match self.timeline.last_mut() {
                    Some((b, n)) if *b == bucket => *n += tokens,
                    _ => self.timeline.push((bucket, tokens)),
                }
            }
        }
        let record = StageRecord {
            seconds: stage_seconds,
            mixed: self.shape.is_mixed(),
            batch: self.shape.batch_size(),
            tokens: self.shape.tokens(),
        };
        self.stage_stats.record(&record);
        if self.config.record_stages {
            self.stages.push(record);
        }
        self.shape.clear_prefills();

        // Finished prefill-pool prompts ship after the stage that ran
        // their last slice: stamp the post-stage clock, release the
        // prompt KV this replica held while prefilling, and buffer the
        // handoff for the cluster's merge point.
        if !self.finished_prefills.is_empty() {
            let done_s = self.clock;
            for p in self.finished_prefills.drain(..) {
                self.reserved -= p.request.input_len * bytes_per_token;
                self.handoffs.push(HandoffEvent { pending: p, done_s });
            }
        }

        // One TBT sample per decoding request (multiplexed members
        // included — they each stream a token per stage); `tier_active`
        // tracks the active set's per-tier counts incrementally
        // (updated on admit and retire below), and the bucket index is
        // computed once and shared across the fleet and tier digests.
        if !self.active.is_empty() || mux_live > 0 {
            let bucket = LatencyDigest::bucket_for(stage_seconds);
            self.tbt_digest
                .record_n_in(bucket, stage_seconds, self.active.len() as u64 + mux_live);
            for (stats, &n) in self.tier_stats.iter_mut().zip(&self.tier_active) {
                stats.tbt_digest.record_n_in(bucket, stage_seconds, n);
            }
        }
        for a in &mut self.active {
            a.generated += 1;
        }
        for slot in &mut self.mux {
            slot.generated += 1;
            for m in &mut slot.members {
                if m.generated < m.pending.request.output_len {
                    m.generated += 1;
                    self.preempt.mux_tokens += 1;
                }
            }
        }
        for mut a in self.admitted.drain(..) {
            a.generated = 1;
            a.first_token_s = self.clock;
            if !self.tier_active.is_empty() {
                self.tier_active[a.pending.tier] += 1;
            }
            self.active.push(a);
        }
        // Resumed requests keep their original counters: the join
        // sampled their next token, not their first.
        for mut a in self.resumed.drain(..) {
            a.generated += 1;
            if !self.tier_active.is_empty() {
                self.tier_active[a.pending.tier] += 1;
            }
            self.active.push(a);
        }
        for mut slot in self.mux_admitted.drain(..) {
            slot.generated = 1;
            for m in &mut slot.members {
                m.generated += 1;
                self.preempt.mux_tokens += 1;
                if !self.tier_active.is_empty() {
                    self.tier_active[m.pending.tier] += 1;
                }
            }
            self.mux.push(slot);
        }

        // ---- retire, account SLOs, spawn follow-ups ----
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].generated < self.active[i].pending.request.output_len {
                i += 1;
                continue;
            }
            let done = self.active.swap_remove(i);
            if !self.tier_active.is_empty() {
                self.tier_active[done.pending.tier] -= 1;
            }
            self.reserved -= done.kv_reserved(bytes_per_token);
            self.delta.retire.push(done.decode_ctx());
            let record = RequestRecord {
                first_token_s: done.first_token_s,
                last_token_s: self.clock,
                tokens: done.generated,
                request: done.pending.request,
            };
            if !self.tier_stats.is_empty() {
                let tier = &self.tiers[done.pending.tier];
                let stats = &mut self.tier_stats[done.pending.tier];
                stats.completed += 1;
                // The T2FT deadline is checked against the *absolute*
                // deadline stamped at spawn time: a crash-retried
                // request keeps its original deadline even though its
                // arrival was rewritten to the retry time.
                let met_t2ft = record.first_token_s <= done.pending.deadline_s;
                let met_tbt =
                    tier.tbt_deadline_s == 0.0 || record.mean_tbt() <= tier.tbt_deadline_s;
                let met = met_t2ft && met_tbt;
                if met {
                    stats.met += 1;
                    stats.good_tokens += record.tokens;
                }
                // During-failure SLO windows (fault plans only).
                for (wi, &(start, end)) in self.fault_windows.iter().enumerate() {
                    if record.last_token_s >= start && record.last_token_s < end {
                        let cell = &mut self.window_counts[wi][done.pending.tier];
                        cell.0 += 1;
                        if met {
                            cell.1 += 1;
                        }
                    }
                }
            }
            if let Some(spec) = &self.conversation {
                if done.pending.round < spec.max_rounds {
                    // The continuation die, history parking and
                    // follow-up spawn all happen at drain time (they
                    // need the shared stream); `now_s` is captured so
                    // a deferred drain prices think time identically.
                    self.retire_events.push(RetireEvent::MaybeFollowup {
                        history: done.pending.request.input_len + done.generated,
                        now_s: self.clock,
                        pending: done.pending,
                    });
                } else {
                    // Round cap: the conversation is over, no die roll.
                    self.retire_events.push(RetireEvent::Release {
                        conversation: done.pending.conversation,
                    });
                }
            }
            self.completed.push(record);
        }

        // ---- retire finished mux members, then emptied slots ----
        // A member leaves its slot when its stream completes; goodput
        // is scaled by the slot's quality exchange rate (the price of
        // sharing compute). The slot row keeps decoding for the
        // members still streaming and retires only once empty.
        let mut si = 0;
        while si < self.mux.len() {
            let quality = self.mux[si].quality;
            let mut mi = 0;
            while mi < self.mux[si].members.len() {
                let m = &self.mux[si].members[mi];
                if m.generated < m.pending.request.output_len {
                    mi += 1;
                    continue;
                }
                let done = self.mux[si].members.swap_remove(mi);
                if !self.tier_active.is_empty() {
                    self.tier_active[done.pending.tier] -= 1;
                }
                let record = RequestRecord {
                    first_token_s: done.first_token_s,
                    last_token_s: self.clock,
                    tokens: done.generated,
                    request: done.pending.request,
                };
                if !self.tier_stats.is_empty() {
                    let tier = &self.tiers[done.pending.tier];
                    let stats = &mut self.tier_stats[done.pending.tier];
                    stats.completed += 1;
                    let met_t2ft = record.first_token_s <= done.pending.deadline_s;
                    let met_tbt =
                        tier.tbt_deadline_s == 0.0 || record.mean_tbt() <= tier.tbt_deadline_s;
                    let met = met_t2ft && met_tbt;
                    if met {
                        stats.met += 1;
                        stats.good_tokens += (record.tokens as f64 * quality) as u64;
                    }
                    for (wi, &(start, end)) in self.fault_windows.iter().enumerate() {
                        if record.last_token_s >= start && record.last_token_s < end {
                            let cell = &mut self.window_counts[wi][done.pending.tier];
                            cell.0 += 1;
                            if met {
                                cell.1 += 1;
                            }
                        }
                    }
                }
                if let Some(spec) = &self.conversation {
                    if done.pending.round < spec.max_rounds {
                        self.retire_events.push(RetireEvent::MaybeFollowup {
                            history: done.pending.request.input_len + done.generated,
                            now_s: self.clock,
                            pending: done.pending,
                        });
                    } else {
                        self.retire_events.push(RetireEvent::Release {
                            conversation: done.pending.conversation,
                        });
                    }
                }
                self.completed.push(record);
            }
            if self.mux[si].members.is_empty() {
                let slot = self.mux.swap_remove(si);
                self.delta.retire.push(slot.decode_ctx());
                self.reserved -= slot.kv_bytes;
            } else {
                si += 1;
            }
        }
    }

    /// Whether [`ReplicaSim::step`] buffered conversation events that
    /// must be applied to the stream before this replica's parked KV
    /// pool (or the global arrival order) can be observed again.
    pub(crate) fn has_retire_events(&self) -> bool {
        !self.retire_events.is_empty()
    }

    /// Apply the buffered [`RetireEvent`]s against the shared stream,
    /// in the order they were buffered: roll continuation dice, park
    /// finished histories, spawn follow-up rounds, release closed
    /// conversations. Calling this right after [`ReplicaSim::step`]
    /// reproduces the inline retirement semantics bit for bit.
    pub(crate) fn drain_retire_events(&mut self, stream: &mut ScenarioStream<'_>) {
        if self.retire_events.is_empty() {
            return;
        }
        let spec = self
            .conversation
            .as_ref()
            .expect("retire events imply a conversation spec");
        let followup_prob = spec.followup_prob;
        let cache = self
            .parked
            .as_mut()
            .expect("a conversation spec implies a parked pool");
        let mut events = std::mem::take(&mut self.retire_events);
        for event in events.drain(..) {
            match event {
                RetireEvent::MaybeFollowup {
                    pending,
                    history,
                    now_s,
                } => {
                    if stream.roll_followup(followup_prob) {
                        // Park the history; if it cannot fit alone the
                        // follow-up simply re-prefills.
                        if let Ok(evicted) = cache.admit(pending.conversation, history) {
                            self.kv_reuse.parked_evictions += evicted.len() as u64;
                        }
                        stream.spawn_followup(&pending, history, now_s);
                    } else {
                        // The conversation is over; drop any parked KV.
                        cache.release(pending.conversation);
                    }
                }
                RetireEvent::Release { conversation } => cache.release(conversation),
            }
        }
        // Hand the (now empty) buffer back so its capacity is reused.
        self.retire_events = events;
    }

    /// Step this replica repeatedly until its next stage would start at
    /// or after `bound` (`None` = unbounded), it drains, or a step
    /// buffers retire events — the per-replica half of the cluster's
    /// clock-merge protocol. Stopping at the first buffered event is
    /// what keeps windows deterministic: everything after it could
    /// depend on the continuation die or on parked-KV bytes freed by a
    /// release, both of which are resolved only at merge time.
    pub(crate) fn run_window<E: StageExecutor + ?Sized>(
        &mut self,
        bound: Option<f64>,
        policy: &mut dyn SchedulingPolicy,
        executor: &mut E,
    ) {
        while let Some(t) = self.next_start() {
            if bound.is_some_and(|b| t >= b) {
                break;
            }
            self.step(policy, executor);
            if self.has_retire_events() || self.has_handoffs() {
                break;
            }
        }
    }

    /// Fold the accumulated metrics into a report.
    pub(crate) fn into_report(self) -> SimReport {
        SimReport {
            completed: self.completed,
            stages: self.stages,
            stage_stats: self.stage_stats,
            tbt_digest: self.tbt_digest,
            total_time_s: self.clock,
            slo: SloStats {
                tiers: self.tier_stats,
            },
            kv_reuse: self.kv_reuse,
            preempt: self.preempt,
        }
    }

    /// Capture this replica's dynamic state for a
    /// [`crate::ClusterSnapshot`]. Only valid at a merge point, where
    /// the admission and retire-event buffers are empty; the carried
    /// [`StageDelta`] `fresh` flag and retirement list are the only
    /// cross-step stage state, and both are captured. The executor's
    /// batch checkpoint is filled in by the cluster (which owns the
    /// executors).
    pub(crate) fn export_state(&self) -> ReplicaState {
        assert!(
            self.admitted.is_empty(),
            "snapshot outside a merge point: admissions in flight"
        );
        assert!(
            self.resumed.is_empty() && self.mux_admitted.is_empty(),
            "snapshot outside a merge point: resumes in flight"
        );
        assert!(
            self.retire_events.is_empty(),
            "snapshot outside a merge point: undrained retire events"
        );
        assert!(
            self.handoffs.is_empty(),
            "snapshot outside a merge point: undelivered prefill handoffs"
        );
        debug_assert!(
            self.delta.admit.is_empty()
                && self.delta.admit_ctx.is_empty()
                && self.delta.chunk.is_empty(),
            "per-stage delta fields must be clear between steps"
        );
        ReplicaState {
            inbox: self.inbox.clone(),
            pending: self.pending.clone(),
            active: self
                .active
                .iter()
                .map(|a| ActiveState {
                    pending: a.pending.clone(),
                    generated: a.generated,
                    first_token_s: a.first_token_s,
                })
                .collect(),
            chunking: self
                .chunking
                .iter()
                .map(|c| ChunkingState {
                    pending: c.pending.clone(),
                    history: c.history,
                    processed: c.processed,
                    prefill_total: c.prefill_total,
                    resumed: c.resumed.map(|r| ResumeState {
                        generated: r.generated,
                        first_token_s: r.first_token_s,
                    }),
                })
                .collect(),
            paused: self
                .paused
                .iter()
                .map(|p| PausedState {
                    pending: p.pending.clone(),
                    generated: p.generated,
                    first_token_s: p.first_token_s,
                    ctx: p.ctx,
                    swapped: p.swapped,
                    paused_at_s: p.paused_at_s,
                })
                .collect(),
            mux: self
                .mux
                .iter()
                .map(|s| MuxState {
                    ctx: s.ctx,
                    generated: s.generated,
                    kv_bytes: s.kv_bytes,
                    quality: s.quality,
                    members: s
                        .members
                        .iter()
                        .map(|m| MuxMemberState {
                            pending: m.pending.clone(),
                            generated: m.generated,
                            first_token_s: m.first_token_s,
                        })
                        .collect(),
                })
                .collect(),
            preempt: self.preempt,
            parked: self.parked.as_ref().map(|cache| {
                let (clock, entries) = cache.export_entries();
                KvState { clock, entries }
            }),
            reserved: self.reserved,
            clock: self.clock,
            delta_fresh: self.delta.fresh,
            delta_retire: self.delta.retire.clone(),
            completed: self.completed.clone(),
            stages: self.stages.clone(),
            stage_stats: self.stage_stats,
            tbt_digest: digest_state(&self.tbt_digest),
            tiers: self
                .tier_stats
                .iter()
                .map(|t| TierState {
                    completed: t.completed,
                    met: t.met,
                    good_tokens: t.good_tokens,
                    tbt: digest_state(&t.tbt_digest),
                })
                .collect(),
            kv_reuse: self.kv_reuse,
            admitting: self.admitting,
            draining: self.draining,
            perf_factor: self.perf_factor,
            down_since: self.down_since,
            down_seconds: self.down_seconds,
            timeline: self.timeline.clone(),
            window_counts: self.window_counts.clone(),
            batch: None,
        }
    }

    /// Restore state captured by [`export_state`](Self::export_state)
    /// onto a freshly built replica for the same scenario and config.
    /// `tier_active` is derived state and is recounted from the active
    /// set (identical to its incremental maintenance).
    pub(crate) fn import_state(&mut self, s: &ReplicaState) {
        self.inbox = s.inbox.clone();
        self.pending = s.pending.clone();
        self.active = s
            .active
            .iter()
            .map(|a| ActiveRequest {
                pending: a.pending.clone(),
                generated: a.generated,
                first_token_s: a.first_token_s,
            })
            .collect();
        self.chunking = s
            .chunking
            .iter()
            .map(|c| ChunkingRequest {
                pending: c.pending.clone(),
                history: c.history,
                processed: c.processed,
                prefill_total: c.prefill_total,
                resumed: c.resumed.as_ref().map(|r| ResumeCarry {
                    generated: r.generated,
                    first_token_s: r.first_token_s,
                }),
            })
            .collect();
        self.paused = s
            .paused
            .iter()
            .map(|p| PausedRequest {
                pending: p.pending.clone(),
                generated: p.generated,
                first_token_s: p.first_token_s,
                ctx: p.ctx,
                swapped: p.swapped,
                paused_at_s: p.paused_at_s,
            })
            .collect();
        self.mux = s
            .mux
            .iter()
            .map(|m| MuxSlot {
                ctx: m.ctx,
                generated: m.generated,
                kv_bytes: m.kv_bytes,
                quality: m.quality,
                members: m
                    .members
                    .iter()
                    .map(|mm| MuxMember {
                        pending: mm.pending.clone(),
                        generated: mm.generated,
                        first_token_s: mm.first_token_s,
                    })
                    .collect(),
            })
            .collect();
        self.preempt = s.preempt;
        match (&mut self.parked, &s.parked) {
            (Some(cache), Some(kv)) => cache.import_entries(kv.clock, &kv.entries),
            (None, None) => {}
            (None, Some(kv)) => {
                // A preempting policy swapped contexts out on a
                // scenario with no conversation pool of its own:
                // recreate the pool exactly as `prepare_preempt` does.
                let mut cache = PagedKvCache::new(
                    self.config.kv_capacity_bytes,
                    Self::HANDOFF_PAGE_TOKENS,
                    self.config.kv_bytes_per_token.max(1),
                    EvictionPolicy::Recompute,
                );
                cache.import_entries(kv.clock, &kv.entries);
                self.parked = Some(cache);
            }
            (Some(_), None) => panic!("snapshot parked-KV state does not match the scenario"),
        }
        self.reserved = s.reserved;
        self.clock = s.clock;
        self.delta = StageDelta::start();
        if !s.delta_fresh {
            self.delta.clear();
        }
        self.delta.retire.extend_from_slice(&s.delta_retire);
        self.completed = s.completed.clone();
        self.stages = s.stages.clone();
        self.stage_stats = s.stage_stats;
        self.tbt_digest = import_digest(&s.tbt_digest);
        assert_eq!(
            self.tier_stats.len(),
            s.tiers.len(),
            "snapshot tier set does not match the scenario"
        );
        for (t, ts) in self.tier_stats.iter_mut().zip(&s.tiers) {
            t.completed = ts.completed;
            t.met = ts.met;
            t.good_tokens = ts.good_tokens;
            t.tbt_digest = import_digest(&ts.tbt);
        }
        for n in self.tier_active.iter_mut() {
            *n = 0;
        }
        if !self.tier_active.is_empty() {
            for a in &self.active {
                self.tier_active[a.pending.tier] += 1;
            }
            // Live multiplexed members count toward their tiers too.
            for slot in &self.mux {
                for m in &slot.members {
                    if m.generated < m.pending.request.output_len {
                        self.tier_active[m.pending.tier] += 1;
                    }
                }
            }
        }
        self.kv_reuse = s.kv_reuse;
        self.admitting = s.admitting;
        self.draining = s.draining;
        self.perf_factor = s.perf_factor;
        self.down_since = s.down_since;
        self.down_seconds = s.down_seconds;
        self.timeline = s.timeline.clone();
        // `set_fault_recording` sized these from the plan before the
        // import; the cluster validates the snapshot shape up front.
        self.window_counts = s.window_counts.clone();
    }
}

fn digest_state(d: &LatencyDigest) -> DigestState {
    let (buckets, count, sum) = d.export_state();
    DigestState {
        buckets,
        count,
        sum,
    }
}

fn import_digest(s: &DigestState) -> LatencyDigest {
    LatencyDigest::import_state(&s.buckets, s.count, s.sum)
}

/// A configured scenario run, ready for a policy and an executor.
#[derive(Debug)]
pub struct ScenarioSimulation {
    config: SimulationConfig,
    scenario: Scenario,
}

impl ScenarioSimulation {
    /// Bind a scenario to scheduler limits. Under trace replay the
    /// request count is clamped to the trace length.
    pub fn new(config: SimulationConfig, scenario: Scenario) -> Self {
        Self {
            config,
            scenario: scenario.normalized(),
        }
    }

    /// Run to completion (or the stage cap) under `policy` and report.
    pub fn run<E: StageExecutor + ?Sized>(
        self,
        policy: &mut dyn SchedulingPolicy,
        executor: &mut E,
    ) -> SimReport {
        self.run_inner(policy, executor, None)
    }

    /// Run like [`ScenarioSimulation::run`] while recording every
    /// admitted request (initial arrivals *and* spawned follow-up
    /// rounds, with absolute arrival times and full prompts) into
    /// `recorder`, ready for [`crate::Arrivals::Trace`] replay.
    pub fn run_recording<E: StageExecutor + ?Sized>(
        self,
        policy: &mut dyn SchedulingPolicy,
        executor: &mut E,
        recorder: &mut TraceRecorder,
    ) -> SimReport {
        self.run_inner(policy, executor, Some(recorder))
    }

    fn run_inner<E: StageExecutor + ?Sized>(
        self,
        policy: &mut dyn SchedulingPolicy,
        executor: &mut E,
        recorder: Option<&mut TraceRecorder>,
    ) -> SimReport {
        let Self { config, scenario } = self;
        let mut stream = ScenarioStream::new(&scenario, recorder);
        let mut replica = ReplicaSim::new(config, &scenario);
        replica.prepare_preempt(policy);
        loop {
            // Deliver every arrival due by the replica's next stage
            // start (all of them, when it is idle).
            while let Some(t_a) = stream.next_arrival_time() {
                match replica.next_start() {
                    Some(t) if t_a > t => break,
                    None if !replica.can_accept() => break,
                    _ => {
                        let p = stream.pop_next().expect("arrival time implies a request");
                        replica.enqueue(p);
                    }
                }
            }
            if replica.next_start().is_none() {
                break;
            }
            replica.step(policy, executor);
            // Draining right after the step keeps the RNG-draw and
            // parked-KV operation order identical to the historical
            // inline retirement path.
            replica.drain_retire_events(&mut stream);
        }
        replica.into_report()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fcfs, PriorityTiers, ShortestPromptFirst};
    use crate::scheduler::StageOutcome;
    use crate::trace::parse_trace;

    struct Fixed(f64);
    impl StageExecutor for Fixed {
        fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
            StageOutcome { seconds: self.0 }
        }
    }

    /// Records every delta/shape pair, for contract checks.
    struct Recording {
        shapes: Vec<StageShape>,
        deltas: Vec<StageDelta>,
    }
    impl Recording {
        fn new() -> Self {
            Self {
                shapes: Vec::new(),
                deltas: Vec::new(),
            }
        }
    }
    impl StageExecutor for Recording {
        fn execute(&mut self, shape: &StageShape) -> StageOutcome {
            self.shapes.push(shape.clone());
            StageOutcome { seconds: 0.01 }
        }
        fn execute_delta(&mut self, delta: &StageDelta, shape: &StageShape) -> StageOutcome {
            self.deltas.push(delta.clone());
            self.execute(shape)
        }
    }

    fn config(max_batch: usize) -> SimulationConfig {
        SimulationConfig {
            max_batch,
            ..SimulationConfig::default()
        }
    }

    fn run_scenario(
        scenario: Scenario,
        cfg: SimulationConfig,
        policy: &mut dyn SchedulingPolicy,
    ) -> SimReport {
        ScenarioSimulation::new(cfg, scenario).run(policy, &mut Fixed(0.01))
    }

    #[test]
    fn single_shot_matches_base_semantics() {
        let scenario = Scenario::new("plain", Workload::fixed(64, 5), Arrivals::ClosedLoop, 20);
        let report = run_scenario(scenario, config(8), &mut Fcfs);
        assert_eq!(report.completed.len(), 20);
        for r in &report.completed {
            assert_eq!(r.tokens, r.request.output_len);
        }
        assert!(report.slo.is_empty());
        assert_eq!(report.kv_reuse.reuse_hits, 0);
    }

    #[test]
    fn fcfs_scenario_equals_base_simulation_timeline() {
        // Under FCFS with no conversations and no tiers, the scenario
        // loop must reproduce the base Simulation exactly.
        let w = Workload::gaussian(64, 6).with_seed(11);
        let base = crate::scheduler::Simulation::closed_loop(config(4), w.clone(), 12)
            .run(&mut Fixed(0.01));
        let scenario = Scenario::new("plain", w, Arrivals::ClosedLoop, 12);
        let report = run_scenario(scenario, config(4), &mut Fcfs);
        assert_eq!(report.stage_stats, base.stage_stats);
        assert_eq!(report.total_time_s, base.total_time_s);
        assert_eq!(report.completed.len(), base.completed.len());
    }

    #[test]
    fn bursty_arrivals_flow_through() {
        let scenario = Scenario::new(
            "bursty",
            Workload::fixed(32, 4).with_seed(3),
            Arrivals::Bursty {
                base_qps: 0.0,
                burst_qps: 500.0,
                mean_off_s: 0.5,
                mean_on_s: 0.1,
            },
            40,
        );
        let report = run_scenario(scenario, config(8), &mut Fcfs);
        assert_eq!(report.completed.len(), 40);
        assert!(report.total_time_s > 0.0);
    }

    #[test]
    fn multi_turn_spawns_followups_and_reuses_kv() {
        let scenario = Scenario::new(
            "chat",
            Workload::fixed(64, 8).with_seed(5),
            Arrivals::Poisson { qps: 200.0 },
            20,
        )
        .with_conversation(ConversationSpec::chat(1.0, 3, 0.001, 16));
        let report = run_scenario(scenario, config(16), &mut Fcfs);
        // Every conversation runs exactly 3 rounds at prob 1.0.
        assert_eq!(report.completed.len(), 60);
        assert!(report.kv_reuse.reuse_hits > 0, "{:?}", report.kv_reuse);
        assert!(report.kv_reuse.reused_prefill_tokens > 0);
        // Follow-up prompts grow: round 2 input = 64 + 8 + 16 = 88.
        let follow = report
            .completed
            .iter()
            .find(|r| r.request.id >= 20)
            .expect("follow-ups completed");
        assert!(follow.request.input_len >= 88);
    }

    #[test]
    fn reuse_admissions_announce_admit_ctx() {
        let scenario = Scenario::new(
            "chat",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            2,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.001, 16));
        let mut rec = Recording::new();
        let report = ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert_eq!(report.completed.len(), 4);
        // Find the admission of a follow-up with resident history:
        // prefill (admit) is the 20-token suffix? No: turn=16, output=4
        // => suffix = 16 + 4 = 20... admit is input - history = 16.
        let reuse_delta = rec
            .deltas
            .iter()
            .find(|d| !d.admit_ctx.is_empty() && d.admit_ctx != d.admit)
            .expect("a reuse admission exists");
        let (i, _) = reuse_delta
            .admit_ctx
            .iter()
            .enumerate()
            .find(|(i, ctx)| **ctx != reuse_delta.admit[*i])
            .expect("mismatched entry");
        // Full prompt is history (64 + 4) + turn 16 = 84; prefill is 16.
        assert_eq!(reuse_delta.admit_ctx[i], 84);
        assert_eq!(reuse_delta.admit[i], 16);
        // The shape's prefill matches the suffix, and decode contexts in
        // later stages include the full history.
        assert!(report.kv_reuse.reuse_hits >= 1);
    }

    #[test]
    fn evicted_history_reprefills_in_full() {
        // KV capacity fits barely more than one conversation: parking a
        // history evicts the other's, so reuse misses happen.
        let cfg = SimulationConfig {
            max_batch: 2,
            kv_capacity_bytes: 260,
            kv_bytes_per_token: 1,
            ..SimulationConfig::default()
        };
        let scenario = Scenario::new(
            "tight",
            Workload::fixed(64, 8).with_seed(9),
            Arrivals::Poisson { qps: 50.0 },
            6,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.01, 16));
        let report = run_scenario(scenario, cfg, &mut Fcfs);
        assert_eq!(report.completed.len(), 12);
        assert!(
            report.kv_reuse.reuse_misses + report.kv_reuse.parked_evictions > 0,
            "{:?}",
            report.kv_reuse
        );
    }

    #[test]
    fn tiers_report_attainment_and_goodput() {
        let tiers = vec![
            SloTier::new("interactive", 0.5, 0, 0.05, 0.02),
            SloTier::new("batch", 0.5, 1, 100.0, 0.0),
        ];
        let scenario = Scenario::new(
            "tiered",
            Workload::fixed(32, 8).with_seed(2),
            Arrivals::Poisson { qps: 100.0 },
            40,
        )
        .with_tiers(tiers);
        let report = run_scenario(scenario, config(4), &mut PriorityTiers);
        assert_eq!(report.completed.len(), 40);
        assert_eq!(report.slo.tiers.len(), 2);
        assert_eq!(report.slo.completed(), 40);
        // The generous batch tier always attains; overall attainment is
        // a proper fraction.
        let batch = &report.slo.tiers[1];
        assert_eq!(batch.met, batch.completed);
        assert!(report.slo_attainment() > 0.0 && report.slo_attainment() <= 1.0);
        assert!(report.goodput_tokens_per_s() > 0.0);
        assert!(report.goodput_tokens_per_s() <= report.generation_throughput() + 1e-9);
    }

    #[test]
    fn spf_admits_short_prompts_first() {
        // Two long prompts and one short arrive together; batch 1.
        let trace = vec![
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 500,
                output_len: 2,
            },
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 400,
                output_len: 2,
            },
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 10,
                output_len: 2,
            },
        ];
        let scenario = Scenario::new("spf", Workload::fixed(1, 1), Arrivals::trace(trace), 3);
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(1), scenario.clone())
            .run(&mut ShortestPromptFirst::default(), &mut rec);
        assert_eq!(rec.shapes[0].prefill_len, vec![10]);
        let mut rec2 = Recording::new();
        ScenarioSimulation::new(config(1), scenario).run(&mut Fcfs, &mut rec2);
        assert_eq!(rec2.shapes[0].prefill_len, vec![500]);
    }

    #[test]
    fn aging_rescues_a_starving_long_prompt() {
        // One 500-token prompt plus a dense stream of 10-token prompts
        // at batch 1: unguarded shortest-prompt-first admits every
        // short first — with an unbounded stream the long prompt would
        // starve forever. The aging guard admits it after 6 skipped
        // admissions.
        let mk_trace = || {
            let mut trace = vec![crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 500,
                output_len: 2,
            }];
            for i in 0..60u32 {
                trace.push(crate::trace::TraceRequest {
                    arrival_s: f64::from(i) * 0.001,
                    input_len: 10,
                    output_len: 2,
                });
            }
            trace
        };
        let run = |policy: &mut dyn SchedulingPolicy| {
            let scenario = Scenario::new(
                "starve",
                Workload::fixed(1, 1),
                Arrivals::trace(mk_trace()),
                61,
            );
            ScenarioSimulation::new(config(1), scenario).run(policy, &mut Fixed(0.01))
        };
        let long_first_token = |report: &SimReport| {
            report
                .completed
                .iter()
                .find(|r| r.request.input_len == 500)
                .expect("long prompt completes in a finite trace")
                .first_token_s
        };

        let unguarded = run(&mut ShortestPromptFirst::unguarded());
        let guarded = run(&mut ShortestPromptFirst::with_aging(6));
        let t_unguarded = long_first_token(&unguarded);
        let t_guarded = long_first_token(&guarded);
        // Unguarded: every one of the 60 shorts (2 stages each) goes
        // first; the long prompt is served dead last.
        assert!(
            t_unguarded > 60.0 * 2.0 * 0.01 - 1e-9,
            "unguarded long prompt served at {t_unguarded}"
        );
        // Aged after 6 skipped admissions: served an order of magnitude
        // earlier, and the stream is not reordered wholesale.
        assert!(
            t_guarded < t_unguarded / 4.0,
            "guarded {t_guarded} vs unguarded {t_unguarded}"
        );
        assert_eq!(guarded.completed.len(), 61);
    }

    #[test]
    fn trace_replay_clamps_request_count() {
        let trace = vec![
            crate::trace::TraceRequest {
                arrival_s: 0.0,
                input_len: 16,
                output_len: 2,
            },
            crate::trace::TraceRequest {
                arrival_s: 0.1,
                input_len: 16,
                output_len: 2,
            },
        ];
        let scenario = Scenario::new("trace", Workload::fixed(1, 1), Arrivals::trace(trace), 1000);
        let report = run_scenario(scenario, config(4), &mut Fcfs);
        assert_eq!(report.completed.len(), 2);
    }

    #[test]
    fn stage_cap_stops_runaway() {
        let cfg = SimulationConfig {
            max_stages: 5,
            ..config(1)
        };
        let scenario = Scenario::new("cap", Workload::fixed(8, 100), Arrivals::ClosedLoop, 3);
        let report = run_scenario(scenario, cfg, &mut Fcfs);
        assert_eq!(report.stage_stats.stages, 5);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn chunked_prefill_splits_long_prompts() {
        // One 300-token prompt under a 128-token budget: two held
        // chunks, then a 44-token final slice that samples and joins.
        let scenario = Scenario::new("chunk", Workload::fixed(300, 3), Arrivals::ClosedLoop, 1)
            .with_prefill_chunk(128);
        let mut rec = Recording::new();
        let report = ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert_eq!(report.completed.len(), 1);

        assert_eq!(rec.shapes[0].prefill_len, vec![128]);
        assert_eq!(rec.shapes[0].prefill_hold, vec![true]);
        assert_eq!(rec.deltas[0].chunk, vec![(128, 0)]);
        assert!(rec.deltas[0].admit.is_empty());

        assert_eq!(rec.shapes[1].prefill_len, vec![128]);
        assert_eq!(rec.shapes[1].prefill_past, vec![128]);
        assert_eq!(rec.deltas[1].chunk, vec![(128, 128)]);

        assert_eq!(rec.shapes[2].prefill_len, vec![44]);
        assert_eq!(rec.shapes[2].prefill_past, vec![256]);
        assert!(rec.shapes[2].prefill_samples(0), "final slice samples");
        assert_eq!(rec.deltas[2].admit, vec![44]);
        assert_eq!(rec.deltas[2].admit_ctx, vec![300], "joins at full prompt");

        // Decoding over the full context from the next stage on.
        assert_eq!(rec.shapes[3].decode_ctx, vec![301]);
        assert!(rec.shapes[3].prefill_len.is_empty());
        // First token lands after the final slice: 3 prefill stages.
        let done = &report.completed[0];
        assert!((done.t2ft() - 0.03).abs() < 1e-9, "t2ft {}", done.t2ft());
    }

    #[test]
    fn chunk_budget_bounds_every_stage() {
        // A burst of long prompts: no stage may prefill more than the
        // budget, decodes interleave, and everything still completes.
        let scenario = Scenario::new(
            "budget",
            Workload::fixed(200, 6).with_seed(3),
            Arrivals::Poisson { qps: 500.0 },
            12,
        )
        .with_prefill_chunk(96);
        let mut rec = Recording::new();
        let report = ScenarioSimulation::new(config(6), scenario).run(&mut Fcfs, &mut rec);
        assert_eq!(report.completed.len(), 12);
        for (i, shape) in rec.shapes.iter().enumerate() {
            let prefill: u64 = shape.prefill_len.iter().sum();
            assert!(prefill <= 96, "stage {i} prefills {prefill} tokens");
        }
        // The budget forces held chunks to actually occur.
        assert!(rec.deltas.iter().any(|d| !d.chunk.is_empty()));
        // Chunks attend over their prompt's earlier slices.
        assert!(rec
            .deltas
            .iter()
            .flat_map(|d| &d.chunk)
            .any(|&(_, past)| past > 0));
    }

    #[test]
    fn chunked_run_matches_unchunked_completions() {
        let mk = |chunk: u64| {
            let scenario = Scenario::new(
                "cmp",
                Workload::gaussian(220, 8).with_seed(11),
                Arrivals::Poisson { qps: 300.0 },
                15,
            )
            .with_prefill_chunk(chunk);
            run_scenario(scenario, config(4), &mut Fcfs)
        };
        let plain = mk(0);
        let chunked = mk(64);
        assert_eq!(plain.completed.len(), chunked.completed.len());
        // Chunking only adds stages (slices), never loses tokens.
        assert!(chunked.stage_stats.stages > plain.stage_stats.stages);
        assert_eq!(plain.total_tokens(), chunked.total_tokens());
        assert_eq!(
            plain.stage_stats.token_sum, chunked.stage_stats.token_sum,
            "same FC tokens processed overall"
        );
    }

    #[test]
    fn shedding_batch_tier_lifts_interactive_attainment_near_saturation() {
        // A shape-aware executor: prefills stall the whole batch (the
        // mixed-stage spike chunked prefill also fights), decodes are
        // cheap. Near saturation, plain EDF admits batch-tier prompts
        // into every open slot, so interactive decoders keep eating
        // mixed-stage latency and miss their TBT deadline; the
        // shedding wrapper defers batch admissions while occupancy is
        // high, pushing those prefills into emptier moments.
        struct Linear;
        impl StageExecutor for Linear {
            fn execute(&mut self, shape: &StageShape) -> StageOutcome {
                let prefill: u64 = shape.prefill_len.iter().sum();
                StageOutcome {
                    seconds: 0.002 + 1.5e-4 * prefill as f64 + 1e-4 * shape.decode_ctx.len() as f64,
                }
            }
        }
        let tiers = vec![
            SloTier::new("interactive", 0.5, 0, 0.6, 0.0048),
            SloTier::new("batch", 0.5, 2, 60.0, 0.0),
        ];
        let mk = |policy: &mut dyn SchedulingPolicy| {
            let scenario = Scenario::new(
                "shed",
                Workload::gaussian(64, 16).with_seed(21),
                Arrivals::Poisson { qps: 55.0 },
                400,
            )
            .with_tiers(tiers.clone());
            ScenarioSimulation::new(config(8), scenario).run(policy, &mut Linear)
        };
        let edf = mk(&mut PriorityTiers);
        let shed = mk(&mut crate::policy::ShedBatchTier::new(
            Box::new(PriorityTiers),
            0.5,
            2,
        ));
        assert_eq!(edf.completed.len(), 400);
        assert_eq!(shed.completed.len(), 400, "shedding defers, never drops");
        let interactive = |r: &SimReport| r.slo.tiers[0].attainment();
        assert!(
            interactive(&shed) > interactive(&edf) + 0.05,
            "shed {} vs edf {}",
            interactive(&shed),
            interactive(&edf)
        );
        // The price is batch-tier queueing delay, not lost work.
        let batch = |r: &SimReport| r.slo.tiers[1].completed;
        assert_eq!(batch(&shed), batch(&edf));
    }

    #[test]
    fn preemption_beats_shedding_when_batch_decodes_hog_slots() {
        // KV-bound regime: running batch decodes reserve their full
        // (input + output) KV budget, and the capacity only fits a few
        // at once. Admission-side control (ShedBatchTier) can only
        // defer *new* batch prompts — it cannot free bytes a running
        // decode already reserved, so an interactive arrival
        // head-of-line blocks until a natural retirement and misses
        // its tight T2FT deadline. Preemption pauses a victim at the
        // very next stage, releasing its reservation: the interactive
        // prompt admits within milliseconds.
        struct Linear;
        impl StageExecutor for Linear {
            fn execute(&mut self, shape: &StageShape) -> StageOutcome {
                let prefill: u64 = shape.prefill_len.iter().sum();
                StageOutcome {
                    seconds: 0.002 + 1.5e-4 * prefill as f64 + 1e-4 * shape.decode_ctx.len() as f64,
                }
            }
        }
        let tiers = vec![
            SloTier::new("interactive", 0.5, 0, 0.035, 0.0),
            SloTier::new("batch", 0.5, 2, 60.0, 0.0),
        ];
        let mk = |policy: &mut dyn SchedulingPolicy| {
            let scenario = Scenario::new(
                "preempt",
                Workload::gaussian(64, 192).with_seed(21),
                Arrivals::Poisson { qps: 16.0 },
                400,
            )
            .with_tiers(tiers.clone())
            // Chunked prefill bounds every stage (fresh prompts and
            // recompute re-prefills alike), so T2FT is dominated by
            // the wait for KV headroom — the thing under test.
            .with_prefill_chunk(64);
            let cfg = SimulationConfig {
                // ~5 concurrent requests' worth of (input + output)
                // reservations: KV, not batch slots, is the binding
                // constraint.
                kv_capacity_bytes: 1280,
                ..config(8)
            };
            ScenarioSimulation::new(cfg, scenario).run(policy, &mut Linear)
        };
        let shed = mk(&mut crate::policy::ShedBatchTier::new(
            Box::new(PriorityTiers),
            0.5,
            2,
        ));
        // Crossover at ctx = 7.5e-3 / (1e-4 - 5e-5) = 150 resident
        // tokens (1 KV byte per token here): short victims re-prefill,
        // long ones swap — both paths must see traffic.
        let spec = crate::preempt::PreemptSpec::new()
            .with_swap_link(2e4, 7.5e-3)
            .with_recompute_rate(1e4);
        let preempt = mk(&mut crate::preempt::PreemptionPolicy::new(
            Box::new(PriorityTiers),
            spec,
        ));
        assert_eq!(shed.completed.len(), 400);
        assert_eq!(preempt.completed.len(), 400, "paused work is never dropped");
        let interactive = |r: &SimReport| r.slo.tiers[0].attainment();
        assert!(
            interactive(&preempt) > interactive(&shed) + 0.05,
            "preempt {} vs shed {}",
            interactive(&preempt),
            interactive(&shed)
        );
        // The price is bounded: batch-tier goodput stays within 10%.
        let batch_good = |r: &SimReport| r.slo.tiers[1].good_tokens;
        assert!(
            batch_good(&preempt) as f64 >= 0.9 * batch_good(&shed) as f64,
            "batch goodput {} vs shed {}",
            batch_good(&preempt),
            batch_good(&shed)
        );
        // The cost model split victims across both restore paths, and
        // every pause eventually resumed.
        assert!(preempt.preempt.preemptions > 0);
        assert!(
            preempt.preempt.swaps > 0,
            "no swap-outs: {:?}",
            preempt.preempt
        );
        assert!(
            preempt.preempt.recomputes > 0,
            "no recomputes: {:?}",
            preempt.preempt
        );
        assert_eq!(preempt.preempt.resumes, preempt.preempt.preemptions);
        assert!(preempt.preempt.paused_time_s > 0.0);
        // Seed-determinism: the preempting run replays bit-for-bit.
        let again = mk(&mut crate::preempt::PreemptionPolicy::new(
            Box::new(PriorityTiers),
            spec,
        ));
        assert_eq!(preempt.completed, again.completed);
        assert_eq!(preempt.preempt, again.preempt);
    }

    #[test]
    fn multiplex_packs_paused_decodes_into_shared_slots() {
        // Slot-bound regime with bursty interactive arrivals: bursts
        // pause several batch decodes at once (SwapOnly keeps their
        // contexts parked), and once the burst drains, the multiplexer
        // packs compatible paused victims into one shared decode row
        // instead of giving each its own slot back. Members pay a
        // quality exchange rate on their goodput.
        let tiers = vec![
            SloTier::new("interactive", 0.4, 0, 0.08, 0.0),
            SloTier::new("batch", 0.6, 2, 120.0, 0.0),
        ];
        let spec = crate::preempt::PreemptSpec::new()
            .with_mode(crate::preempt::PreemptMode::SwapOnly)
            .with_threshold(0.75);
        let mspec = crate::preempt::MultiplexSpec::new();
        let mk = || {
            let scenario = Scenario::new(
                "mux",
                Workload::gaussian(64, 192).with_seed(11),
                Arrivals::Bursty {
                    base_qps: 1.0,
                    burst_qps: 40.0,
                    mean_off_s: 0.8,
                    mean_on_s: 0.15,
                },
                80,
            )
            .with_tiers(tiers.clone());
            let mut policy = crate::preempt::PreemptionPolicy::new(Box::new(PriorityTiers), spec)
                .with_multiplex(mspec);
            ScenarioSimulation::new(config(4), scenario).run(&mut policy, &mut Fixed(0.01))
        };
        let report = mk();
        assert_eq!(report.completed.len(), 80, "mux members all finish");
        assert!(
            report.preempt.mux_slots > 0,
            "no shared slots formed: {:?}",
            report.preempt
        );
        assert!(report.preempt.mux_tokens > 0);
        assert!(report.preempt.swaps > 0);
        assert_eq!(report.preempt.recomputes, 0, "SwapOnly never recomputes");
        assert_eq!(report.preempt.resumes, report.preempt.preemptions);
        // Replays bit-for-bit.
        let again = mk();
        assert_eq!(report.completed, again.completed);
        assert_eq!(report.preempt, again.preempt);
    }

    #[test]
    fn adaptive_chunk_budget_interpolates_on_occupancy() {
        let a = AdaptiveChunk {
            min_tokens: 64,
            max_tokens: 512,
        };
        assert_eq!(a.budget(0, 8), 512, "idle batch gets the ceiling");
        assert_eq!(a.budget(8, 8), 64, "full batch gets the floor");
        assert_eq!(a.budget(4, 8), 288, "half occupancy interpolates");
        assert_eq!(a.budget(16, 8), 64, "overfull clamps to the floor");
        // Degenerate: zero-slot batches never divide by zero.
        assert!(a.budget(0, 0) >= 1);
    }

    #[test]
    fn adaptive_chunk_widens_idle_prefills_and_bounds_busy_ones() {
        // Long prompts trickle in while a decode cohort persists: the
        // first (idle) admission may prefill up to the ceiling, while
        // stages with decoders in flight stay near the floor.
        let mk = |scenario: Scenario| {
            let mut rec = Recording::new();
            let report = ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
            (report, rec)
        };
        let base = Scenario::new(
            "adaptive",
            Workload::fixed(400, 24).with_seed(5),
            Arrivals::Poisson { qps: 200.0 },
            8,
        );
        let (fixed_report, fixed_rec) = mk(base.clone().with_prefill_chunk(64));
        let (adapt_report, adapt_rec) = mk(base.with_prefill_chunk_adaptive(64, 512));
        assert_eq!(fixed_report.completed.len(), adapt_report.completed.len());
        assert_eq!(fixed_report.total_tokens(), adapt_report.total_tokens());
        // The adaptive run used idle bandwidth: at least one stage
        // prefills beyond the fixed budget ...
        let max_prefill = |rec: &Recording| {
            rec.shapes
                .iter()
                .map(|s| s.prefill_len.iter().sum::<u64>())
                .max()
                .unwrap_or(0)
        };
        assert!(max_prefill(&adapt_rec) > 64, "idle stages widen");
        assert!(max_prefill(&fixed_rec) <= 64, "fixed stays bounded");
        // ... and stages with a full decode cohort stay at the floor.
        for (delta, shape) in adapt_rec.deltas.iter().zip(&adapt_rec.shapes) {
            let _ = delta;
            if shape.decode_ctx.len() >= 4 {
                let prefill: u64 = shape.prefill_len.iter().sum();
                assert!(prefill <= 64, "busy stage prefills {prefill}");
            }
        }
        // Fewer stages overall: idle slices are bigger.
        assert!(adapt_report.stage_stats.stages <= fixed_report.stage_stats.stages);
    }

    #[test]
    fn adaptive_chunk_is_exact_against_the_delta_contract() {
        // The adaptive budget reuses the chunking machinery, so the
        // delta/shape mirror must still replay exactly.
        let scenario = Scenario::new(
            "adaptchat",
            Workload::gaussian(180, 6).with_seed(23),
            Arrivals::Poisson { qps: 400.0 },
            10,
        )
        .with_conversation(ConversationSpec::chat(0.8, 3, 0.002, 48))
        .with_prefill_chunk_adaptive(48, 160);
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert!(rec.deltas.iter().any(|d| !d.chunk.is_empty()));
        assert_deltas_mirror_shapes(&rec);
    }

    #[test]
    fn recorder_round_trips_through_trace_replay() {
        // Record a bursty run's admissions, replay the JSON trace, and
        // the replayed run must reproduce the timeline byte for byte.
        let scenario = Scenario::new(
            "record",
            Workload::gaussian(48, 6).with_seed(17),
            Arrivals::Bursty {
                base_qps: 0.0,
                burst_qps: 400.0,
                mean_off_s: 0.05,
                mean_on_s: 0.02,
            },
            24,
        );
        let mut recorder = TraceRecorder::new();
        let original = ScenarioSimulation::new(config(4), scenario).run_recording(
            &mut Fcfs,
            &mut Fixed(0.01),
            &mut recorder,
        );
        assert_eq!(recorder.len(), 24);

        let parsed = parse_trace(&recorder.to_json()).expect("recorded trace parses");
        assert_eq!(parsed.len(), 24);
        let replay = Scenario::new(
            "replay",
            Workload::fixed(1, 1),
            Arrivals::trace(parsed),
            1000,
        );
        let replayed = ScenarioSimulation::new(config(4), replay).run(&mut Fcfs, &mut Fixed(0.01));
        assert_eq!(replayed.completed.len(), original.completed.len());
        assert_eq!(replayed.stage_stats, original.stage_stats);
        assert_eq!(
            replayed.total_time_s.to_bits(),
            original.total_time_s.to_bits()
        );
    }

    #[test]
    fn recorder_captures_followup_rounds() {
        let scenario = Scenario::new(
            "chatrec",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            2,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.001, 16));
        let mut recorder = TraceRecorder::new();
        let report = ScenarioSimulation::new(config(4), scenario).run_recording(
            &mut Fcfs,
            &mut Fixed(0.01),
            &mut recorder,
        );
        assert_eq!(report.completed.len(), 4);
        // Two conversations x two rounds: the follow-ups appear with
        // their full (history + turn) prompts.
        assert_eq!(recorder.len(), 4);
        assert!(recorder.trace().iter().any(|r| r.input_len == 84));
    }

    fn assert_deltas_mirror_shapes(rec: &Recording) {
        let mut mirror: Vec<u64> = Vec::new();
        let mut pend: Vec<u64> = Vec::new();
        for (delta, shape) in rec.deltas.iter().zip(&rec.shapes) {
            if delta.fresh {
                mirror.clear();
                pend.clear();
            }
            for c in &mut mirror {
                *c += 1;
            }
            mirror.extend(pend.drain(..).map(|p| p + 1));
            for r in &delta.retire {
                let pos = mirror
                    .iter()
                    .position(|c| c == r)
                    .expect("retired ctx present");
                mirror.swap_remove(pos);
            }
            pend.extend_from_slice(delta.join_contexts());
            let mut want = shape.decode_ctx.clone();
            want.sort_unstable();
            let mut got = mirror.clone();
            got.sort_unstable();
            assert_eq!(got, want);
            // Prefills = admissions (len, past, sampling) + chunks
            // (len, past, held), as multisets.
            let mut want_pre: Vec<(u64, u64, bool)> = (0..delta.admit.len())
                .map(|i| (delta.admit[i], delta.admit_past(i), false))
                .chain(delta.chunk.iter().map(|&(len, past)| (len, past, true)))
                .collect();
            let mut got_pre: Vec<(u64, u64, bool)> = (0..shape.prefill_len.len())
                .map(|i| {
                    (
                        shape.prefill_len[i],
                        shape.prefill_past_of(i),
                        !shape.prefill_samples(i),
                    )
                })
                .collect();
            want_pre.sort_unstable();
            got_pre.sort_unstable();
            assert_eq!(got_pre, want_pre);
        }
    }

    #[test]
    fn chunked_deltas_replay_to_materialized_shapes() {
        // The delta/shape contract under chunking + conversations:
        // decode membership follows admit/retire alone, and each
        // stage's prefills are exactly the delta's admissions (with
        // their reuse past) plus its held chunks.
        let scenario = Scenario::new(
            "chunkchat",
            Workload::gaussian(180, 6).with_seed(23),
            Arrivals::Poisson { qps: 400.0 },
            10,
        )
        .with_conversation(ConversationSpec::chat(0.8, 3, 0.002, 48))
        .with_prefill_chunk(80);
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        assert!(rec.deltas.iter().any(|d| !d.chunk.is_empty()));
        assert_deltas_mirror_shapes(&rec);
    }

    #[test]
    fn reuse_admissions_carry_past_in_the_shape() {
        let scenario = Scenario::new(
            "chat",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            2,
        )
        .with_conversation(ConversationSpec::chat(1.0, 2, 0.001, 16));
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        // A reused follow-up prefills its 16-token suffix over the
        // 68-token resident history, and the shape says so.
        let (i, shape) = rec
            .shapes
            .iter()
            .enumerate()
            .find(|(_, s)| !s.prefill_past.is_empty() && s.prefill_past.iter().any(|&p| p > 0))
            .expect("a reuse admission with past exists");
        let j = shape
            .prefill_past
            .iter()
            .position(|&p| p > 0)
            .expect("past");
        assert_eq!(shape.prefill_past[j], 68);
        assert_eq!(shape.prefill_len[j], 16);
        assert_eq!(rec.deltas[i].admit_past(j), 68);
    }

    #[test]
    fn deltas_replay_to_materialized_shapes_with_reuse() {
        // The delta stream must mirror the shapes exactly, including
        // reuse admissions joining at their full history context.
        let scenario = Scenario::new(
            "chat",
            Workload::gaussian(48, 6).with_seed(7),
            Arrivals::Poisson { qps: 300.0 },
            10,
        )
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.002, 12));
        let mut rec = Recording::new();
        ScenarioSimulation::new(config(4), scenario).run(&mut Fcfs, &mut rec);
        let mut mirror: Vec<u64> = Vec::new();
        let mut pend: Vec<u64> = Vec::new();
        for (delta, shape) in rec.deltas.iter().zip(&rec.shapes) {
            if delta.fresh {
                mirror.clear();
                pend.clear();
            }
            for c in &mut mirror {
                *c += 1;
            }
            mirror.extend(pend.drain(..).map(|p| p + 1));
            for r in &delta.retire {
                let pos = mirror
                    .iter()
                    .position(|c| c == r)
                    .expect("retired ctx present");
                mirror.swap_remove(pos);
            }
            pend.extend_from_slice(delta.join_contexts());
            let mut want = shape.decode_ctx.clone();
            want.sort_unstable();
            let mut got = mirror.clone();
            got.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(delta.admit, shape.prefill_len);
        }
    }
}
