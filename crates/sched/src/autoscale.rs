//! Elastic autoscaling for cluster runs (see [`crate::cluster`]).
//!
//! An [`AutoscalePolicy`] turns the fixed-size fleet into an elastic
//! one: the cluster is built at its *maximum* size, replicas beyond
//! [`AutoscalePolicy::min_replicas`] start parked in a standby pool,
//! and at every evaluation tick (each [`AutoscalePolicy::interval_s`]
//! of virtual time, processed at a clock-merge point of the cluster's
//! dispatch/window protocol) the policy watches windowed fleet
//! signals:
//!
//! * **queue pressure** — mean committed slots per batch slot across
//!   the admitting replicas
//!   ([`crate::router::ReplicaSnapshot::queue_pressure`] units);
//! * **decode occupancy** — in-flight requests per batch slot, the
//!   "are the batches actually full" companion signal;
//! * **per-tier SLO attainment** — the interactive tier's attainment
//!   over the window since the previous evaluation.
//!
//! and emits scale events:
//!
//! * **scale-up** — when pressure holds above
//!   [`AutoscalePolicy::up_pressure`] for
//!   [`AutoscalePolicy::up_windows`] consecutive evaluations (or the
//!   windowed interactive attainment drops below
//!   [`AutoscalePolicy::attainment_floor`]), a pool replica is
//!   provisioned: it joins [`AutoscalePolicy::provision_s`] later,
//!   warms up at [`AutoscalePolicy::warmup_factor`] for
//!   [`AutoscalePolicy::warmup_s`], and steals the parked KV of the
//!   most-loaded survivor as **one** priced transfer over
//!   [`AutoscalePolicy::link`] — a drain handoff in reverse.
//! * **scale-down** — when pressure *and* occupancy hold below their
//!   `down_` thresholds for [`AutoscalePolicy::down_windows`]
//!   evaluations (and the SLO window is healthy), the least-loaded
//!   replica above the floor is drained through exactly the fault
//!   path: stop admitting, reroute its queue, finish the batch, hand
//!   parked KV to the least-loaded survivor as a priced transfer —
//!   and then it returns to the pool instead of restarting.
//!
//! Every decision is a pure function of replica state at a merge
//! point, so autoscaled runs keep the cluster's determinism bar:
//! serial == parallel byte-identical, snapshots taken mid-scale-event
//! resume bit-for-bit, and reports are seed-deterministic.
//!
//! # Example
//!
//! ```
//! use duplex_sched::AutoscalePolicy;
//!
//! let policy = AutoscalePolicy::new(2)
//!     .with_pressure(1.5, 0.25)
//!     .with_cadence(0.5, 1, 2)
//!     .with_provisioning(1.0, 0.5, 1.5);
//! assert_eq!(policy.min_replicas, 2);
//! assert!(policy.up_pressure > policy.down_pressure);
//! ```

use crate::fault::KvLinkSpec;

/// Elastic scaling policy for a cluster run. Attach with
/// [`crate::ClusterSimulation::with_autoscale`]; replicas beyond
/// `min_replicas` start in the standby pool.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct AutoscalePolicy {
    /// Admitting-replica floor: scale-downs never take the fleet below
    /// this, and the first `min_replicas` replicas start active.
    pub min_replicas: usize,
    /// Mean fleet queue pressure at or above which an evaluation votes
    /// to scale up.
    pub up_pressure: f64,
    /// Mean fleet queue pressure at or below which an evaluation votes
    /// to scale down (must stay below `up_pressure` for hysteresis).
    pub down_pressure: f64,
    /// Mean decode occupancy (in-flight per batch slot) at or below
    /// which a scale-down vote stands; a fleet with full batches keeps
    /// its replicas even when nothing queues behind them.
    pub down_occupancy: f64,
    /// Windowed interactive-tier attainment below which an evaluation
    /// votes to scale up regardless of pressure (and above which
    /// scale-downs are allowed). 0 disables the attainment signal.
    pub attainment_floor: f64,
    /// Virtual seconds between evaluations.
    pub interval_s: f64,
    /// Consecutive up-votes required before a scale-up fires.
    pub up_windows: u32,
    /// Consecutive down-votes required before a scale-down fires.
    pub down_windows: u32,
    /// Virtual seconds after any scale event before the next one may
    /// fire (streaks keep counting through it).
    pub cooldown_s: f64,
    /// Virtual seconds between the scale-up decision and the replica
    /// actually joining (instance boot, weights load). The joiner's
    /// measured `scale_up_lag_s` is this plus the detection streak.
    pub provision_s: f64,
    /// Post-join warm-up window length in virtual seconds (cold caches
    /// on a fresh replica); 0 disables it.
    pub warmup_s: f64,
    /// Stage-latency multiplier during the warm-up window (>= 1).
    pub warmup_factor: f64,
    /// The link the joiner's parked-KV steal is priced over.
    pub link: KvLinkSpec,
}

impl AutoscalePolicy {
    /// A policy with a floor of `min_replicas` and serviceable
    /// defaults: scale up at 1.5 batches of pressure (2 consecutive
    /// 0.5 s windows), down at 0.25 with idle batches (4 windows),
    /// 1 s cooldown and provisioning, no warm-up, attainment signal
    /// off, default interconnect. All knobs have `with_` setters.
    pub fn new(min_replicas: usize) -> Self {
        assert!(min_replicas >= 1, "the replica floor must be at least 1");
        Self {
            min_replicas,
            up_pressure: 1.5,
            down_pressure: 0.25,
            down_occupancy: 0.5,
            attainment_floor: 0.0,
            interval_s: 0.5,
            up_windows: 2,
            down_windows: 4,
            cooldown_s: 1.0,
            provision_s: 1.0,
            warmup_s: 0.0,
            warmup_factor: 1.0,
            link: KvLinkSpec::default(),
        }
    }

    /// Set the pressure thresholds (up at/above, down at/below).
    pub fn with_pressure(mut self, up: f64, down: f64) -> Self {
        assert!(
            up > down && down >= 0.0 && up.is_finite(),
            "need finite up_pressure > down_pressure >= 0"
        );
        self.up_pressure = up;
        self.down_pressure = down;
        self
    }

    /// Set the scale-down occupancy ceiling.
    pub fn with_down_occupancy(mut self, occupancy: f64) -> Self {
        assert!(occupancy >= 0.0, "occupancy ceiling must be non-negative");
        self.down_occupancy = occupancy;
        self
    }

    /// Enable the windowed-attainment signal: scale up when the
    /// interactive tier's attainment over the last window drops below
    /// `floor`, and block scale-downs while it does.
    pub fn with_attainment_floor(mut self, floor: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&floor),
            "attainment floor must be in [0, 1]"
        );
        self.attainment_floor = floor;
        self
    }

    /// Set the evaluation cadence: interval and the consecutive-window
    /// hysteresis for each direction.
    pub fn with_cadence(mut self, interval_s: f64, up_windows: u32, down_windows: u32) -> Self {
        assert!(
            interval_s > 0.0 && interval_s.is_finite(),
            "evaluation interval must be positive and finite"
        );
        assert!(
            up_windows >= 1 && down_windows >= 1,
            "hysteresis windows must be at least 1"
        );
        self.interval_s = interval_s;
        self.up_windows = up_windows;
        self.down_windows = down_windows;
        self
    }

    /// Set the post-event cooldown.
    pub fn with_cooldown(mut self, cooldown_s: f64) -> Self {
        assert!(cooldown_s >= 0.0, "cooldown must be non-negative");
        self.cooldown_s = cooldown_s;
        self
    }

    /// Set the provisioning delay and the joiner's warm-up window:
    /// `warmup_s` seconds at `warmup_factor` times nominal latency.
    pub fn with_provisioning(
        mut self,
        provision_s: f64,
        warmup_s: f64,
        warmup_factor: f64,
    ) -> Self {
        assert!(
            provision_s >= 0.0,
            "provisioning delay must be non-negative"
        );
        assert!(warmup_s >= 0.0, "warm-up length must be non-negative");
        assert!(warmup_factor >= 1.0, "warm-up factor must be >= 1");
        self.provision_s = provision_s;
        self.warmup_s = warmup_s;
        self.warmup_factor = warmup_factor;
        self
    }

    /// Set the link the scale-up KV steal is priced over.
    pub fn with_link(mut self, link: KvLinkSpec) -> Self {
        self.link = link;
        self
    }
}

/// Scale-event counters for one cluster run; all zeros without an
/// autoscaler. Lands on [`crate::ClusterReport::scaling`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ScaleStats {
    /// Pool replicas provisioned into the serving fleet.
    pub scale_ups: u64,
    /// Replicas drained back into the pool.
    pub scale_downs: u64,
    /// Worst observed scale-up lag in virtual seconds: from the first
    /// evaluation of the qualifying up-streak to the replica joining
    /// (detection hysteresis + provisioning). 0 when nothing scaled.
    pub scale_up_lag_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_set_every_knob() {
        let p = AutoscalePolicy::new(3)
            .with_pressure(2.0, 0.1)
            .with_down_occupancy(0.4)
            .with_attainment_floor(0.9)
            .with_cadence(0.25, 3, 5)
            .with_cooldown(2.0)
            .with_provisioning(1.5, 0.5, 2.0)
            .with_link(KvLinkSpec::new(100e9, 1e-6));
        assert_eq!(p.min_replicas, 3);
        assert_eq!(p.up_pressure, 2.0);
        assert_eq!(p.down_pressure, 0.1);
        assert_eq!(p.down_occupancy, 0.4);
        assert_eq!(p.attainment_floor, 0.9);
        assert_eq!(p.interval_s, 0.25);
        assert_eq!((p.up_windows, p.down_windows), (3, 5));
        assert_eq!(p.cooldown_s, 2.0);
        assert_eq!(p.provision_s, 1.5);
        assert_eq!((p.warmup_s, p.warmup_factor), (0.5, 2.0));
        assert_eq!(p.link.bytes_per_s, 100e9);
    }

    #[test]
    #[should_panic(expected = "up_pressure > down_pressure")]
    fn inverted_hysteresis_is_rejected() {
        let _ = AutoscalePolicy::new(1).with_pressure(0.2, 0.8);
    }

    #[test]
    #[should_panic(expected = "floor must be at least 1")]
    fn a_zero_floor_is_rejected() {
        let _ = AutoscalePolicy::new(0);
    }

    #[test]
    fn scale_stats_default_to_zero() {
        let s = ScaleStats::default();
        assert_eq!(s.scale_ups, 0);
        assert_eq!(s.scale_downs, 0);
        assert_eq!(s.scale_up_lag_s, 0.0);
    }
}
