//! Continuous-batching serving scheduler for the Duplex simulator.
//!
//! This crate is the "serving scheduler" half of the paper's simulator
//! (Sec. VI): it owns requests, forms stages, and collects latency
//! metrics, while delegating "how long does this stage take" to a
//! [`StageExecutor`] implemented by the system crate.
//!
//! * [`request`] — requests and per-request completion records
//!   (T2FT, TBT, E2E as defined in Sec. II-C / Fig. 2).
//! * [`workload`] — Gaussian (Lin, Lout) sampling, closed-loop refill
//!   and open-loop Poisson arrivals, exactly the synthetic setup of
//!   Sec. VI.
//! * [`scheduler`] — stage-level continuous batching: every ongoing
//!   request advances one token per stage; new requests join as
//!   prefills when the batch and the KV-cache budget allow, making the
//!   stage *mixed*; otherwise the stage is *decoding-only*.
//! * [`delta`] — the incremental stage contract: each stage is also
//!   announced as a [`StageDelta`] (advance + admissions +
//!   retirements), letting executors that carry batch state price
//!   pure-decode stages in O(changes) instead of O(batch).
//! * [`metrics`] — percentile summaries, streaming latency digests,
//!   SLO attainment / goodput counters and the simulation report.
//! * [`scenario`] — the scenario scheduler: SLO tiers, policy-driven
//!   admission, and multi-turn conversations with reuse-aware KV
//!   accounting through `duplex_model::kv_cache`.
//! * [`policy`] — pluggable admission policies (FCFS,
//!   shortest-prompt-first, priority tiers with SLO deadlines, and
//!   the batch-tier load-shedding wrapper).
//! * [`preempt`] — preemptive scheduling: a [`PreemptionPolicy`]
//!   pauses batch-tier decodes mid-flight when interactive work would
//!   otherwise wait, choosing per victim between priced KV swap-out
//!   and recompute-on-resume, and optionally multiplexes compatible
//!   paused requests into shared batch slots (fractional slots at a
//!   quality exchange rate). The full admission/preemption stack is
//!   documented in `docs/scheduling.md`.
//! * [`cluster`] / [`router`] — multi-replica serving: a fleet of
//!   independent replicas on one shared virtual clock behind a
//!   pluggable request router (round-robin, least-outstanding-work,
//!   session affinity, migration-aware affinity), with per-replica and
//!   merged fleet reports. Routers place requests in two dimensions
//!   ([`router::Placement`]): a [`cluster::DisaggPlan`] splits the
//!   fleet into dedicated prefill and decode pools with priced KV
//!   handoffs between them, and colocated serving is the degenerate
//!   `prefill == decode` case (see `docs/placement-api.md`).
//! * [`fault`] — deterministic fault injection for cluster runs:
//!   scripted crashes, drains and slowdowns, load-driven fault
//!   triggers, retry/reroute of lost requests, priced cross-replica
//!   KV migration, and recovery metrics.
//! * [`autoscale`] — elastic fleets: an [`AutoscalePolicy`] watches
//!   windowed queue pressure, decode occupancy and SLO attainment at
//!   the cluster's clock-merge points and provisions standby replicas
//!   (warm-up + priced parked-KV steal) or drains surplus ones back
//!   into the pool, deterministically.
//! * [`trace`] / [`json`] — recorded arrival traces, the
//!   [`TraceRecorder`] that captures a run as a replayable trace, and
//!   the minimal JSON reader behind them.
//!
//! # Example
//!
//! Run a toy simulation where every stage takes a fixed 10 ms:
//!
//! ```
//! use duplex_model::ops::StageShape;
//! use duplex_sched::{Simulation, SimulationConfig, StageExecutor, StageOutcome, Workload};
//!
//! struct Fixed;
//! impl StageExecutor for Fixed {
//!     fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
//!         StageOutcome { seconds: 0.010 }
//!     }
//! }
//!
//! let config = SimulationConfig {
//!     max_batch: 8,
//!     kv_capacity_bytes: u64::MAX,
//!     kv_bytes_per_token: 1,
//!     ..SimulationConfig::default()
//! };
//! let workload = Workload::fixed(128, 32).with_seed(1);
//! let report = Simulation::closed_loop(config, workload, 16).run(&mut Fixed);
//! assert_eq!(report.completed.len(), 16);
//! assert!(report.throughput_tokens_per_s() > 0.0);
//! ```
//!
//! # Construction pattern
//!
//! The public configuration structs ([`Scenario`], [`ReplicaConfig`],
//! the core crate's `ClusterSpec`, …) are `#[non_exhaustive]`: build
//! them with their `new` constructor plus `with_*` builder methods
//! (`Scenario::new(..).with_tiers(..)`,
//! `ReplicaConfig::new(..).with_weight(..)`), never with struct
//! literals. New fields then extend the API without breaking
//! downstream construction sites — every pre-9 PR listed "struct
//! literals" as a breaking change; the builders end that.

pub mod autoscale;
pub mod cluster;
pub mod delta;
pub mod fault;
pub mod json;
pub mod metrics;
pub mod policy;
pub mod preempt;
pub mod request;
pub mod router;
pub mod scenario;
pub mod scheduler;
pub mod snapshot;
pub mod trace;
pub mod workload;

pub use autoscale::{AutoscalePolicy, ScaleStats};
pub use cluster::{
    ClusterConfig, ClusterReport, ClusterRun, ClusterSimulation, DisaggPlan, DisaggStats,
    ReplicaConfig,
};
pub use delta::StageDelta;
pub use fault::{
    FaultEvent, FaultKind, FaultOutcome, FaultPlan, FaultWindowStats, KvLinkSpec, LoadTrigger,
    RecoveryStats, RetryPolicy,
};
pub use metrics::{
    KvReuseStats, LatencyDigest, LatencySummary, SimReport, SloStats, StageRecord, StageStats,
    TierStats,
};
pub use policy::{
    Fcfs, PolicyContext, PolicyKind, PriorityTiers, SchedulingPolicy, ShedBatchTier,
    ShortestPromptFirst,
};
pub use preempt::{MultiplexSpec, PreemptMode, PreemptSpec, PreemptStats, PreemptionPolicy};
pub use request::{Request, RequestRecord};
pub use router::{
    AffinityCore, ClusterContext, FleetShed, KvMigration, LeastOutstandingWork, Placement,
    PoolRole, PoolTarget, ReplicaSnapshot, RoundRobin, RouteDecision, Router, RouterKind,
    SessionAffinity,
};
pub use scenario::{
    AdaptiveChunk, ConversationSpec, PendingRequest, Scenario, ScenarioSimulation, SloTier,
};
pub use scheduler::{BatchCheckpoint, Simulation, SimulationConfig, StageExecutor, StageOutcome};
pub use snapshot::ClusterSnapshot;
pub use trace::{TraceRecorder, TraceRequest};
pub use workload::{Arrivals, RequestSource, Workload};
