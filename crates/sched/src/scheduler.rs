//! Stage-level continuous batching (ORCA-style, Sec. II-C).
//!
//! Each iteration of the loop is one *stage*: every active request
//! advances by one token; newly arrived requests are admitted as
//! prefills when the batch slot count and the KV-cache budget allow.
//! A stage with at least one prefill is *mixed*; otherwise it is
//! *decoding-only*. KV capacity is reserved at admission for the
//! request's maximum context (Lin + Lout), which is what limits batch
//! size on capacity-constrained systems (Fig. 5(c), Fig. 16).
//!
//! The loop is built for paper-scale runs:
//!
//! * requests are drawn from the [`RequestSource`] *on demand* (one
//!   peeked request), so an open-loop run over millions of requests
//!   holds O(batch) scheduler state, not O(total requests);
//! * each stage is announced to the executor as a [`StageDelta`]
//!   (advance + admissions + retirements) alongside the materialized
//!   [`StageShape`], so incremental executors price pure-decode stages
//!   in O(1) while plain executors fall back to the shape;
//! * per-request accounting is O(1) (first/last token timestamps);
//!   token gaps stream into a fixed-size digest once per stage.

use duplex_model::ops::StageShape;

use crate::delta::StageDelta;
use crate::metrics::{LatencyDigest, SimReport, StageRecord, StageStats};
use crate::request::{Request, RequestRecord};
use crate::workload::{Arrivals, RequestSource, Workload};

/// How long a stage took; produced by the system crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOutcome {
    /// Stage latency in seconds.
    pub seconds: f64,
}

/// Executor-side batch state captured by a cluster snapshot: the
/// carried decode groups, the decode-join contexts pending from the
/// previous stage, and the executor's RNG stream (sampled expert
/// routing draws from it, so resuming must continue the same stream
/// for bit-identical pricing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchCheckpoint {
    /// Run-length-encoded decode groups as `(ctx, reqs)`, ascending.
    pub decode_groups: Vec<(u64, u64)>,
    /// Contexts admitted by the previous delta, joining decode next
    /// stage at `ctx + 1`.
    pub pending_joins: Vec<u64>,
    /// The executor's RNG state (xoshiro256** words).
    pub rng: [u64; 4],
}

/// Prices one stage of work. Implemented by the system crate's
/// execution engines; test doubles return fixed latencies.
pub trait StageExecutor {
    /// Execute one stage and report its latency. Implementations may
    /// accumulate their own side channels (energy, breakdowns).
    fn execute(&mut self, shape: &StageShape) -> StageOutcome;

    /// Execute one stage described incrementally: `delta` is the change
    /// relative to the previously executed stage (see [`StageDelta`]
    /// for the invariants), `shape` the materialized equivalent.
    ///
    /// Executors that carry batch state across stages override this and
    /// price pure-advance stages in O(1) from the delta; the default
    /// simply prices the materialized shape.
    fn execute_delta(&mut self, delta: &StageDelta, shape: &StageShape) -> StageOutcome {
        let _ = delta;
        self.execute(shape)
    }

    /// Export the executor's carried batch state for a cluster
    /// snapshot. Stateless executors (the default) have nothing to
    /// carry and return `None`, and a snapshot without a checkpoint
    /// skips [`import_batch`](Self::import_batch) on resume.
    fn export_batch(&self) -> Option<BatchCheckpoint> {
        None
    }

    /// Restore a previously exported batch state so that resumed
    /// stages price bit-identically to the uninterrupted run. The
    /// default ignores the checkpoint (stateless executors re-derive
    /// everything from the first fresh delta or shape).
    fn import_batch(&mut self, checkpoint: &BatchCheckpoint) {
        let _ = checkpoint;
    }
}

/// Scheduler limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Maximum requests per stage (the paper's "batch size").
    pub max_batch: usize,
    /// KV-cache byte budget across the serving system.
    pub kv_capacity_bytes: u64,
    /// KV bytes per token of context (from the model config).
    pub kv_bytes_per_token: u64,
    /// Safety cap on simulated stages.
    pub max_stages: usize,
    /// Keep a [`StageRecord`] per stage in the report. Disable for
    /// million-request runs: the aggregate [`StageStats`] (throughput,
    /// stage mix, mean batch) are maintained either way.
    pub record_stages: bool,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            kv_capacity_bytes: u64::MAX,
            kv_bytes_per_token: 1,
            max_stages: 2_000_000,
            record_stages: true,
        }
    }
}

/// Re-audit the incremental KV reservation against a full re-sum every
/// this many stages (debug builds only). Per-stage re-summing would
/// make debug runs quadratic in batch x stages.
const KV_AUDIT_PERIOD: u64 = 256;

#[derive(Debug)]
struct Active {
    request: Request,
    generated: u64,
    first_token_s: f64,
}

impl Active {
    fn kv_reserved(&self, bytes_per_token: u64) -> u64 {
        self.request.max_kv_tokens() * bytes_per_token
    }

    fn decode_ctx(&self) -> u64 {
        self.request.input_len + self.generated
    }
}

/// A configured simulation, ready to run against a [`StageExecutor`].
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    source: RequestSource,
    total_requests: usize,
}

impl Simulation {
    /// Closed-loop serving: `total_requests` drawn from `workload`, all
    /// backlogged at time zero; a finished request is replaced at the
    /// next stage boundary.
    pub fn closed_loop(
        config: SimulationConfig,
        workload: Workload,
        total_requests: usize,
    ) -> Self {
        Self {
            config,
            source: RequestSource::new(workload, Arrivals::ClosedLoop),
            total_requests,
        }
    }

    /// Open-loop serving: `total_requests` Poisson arrivals at `qps`.
    pub fn poisson(
        config: SimulationConfig,
        workload: Workload,
        qps: f64,
        total_requests: usize,
    ) -> Self {
        Self {
            config,
            source: RequestSource::new(workload, Arrivals::Poisson { qps }),
            total_requests,
        }
    }

    /// Run to completion (or the stage cap) and report.
    pub fn run<E: StageExecutor + ?Sized>(mut self, executor: &mut E) -> SimReport {
        // The request stream is drawn lazily: `peeked` holds the next
        // not-yet-admitted request (FIFO order is preserved because the
        // source is deterministic in draw order).
        let mut peeked: Option<Request> = None;
        let mut drawn = 0usize;
        let mut active: Vec<Active> = Vec::new();
        let mut prefills: Vec<Active> = Vec::new();
        let mut completed: Vec<RequestRecord> = Vec::new();
        let mut stages: Vec<StageRecord> = Vec::new();
        let mut stage_stats = StageStats::default();
        let mut tbt_digest = LatencyDigest::default();
        let mut clock = 0.0f64;
        // KV bytes reserved by the active set, maintained incrementally
        // (+= on admission, -= on retirement) instead of re-summed over
        // the whole batch every stage.
        let mut reserved: u64 = 0;
        // Reused per-stage buffers: the delta carries retirements from
        // the previous stage boundary and admissions of this stage.
        let mut delta = StageDelta::start();
        let mut shape = StageShape::default();

        while completed.len() < self.total_requests
            && (stage_stats.stages as usize) < self.config.max_stages
        {
            // Admission: FIFO, gated by batch slots and KV reservation.
            while active.len() + prefills.len() < self.config.max_batch {
                if peeked.is_none() {
                    if drawn >= self.total_requests {
                        break;
                    }
                    peeked = Some(self.source.next_request());
                    drawn += 1;
                }
                let front = peeked.as_ref().expect("peeked request exists");
                if front.arrival_s > clock {
                    break;
                }
                let need = front.max_kv_tokens() * self.config.kv_bytes_per_token;
                if reserved.saturating_add(need) > self.config.kv_capacity_bytes {
                    break;
                }
                reserved += need;
                let request = peeked.take().expect("peeked request exists");
                delta.admit.push(request.input_len);
                prefills.push(Active {
                    request,
                    generated: 0,
                    first_token_s: 0.0,
                });
            }

            if active.is_empty() && prefills.is_empty() {
                // Idle: jump to the next arrival. (No admissions were
                // made above, so the pending delta is untouched.)
                match &peeked {
                    Some(next) => {
                        clock = clock.max(next.arrival_s);
                        continue;
                    }
                    None => break,
                }
            }

            shape.decode_ctx.clear();
            shape
                .decode_ctx
                .extend(active.iter().map(Active::decode_ctx));
            shape.prefill_len.clear();
            shape
                .prefill_len
                .extend(prefills.iter().map(|p| p.request.input_len));
            let outcome = executor.execute_delta(&delta, &shape);
            delta.clear();
            clock += outcome.seconds;
            let record = StageRecord {
                seconds: outcome.seconds,
                mixed: shape.is_mixed(),
                batch: shape.batch_size(),
                tokens: shape.tokens(),
            };
            stage_stats.record(&record);
            if self.config.record_stages {
                stages.push(record);
            }

            // Every advancing request sees the same token gap (they all
            // emitted their previous token at the last stage boundary):
            // one digest update covers the stage.
            tbt_digest.record_n(outcome.seconds, active.len() as u64);
            for a in &mut active {
                a.generated += 1;
            }
            for mut p in prefills.drain(..) {
                p.generated = 1;
                p.first_token_s = clock;
                active.push(p);
            }
            let mut i = 0;
            while i < active.len() {
                if active[i].generated >= active[i].request.output_len {
                    let done = active.swap_remove(i);
                    reserved -= done.kv_reserved(self.config.kv_bytes_per_token);
                    delta.retire.push(done.decode_ctx());
                    completed.push(RequestRecord {
                        first_token_s: done.first_token_s,
                        last_token_s: clock,
                        tokens: done.generated,
                        request: done.request,
                    });
                } else {
                    i += 1;
                }
            }
            if cfg!(debug_assertions) && stage_stats.stages % KV_AUDIT_PERIOD == 0 {
                debug_assert_eq!(
                    reserved,
                    active
                        .iter()
                        .map(|a| a.kv_reserved(self.config.kv_bytes_per_token))
                        .sum::<u64>(),
                    "incremental KV reservation drifted from the active set"
                );
            }
        }

        SimReport {
            completed,
            stages,
            stage_stats,
            tbt_digest,
            total_time_s: clock,
            ..SimReport::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl StageExecutor for Fixed {
        fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
            StageOutcome { seconds: self.0 }
        }
    }

    /// Executor that records the shapes and deltas it saw.
    struct Recording {
        shapes: Vec<StageShape>,
        deltas: Vec<StageDelta>,
    }
    impl Recording {
        fn new() -> Self {
            Self {
                shapes: Vec::new(),
                deltas: Vec::new(),
            }
        }
    }
    impl StageExecutor for Recording {
        fn execute(&mut self, shape: &StageShape) -> StageOutcome {
            self.shapes.push(shape.clone());
            StageOutcome { seconds: 0.01 }
        }
        fn execute_delta(&mut self, delta: &StageDelta, shape: &StageShape) -> StageOutcome {
            self.deltas.push(delta.clone());
            self.execute(shape)
        }
    }

    fn config(max_batch: usize) -> SimulationConfig {
        SimulationConfig {
            max_batch,
            ..SimulationConfig::default()
        }
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let sim = Simulation::closed_loop(config(8), Workload::fixed(64, 5), 20);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.completed.len(), 20);
        let mut ids: Vec<u64> = report.completed.iter().map(|r| r.request.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        for r in &report.completed {
            assert_eq!(r.tokens, r.request.output_len);
        }
    }

    #[test]
    fn stage_count_matches_closed_loop_math() {
        // 4 requests, batch 2, Lout 3: two waves of 3 stages each.
        let sim = Simulation::closed_loop(config(2), Workload::fixed(16, 3), 4);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.stages.len(), 6);
        assert_eq!(report.stages.iter().filter(|s| s.mixed).count(), 2);
    }

    #[test]
    fn decode_only_dominates_long_outputs() {
        // Fig. 5(a): one prefill stage, Lout decode stages per request.
        let sim = Simulation::closed_loop(config(4), Workload::fixed(128, 64), 16);
        let report = sim.run(&mut Fixed(0.001));
        assert!(
            report.decode_only_fraction() > 0.8,
            "{}",
            report.decode_only_fraction()
        );
    }

    #[test]
    fn kv_capacity_limits_batch() {
        let cfg = SimulationConfig {
            max_batch: 8,
            kv_capacity_bytes: 2 * (16 + 4), // room for exactly two requests
            kv_bytes_per_token: 1,
            ..SimulationConfig::default()
        };
        let sim = Simulation::closed_loop(cfg, Workload::fixed(16, 4), 12);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.completed.len(), 12);
        assert!(
            report.stages.iter().all(|s| s.batch <= 2),
            "batch capped by KV capacity"
        );
    }

    #[test]
    fn mixed_stage_shapes_carry_prompt_lengths() {
        let sim = Simulation::closed_loop(config(2), Workload::fixed(100, 2), 2);
        let mut rec = Recording::new();
        let report = sim.run(&mut rec);
        assert_eq!(report.completed.len(), 2);
        assert_eq!(rec.shapes[0].prefill_len, vec![100, 100]);
        assert!(rec.shapes[0].decode_ctx.is_empty());
        // Next stage: both decoding with ctx = Lin + 1.
        assert_eq!(rec.shapes[1].decode_ctx, vec![101, 101]);
    }

    #[test]
    fn deltas_describe_the_stage_stream() {
        // Batch 2, Lout 2, 4 requests: admit 2, decode, retire 2 +
        // admit 2, decode, done.
        let sim = Simulation::closed_loop(config(2), Workload::fixed(100, 2), 4);
        let mut rec = Recording::new();
        sim.run(&mut rec);
        assert_eq!(rec.deltas.len(), 4);
        assert!(rec.deltas[0].fresh, "first delta resets executor state");
        assert_eq!(rec.deltas[0].admit, vec![100, 100]);
        assert!(rec.deltas[0].retire.is_empty());
        assert!(rec.deltas[1].is_pure_advance());
        // Both requests retire after the second stage with post-advance
        // context Lin + Lout = 102, and the next wave is admitted.
        assert_eq!(rec.deltas[2].admit, vec![100, 100]);
        assert_eq!(rec.deltas[2].retire, vec![102, 102]);
        assert!(rec.deltas[3].is_pure_advance());
    }

    #[test]
    fn deltas_replay_to_the_materialized_shapes() {
        // Applying each delta to a mirror multiset reproduces exactly
        // the decode contexts the scheduler materialized.
        let w = Workload::gaussian(64, 6).with_seed(11);
        let sim = Simulation::closed_loop(config(4), w, 12);
        let mut rec = Recording::new();
        sim.run(&mut rec);
        let mut mirror: Vec<u64> = Vec::new(); // decode contexts
        let mut pending: Vec<u64> = Vec::new(); // admitted last stage
        for (delta, shape) in rec.deltas.iter().zip(&rec.shapes) {
            if delta.fresh {
                mirror.clear();
                pending.clear();
            }
            for c in &mut mirror {
                *c += 1;
            }
            mirror.extend(pending.drain(..).map(|p| p + 1));
            for r in &delta.retire {
                let pos = mirror
                    .iter()
                    .position(|c| c == r)
                    .expect("retired ctx present");
                mirror.swap_remove(pos);
            }
            pending.extend_from_slice(&delta.admit);
            let mut want = shape.decode_ctx.clone();
            want.sort_unstable();
            let mut got = mirror.clone();
            got.sort_unstable();
            assert_eq!(got, want);
            assert_eq!(delta.admit, shape.prefill_len);
        }
    }

    #[test]
    fn poisson_idle_time_advances_clock() {
        let cfg = config(4);
        let sim = Simulation::poisson(cfg, Workload::fixed(8, 2).with_seed(3), 0.5, 5);
        let report = sim.run(&mut Fixed(0.001));
        assert_eq!(report.completed.len(), 5);
        // With ~2 s between arrivals and 2 ms of service, E2E stays tiny
        // while total time spans the arrival horizon.
        assert!(report.total_time_s > 5.0, "got {}", report.total_time_s);
        assert!(report.e2e().p50 < 0.05);
    }

    #[test]
    fn overload_grows_queueing_delay() {
        // Service takes 1 s/stage; Lout = 4 stages per request at batch 1
        // => capacity 0.25 req/s. Inject 2 req/s: T2FT must blow up.
        let cfg = config(1);
        let w = Workload::fixed(8, 4).with_seed(7);
        let light = Simulation::poisson(cfg, w.clone(), 0.05, 10).run(&mut Fixed(1.0));
        let heavy = Simulation::poisson(cfg, w, 2.0, 10).run(&mut Fixed(1.0));
        assert!(heavy.t2ft().p50 > 4.0 * light.t2ft().p50.max(0.001));
    }

    #[test]
    fn tbt_equals_stage_latency_in_steady_state() {
        let sim = Simulation::closed_loop(config(4), Workload::fixed(32, 16), 4);
        let report = sim.run(&mut Fixed(0.02));
        let tbt = report.tbt();
        assert!((tbt.p50 - 0.02).abs() < 1e-9);
        assert!((tbt.p99 - 0.02).abs() < 1e-9);
    }

    #[test]
    fn stage_cap_stops_runaway() {
        let cfg = SimulationConfig {
            max_stages: 5,
            ..config(1)
        };
        let sim = Simulation::closed_loop(cfg, Workload::fixed(8, 100), 3);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.stages.len(), 5);
        assert!(report.completed.is_empty());
    }

    #[test]
    fn unrecorded_stages_keep_aggregates() {
        let w = Workload::fixed(64, 5);
        let recorded = Simulation::closed_loop(config(8), w.clone(), 20).run(&mut Fixed(0.01));
        let cfg = SimulationConfig {
            record_stages: false,
            ..config(8)
        };
        let bare = Simulation::closed_loop(cfg, w, 20).run(&mut Fixed(0.01));
        assert!(bare.stages.is_empty());
        assert_eq!(bare.stage_stats, recorded.stage_stats);
        assert_eq!(bare.generated_tokens(), recorded.generated_tokens());
        assert_eq!(bare.mean_batch(), recorded.mean_batch());
        assert_eq!(bare.decode_only_fraction(), recorded.decode_only_fraction());
        assert_eq!(bare.completed.len(), recorded.completed.len());
    }
}
