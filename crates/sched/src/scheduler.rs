//! Stage-level continuous batching (ORCA-style, Sec. II-C).
//!
//! Each iteration of the loop is one *stage*: every active request
//! advances by one token; newly arrived requests are admitted as
//! prefills when the batch slot count and the KV-cache budget allow.
//! A stage with at least one prefill is *mixed*; otherwise it is
//! *decoding-only*. KV capacity is reserved at admission for the
//! request's maximum context (Lin + Lout), which is what limits batch
//! size on capacity-constrained systems (Fig. 5(c), Fig. 16).

use std::collections::VecDeque;

use duplex_model::ops::StageShape;

use crate::metrics::{SimReport, StageRecord};
use crate::request::{Request, RequestRecord};
use crate::workload::{Arrivals, RequestSource, Workload};

/// How long a stage took; produced by the system crate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageOutcome {
    /// Stage latency in seconds.
    pub seconds: f64,
}

/// Prices one stage of work. Implemented by the system crate's
/// execution engines; test doubles return fixed latencies.
pub trait StageExecutor {
    /// Execute one stage and report its latency. Implementations may
    /// accumulate their own side channels (energy, breakdowns).
    fn execute(&mut self, shape: &StageShape) -> StageOutcome;
}

/// Scheduler limits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimulationConfig {
    /// Maximum requests per stage (the paper's "batch size").
    pub max_batch: usize,
    /// KV-cache byte budget across the serving system.
    pub kv_capacity_bytes: u64,
    /// KV bytes per token of context (from the model config).
    pub kv_bytes_per_token: u64,
    /// Safety cap on simulated stages.
    pub max_stages: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        Self {
            max_batch: 32,
            kv_capacity_bytes: u64::MAX,
            kv_bytes_per_token: 1,
            max_stages: 2_000_000,
        }
    }
}

#[derive(Debug)]
struct Active {
    request: Request,
    generated: u64,
    token_times: Vec<f64>,
}

impl Active {
    fn kv_reserved(&self, bytes_per_token: u64) -> u64 {
        self.request.max_kv_tokens() * bytes_per_token
    }

    fn decode_ctx(&self) -> u64 {
        self.request.input_len + self.generated
    }
}

/// A configured simulation, ready to run against a [`StageExecutor`].
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    source: RequestSource,
    total_requests: usize,
}

impl Simulation {
    /// Closed-loop serving: `total_requests` drawn from `workload`, all
    /// backlogged at time zero; a finished request is replaced at the
    /// next stage boundary.
    pub fn closed_loop(config: SimulationConfig, workload: Workload, total_requests: usize) -> Self {
        Self {
            config,
            source: RequestSource::new(workload, Arrivals::ClosedLoop),
            total_requests,
        }
    }

    /// Open-loop serving: `total_requests` Poisson arrivals at `qps`.
    pub fn poisson(
        config: SimulationConfig,
        workload: Workload,
        qps: f64,
        total_requests: usize,
    ) -> Self {
        Self {
            config,
            source: RequestSource::new(workload, Arrivals::Poisson { qps }),
            total_requests,
        }
    }

    /// Run to completion (or the stage cap) and report.
    pub fn run<E: StageExecutor + ?Sized>(mut self, executor: &mut E) -> SimReport {
        let mut pending: VecDeque<Request> =
            (0..self.total_requests).map(|_| self.source.next_request()).collect();
        let mut active: Vec<Active> = Vec::new();
        let mut completed: Vec<RequestRecord> = Vec::new();
        let mut stages: Vec<StageRecord> = Vec::new();
        let mut clock = 0.0f64;
        // KV bytes reserved by the active set, maintained incrementally
        // (+= on admission, -= on retirement) instead of re-summed over
        // the whole batch every stage.
        let mut reserved: u64 = 0;

        while completed.len() < self.total_requests && stages.len() < self.config.max_stages {
            // Admission: FIFO, gated by batch slots and KV reservation.
            let mut prefills: Vec<Active> = Vec::new();
            while active.len() + prefills.len() < self.config.max_batch {
                let Some(front) = pending.front() else { break };
                if front.arrival_s > clock {
                    break;
                }
                let need = front.max_kv_tokens() * self.config.kv_bytes_per_token;
                if reserved.saturating_add(need) > self.config.kv_capacity_bytes {
                    break;
                }
                reserved += need;
                let request = pending.pop_front().expect("front exists");
                prefills.push(Active { request, generated: 0, token_times: Vec::new() });
            }

            if active.is_empty() && prefills.is_empty() {
                // Idle: jump to the next arrival.
                match pending.front() {
                    Some(next) => {
                        clock = clock.max(next.arrival_s);
                        continue;
                    }
                    None => break,
                }
            }

            let shape = StageShape {
                decode_ctx: active.iter().map(Active::decode_ctx).collect(),
                prefill_len: prefills.iter().map(|p| p.request.input_len).collect(),
            };
            let outcome = executor.execute(&shape);
            clock += outcome.seconds;
            stages.push(StageRecord {
                seconds: outcome.seconds,
                mixed: shape.is_mixed(),
                batch: shape.batch_size(),
                tokens: shape.tokens(),
            });

            for a in &mut active {
                a.generated += 1;
                a.token_times.push(clock);
            }
            for mut p in prefills {
                p.generated = 1;
                p.token_times.push(clock);
                active.push(p);
            }
            let mut i = 0;
            while i < active.len() {
                if active[i].generated >= active[i].request.output_len {
                    let done = active.swap_remove(i);
                    reserved -= done.kv_reserved(self.config.kv_bytes_per_token);
                    completed.push(RequestRecord {
                        request: done.request,
                        token_times: done.token_times,
                    });
                } else {
                    i += 1;
                }
            }
            debug_assert_eq!(
                reserved,
                active
                    .iter()
                    .map(|a| a.kv_reserved(self.config.kv_bytes_per_token))
                    .sum::<u64>(),
                "incremental KV reservation drifted from the active set"
            );
        }

        SimReport { completed, stages, total_time_s: clock }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(f64);
    impl StageExecutor for Fixed {
        fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
            StageOutcome { seconds: self.0 }
        }
    }

    /// Executor that records the shapes it saw.
    struct Recording {
        shapes: Vec<StageShape>,
    }
    impl StageExecutor for Recording {
        fn execute(&mut self, shape: &StageShape) -> StageOutcome {
            self.shapes.push(shape.clone());
            StageOutcome { seconds: 0.01 }
        }
    }

    fn config(max_batch: usize) -> SimulationConfig {
        SimulationConfig { max_batch, ..SimulationConfig::default() }
    }

    #[test]
    fn every_request_completes_exactly_once() {
        let sim = Simulation::closed_loop(config(8), Workload::fixed(64, 5), 20);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.completed.len(), 20);
        let mut ids: Vec<u64> = report.completed.iter().map(|r| r.request.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 20);
        for r in &report.completed {
            assert_eq!(r.token_times.len() as u64, r.request.output_len);
        }
    }

    #[test]
    fn stage_count_matches_closed_loop_math() {
        // 4 requests, batch 2, Lout 3: two waves of 3 stages each.
        let sim = Simulation::closed_loop(config(2), Workload::fixed(16, 3), 4);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.stages.len(), 6);
        assert_eq!(report.stages.iter().filter(|s| s.mixed).count(), 2);
    }

    #[test]
    fn decode_only_dominates_long_outputs() {
        // Fig. 5(a): one prefill stage, Lout decode stages per request.
        let sim = Simulation::closed_loop(config(4), Workload::fixed(128, 64), 16);
        let report = sim.run(&mut Fixed(0.001));
        assert!(report.decode_only_fraction() > 0.8, "{}", report.decode_only_fraction());
    }

    #[test]
    fn kv_capacity_limits_batch() {
        let cfg = SimulationConfig {
            max_batch: 8,
            kv_capacity_bytes: 2 * (16 + 4), // room for exactly two requests
            kv_bytes_per_token: 1,
            max_stages: 100_000,
        };
        let sim = Simulation::closed_loop(cfg, Workload::fixed(16, 4), 12);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.completed.len(), 12);
        assert!(report.stages.iter().all(|s| s.batch <= 2), "batch capped by KV capacity");
    }

    #[test]
    fn mixed_stage_shapes_carry_prompt_lengths() {
        let sim = Simulation::closed_loop(config(2), Workload::fixed(100, 2), 2);
        let mut rec = Recording { shapes: Vec::new() };
        let report = sim.run(&mut rec);
        assert_eq!(report.completed.len(), 2);
        assert_eq!(rec.shapes[0].prefill_len, vec![100, 100]);
        assert!(rec.shapes[0].decode_ctx.is_empty());
        // Next stage: both decoding with ctx = Lin + 1.
        assert_eq!(rec.shapes[1].decode_ctx, vec![101, 101]);
    }

    #[test]
    fn poisson_idle_time_advances_clock() {
        let cfg = config(4);
        let sim = Simulation::poisson(cfg, Workload::fixed(8, 2).with_seed(3), 0.5, 5);
        let report = sim.run(&mut Fixed(0.001));
        assert_eq!(report.completed.len(), 5);
        // With ~2 s between arrivals and 2 ms of service, E2E stays tiny
        // while total time spans the arrival horizon.
        assert!(report.total_time_s > 5.0, "got {}", report.total_time_s);
        assert!(report.e2e().p50 < 0.05);
    }

    #[test]
    fn overload_grows_queueing_delay() {
        // Service takes 1 s/stage; Lout = 4 stages per request at batch 1
        // => capacity 0.25 req/s. Inject 2 req/s: T2FT must blow up.
        let cfg = config(1);
        let w = Workload::fixed(8, 4).with_seed(7);
        let light = Simulation::poisson(cfg, w.clone(), 0.05, 10).run(&mut Fixed(1.0));
        let heavy = Simulation::poisson(cfg, w, 2.0, 10).run(&mut Fixed(1.0));
        assert!(heavy.t2ft().p50 > 4.0 * light.t2ft().p50.max(0.001));
    }

    #[test]
    fn tbt_equals_stage_latency_in_steady_state() {
        let sim = Simulation::closed_loop(config(4), Workload::fixed(32, 16), 4);
        let report = sim.run(&mut Fixed(0.02));
        let tbt = report.tbt();
        assert!((tbt.p50 - 0.02).abs() < 1e-9);
        assert!((tbt.p99 - 0.02).abs() < 1e-9);
    }

    #[test]
    fn stage_cap_stops_runaway() {
        let cfg = SimulationConfig { max_stages: 5, ..config(1) };
        let sim = Simulation::closed_loop(cfg, Workload::fixed(8, 100), 3);
        let report = sim.run(&mut Fixed(0.01));
        assert_eq!(report.stages.len(), 5);
        assert!(report.completed.is_empty());
    }
}
