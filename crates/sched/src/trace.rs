//! Arrival-trace files: recorded request streams replayed through
//! [`crate::Arrivals::Trace`].
//!
//! The format is a JSON document with a `requests` array (or a bare
//! array) of `{"arrival_s": f64, "input_len": u64, "output_len": u64}`
//! objects. Requests are sorted by arrival time on load, so traces may
//! be recorded out of order.
//!
//! [`TraceRecorder`] closes the loop in the other direction: attach
//! one to a scenario run (see
//! [`crate::ScenarioSimulation::run_recording`]) and every admitted
//! request — synthetic arrivals *and* multi-turn follow-up rounds,
//! with absolute arrival times and full prompts — is captured in this
//! format, ready to be written out and replayed through
//! [`crate::Arrivals::Trace`].

use crate::json::{parse, JsonValue};
use crate::request::Request;

/// One recorded request.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRequest {
    /// Arrival timestamp in seconds from trace start.
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub input_len: u64,
    /// Response length in tokens.
    pub output_len: u64,
}

/// Parse a trace document from JSON text.
///
/// # Errors
///
/// Returns a message naming the offending entry on malformed JSON,
/// missing fields, or non-finite/negative arrival times.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRequest>, String> {
    let doc = parse(text)?;
    let entries = doc
        .get("requests")
        .or(Some(&doc))
        .and_then(JsonValue::as_array)
        .ok_or("trace must be an array or an object with a `requests` array")?;
    let mut requests = Vec::with_capacity(entries.len());
    for (i, entry) in entries.iter().enumerate() {
        let field = |name: &str| {
            entry
                .get(name)
                .and_then(JsonValue::as_f64)
                .ok_or(format!("request {i}: missing numeric `{name}`"))
        };
        let arrival_s = field("arrival_s")?;
        if !arrival_s.is_finite() || arrival_s < 0.0 {
            return Err(format!(
                "request {i}: arrival_s must be finite and non-negative"
            ));
        }
        let length = |name: &str| {
            let raw = field(name)?;
            if !raw.is_finite() || raw < 0.0 {
                return Err(format!(
                    "request {i}: {name} must be finite and non-negative"
                ));
            }
            Ok(raw as u64)
        };
        requests.push(TraceRequest {
            arrival_s,
            input_len: length("input_len")?,
            output_len: length("output_len")?,
        });
    }
    requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
    Ok(requests)
}

/// Load and parse a trace file.
///
/// # Errors
///
/// Propagates I/O errors and [`parse_trace`] failures as messages.
pub fn load_trace(path: &str) -> Result<Vec<TraceRequest>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_trace(&text)
}

/// Serialize requests as a trace document (the inverse of
/// [`parse_trace`]; handy for writing example traces).
pub fn format_trace(requests: &[TraceRequest]) -> String {
    let mut out = String::from("{\n  \"requests\": [\n");
    for (i, r) in requests.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arrival_s\": {}, \"input_len\": {}, \"output_len\": {}}}{}\n",
            r.arrival_s,
            r.input_len,
            r.output_len,
            if i + 1 < requests.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Captures a request stream as a replayable trace: the bridge from
/// "a scenario happened" to "a trace file exists". The scenario
/// scheduler records each request when it enters the waiting queue, so
/// a recorded multi-turn run flattens into plain arrivals whose
/// prompts carry their conversation history — replaying it reproduces
/// the same offered load without needing the conversation machinery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceRecorder {
    requests: Vec<TraceRequest>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one request's arrival time and shape.
    pub fn record(&mut self, arrival_s: f64, input_len: u64, output_len: u64) {
        self.requests.push(TraceRequest {
            arrival_s,
            input_len,
            output_len,
        });
    }

    /// Record a scheduler [`Request`].
    pub fn record_request(&mut self, r: &Request) {
        self.record(r.arrival_s, r.input_len, r.output_len);
    }

    /// Requests recorded so far, in recording order.
    pub fn trace(&self) -> &[TraceRequest] {
        &self.requests
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The recording as a trace document (see [`format_trace`]);
    /// [`parse_trace`] round-trips it.
    pub fn to_json(&self) -> String {
        format_trace(&self.requests)
    }

    /// Consume the recorder into a replayable arrival process.
    pub fn into_arrivals(self) -> crate::workload::Arrivals {
        crate::workload::Arrivals::trace(self.requests)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_wrapped_and_bare_traces() {
        let wrapped = r#"{"requests": [
            {"arrival_s": 1.5, "input_len": 128, "output_len": 32},
            {"arrival_s": 0.5, "input_len": 64, "output_len": 16}
        ]}"#;
        let bare = r#"[{"arrival_s": 0.0, "input_len": 8, "output_len": 2}]"#;
        let t = parse_trace(wrapped).expect("valid");
        assert_eq!(t.len(), 2);
        // Sorted by arrival on load.
        assert_eq!(t[0].arrival_s, 0.5);
        assert_eq!(t[1].input_len, 128);
        assert_eq!(parse_trace(bare).expect("valid").len(), 1);
    }

    #[test]
    fn rejects_bad_entries() {
        assert!(parse_trace(r#"{"requests": [{"arrival_s": 1.0}]}"#).is_err());
        assert!(parse_trace(r#"[{"arrival_s": -1, "input_len": 1, "output_len": 1}]"#).is_err());
        assert!(parse_trace(r#"[{"arrival_s": 0, "input_len": -500, "output_len": 1}]"#).is_err());
        assert!(parse_trace(r#"[{"arrival_s": 0, "input_len": 1, "output_len": -2}]"#).is_err());
        assert!(parse_trace(r#"{"no_requests": 3}"#).is_err());
        assert!(parse_trace("not json").is_err());
    }

    #[test]
    fn recorder_round_trips_through_parse() {
        let mut rec = TraceRecorder::new();
        assert!(rec.is_empty());
        rec.record(0.5, 128, 32);
        rec.record_request(&Request {
            id: 9,
            arrival_s: 0.25,
            input_len: 64,
            output_len: 16,
        });
        assert_eq!(rec.len(), 2);
        let parsed = parse_trace(&rec.to_json()).expect("recorded trace parses");
        // Parsing sorts by arrival; the recorded shapes survive.
        assert_eq!(parsed[0].arrival_s, 0.25);
        assert_eq!(parsed[1].input_len, 128);
        match rec.into_arrivals() {
            crate::workload::Arrivals::Trace { requests } => assert_eq!(requests.len(), 2),
            other => panic!("expected a trace process, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_through_format() {
        let requests = vec![
            TraceRequest {
                arrival_s: 0.25,
                input_len: 100,
                output_len: 20,
            },
            TraceRequest {
                arrival_s: 1.75,
                input_len: 300,
                output_len: 60,
            },
        ];
        let text = format_trace(&requests);
        assert_eq!(parse_trace(&text).expect("round trip"), requests);
    }
}
