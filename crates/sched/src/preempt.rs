//! Preemptive scheduling and batch multiplexing.
//!
//! [`crate::ShedBatchTier`] can only *defer* new batch-tier
//! admissions; once a batch-tier decode holds a slot it runs to
//! completion even while interactive prefills queue behind a full
//! batch. This module closes that gap (ROADMAP open item 3) with two
//! cooperating mechanisms, both flowing through the ordinary
//! [`crate::StageDelta`] fast path:
//!
//! * **Preemption** — when interactive work would otherwise wait, the
//!   scheduler pauses batch-tier decodes mid-flight. Each victim is
//!   either **swapped out** (its KV context parks in the replica's
//!   paged pool and is restored later as a priced transfer) or
//!   **recomputed** (the KV is dropped and the full context
//!   re-prefills on resume through the `(new, past)` chunk path) —
//!   whichever the [`PreemptSpec`] cost model says is cheaper at the
//!   victim's current context length. Paused work resumes
//!   deterministically once slots free up; nothing is dropped.
//! * **Multiplexing** — compatible paused batch-tier requests re-enter
//!   as *fractional slots*: a [`MultiplexSpec`] lets up to `lanes`
//!   swapped-out requests share one batch slot (RevMUX-style), each
//!   advancing one token per stage at a configurable quality exchange
//!   rate on goodput. One slot's compute now serves several batch
//!   requests, so batch-tier throughput survives sustained preemption.
//!
//! The decision flow per stage and the interaction with
//! [`crate::ShedBatchTier`] / `FleetShed` are documented in
//! `docs/scheduling.md`.

use crate::policy::{PolicyContext, SchedulingPolicy};
use crate::scenario::PendingRequest;

/// How a preempted victim's KV context is handled while paused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PreemptMode {
    /// Choose per victim: swap out when the priced restore beats the
    /// estimated re-prefill, recompute otherwise (the default).
    Auto,
    /// Always swap out (fall back to recompute only when the parked
    /// pool cannot hold the context at all).
    SwapOnly,
    /// Always drop the KV and re-prefill on resume.
    RecomputeOnly,
}

/// Cost model and limits for preemptive scheduling, consumed by the
/// scenario scheduler through [`SchedulingPolicy::preempt_spec`].
///
/// Construct with [`PreemptSpec::new`] plus `with_*` builders; the
/// struct is `#[non_exhaustive]` so new knobs extend the API without
/// breaking construction sites.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct PreemptSpec {
    /// Requests with `priority >= victim_priority` may be paused
    /// mid-decode (2 = the default tier set's batch tier).
    pub victim_priority: u32,
    /// Pending requests with `priority < urgent_priority` trigger
    /// preemption when they cannot admit (1 = the default tier set's
    /// interactive tier).
    pub urgent_priority: u32,
    /// Batch-occupancy fraction at or above which preemption engages;
    /// below it urgent work just takes a free slot.
    pub utilization_threshold: f64,
    /// Restore bandwidth for a swapped-out context, bytes/s (link
    /// transfer or HBM restream).
    pub swap_bytes_per_s: f64,
    /// Fixed per-restore latency, seconds.
    pub swap_latency_s: f64,
    /// Estimated re-prefill throughput, tokens/s: the recompute cost a
    /// swap restore competes with.
    pub recompute_tokens_per_s: f64,
    /// Cap on victims paused in one stage (bounds churn).
    pub max_preempts_per_stage: usize,
    /// Swap/recompute selection mode.
    pub mode: PreemptMode,
}

impl PreemptSpec {
    /// Default occupancy fraction at which preemption engages.
    pub const DEFAULT_THRESHOLD: f64 = 0.85;

    /// The default cost model: batch tier (priority >= 2) preemptible
    /// by interactive (priority 0) work above 85% occupancy, ~8 GB/s
    /// restore with 0.5 ms latency vs ~10k tokens/s re-prefill, at
    /// most 4 victims per stage, cheaper path chosen per victim.
    pub fn new() -> Self {
        Self {
            victim_priority: 2,
            urgent_priority: 1,
            utilization_threshold: Self::DEFAULT_THRESHOLD,
            swap_bytes_per_s: 8e9,
            swap_latency_s: 5e-4,
            recompute_tokens_per_s: 10_000.0,
            max_preempts_per_stage: 4,
            mode: PreemptMode::Auto,
        }
    }

    /// Override the preemptible-priority floor.
    pub fn with_victim_priority(mut self, priority: u32) -> Self {
        self.victim_priority = priority;
        self
    }

    /// Override the urgent-priority ceiling (requests strictly below
    /// it trigger preemption).
    pub fn with_urgent_priority(mut self, priority: u32) -> Self {
        self.urgent_priority = priority;
        self
    }

    /// Override the occupancy threshold. Must be positive: at zero an
    /// idle batch would preempt on every arrival.
    pub fn with_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "preemption threshold must be positive");
        self.utilization_threshold = threshold;
        self
    }

    /// Override the swap-restore link (bandwidth in bytes/s, fixed
    /// latency in seconds).
    pub fn with_swap_link(mut self, bytes_per_s: f64, latency_s: f64) -> Self {
        assert!(bytes_per_s > 0.0, "swap bandwidth must be positive");
        assert!(latency_s >= 0.0, "swap latency must be non-negative");
        self.swap_bytes_per_s = bytes_per_s;
        self.swap_latency_s = latency_s;
        self
    }

    /// Override the estimated re-prefill throughput, tokens/s.
    pub fn with_recompute_rate(mut self, tokens_per_s: f64) -> Self {
        assert!(tokens_per_s > 0.0, "recompute rate must be positive");
        self.recompute_tokens_per_s = tokens_per_s;
        self
    }

    /// Override the per-stage victim cap.
    pub fn with_max_preempts(mut self, max_preempts_per_stage: usize) -> Self {
        self.max_preempts_per_stage = max_preempts_per_stage;
        self
    }

    /// Force a swap/recompute mode (tests and ablations; the default
    /// `Auto` picks the cheaper path per victim).
    pub fn with_mode(mut self, mode: PreemptMode) -> Self {
        self.mode = mode;
        self
    }

    /// Seconds to restore a swapped-out context of `bytes` KV bytes.
    pub fn swap_restore_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.swap_bytes_per_s + self.swap_latency_s
    }

    /// Estimated seconds to re-prefill a dropped context of
    /// `ctx` tokens.
    pub fn recompute_seconds(&self, ctx: u64) -> f64 {
        ctx as f64 / self.recompute_tokens_per_s
    }

    /// Whether a victim at `ctx` resident tokens (`bytes` KV bytes)
    /// swaps out rather than recomputing, under this spec's mode and
    /// cost model.
    pub fn prefers_swap(&self, ctx: u64, bytes: u64) -> bool {
        match self.mode {
            PreemptMode::SwapOnly => true,
            PreemptMode::RecomputeOnly => false,
            PreemptMode::Auto => self.swap_restore_seconds(bytes) <= self.recompute_seconds(ctx),
        }
    }
}

impl Default for PreemptSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// Batch-multiplexing configuration: lets compatible swapped-out
/// batch-tier requests share one batch slot on resume, trading output
/// quality (goodput scale) for slot compute.
///
/// Construct with [`MultiplexSpec::new`] plus `with_*` builders.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct MultiplexSpec {
    /// Maximum requests sharing one slot (>= 2).
    pub lanes: usize,
    /// Maximum context-length spread (tokens) between slot members:
    /// the shared forward pass prices at the longest member's context,
    /// so a tight tolerance bounds the overhead short members pay.
    pub ctx_tolerance: u64,
    /// Goodput scale applied to multiplexed tokens in `(0, 1]`: the
    /// compute/quality exchange rate — a member's SLO `good_tokens`
    /// are credited at this fraction.
    pub quality: f64,
}

impl MultiplexSpec {
    /// The default exchange rate: 2 lanes, 256-token spread, 90%
    /// quality credit.
    pub fn new() -> Self {
        Self {
            lanes: 2,
            ctx_tolerance: 256,
            quality: 0.9,
        }
    }

    /// Override the lane count (>= 2).
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        assert!(lanes >= 2, "a multiplex slot shares between >= 2 requests");
        self.lanes = lanes;
        self
    }

    /// Override the member context-spread tolerance, tokens.
    pub fn with_ctx_tolerance(mut self, tolerance: u64) -> Self {
        self.ctx_tolerance = tolerance;
        self
    }

    /// Override the quality credit in `(0, 1]`.
    pub fn with_quality(mut self, quality: f64) -> Self {
        assert!(
            quality > 0.0 && quality <= 1.0,
            "quality credit must be in (0, 1]"
        );
        self.quality = quality;
        self
    }
}

impl Default for MultiplexSpec {
    fn default() -> Self {
        Self::new()
    }
}

/// Preemption and multiplexing counters, reported per replica on
/// [`crate::SimReport`] and merged across a fleet.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PreemptStats {
    /// Batch-tier decodes paused mid-flight.
    pub preemptions: u64,
    /// Victims whose KV swapped out to the parked pool.
    pub swaps: u64,
    /// Victims whose KV was dropped for re-prefill on resume (chosen
    /// by the cost model, or forced when the swap could not park).
    pub recomputes: u64,
    /// Paused requests resumed (every preemption eventually resumes
    /// unless the replica crashes or the run truncates).
    pub resumes: u64,
    /// Virtual seconds charged for swap-restore transfers.
    pub swap_restore_seconds: f64,
    /// Virtual seconds requests spent paused, accumulated at resume.
    pub paused_time_s: f64,
    /// Multiplex slots formed.
    pub mux_slots: u64,
    /// Tokens generated inside multiplex slots (before the quality
    /// scale; goodput credits them at [`MultiplexSpec::quality`]).
    pub mux_tokens: u64,
}

impl PreemptStats {
    /// Fold another replica's counters into this one (fleet view).
    pub fn merge(&mut self, other: &Self) {
        self.preemptions += other.preemptions;
        self.swaps += other.swaps;
        self.recomputes += other.recomputes;
        self.resumes += other.resumes;
        self.swap_restore_seconds += other.swap_restore_seconds;
        self.paused_time_s += other.paused_time_s;
        self.mux_slots += other.mux_slots;
        self.mux_tokens += other.mux_tokens;
    }
}

/// Preemptive admission wrapper: orders and admits through an inner
/// policy, and additionally arms the scheduler's preemption machinery
/// (and optionally batch multiplexing) via
/// [`SchedulingPolicy::preempt_spec`] /
/// [`SchedulingPolicy::multiplex_spec`].
///
/// Unlike [`crate::ShedBatchTier`], which keeps batch-tier work *out*
/// of a saturated batch, this wrapper reclaims slots batch-tier work
/// already holds — the two compose conceptually (preemption is the
/// stronger mechanism) but are measured head-to-head in the
/// near-saturation scenarios.
pub struct PreemptionPolicy {
    inner: Box<dyn SchedulingPolicy>,
    name: &'static str,
    /// The preemption cost model handed to the scheduler.
    pub spec: PreemptSpec,
    /// Batch multiplexing, when enabled.
    pub multiplex: Option<MultiplexSpec>,
}

impl PreemptionPolicy {
    /// Wrap `inner` with the given preemption spec.
    pub fn new(inner: Box<dyn SchedulingPolicy>, spec: PreemptSpec) -> Self {
        Self {
            inner,
            name: "preempt",
            spec,
            multiplex: None,
        }
    }

    /// The default preemptive SLO stack: priority-EDF ordering with
    /// the default cost model.
    pub fn edf() -> Self {
        Self::new(Box::new(crate::policy::PriorityTiers), PreemptSpec::new())
    }

    /// Enable batch multiplexing: paused batch-tier work re-enters as
    /// fractional slots under `spec`.
    pub fn with_multiplex(mut self, spec: MultiplexSpec) -> Self {
        self.name = "preempt-mux";
        self.multiplex = Some(spec);
        self
    }
}

impl std::fmt::Debug for PreemptionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PreemptionPolicy")
            .field("inner", &self.inner.name())
            .field("spec", &self.spec)
            .field("multiplex", &self.multiplex)
            .finish()
    }
}

impl SchedulingPolicy for PreemptionPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn pick(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> usize {
        self.inner.pick(pending, ctx)
    }

    fn admit_now(&mut self, pending: &[PendingRequest], ctx: &PolicyContext) -> Option<usize> {
        self.inner.admit_now(pending, ctx)
    }

    fn preempt_spec(&self) -> Option<&PreemptSpec> {
        Some(&self.spec)
    }

    fn multiplex_spec(&self) -> Option<&MultiplexSpec> {
        self.multiplex.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_picks_the_cheaper_path_per_victim() {
        // Slopes: swap 5e-5 s/token (1 byte/token at 20 kB/s scaled —
        // here 50 bytes/token over 1e6 B/s), recompute 1e-4 s/token,
        // swap latency 5e-3 s. Crossover at
        // lat / (1/rate - bpt/bw) = 5e-3 / 5e-5 = 100 tokens.
        let spec = PreemptSpec::new()
            .with_swap_link(1e6, 5e-3)
            .with_recompute_rate(10_000.0);
        let bpt = 50;
        // Short context: the fixed restore latency dominates.
        assert!(!spec.prefers_swap(50, 50 * bpt));
        // Long context: the bandwidth slope wins.
        assert!(spec.prefers_swap(400, 400 * bpt));
        // Forced modes ignore the prices.
        assert!(spec
            .with_mode(PreemptMode::SwapOnly)
            .prefers_swap(50, 50 * bpt));
        assert!(!spec
            .with_mode(PreemptMode::RecomputeOnly)
            .prefers_swap(400, 400 * bpt));
    }

    #[test]
    fn restore_pricing_matches_the_link_model() {
        let spec = PreemptSpec::new().with_swap_link(1e9, 1e-3);
        assert_eq!(spec.swap_restore_seconds(0), 0.0);
        assert!((spec.swap_restore_seconds(1_000_000) - (1e-3 + 1e-3)).abs() < 1e-12);
        assert!((spec.recompute_seconds(1000) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn builders_set_every_knob() {
        let spec = PreemptSpec::new()
            .with_victim_priority(3)
            .with_urgent_priority(2)
            .with_threshold(0.5)
            .with_swap_link(1e9, 1e-3)
            .with_recompute_rate(5e3)
            .with_max_preempts(7)
            .with_mode(PreemptMode::SwapOnly);
        assert_eq!(spec.victim_priority, 3);
        assert_eq!(spec.urgent_priority, 2);
        assert_eq!(spec.utilization_threshold, 0.5);
        assert_eq!(spec.swap_bytes_per_s, 1e9);
        assert_eq!(spec.swap_latency_s, 1e-3);
        assert_eq!(spec.recompute_tokens_per_s, 5e3);
        assert_eq!(spec.max_preempts_per_stage, 7);
        assert_eq!(spec.mode, PreemptMode::SwapOnly);
        let mux = MultiplexSpec::new()
            .with_lanes(4)
            .with_ctx_tolerance(64)
            .with_quality(0.8);
        assert_eq!(mux.lanes, 4);
        assert_eq!(mux.ctx_tolerance, 64);
        assert_eq!(mux.quality, 0.8);
    }

    #[test]
    fn policy_exposes_its_specs() {
        let plain = PreemptionPolicy::edf();
        assert_eq!(plain.name(), "preempt");
        assert!(plain.preempt_spec().is_some());
        assert!(plain.multiplex_spec().is_none());
        let mux = PreemptionPolicy::edf().with_multiplex(MultiplexSpec::new());
        assert_eq!(mux.name(), "preempt-mux");
        assert!(mux.multiplex_spec().is_some());
        // Plain policies expose neither hook.
        assert!(crate::policy::Fcfs.preempt_spec().is_none());
        assert!(crate::policy::Fcfs.multiplex_spec().is_none());
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = PreemptStats {
            preemptions: 2,
            swaps: 1,
            recomputes: 1,
            resumes: 2,
            swap_restore_seconds: 0.5,
            paused_time_s: 1.0,
            mux_slots: 1,
            mux_tokens: 10,
        };
        a.merge(&a.clone());
        assert_eq!(a.preemptions, 4);
        assert_eq!(a.swaps, 2);
        assert_eq!(a.resumes, 4);
        assert_eq!(a.mux_tokens, 20);
        assert!((a.paused_time_s - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        PreemptSpec::new().with_threshold(0.0);
    }

    #[test]
    #[should_panic(expected = ">= 2 requests")]
    fn single_lane_mux_rejected() {
        MultiplexSpec::new().with_lanes(1);
    }
}
