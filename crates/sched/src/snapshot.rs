//! Snapshot and resume for cluster simulations.
//!
//! A [`ClusterSnapshot`] captures the *complete* dynamic state of a
//! [`crate::ClusterSimulation`] at a merge-point boundary: the shared
//! arrival stream (both RNG streams, the peeked request, queued
//! follow-up rounds), the router's cursor, and per replica the queues,
//! active set, chunked prefills, parked-KV pool, carried stage delta,
//! accumulated metrics, and the executor's batch checkpoint
//! ([`crate::BatchCheckpoint`]: decode groups + RNG). Resuming from a
//! snapshot continues the run **bit-identically**: the final
//! [`crate::ClusterReport`] equals the uninterrupted run's report,
//! field for field — this is asserted by the integration tests for
//! every shipped router.
//!
//! # What a snapshot does *not* carry
//!
//! Static configuration (scenario, scheduler limits, model/system
//! parameters) is supplied again at resume time and must match the
//! original run; only dynamic state is serialized. Executor-side
//! *energy and time accumulators* are also out of scope — they never
//! flow into the [`crate::ClusterReport`], so a resumed run reports
//! identical fleet metrics while the executor's internal lifetime
//! totals restart from zero.
//!
//! # Serialization
//!
//! [`ClusterSnapshot::to_json`] writes a self-describing JSON document
//! (schema id `duplex/cluster-snapshot/v5`) that
//! [`ClusterSnapshot::from_json`] parses back. Version 2 extended v1
//! with fault-drill state: per-replica admission/drain flags, the
//! fault perf factor, the generated-token timeline, per-fault SLO
//! window counters, the fleet's [`RecoveryStats`], and the pending
//! fault event queue. Version 3 extends v2 with elastic-fleet state:
//! per-replica down-time accounting, load-trigger arming, and the
//! autoscale runtime (pending scale events, pool membership,
//! hysteresis streaks, scale counters). Version 4 extends v3 with
//! disaggregated-placement state: the admission-time decode
//! assignments of every request still prefilling, plus the fleet's
//! handoff/transfer counters. Older documents are rejected with a
//! message naming both versions rather than silently resuming without
//! the newer state. Exactness rules:
//!
//! * every `u64` is a quoted decimal string (RNG words use all 64
//!   bits, beyond `f64`'s integer range);
//! * every `f64` is a quoted decimal string of its IEEE-754 bit
//!   pattern (`f64::to_bits`), so infinities (untiered deadlines) and
//!   exact clock values round-trip without parsing loss;
//! * booleans are plain JSON booleans.

use crate::fault::RecoveryStats;
use crate::json::{self, JsonValue};
use crate::metrics::{KvReuseStats, StageRecord, StageStats};
use crate::preempt::PreemptStats;
use crate::request::{Request, RequestRecord};
use crate::scenario::PendingRequest;
use crate::scheduler::BatchCheckpoint;
use duplex_model::kv_cache::KvEntrySnapshot;

/// The shared arrival stream's dynamic state (see
/// `crate::scenario::ScenarioStream`).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct StreamState {
    pub(crate) source_rng: [u64; 4],
    pub(crate) source_next_id: u64,
    pub(crate) source_clock: f64,
    pub(crate) source_burst_on: bool,
    pub(crate) source_phase_until: f64,
    /// The scenario-side RNG (tier draws, think times, follow-ups).
    pub(crate) rng: [u64; 4],
    pub(crate) drawn: u64,
    pub(crate) next_id: u64,
    pub(crate) peeked: Option<Request>,
    /// Spawned but not yet arrived follow-ups, descending arrival.
    pub(crate) followups: Vec<PendingRequest>,
}

/// One decoding request's state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ActiveState {
    pub(crate) pending: PendingRequest,
    pub(crate) generated: u64,
    pub(crate) first_token_s: f64,
}

/// One mid-chunking request's state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChunkingState {
    pub(crate) pending: PendingRequest,
    pub(crate) history: u64,
    pub(crate) processed: u64,
    pub(crate) prefill_total: u64,
    /// Mid-decode carry of a recompute-on-resume re-prefill (`None`
    /// for ordinary prompts).
    pub(crate) resumed: Option<ResumeState>,
}

/// Mid-decode progress carried through a recompute re-prefill.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct ResumeState {
    pub(crate) generated: u64,
    pub(crate) first_token_s: f64,
}

/// One preempted (paused) request's state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct PausedState {
    pub(crate) pending: PendingRequest,
    pub(crate) generated: u64,
    pub(crate) first_token_s: f64,
    pub(crate) ctx: u64,
    pub(crate) swapped: bool,
    pub(crate) paused_at_s: f64,
}

/// One multiplex-slot member's state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MuxMemberState {
    pub(crate) pending: PendingRequest,
    pub(crate) generated: u64,
    pub(crate) first_token_s: f64,
}

/// One multiplex slot's state (a shared decode row).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MuxState {
    pub(crate) ctx: u64,
    pub(crate) generated: u64,
    pub(crate) kv_bytes: u64,
    pub(crate) quality: f64,
    pub(crate) members: Vec<MuxMemberState>,
}

/// A parked-KV pool's dynamic state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct KvState {
    pub(crate) clock: u64,
    pub(crate) entries: Vec<KvEntrySnapshot>,
}

/// A latency digest's population: sparse nonzero buckets plus the
/// record-order global count and sum (the sum is not bit-recomputable
/// from the buckets).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DigestState {
    pub(crate) buckets: Vec<(u64, u64, f64)>,
    pub(crate) count: u64,
    pub(crate) sum: f64,
}

/// One SLO tier's counters (names and deadlines are configuration,
/// rebuilt from the scenario on resume).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TierState {
    pub(crate) completed: u64,
    pub(crate) met: u64,
    pub(crate) good_tokens: u64,
    pub(crate) tbt: DigestState,
}

/// One replica's dynamic state at a merge point.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ReplicaState {
    pub(crate) inbox: Vec<PendingRequest>,
    pub(crate) pending: Vec<PendingRequest>,
    pub(crate) active: Vec<ActiveState>,
    pub(crate) chunking: Vec<ChunkingState>,
    /// Preempted requests awaiting resume, in pause (FIFO) order.
    pub(crate) paused: Vec<PausedState>,
    /// Live multiplex slots (shared decode rows).
    pub(crate) mux: Vec<MuxState>,
    /// Preemption counters accumulated so far.
    pub(crate) preempt: PreemptStats,
    pub(crate) parked: Option<KvState>,
    pub(crate) reserved: u64,
    pub(crate) clock: f64,
    /// Carried [`crate::StageDelta`] state: `fresh` is true only on a
    /// replica that has never stepped; `retire` carries the previous
    /// stage's retirements into the next delta.
    pub(crate) delta_fresh: bool,
    pub(crate) delta_retire: Vec<u64>,
    pub(crate) completed: Vec<RequestRecord>,
    pub(crate) stages: Vec<StageRecord>,
    pub(crate) stage_stats: StageStats,
    pub(crate) tbt_digest: DigestState,
    pub(crate) tiers: Vec<TierState>,
    pub(crate) kv_reuse: KvReuseStats,
    /// Whether faults currently allow this replica to admit requests.
    pub(crate) admitting: bool,
    /// Whether the replica is gracefully draining towards a handoff.
    pub(crate) draining: bool,
    /// Stage-time multiplier from an active slowdown or warm-up.
    pub(crate) perf_factor: f64,
    /// When the replica last went down (`None` while up).
    pub(crate) down_since: Option<f64>,
    /// Down time accumulated by earlier, closed outages.
    pub(crate) down_seconds: f64,
    /// Generated-token recovery timeline as `(bucket, tokens)` pairs.
    pub(crate) timeline: Vec<(u64, u64)>,
    /// Per scripted fault, per SLO tier: `(completed, met)` inside the
    /// fault's measurement window.
    pub(crate) window_counts: Vec<Vec<(u64, u64)>>,
    /// The replica executor's carried batch state (`None` for
    /// stateless executors).
    pub(crate) batch: Option<BatchCheckpoint>,
}

/// The fault runtime's dynamic state: the pending event queue
/// (`(at_s bits, seq, code, replica-or-fault index)` with codes
/// 0 = apply scripted fault, 1 = restart, 2 = clear slowdown), the
/// event sequence counter, per-request retry attempts, in-progress
/// drains as `(replica, down_s bits, fault at_s bits)`, and per load
/// trigger its `(fires so far, re-armed-at bits)` pair.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FaultState {
    pub(crate) events: Vec<(u64, u64, u64, u64)>,
    pub(crate) seq: u64,
    pub(crate) attempts: Vec<(u64, u64)>,
    pub(crate) draining_down: Vec<(u64, u64, u64)>,
    pub(crate) triggers: Vec<(u64, u64)>,
}

/// The autoscale runtime's dynamic state: the pending scale-event
/// queue (`(at_s bits, seq, code, replica, lag bits)` with codes
/// 0 = evaluate, 1 = replica joins, 2 = clear warm-up), the event
/// sequence counter, pool/draining membership per replica, the
/// hysteresis streaks, the SLO-window watermark, and the scale
/// counters mirrored from [`crate::ScaleStats`].
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AutoscaleState {
    pub(crate) events: Vec<(u64, u64, u64, u64, u64)>,
    pub(crate) seq: u64,
    pub(crate) pool: Vec<bool>,
    pub(crate) draining: Vec<bool>,
    pub(crate) up_streak: u64,
    pub(crate) down_streak: u64,
    /// First evaluation time of the running up-streak (`None` between
    /// streaks).
    pub(crate) streak_start: Option<f64>,
    pub(crate) cooldown_until: f64,
    /// `(met, completed)` interactive-tier totals at the last
    /// evaluation — the window delta baseline.
    pub(crate) last_slo: (u64, u64),
    pub(crate) scale_ups: u64,
    pub(crate) scale_downs: u64,
    pub(crate) scale_up_lag_s: f64,
}

/// The disaggregation runtime's dynamic state: the admission-time
/// decode assignment of every request still prefilling, as
/// `(request id, decode replica, KV bytes to ship)` triples sorted by
/// request id, plus the fleet's handoff/transfer counters mirrored
/// from [`crate::DisaggStats`]. Per-replica handoff buffers are
/// provably empty at merge points, so assignments are the *entire*
/// in-flight transfer state.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct DisaggState {
    pub(crate) assignments: Vec<(u64, u64, u64)>,
    pub(crate) handoffs: u64,
    pub(crate) kv_bytes_shipped: u64,
    pub(crate) transfer_seconds: f64,
    pub(crate) reprefills: u64,
}

/// A paused cluster run: everything needed to continue it later —
/// in-process via `crate::ClusterSimulation::resume`, or across
/// processes through [`to_json`](Self::to_json) /
/// [`from_json`](Self::from_json).
///
/// # Bit-exact resume and the clock-merge invariant
///
/// Snapshots are only taken at *merge points* of the cluster's
/// clock-merge protocol — the loop boundary where every replica has
/// drained its buffered retire events and no admissions are in
/// flight. At that boundary the entire run state is exactly the
/// fields captured here, so `run_until` + `resume` replays the same
/// event sequence, RNG draws, and floating-point accumulations as an
/// uninterrupted `run`, and the final report is byte-identical. The
/// same invariant is what makes parallel replica stepping equal to
/// serial stepping: windows between merge points are side-effect-free.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// The virtual time the run paused at (the requested `stop_s`
    /// bound's merge point; informational).
    pub(crate) taken_at_s: f64,
    /// Opaque router state (see `Router::export_state`).
    pub(crate) router: Vec<u64>,
    pub(crate) stream: StreamState,
    pub(crate) replicas: Vec<ReplicaState>,
    /// Fleet-wide fault/recovery counters accumulated so far.
    pub(crate) stats: RecoveryStats,
    /// Fault runtime state; present exactly when the run has a
    /// [`crate::FaultPlan`] attached.
    pub(crate) fault: Option<FaultState>,
    /// Autoscale runtime state; present exactly when the run has an
    /// [`crate::AutoscalePolicy`] attached.
    pub(crate) autoscale: Option<AutoscaleState>,
    /// Disaggregation runtime state; present exactly when the run has
    /// a [`crate::DisaggPlan`] attached.
    pub(crate) disagg: Option<DisaggState>,
}

/// The schema id written by [`ClusterSnapshot::to_json`].
const SCHEMA: &str = "duplex/cluster-snapshot/v5";
/// Retired schema ids, recognized only to produce clear errors.
const SCHEMA_V1: &str = "duplex/cluster-snapshot/v1";
const SCHEMA_V2: &str = "duplex/cluster-snapshot/v2";
const SCHEMA_V3: &str = "duplex/cluster-snapshot/v3";
const SCHEMA_V4: &str = "duplex/cluster-snapshot/v4";

impl ClusterSnapshot {
    /// The virtual time the run paused at.
    pub fn taken_at_s(&self) -> f64 {
        self.taken_at_s
    }

    /// Number of replica states captured.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// Serialize to the `duplex/cluster-snapshot/v5` JSON document.
    pub fn to_json(&self) -> String {
        let mut w = Writer::new();
        w.obj_open();
        w.str_field("schema", SCHEMA);
        w.f64_field("taken_at_s", self.taken_at_s);
        w.key("router");
        w.u64_array(&self.router);
        w.key("stream");
        write_stream(&mut w, &self.stream);
        w.key("replicas");
        w.arr_open();
        for r in &self.replicas {
            w.item();
            write_replica(&mut w, r);
        }
        w.arr_close();
        w.key("stats");
        write_stats(&mut w, &self.stats);
        w.key("fault");
        match &self.fault {
            Some(f) => write_fault(&mut w, f),
            None => w.out.push_str("null"),
        }
        w.key("autoscale");
        match &self.autoscale {
            Some(a) => write_autoscale(&mut w, a),
            None => w.out.push_str("null"),
        }
        w.key("disagg");
        match &self.disagg {
            Some(d) => write_disagg(&mut w, d),
            None => w.out.push_str("null"),
        }
        w.obj_close();
        w.out
    }

    /// Parse a document produced by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field when the text is
    /// not valid JSON, the schema id is wrong (including the retired
    /// v1 schema, which lacks fault state), or a field is missing or
    /// mistyped.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let schema = get_str(&v, "schema")?;
        if schema != SCHEMA {
            return Err(if schema == SCHEMA_V1 {
                format!(
                    "snapshot schema {schema:?} predates fault-aware snapshots \
                     and cannot be resumed; re-take it as {SCHEMA:?}"
                )
            } else if schema == SCHEMA_V2 {
                format!(
                    "snapshot schema {schema:?} predates autoscale-aware snapshots \
                     and cannot be resumed; re-take it as {SCHEMA:?}"
                )
            } else if schema == SCHEMA_V3 {
                format!(
                    "snapshot schema {schema:?} predates disaggregated-placement \
                     snapshots and cannot be resumed; re-take it as {SCHEMA:?}"
                )
            } else if schema == SCHEMA_V4 {
                format!(
                    "snapshot schema {schema:?} predates preemption-aware \
                     snapshots (paused requests and multiplex slots) and cannot \
                     be resumed; re-take it as {SCHEMA:?}"
                )
            } else {
                format!("unsupported snapshot schema {schema:?} (expected {SCHEMA:?})")
            });
        }
        let fault = match get(&v, "fault")? {
            JsonValue::Null => None,
            f => Some(read_fault(f)?),
        };
        let autoscale = match get(&v, "autoscale")? {
            JsonValue::Null => None,
            a => Some(read_autoscale(a)?),
        };
        let disagg = match get(&v, "disagg")? {
            JsonValue::Null => None,
            d => Some(read_disagg(d)?),
        };
        Ok(ClusterSnapshot {
            taken_at_s: get_f64(&v, "taken_at_s")?,
            router: get_u64_array(&v, "router")?,
            stream: read_stream(get(&v, "stream")?)?,
            replicas: get_arr(&v, "replicas")?
                .iter()
                .map(read_replica)
                .collect::<Result<Vec<_>, _>>()?,
            stats: read_stats(get(&v, "stats")?)?,
            fault,
            autoscale,
            disagg,
        })
    }
}

// ---------------------------------------------------------------- //
// JSON writing: a minimal comma-tracking emitter. All u64 values are
// quoted decimal strings; all f64 values are quoted decimal strings
// of their to_bits pattern.

struct Writer {
    out: String,
    /// Whether the current container already holds an element.
    needs_comma: Vec<bool>,
}

impl Writer {
    fn new() -> Self {
        Self {
            out: String::new(),
            needs_comma: Vec::new(),
        }
    }

    fn sep(&mut self) {
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn obj_open(&mut self) {
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn obj_close(&mut self) {
        self.out.push('}');
        self.needs_comma.pop();
    }

    fn arr_open(&mut self) {
        self.out.push('[');
        self.needs_comma.push(false);
    }

    fn arr_close(&mut self) {
        self.out.push(']');
        self.needs_comma.pop();
    }

    /// Start an array element (value written by the caller).
    fn item(&mut self) {
        self.sep();
    }

    /// Start an object field (value written by the caller).
    fn key(&mut self, name: &str) {
        self.sep();
        self.out.push('"');
        self.out.push_str(name);
        self.out.push_str("\":");
    }

    fn str_field(&mut self, name: &str, value: &str) {
        self.key(name);
        self.out.push('"');
        for c in value.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    fn u64_field(&mut self, name: &str, value: u64) {
        self.key(name);
        self.u64_value(value);
    }

    fn u64_value(&mut self, value: u64) {
        self.out.push('"');
        self.out.push_str(&value.to_string());
        self.out.push('"');
    }

    fn f64_field(&mut self, name: &str, value: f64) {
        self.key(name);
        self.f64_value(value);
    }

    fn f64_value(&mut self, value: f64) {
        self.u64_value(value.to_bits());
    }

    fn bool_field(&mut self, name: &str, value: bool) {
        self.key(name);
        self.out.push_str(if value { "true" } else { "false" });
    }

    fn u64_array(&mut self, values: &[u64]) {
        self.arr_open();
        for &v in values {
            self.item();
            self.u64_value(v);
        }
        self.arr_close();
    }

    fn bool_array(&mut self, values: &[bool]) {
        self.arr_open();
        for &v in values {
            self.item();
            self.out.push_str(if v { "true" } else { "false" });
        }
        self.arr_close();
    }
}

fn write_request(w: &mut Writer, r: &Request) {
    w.obj_open();
    w.u64_field("id", r.id);
    w.f64_field("arrival_s", r.arrival_s);
    w.u64_field("input_len", r.input_len);
    w.u64_field("output_len", r.output_len);
    w.obj_close();
}

fn write_pending(w: &mut Writer, p: &PendingRequest) {
    w.obj_open();
    w.key("request");
    write_request(w, &p.request);
    w.u64_field("tier", p.tier as u64);
    w.u64_field("priority", u64::from(p.priority));
    w.f64_field("deadline_s", p.deadline_s);
    w.u64_field("conversation", p.conversation);
    w.u64_field("round", u64::from(p.round));
    w.u64_field("history_tokens", p.history_tokens);
    w.u64_field("skipped", p.skipped);
    w.obj_close();
}

fn write_pending_list(w: &mut Writer, list: &[PendingRequest]) {
    w.arr_open();
    for p in list {
        w.item();
        write_pending(w, p);
    }
    w.arr_close();
}

fn write_digest(w: &mut Writer, d: &DigestState) {
    w.obj_open();
    w.u64_field("count", d.count);
    w.f64_field("sum", d.sum);
    w.key("buckets");
    w.arr_open();
    for &(i, n, sum) in &d.buckets {
        w.item();
        w.arr_open();
        w.item();
        w.u64_value(i);
        w.item();
        w.u64_value(n);
        w.item();
        w.f64_value(sum);
        w.arr_close();
    }
    w.arr_close();
    w.obj_close();
}

fn write_stream(w: &mut Writer, s: &StreamState) {
    w.obj_open();
    w.key("source_rng");
    w.u64_array(&s.source_rng);
    w.u64_field("source_next_id", s.source_next_id);
    w.f64_field("source_clock", s.source_clock);
    w.bool_field("source_burst_on", s.source_burst_on);
    w.f64_field("source_phase_until", s.source_phase_until);
    w.key("rng");
    w.u64_array(&s.rng);
    w.u64_field("drawn", s.drawn);
    w.u64_field("next_id", s.next_id);
    w.key("peeked");
    match &s.peeked {
        Some(r) => write_request(w, r),
        None => w.out.push_str("null"),
    }
    w.key("followups");
    write_pending_list(w, &s.followups);
    w.obj_close();
}

fn write_stats(w: &mut Writer, s: &RecoveryStats) {
    w.obj_open();
    w.u64_field("faults_injected", s.faults_injected);
    w.u64_field("requests_lost", s.requests_lost);
    w.u64_field("retries_issued", s.retries_issued);
    w.u64_field("requests_dropped", s.requests_dropped);
    w.u64_field("kv_bytes_migrated", s.kv_bytes_migrated);
    w.u64_field("kv_migrations", s.kv_migrations);
    w.f64_field("migration_seconds", s.migration_seconds);
    w.u64_field("triggers_fired", s.triggers_fired);
    w.u64_field("requests_deferred", s.requests_deferred);
    w.obj_close();
}

fn write_fault(w: &mut Writer, f: &FaultState) {
    w.obj_open();
    w.key("events");
    w.arr_open();
    for &(at, seq, code, arg) in &f.events {
        w.item();
        w.u64_array(&[at, seq, code, arg]);
    }
    w.arr_close();
    w.u64_field("seq", f.seq);
    w.key("attempts");
    w.arr_open();
    for &(id, n) in &f.attempts {
        w.item();
        w.u64_array(&[id, n]);
    }
    w.arr_close();
    w.key("draining_down");
    w.arr_open();
    for &(replica, down, at) in &f.draining_down {
        w.item();
        w.u64_array(&[replica, down, at]);
    }
    w.arr_close();
    w.key("triggers");
    w.arr_open();
    for &(fires, armed_at) in &f.triggers {
        w.item();
        w.u64_array(&[fires, armed_at]);
    }
    w.arr_close();
    w.obj_close();
}

fn write_autoscale(w: &mut Writer, a: &AutoscaleState) {
    w.obj_open();
    w.key("events");
    w.arr_open();
    for &(at, seq, code, arg, lag) in &a.events {
        w.item();
        w.u64_array(&[at, seq, code, arg, lag]);
    }
    w.arr_close();
    w.u64_field("seq", a.seq);
    w.key("pool");
    w.bool_array(&a.pool);
    w.key("draining");
    w.bool_array(&a.draining);
    w.u64_field("up_streak", a.up_streak);
    w.u64_field("down_streak", a.down_streak);
    w.key("streak_start");
    match a.streak_start {
        Some(t) => w.f64_value(t),
        None => w.out.push_str("null"),
    }
    w.f64_field("cooldown_until", a.cooldown_until);
    w.u64_field("slo_met", a.last_slo.0);
    w.u64_field("slo_completed", a.last_slo.1);
    w.u64_field("scale_ups", a.scale_ups);
    w.u64_field("scale_downs", a.scale_downs);
    w.f64_field("scale_up_lag_s", a.scale_up_lag_s);
    w.obj_close();
}

fn write_disagg(w: &mut Writer, d: &DisaggState) {
    w.obj_open();
    w.key("assignments");
    w.arr_open();
    for &(id, decode, bytes) in &d.assignments {
        w.item();
        w.u64_array(&[id, decode, bytes]);
    }
    w.arr_close();
    w.u64_field("handoffs", d.handoffs);
    w.u64_field("kv_bytes_shipped", d.kv_bytes_shipped);
    w.f64_field("transfer_seconds", d.transfer_seconds);
    w.u64_field("reprefills", d.reprefills);
    w.obj_close();
}

fn write_replica(w: &mut Writer, r: &ReplicaState) {
    w.obj_open();
    w.key("inbox");
    write_pending_list(w, &r.inbox);
    w.key("pending");
    write_pending_list(w, &r.pending);
    w.key("active");
    w.arr_open();
    for a in &r.active {
        w.item();
        w.obj_open();
        w.key("pending");
        write_pending(w, &a.pending);
        w.u64_field("generated", a.generated);
        w.f64_field("first_token_s", a.first_token_s);
        w.obj_close();
    }
    w.arr_close();
    w.key("chunking");
    w.arr_open();
    for c in &r.chunking {
        w.item();
        w.obj_open();
        w.key("pending");
        write_pending(w, &c.pending);
        w.u64_field("history", c.history);
        w.u64_field("processed", c.processed);
        w.u64_field("prefill_total", c.prefill_total);
        w.key("resumed");
        match &c.resumed {
            Some(rc) => {
                w.obj_open();
                w.u64_field("generated", rc.generated);
                w.f64_field("first_token_s", rc.first_token_s);
                w.obj_close();
            }
            None => w.out.push_str("null"),
        }
        w.obj_close();
    }
    w.arr_close();
    w.key("paused");
    w.arr_open();
    for p in &r.paused {
        w.item();
        w.obj_open();
        w.key("pending");
        write_pending(w, &p.pending);
        w.u64_field("generated", p.generated);
        w.f64_field("first_token_s", p.first_token_s);
        w.u64_field("ctx", p.ctx);
        w.bool_field("swapped", p.swapped);
        w.f64_field("paused_at_s", p.paused_at_s);
        w.obj_close();
    }
    w.arr_close();
    w.key("mux");
    w.arr_open();
    for s in &r.mux {
        w.item();
        w.obj_open();
        w.u64_field("ctx", s.ctx);
        w.u64_field("generated", s.generated);
        w.u64_field("kv_bytes", s.kv_bytes);
        w.f64_field("quality", s.quality);
        w.key("members");
        w.arr_open();
        for m in &s.members {
            w.item();
            w.obj_open();
            w.key("pending");
            write_pending(w, &m.pending);
            w.u64_field("generated", m.generated);
            w.f64_field("first_token_s", m.first_token_s);
            w.obj_close();
        }
        w.arr_close();
        w.obj_close();
    }
    w.arr_close();
    w.key("preempt");
    w.obj_open();
    w.u64_field("preemptions", r.preempt.preemptions);
    w.u64_field("swaps", r.preempt.swaps);
    w.u64_field("recomputes", r.preempt.recomputes);
    w.u64_field("resumes", r.preempt.resumes);
    w.f64_field("swap_restore_seconds", r.preempt.swap_restore_seconds);
    w.f64_field("paused_time_s", r.preempt.paused_time_s);
    w.u64_field("mux_slots", r.preempt.mux_slots);
    w.u64_field("mux_tokens", r.preempt.mux_tokens);
    w.obj_close();
    w.key("parked");
    match &r.parked {
        Some(kv) => {
            w.obj_open();
            w.u64_field("clock", kv.clock);
            w.key("entries");
            w.arr_open();
            for e in &kv.entries {
                w.item();
                w.obj_open();
                w.u64_field("request", e.request);
                w.u64_field("pages", e.pages);
                w.u64_field("tokens", e.tokens);
                w.u64_field("last_touch", e.last_touch);
                w.bool_field("resident", e.resident);
                w.obj_close();
            }
            w.arr_close();
            w.obj_close();
        }
        None => w.out.push_str("null"),
    }
    w.u64_field("reserved", r.reserved);
    w.f64_field("clock", r.clock);
    w.bool_field("delta_fresh", r.delta_fresh);
    w.key("delta_retire");
    w.u64_array(&r.delta_retire);
    w.key("completed");
    w.arr_open();
    for rec in &r.completed {
        w.item();
        w.obj_open();
        w.key("request");
        write_request(w, &rec.request);
        w.f64_field("first_token_s", rec.first_token_s);
        w.f64_field("last_token_s", rec.last_token_s);
        w.u64_field("tokens", rec.tokens);
        w.obj_close();
    }
    w.arr_close();
    w.key("stages");
    w.arr_open();
    for s in &r.stages {
        w.item();
        w.obj_open();
        w.f64_field("seconds", s.seconds);
        w.bool_field("mixed", s.mixed);
        w.u64_field("batch", s.batch as u64);
        w.u64_field("tokens", s.tokens);
        w.obj_close();
    }
    w.arr_close();
    w.key("stage_stats");
    w.obj_open();
    w.u64_field("stages", r.stage_stats.stages);
    w.u64_field("mixed", r.stage_stats.mixed);
    w.u64_field("batch_sum", r.stage_stats.batch_sum);
    w.u64_field("token_sum", r.stage_stats.token_sum);
    w.obj_close();
    w.key("tbt_digest");
    write_digest(w, &r.tbt_digest);
    w.key("tiers");
    w.arr_open();
    for t in &r.tiers {
        w.item();
        w.obj_open();
        w.u64_field("completed", t.completed);
        w.u64_field("met", t.met);
        w.u64_field("good_tokens", t.good_tokens);
        w.key("tbt");
        write_digest(w, &t.tbt);
        w.obj_close();
    }
    w.arr_close();
    w.key("kv_reuse");
    w.obj_open();
    w.u64_field("reused_prefill_tokens", r.kv_reuse.reused_prefill_tokens);
    w.u64_field("prefilled_tokens", r.kv_reuse.prefilled_tokens);
    w.u64_field("parked_evictions", r.kv_reuse.parked_evictions);
    w.u64_field("reuse_hits", r.kv_reuse.reuse_hits);
    w.u64_field("reuse_misses", r.kv_reuse.reuse_misses);
    w.obj_close();
    w.bool_field("admitting", r.admitting);
    w.bool_field("draining", r.draining);
    w.f64_field("perf_factor", r.perf_factor);
    w.key("down_since");
    match r.down_since {
        Some(t) => w.f64_value(t),
        None => w.out.push_str("null"),
    }
    w.f64_field("down_seconds", r.down_seconds);
    w.key("timeline");
    w.arr_open();
    for &(bucket, tokens) in &r.timeline {
        w.item();
        w.u64_array(&[bucket, tokens]);
    }
    w.arr_close();
    w.key("window_counts");
    w.arr_open();
    for window in &r.window_counts {
        w.item();
        w.arr_open();
        for &(completed, met) in window {
            w.item();
            w.u64_array(&[completed, met]);
        }
        w.arr_close();
    }
    w.arr_close();
    w.key("batch");
    match &r.batch {
        Some(b) => {
            w.obj_open();
            w.key("decode_groups");
            w.arr_open();
            for &(ctx, reqs) in &b.decode_groups {
                w.item();
                w.arr_open();
                w.item();
                w.u64_value(ctx);
                w.item();
                w.u64_value(reqs);
                w.arr_close();
            }
            w.arr_close();
            w.key("pending_joins");
            w.u64_array(&b.pending_joins);
            w.key("rng");
            w.u64_array(&b.rng);
            w.obj_close();
        }
        None => w.out.push_str("null"),
    }
    w.obj_close();
}

// ---------------------------------------------------------------- //
// JSON reading: field-by-field decoding over `json::parse` output.

fn get<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    v.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn get_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| format!("field {key:?} is not a string"))
}

fn u64_of(v: &JsonValue, what: &str) -> Result<u64, String> {
    let s = v
        .as_str()
        .ok_or_else(|| format!("{what} is not a quoted integer"))?;
    s.parse::<u64>()
        .map_err(|e| format!("{what}: bad integer {s:?}: {e}"))
}

fn f64_of(v: &JsonValue, what: &str) -> Result<f64, String> {
    Ok(f64::from_bits(u64_of(v, what)?))
}

fn bool_of(v: &JsonValue, what: &str) -> Result<bool, String> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        _ => Err(format!("{what} is not a boolean")),
    }
}

fn get_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    u64_of(get(v, key)?, key)
}

fn get_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    f64_of(get(v, key)?, key)
}

fn get_bool(v: &JsonValue, key: &str) -> Result<bool, String> {
    bool_of(get(v, key)?, key)
}

fn get_arr<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], String> {
    get(v, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} is not an array"))
}

fn get_u64_array(v: &JsonValue, key: &str) -> Result<Vec<u64>, String> {
    get_arr(v, key)?.iter().map(|x| u64_of(x, key)).collect()
}

/// Decode a fixed-width row of quoted u64s (`["1","2",...]`).
fn u64_row(v: &JsonValue, width: usize, what: &str) -> Result<Vec<u64>, String> {
    let row = v
        .as_array()
        .filter(|a| a.len() == width)
        .ok_or_else(|| format!("{what} is not a {width}-element array"))?;
    row.iter().map(|x| u64_of(x, what)).collect()
}

fn u64_pair(v: &JsonValue, what: &str) -> Result<(u64, u64), String> {
    let row = u64_row(v, 2, what)?;
    Ok((row[0], row[1]))
}

fn read_request(v: &JsonValue) -> Result<Request, String> {
    Ok(Request {
        id: get_u64(v, "id")?,
        arrival_s: get_f64(v, "arrival_s")?,
        input_len: get_u64(v, "input_len")?,
        output_len: get_u64(v, "output_len")?,
    })
}

fn read_pending(v: &JsonValue) -> Result<PendingRequest, String> {
    Ok(PendingRequest {
        request: read_request(get(v, "request")?)?,
        tier: get_u64(v, "tier")? as usize,
        priority: get_u64(v, "priority")? as u32,
        deadline_s: get_f64(v, "deadline_s")?,
        conversation: get_u64(v, "conversation")?,
        round: get_u64(v, "round")? as u32,
        history_tokens: get_u64(v, "history_tokens")?,
        skipped: get_u64(v, "skipped")?,
    })
}

fn read_pending_list(v: &JsonValue, key: &str) -> Result<Vec<PendingRequest>, String> {
    get_arr(v, key)?.iter().map(read_pending).collect()
}

fn read_digest(v: &JsonValue) -> Result<DigestState, String> {
    let buckets = get_arr(v, "buckets")?
        .iter()
        .map(|b| {
            let triple = b
                .as_array()
                .filter(|a| a.len() == 3)
                .ok_or("digest bucket is not a 3-element array")?;
            Ok((
                u64_of(&triple[0], "bucket index")?,
                u64_of(&triple[1], "bucket count")?,
                f64_of(&triple[2], "bucket sum")?,
            ))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(DigestState {
        buckets,
        count: get_u64(v, "count")?,
        sum: get_f64(v, "sum")?,
    })
}

fn read_stream(v: &JsonValue) -> Result<StreamState, String> {
    let peeked = match get(v, "peeked")? {
        JsonValue::Null => None,
        r => Some(read_request(r)?),
    };
    Ok(StreamState {
        source_rng: rng_words(v, "source_rng")?,
        source_next_id: get_u64(v, "source_next_id")?,
        source_clock: get_f64(v, "source_clock")?,
        source_burst_on: get_bool(v, "source_burst_on")?,
        source_phase_until: get_f64(v, "source_phase_until")?,
        rng: rng_words(v, "rng")?,
        drawn: get_u64(v, "drawn")?,
        next_id: get_u64(v, "next_id")?,
        peeked,
        followups: read_pending_list(v, "followups")?,
    })
}

fn rng_words(v: &JsonValue, key: &str) -> Result<[u64; 4], String> {
    let words = get_u64_array(v, key)?;
    words
        .try_into()
        .map_err(|_| format!("field {key:?} is not a 4-word RNG state"))
}

fn read_stats(v: &JsonValue) -> Result<RecoveryStats, String> {
    Ok(RecoveryStats {
        faults_injected: get_u64(v, "faults_injected")?,
        requests_lost: get_u64(v, "requests_lost")?,
        retries_issued: get_u64(v, "retries_issued")?,
        requests_dropped: get_u64(v, "requests_dropped")?,
        kv_bytes_migrated: get_u64(v, "kv_bytes_migrated")?,
        kv_migrations: get_u64(v, "kv_migrations")?,
        migration_seconds: get_f64(v, "migration_seconds")?,
        triggers_fired: get_u64(v, "triggers_fired")?,
        requests_deferred: get_u64(v, "requests_deferred")?,
    })
}

fn read_fault(v: &JsonValue) -> Result<FaultState, String> {
    let events = get_arr(v, "events")?
        .iter()
        .map(|e| {
            let row = u64_row(e, 4, "fault event")?;
            Ok((row[0], row[1], row[2], row[3]))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let attempts = get_arr(v, "attempts")?
        .iter()
        .map(|a| u64_pair(a, "retry attempt"))
        .collect::<Result<Vec<_>, String>>()?;
    let draining_down = get_arr(v, "draining_down")?
        .iter()
        .map(|d| {
            let row = u64_row(d, 3, "drain state")?;
            Ok((row[0], row[1], row[2]))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let triggers = get_arr(v, "triggers")?
        .iter()
        .map(|t| u64_pair(t, "trigger state"))
        .collect::<Result<Vec<_>, String>>()?;
    Ok(FaultState {
        events,
        seq: get_u64(v, "seq")?,
        attempts,
        draining_down,
        triggers,
    })
}

fn read_autoscale(v: &JsonValue) -> Result<AutoscaleState, String> {
    let events = get_arr(v, "events")?
        .iter()
        .map(|e| {
            let row = u64_row(e, 5, "scale event")?;
            Ok((row[0], row[1], row[2], row[3], row[4]))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let pool = get_arr(v, "pool")?
        .iter()
        .map(|b| bool_of(b, "pool membership"))
        .collect::<Result<Vec<_>, String>>()?;
    let draining = get_arr(v, "draining")?
        .iter()
        .map(|b| bool_of(b, "scale-down drain flag"))
        .collect::<Result<Vec<_>, String>>()?;
    let streak_start = match get(v, "streak_start")? {
        JsonValue::Null => None,
        t => Some(f64_of(t, "streak_start")?),
    };
    Ok(AutoscaleState {
        events,
        seq: get_u64(v, "seq")?,
        pool,
        draining,
        up_streak: get_u64(v, "up_streak")?,
        down_streak: get_u64(v, "down_streak")?,
        streak_start,
        cooldown_until: get_f64(v, "cooldown_until")?,
        last_slo: (get_u64(v, "slo_met")?, get_u64(v, "slo_completed")?),
        scale_ups: get_u64(v, "scale_ups")?,
        scale_downs: get_u64(v, "scale_downs")?,
        scale_up_lag_s: get_f64(v, "scale_up_lag_s")?,
    })
}

fn read_disagg(v: &JsonValue) -> Result<DisaggState, String> {
    let assignments = get_arr(v, "assignments")?
        .iter()
        .map(|a| {
            let row = u64_row(a, 3, "disagg assignment")?;
            Ok((row[0], row[1], row[2]))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(DisaggState {
        assignments,
        handoffs: get_u64(v, "handoffs")?,
        kv_bytes_shipped: get_u64(v, "kv_bytes_shipped")?,
        transfer_seconds: get_f64(v, "transfer_seconds")?,
        reprefills: get_u64(v, "reprefills")?,
    })
}

fn read_replica(v: &JsonValue) -> Result<ReplicaState, String> {
    let active = get_arr(v, "active")?
        .iter()
        .map(|a| {
            Ok(ActiveState {
                pending: read_pending(get(a, "pending")?)?,
                generated: get_u64(a, "generated")?,
                first_token_s: get_f64(a, "first_token_s")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let chunking = get_arr(v, "chunking")?
        .iter()
        .map(|c| {
            Ok(ChunkingState {
                pending: read_pending(get(c, "pending")?)?,
                history: get_u64(c, "history")?,
                processed: get_u64(c, "processed")?,
                prefill_total: get_u64(c, "prefill_total")?,
                resumed: match get(c, "resumed")? {
                    JsonValue::Null => None,
                    rc => Some(ResumeState {
                        generated: get_u64(rc, "generated")?,
                        first_token_s: get_f64(rc, "first_token_s")?,
                    }),
                },
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let paused = get_arr(v, "paused")?
        .iter()
        .map(|p| {
            Ok(PausedState {
                pending: read_pending(get(p, "pending")?)?,
                generated: get_u64(p, "generated")?,
                first_token_s: get_f64(p, "first_token_s")?,
                ctx: get_u64(p, "ctx")?,
                swapped: get_bool(p, "swapped")?,
                paused_at_s: get_f64(p, "paused_at_s")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let mux = get_arr(v, "mux")?
        .iter()
        .map(|s| {
            let members = get_arr(s, "members")?
                .iter()
                .map(|m| {
                    Ok(MuxMemberState {
                        pending: read_pending(get(m, "pending")?)?,
                        generated: get_u64(m, "generated")?,
                        first_token_s: get_f64(m, "first_token_s")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(MuxState {
                ctx: get_u64(s, "ctx")?,
                generated: get_u64(s, "generated")?,
                kv_bytes: get_u64(s, "kv_bytes")?,
                quality: get_f64(s, "quality")?,
                members,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let pp = get(v, "preempt")?;
    let preempt = PreemptStats {
        preemptions: get_u64(pp, "preemptions")?,
        swaps: get_u64(pp, "swaps")?,
        recomputes: get_u64(pp, "recomputes")?,
        resumes: get_u64(pp, "resumes")?,
        swap_restore_seconds: get_f64(pp, "swap_restore_seconds")?,
        paused_time_s: get_f64(pp, "paused_time_s")?,
        mux_slots: get_u64(pp, "mux_slots")?,
        mux_tokens: get_u64(pp, "mux_tokens")?,
    };
    let parked = match get(v, "parked")? {
        JsonValue::Null => None,
        kv => {
            let entries = get_arr(kv, "entries")?
                .iter()
                .map(|e| {
                    Ok(KvEntrySnapshot {
                        request: get_u64(e, "request")?,
                        pages: get_u64(e, "pages")?,
                        tokens: get_u64(e, "tokens")?,
                        last_touch: get_u64(e, "last_touch")?,
                        resident: get_bool(e, "resident")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Some(KvState {
                clock: get_u64(kv, "clock")?,
                entries,
            })
        }
    };
    let completed = get_arr(v, "completed")?
        .iter()
        .map(|r| {
            Ok(RequestRecord {
                request: read_request(get(r, "request")?)?,
                first_token_s: get_f64(r, "first_token_s")?,
                last_token_s: get_f64(r, "last_token_s")?,
                tokens: get_u64(r, "tokens")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let stages = get_arr(v, "stages")?
        .iter()
        .map(|s| {
            Ok(StageRecord {
                seconds: get_f64(s, "seconds")?,
                mixed: get_bool(s, "mixed")?,
                batch: get_u64(s, "batch")? as usize,
                tokens: get_u64(s, "tokens")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let ss = get(v, "stage_stats")?;
    let stage_stats = StageStats {
        stages: get_u64(ss, "stages")?,
        mixed: get_u64(ss, "mixed")?,
        batch_sum: get_u64(ss, "batch_sum")?,
        token_sum: get_u64(ss, "token_sum")?,
    };
    let tiers = get_arr(v, "tiers")?
        .iter()
        .map(|t| {
            Ok(TierState {
                completed: get_u64(t, "completed")?,
                met: get_u64(t, "met")?,
                good_tokens: get_u64(t, "good_tokens")?,
                tbt: read_digest(get(t, "tbt")?)?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let kvr = get(v, "kv_reuse")?;
    let kv_reuse = KvReuseStats {
        reused_prefill_tokens: get_u64(kvr, "reused_prefill_tokens")?,
        prefilled_tokens: get_u64(kvr, "prefilled_tokens")?,
        parked_evictions: get_u64(kvr, "parked_evictions")?,
        reuse_hits: get_u64(kvr, "reuse_hits")?,
        reuse_misses: get_u64(kvr, "reuse_misses")?,
    };
    let batch = match get(v, "batch")? {
        JsonValue::Null => None,
        b => {
            let decode_groups = get_arr(b, "decode_groups")?
                .iter()
                .map(|g| {
                    let pair = g
                        .as_array()
                        .filter(|a| a.len() == 2)
                        .ok_or("decode group is not a 2-element array")?;
                    Ok((
                        u64_of(&pair[0], "group ctx")?,
                        u64_of(&pair[1], "group reqs")?,
                    ))
                })
                .collect::<Result<Vec<_>, String>>()?;
            Some(BatchCheckpoint {
                decode_groups,
                pending_joins: get_u64_array(b, "pending_joins")?,
                rng: rng_words(b, "rng")?,
            })
        }
    };
    let timeline = get_arr(v, "timeline")?
        .iter()
        .map(|p| u64_pair(p, "timeline entry"))
        .collect::<Result<Vec<_>, String>>()?;
    let window_counts = get_arr(v, "window_counts")?
        .iter()
        .map(|window| {
            window
                .as_array()
                .ok_or("a fault window's counts are not an array")?
                .iter()
                .map(|p| u64_pair(p, "window tier counts"))
                .collect::<Result<Vec<_>, String>>()
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(ReplicaState {
        inbox: read_pending_list(v, "inbox")?,
        pending: read_pending_list(v, "pending")?,
        active,
        chunking,
        paused,
        mux,
        preempt,
        parked,
        reserved: get_u64(v, "reserved")?,
        clock: get_f64(v, "clock")?,
        delta_fresh: get_bool(v, "delta_fresh")?,
        delta_retire: get_u64_array(v, "delta_retire")?,
        completed,
        stages,
        stage_stats,
        tbt_digest: read_digest(get(v, "tbt_digest")?)?,
        tiers,
        kv_reuse,
        admitting: get_bool(v, "admitting")?,
        draining: get_bool(v, "draining")?,
        perf_factor: get_f64(v, "perf_factor")?,
        down_since: match get(v, "down_since")? {
            JsonValue::Null => None,
            t => Some(f64_of(t, "down_since")?),
        },
        down_seconds: get_f64(v, "down_seconds")?,
        timeline,
        window_counts,
        batch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pending(id: u64) -> PendingRequest {
        PendingRequest {
            request: Request {
                id,
                arrival_s: 1.25,
                input_len: 64,
                output_len: 16,
            },
            tier: 1,
            priority: 2,
            deadline_s: f64::INFINITY,
            conversation: id,
            round: 3,
            history_tokens: 48,
            skipped: 5,
        }
    }

    fn sample() -> ClusterSnapshot {
        ClusterSnapshot {
            taken_at_s: 12.5,
            router: vec![3],
            stream: StreamState {
                source_rng: [u64::MAX, 1, 2, 3],
                source_next_id: 7,
                source_clock: 0.1 + 0.2, // not exactly 0.3: bit-exactness probe
                source_burst_on: true,
                source_phase_until: 9.75,
                rng: [4, 5, 6, u64::MAX - 1],
                drawn: 7,
                next_id: 40,
                peeked: Some(Request {
                    id: 8,
                    arrival_s: 13.0,
                    input_len: 100,
                    output_len: 10,
                }),
                followups: vec![pending(30)],
            },
            replicas: vec![ReplicaState {
                inbox: vec![pending(31)],
                pending: vec![pending(32), pending(33)],
                active: vec![ActiveState {
                    pending: pending(34),
                    generated: 4,
                    first_token_s: 11.0,
                }],
                chunking: vec![ChunkingState {
                    pending: pending(35),
                    history: 16,
                    processed: 32,
                    prefill_total: 48,
                    resumed: Some(ResumeState {
                        generated: 6,
                        first_token_s: 10.75,
                    }),
                }],
                paused: vec![PausedState {
                    pending: pending(36),
                    generated: 5,
                    first_token_s: 11.5,
                    ctx: 69,
                    swapped: true,
                    paused_at_s: 12.0,
                }],
                mux: vec![MuxState {
                    ctx: 72,
                    generated: 2,
                    kv_bytes: 4096,
                    quality: 0.9,
                    members: vec![MuxMemberState {
                        pending: pending(37),
                        generated: 7,
                        first_token_s: 11.25,
                    }],
                }],
                preempt: PreemptStats {
                    preemptions: 3,
                    swaps: 2,
                    recomputes: 1,
                    resumes: 2,
                    swap_restore_seconds: 0.125,
                    paused_time_s: 0.5,
                    mux_slots: 1,
                    mux_tokens: 9,
                },
                parked: Some(KvState {
                    clock: 17,
                    entries: vec![KvEntrySnapshot {
                        request: 2,
                        pages: 5,
                        tokens: 70,
                        last_touch: 16,
                        resident: true,
                    }],
                }),
                reserved: 1024,
                clock: 12.25,
                delta_fresh: false,
                delta_retire: vec![80, 81],
                completed: vec![RequestRecord {
                    request: Request {
                        id: 1,
                        arrival_s: 0.5,
                        input_len: 64,
                        output_len: 16,
                    },
                    first_token_s: 1.0,
                    last_token_s: 2.0,
                    tokens: 16,
                }],
                stages: vec![StageRecord {
                    seconds: 0.01,
                    mixed: true,
                    batch: 3,
                    tokens: 67,
                }],
                stage_stats: StageStats {
                    stages: 10,
                    mixed: 2,
                    batch_sum: 30,
                    token_sum: 200,
                },
                tbt_digest: DigestState {
                    buckets: vec![(100, 5, 0.05)],
                    count: 5,
                    sum: 0.05,
                },
                tiers: vec![TierState {
                    completed: 3,
                    met: 2,
                    good_tokens: 32,
                    tbt: DigestState {
                        buckets: vec![],
                        count: 0,
                        sum: 0.0,
                    },
                }],
                kv_reuse: KvReuseStats {
                    reused_prefill_tokens: 100,
                    prefilled_tokens: 400,
                    parked_evictions: 1,
                    reuse_hits: 2,
                    reuse_misses: 1,
                },
                admitting: false,
                draining: true,
                perf_factor: 0.5,
                down_since: Some(10.5),
                down_seconds: 1.75,
                timeline: vec![(3, 40), (4, 12)],
                window_counts: vec![vec![(2, 1)]],
                batch: Some(BatchCheckpoint {
                    decode_groups: vec![(68, 1), (90, 2)],
                    pending_joins: vec![64],
                    rng: [9, 10, 11, 12],
                }),
            }],
            stats: RecoveryStats {
                faults_injected: 1,
                requests_lost: 4,
                retries_issued: 3,
                requests_dropped: 1,
                kv_bytes_migrated: 7 << 20,
                kv_migrations: 2,
                migration_seconds: 0.25e-3,
                triggers_fired: 1,
                requests_deferred: 6,
            },
            fault: Some(FaultState {
                events: vec![(4.5f64.to_bits(), 1, 1, 0), (6.0f64.to_bits(), 2, 2, 0)],
                seq: 3,
                attempts: vec![(31, 1), (40, 2)],
                draining_down: vec![(0, 1.5f64.to_bits(), 4.0f64.to_bits())],
                triggers: vec![(1, 9.5f64.to_bits())],
            }),
            autoscale: Some(AutoscaleState {
                events: vec![
                    (12.5f64.to_bits(), 4, 0, 0, 0),
                    (13.0f64.to_bits(), 5, 1, 0, 2.5f64.to_bits()),
                ],
                seq: 6,
                pool: vec![false],
                draining: vec![true],
                up_streak: 2,
                down_streak: 0,
                streak_start: Some(11.5),
                cooldown_until: 14.0,
                last_slo: (2, 3),
                scale_ups: 1,
                scale_downs: 1,
                scale_up_lag_s: 2.5,
            }),
            disagg: Some(DisaggState {
                assignments: vec![(35, 1, 4800), (42, 0, 6400)],
                handoffs: 9,
                kv_bytes_shipped: 3 << 20,
                transfer_seconds: 0.75e-3,
                reprefills: 1,
            }),
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample();
        let text = snap.to_json();
        let back = ClusterSnapshot::from_json(&text).expect("parses");
        assert_eq!(back, snap);
        // Including the non-representable-in-decimal float and the
        // full-width RNG words.
        assert_eq!(
            back.stream.source_clock.to_bits(),
            (0.1 + 0.2_f64).to_bits()
        );
        assert_eq!(back.stream.source_rng[0], u64::MAX);
        assert_eq!(back.replicas[0].pending[0].deadline_s, f64::INFINITY);
    }

    #[test]
    fn from_json_rejects_other_schemas_and_garbage() {
        assert!(ClusterSnapshot::from_json("{}").is_err());
        assert!(ClusterSnapshot::from_json("not json").is_err());
        let wrong = r#"{"schema": "duplex-bench/cluster/v1"}"#;
        let err = ClusterSnapshot::from_json(wrong).expect_err("wrong schema");
        assert!(err.contains("schema"), "{err}");
        assert!(err.contains(SCHEMA), "names the expected schema: {err}");
    }

    #[test]
    fn from_json_explains_the_retired_v1_schema() {
        let v1 = format!(r#"{{"schema": "{SCHEMA_V1}"}}"#);
        let err = ClusterSnapshot::from_json(&v1).expect_err("v1 rejected");
        assert!(err.contains(SCHEMA_V1), "{err}");
        assert!(err.contains(SCHEMA), "{err}");
        assert!(err.contains("re-take"), "tells the user what to do: {err}");
    }

    #[test]
    fn from_json_explains_the_retired_v2_schema() {
        let v2 = format!(r#"{{"schema": "{SCHEMA_V2}"}}"#);
        let err = ClusterSnapshot::from_json(&v2).expect_err("v2 rejected");
        assert!(err.contains(SCHEMA_V2), "{err}");
        assert!(err.contains(SCHEMA), "{err}");
        assert!(err.contains("autoscale"), "names what v2 lacks: {err}");
        assert!(err.contains("re-take"), "tells the user what to do: {err}");
    }

    #[test]
    fn from_json_explains_the_retired_v3_schema() {
        let v3 = format!(r#"{{"schema": "{SCHEMA_V3}"}}"#);
        let err = ClusterSnapshot::from_json(&v3).expect_err("v3 rejected");
        assert!(err.contains(SCHEMA_V3), "{err}");
        assert!(err.contains(SCHEMA), "{err}");
        assert!(err.contains("disaggregated"), "names what v3 lacks: {err}");
        assert!(err.contains("re-take"), "tells the user what to do: {err}");
    }

    #[test]
    fn corrupt_disagg_state_is_a_described_error_not_a_panic() {
        let full = sample().to_json();
        // Truncate a 3-element assignment triple to 2 elements.
        let text = full.replace("[\"35\",\"1\",\"4800\"]", "[\"35\",\"1\"]");
        assert_ne!(text, full, "the fixture assignment row was found");
        let err = ClusterSnapshot::from_json(&text).expect_err("bad assignment");
        assert!(err.contains("disagg assignment"), "{err}");
        // A non-integer handoff counter.
        let text = full.replace("\"handoffs\":\"9\"", "\"handoffs\":\"lots\"");
        assert_ne!(text, full);
        let err = ClusterSnapshot::from_json(&text).expect_err("bad counter");
        assert!(err.contains("handoffs"), "{err}");
    }

    #[test]
    fn missing_fields_name_the_culprit() {
        let mut snap = sample();
        snap.replicas.clear();
        let text = snap.to_json().replace("\"taken_at_s\"", "\"taken_at\"");
        let err = ClusterSnapshot::from_json(&text).expect_err("missing field");
        assert!(err.contains("taken_at_s"), "{err}");
    }

    #[test]
    fn corrupt_fault_state_is_a_described_error_not_a_panic() {
        let snap = sample();
        // Truncate a 4-element fault event row to 3 elements.
        let full = snap.to_json();
        let seq1 = format!("\"{}\",\"1\",\"1\",\"0\"", 4.5f64.to_bits());
        let cut = format!("\"{}\",\"1\",\"1\"", 4.5f64.to_bits());
        let text = full.replace(&seq1, &cut);
        assert_ne!(text, full, "the fixture event row was found");
        let err = ClusterSnapshot::from_json(&text).expect_err("bad event row");
        assert!(err.contains("fault event"), "{err}");
        // A timeline entry that is not a ["bucket","tokens"] pair.
        let text = full.replace("[\"3\",\"40\"]", "[\"3\"]");
        assert_ne!(text, full);
        let err = ClusterSnapshot::from_json(&text).expect_err("bad timeline");
        assert!(err.contains("timeline entry"), "{err}");
        // A non-integer recovery counter.
        let text = full.replace("\"requests_lost\":\"4\"", "\"requests_lost\":\"many\"");
        assert_ne!(text, full);
        let err = ClusterSnapshot::from_json(&text).expect_err("bad counter");
        assert!(err.contains("requests_lost"), "{err}");
    }

    #[test]
    fn a_faultless_snapshot_round_trips_with_null_fault_state() {
        let mut snap = sample();
        snap.fault = None;
        snap.autoscale = None;
        snap.disagg = None;
        snap.stats = RecoveryStats::default();
        let back = ClusterSnapshot::from_json(&snap.to_json()).expect("parses");
        assert_eq!(back, snap);
        assert!(back.fault.is_none());
        assert!(back.autoscale.is_none());
        assert!(back.disagg.is_none());
    }
}
