//! Stage deltas: the incremental contract between the scheduler and a
//! [`crate::StageExecutor`].
//!
//! Continuous batching makes consecutive stages *almost* identical:
//! every surviving request advances one token, a few requests retire,
//! and a few new ones are admitted. A [`StageDelta`] describes exactly
//! that difference, so an executor that carries batch state across
//! stages (see `duplex-system`'s incremental path) can reprice a
//! pure-decode stage in O(1) from aggregates instead of re-sorting and
//! re-grouping the whole batch.
//!
//! # Delta invariants
//!
//! A delta transforms the batch of the *previously executed* stage into
//! the batch of the stage being executed, in this order:
//!
//! 1. **Advance** (implicit — every delta advances): each decode
//!    context grows by one, and every request admitted by the previous
//!    delta joins the decode set at context `prompt + 1` (its prefill
//!    produced one token).
//! 2. **Retire**: each entry of [`StageDelta::retire`] removes one
//!    request by its *post-advance* decode context — the context the
//!    request would have attended in this stage had it stayed. A
//!    request admitted by the previous delta with `output_len == 1`
//!    retires here with context `prompt + 1`.
//! 3. **Admit**: each entry of [`StageDelta::admit`] adds a prefill of
//!    that length to this stage (making it mixed). The admitted
//!    requests join the decode set at the next delta's advance step, at
//!    context `join + 1`, where `join` is the matching entry of
//!    [`StageDelta::admit_ctx`] — or the prefill length itself when
//!    `admit_ctx` is empty (the common no-reuse case).
//!
//! `admit_ctx` exists for *prefix reuse*: a multi-turn follow-up whose
//! conversation KV is still resident prefills only its new suffix
//! tokens (`admit`) but decodes over its full history (`admit_ctx`).
//! Schedulers that never reuse leave `admit_ctx` empty.
//!
//! Under *chunked prefill* a long prompt is additionally split into
//! bounded slices across consecutive stages. Every slice but the last
//! is announced through [`StageDelta::chunk`] as `(new, past)` — it is
//! priced as a prefill-with-past in its stage but never joins the
//! decode set; the final slice arrives as a normal admission whose
//! `admit_ctx` covers the whole prompt. Chunks therefore leave the
//! carried decode membership untouched, keeping the incremental
//! executor O(changes).
//!
//! The first delta of a run sets [`StageDelta::fresh`], telling the
//! executor to clear any batch state left over from a previous run
//! before applying the delta (an executor may be reused across runs).

/// What changed in the continuous batch since the last executed stage.
///
/// See the [module docs](self) for the exact application order and
/// invariants. The vectors are owned so the scheduler can reuse their
/// capacity across stages.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StageDelta {
    /// First stage of a run: the executor must reset its batch state
    /// before applying this delta.
    pub fresh: bool,
    /// Prefilled prompt lengths of the requests admitted to this stage
    /// (each one prefills now and decodes from the next stage on).
    /// Under prefix reuse this is only the non-resident suffix.
    pub admit: Vec<u64>,
    /// Post-prefill decode-join context of each admitted request,
    /// parallel to `admit`. Empty means "no reuse": every request joins
    /// at its prefilled prompt length. Non-empty requires
    /// `admit_ctx.len() == admit.len()` and `admit_ctx[i] >= admit[i]`.
    /// The difference `admit_ctx[i] - admit[i]` is the resident past
    /// the admission's new tokens cross-attend over
    /// (prefill-with-past pricing).
    pub admit_ctx: Vec<u64>,
    /// Intermediate prefill chunks processed this stage, as
    /// `(new_tokens, past_ctx)` pairs: under chunked prefill a long
    /// prompt is split into bounded slices, and every slice but the
    /// last is announced here. Chunks attend over `past_ctx` resident
    /// tokens, write their own KV, and do **not** join the decode set —
    /// the prompt's final slice is announced through
    /// [`StageDelta::admit`] / [`StageDelta::admit_ctx`] instead and
    /// joins as usual.
    pub chunk: Vec<(u64, u64)>,
    /// Post-advance decode contexts of the requests that retired after
    /// the previous stage.
    pub retire: Vec<u64>,
}

impl StageDelta {
    /// A delta that starts a run: clears executor state, no events yet.
    pub fn start() -> Self {
        Self {
            fresh: true,
            ..Self::default()
        }
    }

    /// True when this delta only advances the batch: no admissions, no
    /// retirements, no reset — the case an incremental executor prices
    /// in O(1).
    pub fn is_pure_advance(&self) -> bool {
        !self.fresh && self.admit.is_empty() && self.chunk.is_empty() && self.retire.is_empty()
    }

    /// The decode-join context of each admitted request: `admit_ctx`
    /// when populated (prefix reuse), the prefilled lengths otherwise.
    pub fn join_contexts(&self) -> &[u64] {
        debug_assert!(
            self.admit_ctx.is_empty() || self.admit_ctx.len() == self.admit.len(),
            "admit_ctx must be empty or parallel to admit"
        );
        if self.admit_ctx.is_empty() {
            &self.admit
        } else {
            &self.admit_ctx
        }
    }

    /// Resident past each admission's new tokens attend over:
    /// `admit_ctx[i] - admit[i]`, or 0 for every entry when `admit_ctx`
    /// is empty (no reuse).
    pub fn admit_past(&self, i: usize) -> u64 {
        self.admit_ctx
            .get(i)
            .map_or(0, |ctx| ctx.saturating_sub(self.admit[i]))
    }

    /// Reset to a pure advance, keeping vector capacity for reuse.
    pub fn clear(&mut self) {
        self.fresh = false;
        self.admit.clear();
        self.admit_ctx.clear();
        self.chunk.clear();
        self.retire.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn start_is_fresh_and_not_pure() {
        let d = StageDelta::start();
        assert!(d.fresh);
        assert!(!d.is_pure_advance());
    }

    #[test]
    fn clear_keeps_capacity_and_purity() {
        let mut d = StageDelta::start();
        d.admit.extend([128, 256]);
        d.admit_ctx.extend([128, 900]);
        d.chunk.push((64, 512));
        d.retire.push(1000);
        d.clear();
        assert!(d.is_pure_advance());
        assert!(d.admit.capacity() >= 2);
        assert!(d.retire.capacity() >= 1);
        assert!(d.admit_ctx.is_empty());
        assert!(d.chunk.is_empty());
    }

    #[test]
    fn chunks_break_pure_advance_but_not_joins() {
        let mut d = StageDelta::start();
        d.clear();
        assert!(d.is_pure_advance());
        d.chunk.push((64, 128));
        assert!(!d.is_pure_advance(), "a chunk stage is mixed");
        assert!(
            d.join_contexts().is_empty(),
            "held chunks never join the decode set"
        );
    }

    #[test]
    fn join_contexts_defaults_to_admit() {
        let mut d = StageDelta::start();
        d.admit.extend([128, 256]);
        assert_eq!(d.join_contexts(), &[128, 256]);
        assert_eq!(d.admit_past(0), 0);
        assert_eq!(d.admit_past(1), 0);
        // Prefix reuse: the second request prefills 256 new tokens but
        // joins decode over its full 900-token history — 644 of which
        // its prefill cross-attends as resident past.
        d.admit_ctx.extend([128, 900]);
        assert_eq!(d.join_contexts(), &[128, 900]);
        assert_eq!(d.admit_past(0), 0);
        assert_eq!(d.admit_past(1), 644);
    }
}
