//! Fault injection and recovery for cluster runs (see
//! [`crate::cluster`]).
//!
//! A [`FaultPlan`] is a deterministic script of replica faults — crash,
//! drain-and-restart, transient slowdown — pinned to virtual times. The
//! [`crate::ClusterSimulation`] applies every fault at a clock-merge
//! point of the cluster's dispatch/window protocol, in a fixed order,
//! so a faulted run stays seed-deterministic and the parallel stepping
//! path remains byte-identical to the serial oracle (the same invariant
//! the fault-free cluster pins in its integration tests).
//!
//! What each fault does:
//!
//! * **Crash** ([`FaultKind::Crash`]) — the replica loses everything
//!   volatile: queued, chunking and decoding requests are *lost* and
//!   re-enqueued through the router under the plan's [`RetryPolicy`]
//!   (virtual-time backoff, bounded retry budget, then dropped), and
//!   its parked multi-turn KV pool is wiped. Follow-ups whose
//!   conversation still has a (possibly stale) prefix parked on a
//!   surviving replica reroute there with their history intact. The
//!   replica restarts `down_s` later, optionally through a warm-up
//!   window that inflates its stage latency.
//! * **Drain** ([`FaultKind::Drain`]) — the replica stops admitting,
//!   finishes its in-flight batch, hands its parked KV entries off to
//!   the least-loaded surviving replica as a priced transfer, then goes
//!   down for `down_s` and restarts. Queued-but-unstarted requests are
//!   rerouted immediately (no retry budget spent: nothing was lost).
//! * **Slowdown** ([`FaultKind::Slowdown`]) — the replica's stage
//!   latency is multiplied by `factor` for `duration_s` of virtual
//!   time; work keeps flowing.
//!
//! Faults are stage-granular: a stage that *started* before a fault's
//! virtual time runs to completion at its original speed, and the fault
//! lands at the next merge point. This is exactly the granularity at
//! which the simulator prices work, and it is what keeps fault
//! application deterministic under parallel window stepping.
//!
//! Cross-replica KV migration is a first-class priced operation: a
//! parked conversation's pages ship over a [`KvLinkSpec`] (derive one
//! from the system crate's comm model to price it over the same
//! interconnect as inter-node collectives), the transfer seconds are
//! charged to the receiving replica's clock, and the bytes are
//! accounted in [`RecoveryStats`]. The migration-aware router
//! ([`crate::router::KvMigration`]) weighs exactly this transfer cost
//! against re-prefilling the history when a pinned replica is down or
//! saturated.
//!
//! Recovery is measured from a per-replica generated-token timeline
//! (bucketed at [`FaultPlan::timeline_bucket_s`]): a fault counts as
//! recovered at the first full bucket after it whose fleet token rate
//! is back within [`FaultPlan::recovery_threshold`] of the pre-fault
//! rate. During-failure SLO attainment is counted per fault over the
//! window `[at_s, at_s + slo_window_s)`, per tier. Both land in
//! [`FaultOutcome`]s on the [`crate::ClusterReport`].
//!
//! # Example
//!
//! ```
//! use duplex_sched::{FaultEvent, FaultKind, FaultPlan, KvLinkSpec, RetryPolicy};
//!
//! let plan = FaultPlan::new(vec![
//!     FaultEvent::new(2.0, 0, FaultKind::Crash { down_s: 0.5 }),
//!     FaultEvent::new(4.0, 1, FaultKind::Drain { down_s: 0.25 }),
//! ])
//! .with_retry(RetryPolicy::new(2).with_backoff(0.05, 2.0))
//! .with_link(KvLinkSpec::new(400e9, 2e-6));
//! assert_eq!(plan.faults.len(), 2);
//! // 1 MiB of parked KV ships in ~2.6 microseconds of virtual time.
//! assert!(plan.link.transfer_seconds(1 << 20) < 1e-5);
//! ```

/// What happens to the faulted replica.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Hard crash: in-flight and queued requests are lost (retried per
    /// the plan's [`RetryPolicy`]), the parked KV pool is wiped, and
    /// the replica is down for `down_s` virtual seconds before it
    /// restarts (through the plan's warm-up window, if any).
    Crash {
        /// Virtual seconds from the crash to the restart.
        down_s: f64,
    },
    /// Graceful drain: stop admitting, finish the in-flight batch,
    /// hand parked KV off to a surviving replica (a priced transfer),
    /// then stay down for `down_s` before restarting.
    Drain {
        /// Virtual seconds from drain completion to the restart.
        down_s: f64,
    },
    /// Transient slowdown: stage latency is multiplied by `factor`
    /// (>1 = slower) for `duration_s` virtual seconds.
    Slowdown {
        /// How long the degradation lasts.
        duration_s: f64,
        /// Stage-latency multiplier while degraded.
        factor: f64,
    },
}

impl FaultKind {
    /// Short display name for reports and tables.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Crash { .. } => "crash",
            FaultKind::Drain { .. } => "drain",
            FaultKind::Slowdown { .. } => "slowdown",
        }
    }
}

/// One scripted fault: which replica, when (virtual time), and what.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct FaultEvent {
    /// Virtual time the fault fires (applied at the next merge point).
    pub at_s: f64,
    /// Index of the faulted replica.
    pub replica: usize,
    /// What happens.
    pub kind: FaultKind,
}

impl FaultEvent {
    /// A fault hitting `replica` at virtual time `at_s`.
    pub fn new(at_s: f64, replica: usize, kind: FaultKind) -> Self {
        assert!(
            at_s.is_finite() && at_s >= 0.0,
            "fault time must be finite and non-negative"
        );
        Self {
            at_s,
            replica,
            kind,
        }
    }
}

/// How requests lost to a crash are re-enqueued, in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// How many times one request may be retried before it is dropped
    /// for good (counted in [`RecoveryStats::requests_dropped`]).
    pub max_retries: u32,
    /// Base re-enqueue delay after the crash, in virtual seconds
    /// (0 = immediate re-enqueue at the crash time).
    pub backoff_s: f64,
    /// Multiplier on the backoff per prior retry of the same request
    /// (exponential backoff; 1.0 = constant).
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    /// Three retries with a constant, immediate re-enqueue.
    fn default() -> Self {
        Self {
            max_retries: 3,
            backoff_s: 0.0,
            backoff_mult: 2.0,
        }
    }
}

impl RetryPolicy {
    /// A policy allowing `max_retries` retries with immediate
    /// re-enqueue (no backoff); set a backoff with
    /// [`RetryPolicy::with_backoff`].
    pub fn new(max_retries: u32) -> Self {
        Self {
            max_retries,
            ..Self::default()
        }
    }

    /// Set the exponential backoff: `backoff_s` base delay, multiplied
    /// by `mult` per prior retry of the same request.
    pub fn with_backoff(mut self, backoff_s: f64, mult: f64) -> Self {
        assert!(backoff_s >= 0.0, "retry backoff must be non-negative");
        assert!(mult > 0.0, "retry backoff multiplier must be positive");
        self.backoff_s = backoff_s;
        self.backoff_mult = mult;
        self
    }

    /// The virtual-time delay before retry number `attempt` (1-based).
    pub fn delay_s(&self, attempt: u32) -> f64 {
        self.backoff_s * self.backoff_mult.powi(attempt.saturating_sub(1) as i32)
    }
}

/// The interconnect a parked conversation's KV pages ship over when
/// they migrate between replicas: a bandwidth/latency pair, matching
/// the point-to-point pricing of the system crate's comm model (build
/// one from it via its `kv_link()` hook so migration is charged over
/// the same inter-node path as collectives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvLinkSpec {
    /// Link bandwidth in bytes per second.
    pub bytes_per_s: f64,
    /// Per-transfer latency in seconds.
    pub latency_s: f64,
}

impl KvLinkSpec {
    /// A link from bandwidth and latency. Bandwidth must be positive,
    /// latency non-negative.
    pub fn new(bytes_per_s: f64, latency_s: f64) -> Self {
        assert!(bytes_per_s > 0.0, "KV link bandwidth must be positive");
        assert!(latency_s >= 0.0, "KV link latency must be non-negative");
        Self {
            bytes_per_s,
            latency_s,
        }
    }

    /// Virtual seconds to ship `bytes` over this link (0 for 0 bytes,
    /// like the comm model's point-to-point pricing).
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.bytes_per_s + self.latency_s
    }
}

impl Default for KvLinkSpec {
    /// The HGX-class inter-node path: 400 GB/s, 2 microseconds.
    fn default() -> Self {
        Self {
            bytes_per_s: 400e9,
            latency_s: 2e-6,
        }
    }
}

/// A load-driven fault trigger: instead of (or alongside) the scripted
/// [`FaultEvent`] list, the cluster watches every replica's queue
/// pressure ([`crate::router::ReplicaSnapshot::queue_pressure`] units:
/// committed slots per batch slot) at its clock-merge points and
/// injects `kind` on any replica whose pressure crosses `pressure` —
/// the "slow or drain a hot replica" knob real fleets wire to their
/// load balancer's health checks. Evaluation is merge-point
/// deterministic, so triggered runs keep the serial == parallel
/// byte-identity of scripted ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadTrigger {
    /// Queue-pressure threshold (committed slots per batch slot) at or
    /// above which the trigger fires on a replica.
    pub pressure: f64,
    /// The fault injected on the offending replica.
    pub kind: FaultKind,
    /// Minimum virtual time between two fires of this trigger (across
    /// all replicas); 0 re-arms immediately.
    pub cooldown_s: f64,
    /// Lifetime fire budget of this trigger.
    pub max_fires: u32,
}

impl LoadTrigger {
    /// A trigger injecting `kind` when a replica's queue pressure
    /// reaches `pressure`, with a 1-fire budget and no cooldown. Both
    /// knobs have `with_` setters.
    pub fn new(pressure: f64, kind: FaultKind) -> Self {
        assert!(
            pressure > 0.0 && pressure.is_finite(),
            "trigger pressure must be positive and finite"
        );
        Self {
            pressure,
            kind,
            cooldown_s: 0.0,
            max_fires: 1,
        }
    }

    /// Set the re-arm cooldown.
    pub fn with_cooldown(mut self, cooldown_s: f64) -> Self {
        assert!(cooldown_s >= 0.0, "trigger cooldown must be non-negative");
        self.cooldown_s = cooldown_s;
        self
    }

    /// Set the lifetime fire budget.
    pub fn with_max_fires(mut self, max_fires: u32) -> Self {
        assert!(max_fires >= 1, "trigger budget must be at least 1");
        self.max_fires = max_fires;
        self
    }
}

/// A deterministic fault script for one cluster run: the faults, the
/// retry policy for crash-lost requests, the KV-migration link, the
/// restart warm-up, and the recovery-measurement knobs. Attach with
/// [`crate::ClusterSimulation::with_faults`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct FaultPlan {
    /// The scripted faults (applied in virtual-time order).
    pub faults: Vec<FaultEvent>,
    /// Load-driven triggers evaluated at every merge point, an
    /// alternative trigger source to the fixed script (empty = none).
    pub triggers: Vec<LoadTrigger>,
    /// Retry policy for requests lost to crashes.
    pub retry: RetryPolicy,
    /// The link cross-replica KV migrations are priced over.
    pub link: KvLinkSpec,
    /// Post-restart warm-up window length in virtual seconds (cold
    /// caches after a crash or drain restart); 0 disables it.
    pub warmup_s: f64,
    /// Stage-latency multiplier during the warm-up window (>= 1).
    pub warmup_factor: f64,
    /// A fault counts as recovered when the fleet token rate is back
    /// within this fraction of the pre-fault rate (see
    /// [`FaultOutcome::recovered_at_s`]).
    pub recovery_threshold: f64,
    /// Bucket width of the generated-token timeline the recovery time
    /// is measured on, in virtual seconds.
    pub timeline_bucket_s: f64,
    /// Length of the during-failure SLO window counted per fault,
    /// starting at the fault time.
    pub slo_window_s: f64,
}

impl FaultPlan {
    /// A plan over `faults` with default retry policy, link, no
    /// warm-up, a 70% recovery threshold, 0.5 s timeline buckets and a
    /// 1 s during-failure SLO window. All knobs have `with_` setters.
    pub fn new(faults: Vec<FaultEvent>) -> Self {
        for f in &faults {
            assert!(
                f.at_s.is_finite() && f.at_s >= 0.0,
                "fault time must be finite and non-negative"
            );
            match f.kind {
                FaultKind::Crash { down_s } | FaultKind::Drain { down_s } => {
                    assert!(down_s >= 0.0, "down time must be non-negative");
                }
                FaultKind::Slowdown { duration_s, factor } => {
                    assert!(duration_s >= 0.0, "slowdown duration must be non-negative");
                    assert!(factor > 0.0, "slowdown factor must be positive");
                }
            }
        }
        Self {
            faults,
            triggers: Vec::new(),
            retry: RetryPolicy::default(),
            link: KvLinkSpec::default(),
            warmup_s: 0.0,
            warmup_factor: 1.0,
            recovery_threshold: 0.7,
            timeline_bucket_s: 0.5,
            slo_window_s: 1.0,
        }
    }

    /// Add load-driven triggers (see [`LoadTrigger`]); evaluated in
    /// the given order at every merge point.
    pub fn with_triggers(mut self, triggers: Vec<LoadTrigger>) -> Self {
        for t in &triggers {
            assert!(
                t.pressure > 0.0 && t.pressure.is_finite(),
                "trigger pressure must be positive and finite"
            );
            assert!(t.cooldown_s >= 0.0, "trigger cooldown must be non-negative");
            assert!(t.max_fires >= 1, "trigger budget must be at least 1");
        }
        self.triggers = triggers;
        self
    }

    /// Set the retry policy for crash-lost requests.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        assert!(retry.backoff_s >= 0.0, "retry backoff must be non-negative");
        assert!(
            retry.backoff_mult > 0.0,
            "retry backoff multiplier must be positive"
        );
        self.retry = retry;
        self
    }

    /// Set the KV-migration link.
    pub fn with_link(mut self, link: KvLinkSpec) -> Self {
        self.link = link;
        self
    }

    /// Set the post-restart warm-up window: `warmup_s` seconds at
    /// `factor` times the normal stage latency.
    pub fn with_warmup(mut self, warmup_s: f64, factor: f64) -> Self {
        assert!(warmup_s >= 0.0, "warm-up length must be non-negative");
        assert!(factor >= 1.0, "warm-up factor must be >= 1");
        self.warmup_s = warmup_s;
        self.warmup_factor = factor;
        self
    }

    /// Set the recovery-measurement knobs: the token-rate threshold
    /// (fraction of the pre-fault rate), the timeline bucket width and
    /// the during-failure SLO window length.
    pub fn with_recovery_tracking(
        mut self,
        threshold: f64,
        bucket_s: f64,
        slo_window_s: f64,
    ) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "recovery threshold must be in (0, 1]"
        );
        assert!(bucket_s > 0.0, "timeline bucket must be positive");
        assert!(slo_window_s >= 0.0, "SLO window must be non-negative");
        self.recovery_threshold = threshold;
        self.timeline_bucket_s = bucket_s;
        self.slo_window_s = slo_window_s;
        self
    }
}

/// Fleet-wide fault and recovery counters for one cluster run. All
/// zeros when the run had no fault plan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RecoveryStats {
    /// Faults actually applied (a plan fault past the end of the run
    /// never fires).
    pub faults_injected: u64,
    /// Requests lost to crashes (queued, chunking or decoding on the
    /// crashed replica).
    pub requests_lost: u64,
    /// Retry re-enqueues issued for lost requests.
    pub retries_issued: u64,
    /// Lost requests dropped for good after exhausting the retry
    /// budget.
    pub requests_dropped: u64,
    /// Parked KV bytes shipped between replicas (drain handoffs plus
    /// router-decided migrations).
    pub kv_bytes_migrated: u64,
    /// Individual parked-conversation migrations executed.
    pub kv_migrations: u64,
    /// Virtual seconds of transfer time charged for those migrations.
    pub migration_seconds: f64,
    /// Faults injected by [`LoadTrigger`]s (also counted in
    /// [`RecoveryStats::faults_injected`]).
    pub triggers_fired: u64,
    /// Arrivals pushed back by fleet-level admission control (see
    /// [`crate::router::FleetShed`]); each deferral of the same
    /// request counts once.
    pub requests_deferred: u64,
}

/// Per-tier during-failure SLO accounting for one fault's window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultWindowStats {
    /// Tier name (matches the scenario's SLO tiers).
    pub tier: String,
    /// Requests of this tier retired inside the fault's window.
    pub completed: u64,
    /// Of those, how many met their SLO (absolute-deadline T2FT and
    /// mean TBT).
    pub met: u64,
}

impl FaultWindowStats {
    /// In-window attainment (0 when nothing retired in the window).
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.met as f64 / self.completed as f64
    }
}

/// What one injected fault did to the fleet: when and where it fired,
/// when fleet throughput recovered, and the during-failure SLO window.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultOutcome {
    /// The scripted fault time.
    pub at_s: f64,
    /// The faulted replica.
    pub replica: usize,
    /// What fired.
    pub kind: FaultKind,
    /// Virtual time the fleet token rate was back within the plan's
    /// [`FaultPlan::recovery_threshold`] of its pre-fault rate; `None`
    /// when it never recovered inside the run.
    pub recovered_at_s: Option<f64>,
    /// `recovered_at_s - at_s`, or the remaining run span when the
    /// fleet never recovered (a pessimistic, gateable stand-in).
    pub recovery_time_s: f64,
    /// Per-tier SLO accounting over `[at_s, at_s + slo_window_s)`.
    pub windows: Vec<FaultWindowStats>,
}

impl FaultOutcome {
    /// During-failure attainment of the first (interactive) tier; 0
    /// when the window saw no interactive retirement.
    pub fn interactive_attainment(&self) -> f64 {
        self.windows
            .first()
            .map_or(0.0, FaultWindowStats::attainment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_prices_like_the_comm_model() {
        let link = KvLinkSpec::new(100e9, 1e-6);
        assert_eq!(link.transfer_seconds(0), 0.0);
        let t = link.transfer_seconds(1_000_000_000);
        assert!((t - 0.010001).abs() < 1e-12, "{t}");
    }

    #[test]
    fn retry_backoff_is_exponential_in_the_attempt() {
        let retry = RetryPolicy::new(4).with_backoff(0.1, 2.0);
        assert_eq!(retry.delay_s(1), 0.1);
        assert_eq!(retry.delay_s(2), 0.2);
        assert_eq!(retry.delay_s(3), 0.4);
        // Immediate policies stay immediate whatever the attempt.
        assert_eq!(RetryPolicy::default().delay_s(3), 0.0);
    }

    #[test]
    fn plan_builders_set_every_knob() {
        let plan = FaultPlan::new(vec![FaultEvent::new(
            1.0,
            2,
            FaultKind::Slowdown {
                duration_s: 0.5,
                factor: 3.0,
            },
        )])
        .with_warmup(0.2, 1.5)
        .with_recovery_tracking(0.9, 0.25, 2.0);
        assert_eq!(plan.faults[0].kind.name(), "slowdown");
        assert_eq!(plan.warmup_factor, 1.5);
        assert_eq!(plan.recovery_threshold, 0.9);
        assert_eq!(plan.timeline_bucket_s, 0.25);
        assert_eq!(plan.slo_window_s, 2.0);
    }

    #[test]
    #[should_panic(expected = "down time must be non-negative")]
    fn negative_down_time_is_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent::new(
            1.0,
            0,
            FaultKind::Crash { down_s: -1.0 },
        )]);
    }

    #[test]
    fn window_attainment_handles_empty_windows() {
        let w = FaultWindowStats {
            tier: "interactive".into(),
            completed: 0,
            met: 0,
        };
        assert_eq!(w.attainment(), 0.0);
        let outcome = FaultOutcome {
            at_s: 1.0,
            replica: 0,
            kind: FaultKind::Crash { down_s: 0.1 },
            recovered_at_s: Some(1.5),
            recovery_time_s: 0.5,
            windows: vec![FaultWindowStats {
                tier: "interactive".into(),
                completed: 4,
                met: 3,
            }],
        };
        assert_eq!(outcome.interactive_attainment(), 0.75);
    }
}
