//! Synthetic workloads, matching the paper's setup (Sec. VI):
//! Gaussian-sampled input/output lengths (the paper reports the means),
//! uniform expert routing (handled in `duplex-model`), and either
//! closed-loop refill or Poisson arrivals for the QPS sweeps.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::Request;

/// Distribution of request shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Mean prompt length Lin.
    pub mean_input: u64,
    /// Mean response length Lout.
    pub mean_output: u64,
    /// Coefficient of variation (std/mean) of both lengths; 0 makes the
    /// workload deterministic.
    pub cv: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Workload {
    /// Gaussian lengths with the paper-style 10% coefficient of
    /// variation around the reported means.
    pub fn gaussian(mean_input: u64, mean_output: u64) -> Self {
        Self { mean_input, mean_output, cv: 0.10, seed: 0x5EED }
    }

    /// Deterministic lengths (useful for tests and ablations).
    pub fn fixed(input: u64, output: u64) -> Self {
        Self { mean_input: input, mean_output: output, cv: 0.0, seed: 0x5EED }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the coefficient of variation.
    pub fn with_cv(mut self, cv: f64) -> Self {
        assert!(cv >= 0.0, "cv must be non-negative");
        self.cv = cv;
        self
    }
}

/// The arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrivals {
    /// Infinite backlog: a finished request is immediately replaced at
    /// the next stage boundary (the paper's default).
    ClosedLoop,
    /// Open loop: Poisson arrivals at `qps` queries per second
    /// (the Fig. 13 setup).
    Poisson {
        /// Mean queries per second.
        qps: f64,
    },
}

/// Stream of requests drawn from a [`Workload`] under an [`Arrivals`]
/// process.
#[derive(Debug)]
pub struct RequestSource {
    workload: Workload,
    arrivals: Arrivals,
    rng: StdRng,
    next_id: u64,
    clock: f64,
}

impl RequestSource {
    /// Create a source; request ids start at 0.
    pub fn new(workload: Workload, arrivals: Arrivals) -> Self {
        let rng = StdRng::seed_from_u64(workload.seed);
        Self { workload, arrivals, rng, next_id: 0, clock: 0.0 }
    }

    fn gaussian_len(&mut self, mean: u64) -> u64 {
        if self.workload.cv == 0.0 {
            return mean.max(1);
        }
        let std = self.workload.cv * mean as f64;
        let u1: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.rng.random();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let sample = mean as f64 + std * z;
        // Clamp to a sane band so a tail draw cannot dominate the run.
        sample.clamp(mean as f64 * 0.25, mean as f64 * 2.0).round().max(1.0) as u64
    }

    /// Draw the next request. For closed-loop sources arrival time is
    /// 0 (always already waiting); for Poisson sources the clock
    /// advances by an exponential inter-arrival gap.
    pub fn next_request(&mut self) -> Request {
        let arrival_s = match self.arrivals {
            Arrivals::ClosedLoop => 0.0,
            Arrivals::Poisson { qps } => {
                assert!(qps > 0.0, "qps must be positive");
                let u: f64 = self.rng.random::<f64>().max(f64::MIN_POSITIVE);
                self.clock += -u.ln() / qps;
                self.clock
            }
        };
        let r = Request {
            id: self.next_id,
            arrival_s,
            input_len: self.gaussian_len(self.workload.mean_input),
            output_len: self.gaussian_len(self.workload.mean_output),
        };
        self.next_id += 1;
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_workload_is_deterministic() {
        let mut s = RequestSource::new(Workload::fixed(128, 32), Arrivals::ClosedLoop);
        for _ in 0..10 {
            let r = s.next_request();
            assert_eq!(r.input_len, 128);
            assert_eq!(r.output_len, 32);
            assert_eq!(r.arrival_s, 0.0);
        }
    }

    #[test]
    fn gaussian_lengths_center_on_mean() {
        let mut s = RequestSource::new(Workload::gaussian(1000, 500), Arrivals::ClosedLoop);
        let n = 4000;
        let (mut in_sum, mut out_sum) = (0u64, 0u64);
        for _ in 0..n {
            let r = s.next_request();
            in_sum += r.input_len;
            out_sum += r.output_len;
            assert!(r.input_len >= 250 && r.input_len <= 2000);
        }
        let in_mean = in_sum as f64 / n as f64;
        let out_mean = out_sum as f64 / n as f64;
        assert!((in_mean - 1000.0).abs() < 20.0, "got {in_mean}");
        assert!((out_mean - 500.0).abs() < 10.0, "got {out_mean}");
    }

    #[test]
    fn poisson_rate_matches_qps() {
        let mut s =
            RequestSource::new(Workload::fixed(64, 16).with_seed(9), Arrivals::Poisson { qps: 8.0 });
        let n = 8000;
        let mut last = 0.0;
        for _ in 0..n {
            last = s.next_request().arrival_s;
        }
        let rate = n as f64 / last;
        assert!((rate - 8.0).abs() < 0.4, "got {rate}");
    }

    #[test]
    fn arrivals_are_monotone() {
        let mut s =
            RequestSource::new(Workload::fixed(64, 16), Arrivals::Poisson { qps: 2.0 });
        let mut prev = -1.0;
        for _ in 0..100 {
            let a = s.next_request().arrival_s;
            assert!(a >= prev);
            prev = a;
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut s = RequestSource::new(Workload::fixed(1, 1), Arrivals::ClosedLoop);
        for expect in 0..5u64 {
            assert_eq!(s.next_request().id, expect);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let w = Workload::gaussian(512, 512).with_seed(42);
        let mut a = RequestSource::new(w.clone(), Arrivals::ClosedLoop);
        let mut b = RequestSource::new(w, Arrivals::ClosedLoop);
        for _ in 0..20 {
            let (ra, rb) = (a.next_request(), b.next_request());
            assert_eq!(ra.input_len, rb.input_len);
            assert_eq!(ra.output_len, rb.output_len);
        }
    }
}
