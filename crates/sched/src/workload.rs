//! Synthetic workloads, matching the paper's setup (Sec. VI) plus the
//! scenario-suite arrival processes:
//! Gaussian-sampled input/output lengths (the paper reports the means),
//! uniform expert routing (handled in `duplex-model`), and an
//! [`Arrivals`] process — closed-loop refill, Poisson (the QPS
//! sweeps), Markov-modulated on/off bursts, diurnal rate curves, or
//! replay of a recorded [`crate::trace`] file.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::request::Request;
use crate::trace::TraceRequest;

/// Distribution of request shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Mean prompt length Lin.
    pub mean_input: u64,
    /// Mean response length Lout.
    pub mean_output: u64,
    /// Coefficient of variation (std/mean) of both lengths; 0 makes the
    /// workload deterministic.
    pub cv: f64,
    /// RNG seed for reproducibility.
    pub seed: u64,
}

impl Workload {
    /// Gaussian lengths with the paper-style 10% coefficient of
    /// variation around the reported means.
    pub fn gaussian(mean_input: u64, mean_output: u64) -> Self {
        Self {
            mean_input,
            mean_output,
            cv: 0.10,
            seed: 0x5EED,
        }
    }

    /// Deterministic lengths (useful for tests and ablations).
    pub fn fixed(input: u64, output: u64) -> Self {
        Self {
            mean_input: input,
            mean_output: output,
            cv: 0.0,
            seed: 0x5EED,
        }
    }

    /// Replace the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replace the coefficient of variation.
    pub fn with_cv(mut self, cv: f64) -> Self {
        assert!(cv >= 0.0, "cv must be non-negative");
        self.cv = cv;
        self
    }
}

/// The arrival process.
///
/// `ClosedLoop` and `Poisson` are the paper's two setups; the rest are
/// the scenario-suite processes: `Bursty` is an on/off Markov-modulated
/// Poisson process (exponential sojourns, two rates), `Diurnal` is a
/// non-homogeneous Poisson process with a sinusoidal rate curve
/// (sampled by thinning), and `Trace` replays a recorded arrival/shape
/// trace (see [`crate::trace`]).
#[derive(Debug, Clone, PartialEq)]
pub enum Arrivals {
    /// Infinite backlog: a finished request is immediately replaced at
    /// the next stage boundary (the paper's default).
    ClosedLoop,
    /// Open loop: Poisson arrivals at `qps` queries per second
    /// (the Fig. 13 setup).
    Poisson {
        /// Mean queries per second.
        qps: f64,
    },
    /// On/off Markov-modulated Poisson process: exponential sojourns in
    /// a quiet phase (`base_qps`, may be 0) and a burst phase
    /// (`burst_qps`).
    Bursty {
        /// Arrival rate in the quiet phase (>= 0).
        base_qps: f64,
        /// Arrival rate in the burst phase (> 0).
        burst_qps: f64,
        /// Mean quiet-phase duration in seconds.
        mean_off_s: f64,
        /// Mean burst duration in seconds.
        mean_on_s: f64,
    },
    /// Non-homogeneous Poisson with rate
    /// `mean_qps * (1 + amplitude * sin(2π t / period_s))`, the
    /// one-day-in-miniature load curve.
    Diurnal {
        /// Time-averaged queries per second.
        mean_qps: f64,
        /// Period of the rate curve in seconds.
        period_s: f64,
        /// Relative swing around the mean, in `[0, 1]`.
        amplitude: f64,
    },
    /// Replay recorded arrivals and request shapes in timestamp order.
    /// The workload's length distribution is ignored; drawing more
    /// requests than the trace holds panics.
    Trace {
        /// The recorded requests, sorted by arrival time.
        requests: Arc<Vec<TraceRequest>>,
    },
}

impl Arrivals {
    /// Trace replay over `requests` (sorted by arrival time on load).
    pub fn trace(requests: Vec<TraceRequest>) -> Self {
        let mut requests = requests;
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        Arrivals::Trace {
            requests: Arc::new(requests),
        }
    }
}

/// Stream of requests drawn from a [`Workload`] under an [`Arrivals`]
/// process.
#[derive(Debug)]
pub struct RequestSource {
    workload: Workload,
    arrivals: Arrivals,
    rng: StdRng,
    next_id: u64,
    clock: f64,
    /// Bursty state: currently in the burst phase, and when the current
    /// phase ends.
    burst_on: bool,
    phase_until: f64,
}

impl RequestSource {
    /// Create a source; request ids start at 0.
    pub fn new(workload: Workload, arrivals: Arrivals) -> Self {
        if let Arrivals::Bursty {
            base_qps,
            burst_qps,
            mean_off_s,
            mean_on_s,
        } = &arrivals
        {
            assert!(*base_qps >= 0.0, "base_qps must be non-negative");
            assert!(*burst_qps > 0.0, "burst_qps must be positive");
            assert!(
                *mean_on_s > 0.0 && *mean_off_s > 0.0,
                "phase durations must be positive"
            );
        }
        if let Arrivals::Diurnal {
            mean_qps,
            period_s,
            amplitude,
        } = &arrivals
        {
            assert!(*mean_qps > 0.0, "mean_qps must be positive");
            assert!(*period_s > 0.0, "period must be positive");
            assert!(
                (0.0..=1.0).contains(amplitude),
                "amplitude must be in [0, 1]"
            );
        }
        let mut rng = StdRng::seed_from_u64(workload.seed);
        // Bursty sources start in the quiet phase; draw its length now
        // so the first burst onset is seed-determined.
        let (burst_on, phase_until) = match &arrivals {
            Arrivals::Bursty { mean_off_s, .. } => (false, exp_sample(&mut rng, 1.0 / mean_off_s)),
            _ => (false, 0.0),
        };
        Self {
            workload,
            arrivals,
            rng,
            next_id: 0,
            clock: 0.0,
            burst_on,
            phase_until,
        }
    }

    /// Requests remaining when the source replays a finite trace;
    /// `None` for the unbounded synthetic processes.
    pub fn remaining(&self) -> Option<usize> {
        match &self.arrivals {
            Arrivals::Trace { requests } => {
                Some(requests.len().saturating_sub(self.next_id as usize))
            }
            _ => None,
        }
    }

    fn gaussian_len(&mut self, mean: u64) -> u64 {
        sample_len(&mut self.rng, mean, self.workload.cv)
    }

    /// Advance the clock to the next arrival of the on/off process.
    fn next_bursty_arrival(
        &mut self,
        base_qps: f64,
        burst_qps: f64,
        mean_off_s: f64,
        mean_on_s: f64,
    ) -> f64 {
        loop {
            let rate = if self.burst_on { burst_qps } else { base_qps };
            // Memorylessness lets us re-draw the gap after each phase
            // switch: if the candidate arrival lands inside the current
            // phase it stands, otherwise we jump to the phase boundary,
            // flip phases, and draw again at the new rate.
            let candidate = if rate > 0.0 {
                self.clock + exp_sample(&mut self.rng, rate)
            } else {
                f64::INFINITY
            };
            if candidate <= self.phase_until {
                self.clock = candidate;
                return candidate;
            }
            self.clock = self.phase_until;
            self.burst_on = !self.burst_on;
            let mean = if self.burst_on { mean_on_s } else { mean_off_s };
            self.phase_until += exp_sample(&mut self.rng, 1.0 / mean);
        }
    }

    /// Thinning sampler for the sinusoidal rate curve: candidates at
    /// the peak rate, accepted with probability `rate(t) / peak`.
    fn next_diurnal_arrival(&mut self, mean_qps: f64, period_s: f64, amplitude: f64) -> f64 {
        let peak = mean_qps * (1.0 + amplitude);
        loop {
            self.clock += exp_sample(&mut self.rng, peak);
            let rate = mean_qps
                * (1.0 + amplitude * (2.0 * std::f64::consts::PI * self.clock / period_s).sin());
            let u: f64 = self.rng.random();
            if u * peak <= rate {
                return self.clock;
            }
        }
    }

    /// Draw the next request. For closed-loop sources arrival time is
    /// 0 (always already waiting); for the open-loop processes the
    /// clock advances to the next arrival.
    ///
    /// # Panics
    ///
    /// Panics when a `Trace` source is drawn past the end of its trace.
    pub fn next_request(&mut self) -> Request {
        if let Arrivals::Trace { requests } = &self.arrivals {
            let i = self.next_id as usize;
            let entry = requests
                .get(i)
                .unwrap_or_else(|| panic!("trace exhausted after {i} requests"))
                .clone();
            let r = Request {
                id: self.next_id,
                arrival_s: entry.arrival_s,
                input_len: entry.input_len.max(1),
                output_len: entry.output_len.max(1),
            };
            self.next_id += 1;
            return r;
        }
        let arrival_s = match self.arrivals {
            Arrivals::ClosedLoop => 0.0,
            Arrivals::Poisson { qps } => {
                assert!(qps > 0.0, "qps must be positive");
                self.clock += exp_sample(&mut self.rng, qps);
                self.clock
            }
            Arrivals::Bursty {
                base_qps,
                burst_qps,
                mean_off_s,
                mean_on_s,
            } => self.next_bursty_arrival(base_qps, burst_qps, mean_off_s, mean_on_s),
            Arrivals::Diurnal {
                mean_qps,
                period_s,
                amplitude,
            } => self.next_diurnal_arrival(mean_qps, period_s, amplitude),
            Arrivals::Trace { .. } => unreachable!("handled above"),
        };
        let r = Request {
            id: self.next_id,
            arrival_s,
            input_len: self.gaussian_len(self.workload.mean_input),
            output_len: self.gaussian_len(self.workload.mean_output),
        };
        self.next_id += 1;
        r
    }

    /// Export the source's dynamic state for a snapshot: RNG words,
    /// next request id, arrival clock, and the bursty phase machine.
    /// The workload and arrival process are configuration and are
    /// reconstructed from the scenario on resume.
    pub(crate) fn export_state(&self) -> ([u64; 4], u64, f64, bool, f64) {
        (
            self.rng.state(),
            self.next_id,
            self.clock,
            self.burst_on,
            self.phase_until,
        )
    }

    /// Restore the dynamic state captured by
    /// [`export_state`](Self::export_state).
    pub(crate) fn import_state(
        &mut self,
        rng: [u64; 4],
        next_id: u64,
        clock: f64,
        burst_on: bool,
        phase_until: f64,
    ) {
        self.rng = StdRng::from_state(rng);
        self.next_id = next_id;
        self.clock = clock;
        self.burst_on = burst_on;
        self.phase_until = phase_until;
    }
}

/// One exponential sample at `rate` (mean `1/rate`).
pub(crate) fn exp_sample(rng: &mut StdRng, rate: f64) -> f64 {
    let u: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    -u.ln() / rate
}

/// One Gaussian length sample around `mean` with coefficient of
/// variation `cv`, clamped to `[mean/4, 2*mean]` so a tail draw cannot
/// dominate a run; `cv == 0` is deterministic. Shared by the request
/// source and the scenario scheduler's follow-up generator.
pub(crate) fn sample_len(rng: &mut StdRng, mean: u64, cv: f64) -> u64 {
    if cv == 0.0 {
        return mean.max(1);
    }
    let std = cv * mean as f64;
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let sample = mean as f64 + std * z;
    sample
        .clamp(mean as f64 * 0.25, mean as f64 * 2.0)
        .round()
        .max(1.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_workload_is_deterministic() {
        let mut s = RequestSource::new(Workload::fixed(128, 32), Arrivals::ClosedLoop);
        for _ in 0..10 {
            let r = s.next_request();
            assert_eq!(r.input_len, 128);
            assert_eq!(r.output_len, 32);
            assert_eq!(r.arrival_s, 0.0);
        }
    }

    #[test]
    fn gaussian_lengths_center_on_mean() {
        let mut s = RequestSource::new(Workload::gaussian(1000, 500), Arrivals::ClosedLoop);
        let n = 4000;
        let (mut in_sum, mut out_sum) = (0u64, 0u64);
        for _ in 0..n {
            let r = s.next_request();
            in_sum += r.input_len;
            out_sum += r.output_len;
            assert!(r.input_len >= 250 && r.input_len <= 2000);
        }
        let in_mean = in_sum as f64 / n as f64;
        let out_mean = out_sum as f64 / n as f64;
        assert!((in_mean - 1000.0).abs() < 20.0, "got {in_mean}");
        assert!((out_mean - 500.0).abs() < 10.0, "got {out_mean}");
    }

    #[test]
    fn poisson_rate_matches_qps() {
        let mut s = RequestSource::new(
            Workload::fixed(64, 16).with_seed(9),
            Arrivals::Poisson { qps: 8.0 },
        );
        let n = 8000;
        let mut last = 0.0;
        for _ in 0..n {
            last = s.next_request().arrival_s;
        }
        let rate = n as f64 / last;
        assert!((rate - 8.0).abs() < 0.4, "got {rate}");
    }

    #[test]
    fn arrivals_are_monotone() {
        for arrivals in [
            Arrivals::Poisson { qps: 2.0 },
            Arrivals::Bursty {
                base_qps: 0.5,
                burst_qps: 20.0,
                mean_off_s: 4.0,
                mean_on_s: 1.0,
            },
            Arrivals::Diurnal {
                mean_qps: 3.0,
                period_s: 60.0,
                amplitude: 0.8,
            },
        ] {
            let mut s = RequestSource::new(Workload::fixed(64, 16), arrivals.clone());
            let mut prev = -1.0;
            for _ in 0..200 {
                let a = s.next_request().arrival_s;
                assert!(a >= prev, "{arrivals:?}");
                prev = a;
            }
        }
    }

    #[test]
    fn ids_are_sequential() {
        let mut s = RequestSource::new(Workload::fixed(1, 1), Arrivals::ClosedLoop);
        for expect in 0..5u64 {
            assert_eq!(s.next_request().id, expect);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let w = Workload::gaussian(512, 512).with_seed(42);
        let mut a = RequestSource::new(w.clone(), Arrivals::ClosedLoop);
        let mut b = RequestSource::new(w, Arrivals::ClosedLoop);
        for _ in 0..20 {
            let (ra, rb) = (a.next_request(), b.next_request());
            assert_eq!(ra.input_len, rb.input_len);
            assert_eq!(ra.output_len, rb.output_len);
        }
    }

    #[test]
    fn bursty_long_run_rate_sits_between_phase_rates() {
        let arr = Arrivals::Bursty {
            base_qps: 1.0,
            burst_qps: 50.0,
            mean_off_s: 5.0,
            mean_on_s: 5.0,
        };
        let mut s = RequestSource::new(Workload::fixed(8, 4).with_seed(3), arr);
        let n = 20_000;
        let mut last = 0.0;
        for _ in 0..n {
            last = s.next_request().arrival_s;
        }
        // Expected long-run rate: time-weighted mean of the phase rates
        // (equal sojourns here), 25.5 qps.
        let rate = n as f64 / last;
        assert!(rate > 15.0 && rate < 35.0, "got {rate}");
    }

    #[test]
    fn bursty_produces_distinct_phases() {
        // With a silent quiet phase, gaps cluster: short ones inside
        // bursts, long ones spanning quiet phases.
        let arr = Arrivals::Bursty {
            base_qps: 0.0,
            burst_qps: 100.0,
            mean_off_s: 2.0,
            mean_on_s: 0.5,
        };
        let mut s = RequestSource::new(Workload::fixed(8, 4).with_seed(11), arr);
        let mut prev = 0.0;
        let (mut short, mut long) = (0u32, 0u32);
        for _ in 0..2000 {
            let a = s.next_request().arrival_s;
            let gap = a - prev;
            prev = a;
            if gap < 0.1 {
                short += 1;
            } else if gap > 0.5 {
                long += 1;
            }
        }
        assert!(short > 1500, "burst gaps dominate: {short}");
        assert!(long > 10, "quiet-phase gaps visible: {long}");
    }

    #[test]
    fn diurnal_mean_rate_matches_and_oscillates() {
        let arr = Arrivals::Diurnal {
            mean_qps: 10.0,
            period_s: 100.0,
            amplitude: 0.9,
        };
        let mut s = RequestSource::new(Workload::fixed(8, 4).with_seed(5), arr);
        let n = 20_000usize;
        let mut arrivals = Vec::with_capacity(n);
        for _ in 0..n {
            arrivals.push(s.next_request().arrival_s);
        }
        let span = arrivals[n - 1];
        let rate = n as f64 / span;
        assert!((rate - 10.0).abs() < 1.0, "mean rate {rate}");
        // Count arrivals in the peak vs trough quarter of each period:
        // peak quarter is centered on t = period/4, trough on 3/4.
        let (mut peak, mut trough) = (0u32, 0u32);
        for &a in &arrivals {
            let phase = (a / 100.0).fract();
            if (0.125..0.375).contains(&phase) {
                peak += 1;
            } else if (0.625..0.875).contains(&phase) {
                trough += 1;
            }
        }
        assert!(
            peak as f64 > 2.5 * trough as f64,
            "peak {peak} vs trough {trough} arrivals"
        );
    }

    #[test]
    fn trace_replays_shapes_in_order() {
        let trace = vec![
            TraceRequest {
                arrival_s: 0.5,
                input_len: 100,
                output_len: 10,
            },
            TraceRequest {
                arrival_s: 0.1,
                input_len: 200,
                output_len: 20,
            },
            TraceRequest {
                arrival_s: 0.9,
                input_len: 300,
                output_len: 30,
            },
        ];
        let mut s = RequestSource::new(Workload::fixed(1, 1), Arrivals::trace(trace));
        assert_eq!(s.remaining(), Some(3));
        let a = s.next_request();
        assert_eq!((a.arrival_s, a.input_len, a.output_len), (0.1, 200, 20));
        let b = s.next_request();
        assert_eq!((b.arrival_s, b.input_len), (0.5, 100));
        let c = s.next_request();
        assert_eq!(c.arrival_s, 0.9);
        assert_eq!(s.remaining(), Some(0));
    }

    #[test]
    #[should_panic(expected = "trace exhausted")]
    fn trace_overdraw_panics() {
        let trace = vec![TraceRequest {
            arrival_s: 0.0,
            input_len: 8,
            output_len: 2,
        }];
        let mut s = RequestSource::new(Workload::fixed(1, 1), Arrivals::trace(trace));
        s.next_request();
        s.next_request();
    }
}
