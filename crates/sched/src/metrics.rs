//! Latency percentiles and the simulation report.
//!
//! Per-request records keep only O(1) state (first/last token time and
//! a token count), and the TBT population is summarized by a
//! fixed-size streaming [`LatencyDigest`] — so a paper-scale run over
//! millions of requests reports percentiles without per-token heap
//! growth.

use crate::request::RequestRecord;

/// Linear-interpolation percentile over unsorted samples.
///
/// Returns 0.0 for an empty slice (reports print "-" for missing data,
/// and an empty percentile must not poison aggregate math).
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// p50/p90/p99 summary of one latency population.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample count.
    pub count: usize,
}

impl LatencySummary {
    /// Summarize a sample population.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        Self {
            p50: percentile(samples, 50.0),
            p90: percentile(samples, 90.0),
            p99: percentile(samples, 99.0),
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            count: samples.len(),
        }
    }
}

/// Smallest latency the digest resolves (1 ns).
const DIGEST_FLOOR_S: f64 = 1e-9;
/// Geometric bucket growth: 2% wide buckets.
const DIGEST_GROWTH: f64 = 1.02;
/// Buckets spanning 1 ns .. ~10^4 s at 2% resolution.
const DIGEST_BUCKETS: usize = 1520;

/// Streaming latency population: fixed-size log-spaced histogram with
/// per-bucket sums.
///
/// Percentile queries return the mean of the samples in the bucket the
/// requested rank falls into, so they are exact for degenerate
/// populations (every sample identical — the steady-state TBT case)
/// and within the 2% bucket resolution otherwise. Memory is O(1)
/// (~1.5k buckets), independent of the sample count, which is what
/// lets million-request simulations keep latency percentiles.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LatencyDigest {
    /// Per-bucket (count, sum); allocated lazily on the first record.
    buckets: Vec<(u64, f64)>,
    count: u64,
    sum: f64,
}

impl LatencyDigest {
    fn bucket_of(value: f64) -> usize {
        // NaN and sub-floor values both land in bucket 0.
        if value.partial_cmp(&DIGEST_FLOOR_S) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        let idx = ((value / DIGEST_FLOOR_S).ln() / DIGEST_GROWTH.ln()) as usize;
        idx.min(DIGEST_BUCKETS - 1)
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.record_n(value, 1);
    }

    /// Record `n` identical samples with one bucket update (the
    /// scheduler's per-stage fast path: every request advancing in a
    /// stage sees the same token gap).
    pub fn record_n(&mut self, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.record_n_in(Self::bucket_of(value), value, n);
    }

    /// The bucket `value` lands in (exactly [`LatencyDigest::record_n`]'s
    /// choice). The bucket math costs two `ln` calls, so a caller
    /// recording one value into several digests — the scheduler feeds
    /// the fleet digest plus one digest per SLO tier every stage —
    /// looks the bucket up once and records via
    /// [`LatencyDigest::record_n_in`].
    pub fn bucket_for(value: f64) -> usize {
        Self::bucket_of(value)
    }

    /// [`LatencyDigest::record_n`] with the bucket index precomputed by
    /// [`LatencyDigest::bucket_for`] on the same `value`.
    pub fn record_n_in(&mut self, bucket: usize, value: f64, n: u64) {
        if n == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets.resize(DIGEST_BUCKETS, (0, 0.0));
        }
        let b = &mut self.buckets[bucket];
        b.0 += n;
        b.1 += value * n as f64;
        self.count += n;
        self.sum += value * n as f64;
    }

    /// Recorded sample count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of all samples (exact).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        self.sum / self.count as f64
    }

    /// Approximate percentile: the mean of the bucket holding the
    /// requested rank (see the type docs for the error bound).
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=100.0).contains(&p), "percentile must be in 0..=100");
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for &(n, sum) in &self.buckets {
            seen += n;
            if seen >= target {
                return sum / n as f64;
            }
        }
        self.mean()
    }

    /// Fold another digest's population into this one, bucket by
    /// bucket — the fleet-aggregation primitive: merged percentiles
    /// are exactly the percentiles of the concatenated sample stream
    /// (both digests share the same fixed bucket layout).
    pub fn merge(&mut self, other: &LatencyDigest) {
        if other.count == 0 {
            return;
        }
        if self.buckets.is_empty() {
            self.buckets.resize(DIGEST_BUCKETS, (0, 0.0));
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            mine.0 += theirs.0;
            mine.1 += theirs.1;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Export the digest for a snapshot: the nonzero buckets as
    /// `(index, count, sum)` plus the global count and sum. The global
    /// sum is accumulated in record order and is *not* recomputable
    /// from the bucket sums bit-exactly, so it is carried explicitly.
    pub(crate) fn export_state(&self) -> (Vec<(u64, u64, f64)>, u64, f64) {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &(n, _))| n > 0)
            .map(|(i, &(n, sum))| (i as u64, n, sum))
            .collect();
        (buckets, self.count, self.sum)
    }

    /// Rebuild a digest from [`export_state`](Self::export_state)
    /// output. A never-recorded digest round-trips to
    /// `LatencyDigest::default()` — bucket allocation stays lazy so
    /// `PartialEq` cannot tell a restored digest from the original.
    pub(crate) fn import_state(buckets: &[(u64, u64, f64)], count: u64, sum: f64) -> Self {
        let mut d = LatencyDigest::default();
        if count == 0 {
            return d;
        }
        d.buckets.resize(DIGEST_BUCKETS, (0, 0.0));
        for &(i, n, s) in buckets {
            d.buckets[i as usize] = (n, s);
        }
        d.count = count;
        d.sum = sum;
        d
    }

    /// p50/p90/p99/mean summary of the recorded population.
    pub fn summary(&self) -> LatencySummary {
        if self.count == 0 {
            return LatencySummary::default();
        }
        LatencySummary {
            p50: self.quantile(50.0),
            p90: self.quantile(90.0),
            p99: self.quantile(99.0),
            mean: self.mean(),
            count: self.count as usize,
        }
    }
}

/// One executed stage.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageRecord {
    /// Stage latency in seconds.
    pub seconds: f64,
    /// Whether the stage was mixed (contained prefills).
    pub mixed: bool,
    /// Requests in the stage.
    pub batch: usize,
    /// Tokens through the FC path.
    pub tokens: u64,
}

/// Aggregate stage counters, maintained whether or not per-stage
/// records are kept (see `SimulationConfig::record_stages`): the
/// throughput and stage-mix metrics derive from these, so truncating
/// the per-stage log never changes them.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageStats {
    /// Stages executed.
    pub stages: u64,
    /// Stages that contained at least one prefill.
    pub mixed: u64,
    /// Σ batch size over stages (= tokens generated, one per request
    /// per stage).
    pub batch_sum: u64,
    /// Σ FC-path tokens over stages.
    pub token_sum: u64,
}

impl StageStats {
    /// Fold one stage into the counters.
    pub fn record(&mut self, record: &StageRecord) {
        self.stages += 1;
        self.mixed += u64::from(record.mixed);
        self.batch_sum += record.batch as u64;
        self.token_sum += record.tokens;
    }

    /// Fold another replica's counters into this one (fleet totals).
    pub fn merge(&mut self, other: &StageStats) {
        self.stages += other.stages;
        self.mixed += other.mixed;
        self.batch_sum += other.batch_sum;
        self.token_sum += other.token_sum;
    }
}

/// Per-SLO-tier attainment counters (scenario runs; see
/// `crate::scenario`).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TierStats {
    /// Tier display name ("interactive", "batch", ...).
    pub name: String,
    /// T2FT deadline the tier promises, in seconds.
    pub t2ft_deadline_s: f64,
    /// Mean-TBT deadline the tier promises, in seconds (0 = none).
    pub tbt_deadline_s: f64,
    /// Requests of this tier that completed.
    pub completed: u64,
    /// Completed requests that met every deadline.
    pub met: u64,
    /// Output tokens of SLO-attaining requests (the goodput numerator).
    pub good_tokens: u64,
    /// Streaming token-gap population of this tier's decoding requests
    /// (including in-flight ones), for per-tier tail latency — the
    /// metric mixed-stage prefill spikes show up in, and the one
    /// chunked prefill is built to flatten.
    pub tbt_digest: LatencyDigest,
}

impl TierStats {
    /// Fraction of this tier's completed requests that met their SLO.
    pub fn attainment(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.met as f64 / self.completed as f64
    }

    /// This tier's TBT p99 in seconds (0 with no recorded gaps).
    pub fn tbt_p99_s(&self) -> f64 {
        self.tbt_digest.quantile(99.0)
    }

    /// Fold another replica's counters for the *same tier* into this
    /// one (matched by position when merging [`SloStats`]).
    ///
    /// # Panics
    ///
    /// Panics when the tier names differ — merging mismatched fleets
    /// would silently blend unrelated SLOs.
    pub fn merge(&mut self, other: &TierStats) {
        assert_eq!(self.name, other.name, "merging different tiers");
        self.completed += other.completed;
        self.met += other.met;
        self.good_tokens += other.good_tokens;
        self.tbt_digest.merge(&other.tbt_digest);
    }
}

/// SLO accounting across tiers. Empty (no tiers) for runs without SLO
/// classes — the plain simulator leaves it default.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloStats {
    /// One entry per configured tier.
    pub tiers: Vec<TierStats>,
}

impl SloStats {
    /// Whether any SLO accounting happened.
    pub fn is_empty(&self) -> bool {
        self.tiers.is_empty()
    }

    /// Completed requests across all tiers.
    pub fn completed(&self) -> u64 {
        self.tiers.iter().map(|t| t.completed).sum()
    }

    /// Overall SLO attainment: attained / completed across tiers.
    pub fn attainment(&self) -> f64 {
        let done = self.completed();
        if done == 0 {
            return 0.0;
        }
        self.tiers.iter().map(|t| t.met).sum::<u64>() as f64 / done as f64
    }

    /// Output tokens of SLO-attaining requests across tiers.
    pub fn good_tokens(&self) -> u64 {
        self.tiers.iter().map(|t| t.good_tokens).sum()
    }

    /// Fold another replica's per-tier counters into this one. An
    /// empty side adopts the other's tiers; otherwise the tier lists
    /// must match position by position (same scenario on every
    /// replica).
    pub fn merge(&mut self, other: &SloStats) {
        if other.tiers.is_empty() {
            return;
        }
        if self.tiers.is_empty() {
            self.tiers = other.tiers.clone();
            return;
        }
        assert_eq!(
            self.tiers.len(),
            other.tiers.len(),
            "merging fleets with different tier sets"
        );
        for (mine, theirs) in self.tiers.iter_mut().zip(&other.tiers) {
            mine.merge(theirs);
        }
    }
}

/// Prefix-reuse accounting for multi-turn scenarios: how much prefill
/// the KV cache saved, and what retention cost.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KvReuseStats {
    /// Prompt tokens whose KV was still resident at admission (their
    /// prefill was skipped).
    pub reused_prefill_tokens: u64,
    /// Prompt tokens actually prefilled (fresh requests, evicted
    /// histories, and new follow-up suffixes).
    pub prefilled_tokens: u64,
    /// Parked conversation histories evicted before their follow-up
    /// arrived (those follow-ups re-prefill in full).
    pub parked_evictions: u64,
    /// Follow-up admissions that found their history resident.
    pub reuse_hits: u64,
    /// Follow-up admissions that had to re-prefill their history.
    pub reuse_misses: u64,
}

impl KvReuseStats {
    /// Fraction of prompt tokens served from resident KV.
    pub fn reuse_fraction(&self) -> f64 {
        let total = self.reused_prefill_tokens + self.prefilled_tokens;
        if total == 0 {
            return 0.0;
        }
        self.reused_prefill_tokens as f64 / total as f64
    }

    /// Fold another replica's counters into this one (fleet totals).
    pub fn merge(&mut self, other: &KvReuseStats) {
        self.reused_prefill_tokens += other.reused_prefill_tokens;
        self.prefilled_tokens += other.prefilled_tokens;
        self.parked_evictions += other.parked_evictions;
        self.reuse_hits += other.reuse_hits;
        self.reuse_misses += other.reuse_misses;
    }
}

/// Result of one simulation run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SimReport {
    /// Completed requests with their O(1) latency records.
    pub completed: Vec<RequestRecord>,
    /// Every executed stage, in order (empty when the run disabled
    /// per-stage recording; the aggregates in `stage_stats` are always
    /// maintained).
    pub stages: Vec<StageRecord>,
    /// Aggregate stage counters.
    pub stage_stats: StageStats,
    /// Streaming token-gap (TBT) population across all requests,
    /// including ones still in flight at truncation.
    pub tbt_digest: LatencyDigest,
    /// Total simulated wall-clock time in seconds.
    pub total_time_s: f64,
    /// SLO attainment per tier (empty unless the run declared tiers).
    pub slo: SloStats,
    /// Prefix-reuse accounting (zeros unless the run used multi-turn
    /// conversations).
    pub kv_reuse: KvReuseStats,
    /// Preemption and multiplexing counters (zeros unless the run used
    /// a preemptive policy).
    pub preempt: crate::preempt::PreemptStats,
}

impl SimReport {
    /// Total generated tokens across completed requests.
    pub fn total_tokens(&self) -> u64 {
        self.completed.iter().map(|r| r.tokens).sum()
    }

    /// Serving throughput in generated tokens per second.
    pub fn throughput_tokens_per_s(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.total_tokens() as f64 / self.total_time_s
    }

    /// Tokens generated by all stages (each request in a stage emits
    /// exactly one token), counting partially completed requests too —
    /// the right numerator for truncated steady-state runs.
    pub fn generated_tokens(&self) -> u64 {
        self.stage_stats.batch_sum
    }

    /// Tokens pushed through the batched FC/MoE path across all stages
    /// (whole prompts during prefills plus one per decoding request) —
    /// the compute-volume counterpart of [`SimReport::generated_tokens`].
    pub fn fc_tokens(&self) -> u64 {
        self.stage_stats.token_sum
    }

    /// Steady-state generation throughput in tokens per second,
    /// counting in-flight requests' tokens.
    pub fn generation_throughput(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.generated_tokens() as f64 / self.total_time_s
    }

    /// TBT summary from the streaming digest.
    pub fn tbt(&self) -> LatencySummary {
        self.tbt_digest.summary()
    }

    /// T2FT summary.
    pub fn t2ft(&self) -> LatencySummary {
        let samples: Vec<f64> = self.completed.iter().map(|r| r.t2ft()).collect();
        LatencySummary::of(&samples)
    }

    /// End-to-end latency summary.
    pub fn e2e(&self) -> LatencySummary {
        let samples: Vec<f64> = self.completed.iter().map(|r| r.e2e()).collect();
        LatencySummary::of(&samples)
    }

    /// Fraction of stages that were decoding-only (Fig. 5(a)).
    pub fn decode_only_fraction(&self) -> f64 {
        if self.stage_stats.stages == 0 {
            return 0.0;
        }
        (self.stage_stats.stages - self.stage_stats.mixed) as f64 / self.stage_stats.stages as f64
    }

    /// Mean batch size across stages.
    pub fn mean_batch(&self) -> f64 {
        if self.stage_stats.stages == 0 {
            return 0.0;
        }
        self.stage_stats.batch_sum as f64 / self.stage_stats.stages as f64
    }

    /// Overall SLO attainment (0 when the run declared no tiers).
    pub fn slo_attainment(&self) -> f64 {
        self.slo.attainment()
    }

    /// Goodput: output tokens of SLO-attaining requests per second of
    /// simulated time. Falls back to 0 without tiers or time.
    pub fn goodput_tokens_per_s(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.slo.good_tokens() as f64 / self.total_time_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::Request;

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile(&v, 100.0) - 4.0).abs() < 1e-12);
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_unordered_input() {
        let v = [4.0, 1.0, 3.0, 2.0];
        assert!((percentile(&v, 50.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn percentile_range_checked() {
        percentile(&[1.0], 101.0);
    }

    #[test]
    fn summary_orders_percentiles() {
        let samples: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let s = LatencySummary::of(&samples);
        assert!(s.p50 < s.p90 && s.p90 < s.p99);
        assert_eq!(s.count, 1000);
        assert!((s.mean - 500.5).abs() < 1e-9);
    }

    #[test]
    fn digest_is_exact_for_identical_samples() {
        // The steady-state TBT case: all gaps equal one stage latency.
        let mut d = LatencyDigest::default();
        d.record_n(0.02, 1000);
        let s = d.summary();
        assert!((s.p50 - 0.02).abs() < 1e-12);
        assert!((s.p99 - 0.02).abs() < 1e-12);
        assert!((s.mean - 0.02).abs() < 1e-12);
        assert_eq!(s.count, 1000);
    }

    #[test]
    fn digest_percentiles_within_bucket_resolution() {
        let mut d = LatencyDigest::default();
        let samples: Vec<f64> = (1..=10_000).map(|i| i as f64 * 1e-4).collect();
        for &s in &samples {
            d.record(s);
        }
        let exact = LatencySummary::of(&samples);
        let approx = d.summary();
        for (a, e) in [
            (approx.p50, exact.p50),
            (approx.p90, exact.p90),
            (approx.p99, exact.p99),
        ] {
            assert!((a - e).abs() / e < 0.03, "approx {a} vs exact {e}");
        }
        assert!(
            (approx.mean - exact.mean).abs() / exact.mean < 1e-9,
            "mean is exact"
        );
        assert!(approx.p50 <= approx.p90 && approx.p90 <= approx.p99);
    }

    #[test]
    fn digest_handles_extremes_and_empty() {
        let d = LatencyDigest::default();
        assert_eq!(d.summary(), LatencySummary::default());
        let mut d = LatencyDigest::default();
        d.record(0.0);
        d.record(1e12);
        assert_eq!(d.count(), 2);
        assert!(d.quantile(0.0) >= 0.0);
        assert!(d.quantile(100.0) > 0.0);
    }

    fn report() -> SimReport {
        let mk = |id, first: f64, last: f64, tokens: u64| RequestRecord {
            request: Request {
                id,
                arrival_s: 0.0,
                input_len: 4,
                output_len: tokens,
            },
            first_token_s: first,
            last_token_s: last,
            tokens,
        };
        let stages = vec![
            StageRecord {
                seconds: 0.1,
                mixed: true,
                batch: 2,
                tokens: 10,
            },
            StageRecord {
                seconds: 0.1,
                mixed: false,
                batch: 2,
                tokens: 2,
            },
            StageRecord {
                seconds: 0.1,
                mixed: false,
                batch: 1,
                tokens: 1,
            },
        ];
        let mut stage_stats = StageStats::default();
        for s in &stages {
            stage_stats.record(s);
        }
        let mut tbt_digest = LatencyDigest::default();
        for gap in [0.1, 0.1, 0.2] {
            tbt_digest.record(gap);
        }
        SimReport {
            completed: vec![mk(0, 0.1, 0.3, 3), mk(1, 0.15, 0.35, 2)],
            stages,
            stage_stats,
            tbt_digest,
            total_time_s: 0.35,
            ..SimReport::default()
        }
    }

    #[test]
    fn throughput_counts_generated_tokens() {
        let r = report();
        assert_eq!(r.total_tokens(), 5);
        assert!((r.throughput_tokens_per_s() - 5.0 / 0.35).abs() < 1e-9);
        assert_eq!(r.generated_tokens(), 5);
        assert!((r.generation_throughput() - 5.0 / 0.35).abs() < 1e-9);
        // FC-path volume includes the mixed stage's prompt tokens.
        assert_eq!(r.fc_tokens(), 13);
    }

    #[test]
    fn decode_only_fraction_counts_stages() {
        let r = report();
        assert!((r.decode_only_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert!((r.mean_batch() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn tbt_population_spans_requests() {
        let r = report();
        assert_eq!(r.tbt().count, 3); // 2 gaps + 1 gap
        assert!((r.tbt().mean - 0.4 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_report_is_sane() {
        let r = SimReport::default();
        assert_eq!(r.throughput_tokens_per_s(), 0.0);
        assert_eq!(r.decode_only_fraction(), 0.0);
        assert_eq!(r.tbt().count, 0);
        assert!(r.slo.is_empty());
        assert_eq!(r.slo_attainment(), 0.0);
        assert_eq!(r.goodput_tokens_per_s(), 0.0);
        assert_eq!(r.kv_reuse.reuse_fraction(), 0.0);
    }

    #[test]
    fn slo_stats_aggregate_across_tiers() {
        let slo = SloStats {
            tiers: vec![
                TierStats {
                    name: "interactive".into(),
                    t2ft_deadline_s: 0.5,
                    tbt_deadline_s: 0.05,
                    completed: 10,
                    met: 8,
                    good_tokens: 800,
                    ..TierStats::default()
                },
                TierStats {
                    name: "batch".into(),
                    t2ft_deadline_s: 10.0,
                    tbt_deadline_s: 0.0,
                    completed: 5,
                    met: 5,
                    good_tokens: 2000,
                    ..TierStats::default()
                },
            ],
        };
        assert!((slo.tiers[0].attainment() - 0.8).abs() < 1e-12);
        assert!((slo.attainment() - 13.0 / 15.0).abs() < 1e-12);
        assert_eq!(slo.good_tokens(), 2800);
        let report = SimReport {
            slo,
            total_time_s: 2.0,
            ..SimReport::default()
        };
        assert!((report.goodput_tokens_per_s() - 1400.0).abs() < 1e-9);
        assert!((report.slo_attainment() - 13.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn digest_merge_equals_concatenated_stream() {
        let samples_a: Vec<f64> = (1..=500).map(|i| i as f64 * 1e-4).collect();
        let samples_b: Vec<f64> = (1..=300).map(|i| i as f64 * 3e-4).collect();
        let mut a = LatencyDigest::default();
        let mut b = LatencyDigest::default();
        let mut both = LatencyDigest::default();
        for &s in &samples_a {
            a.record(s);
            both.record(s);
        }
        for &s in &samples_b {
            b.record(s);
            both.record(s);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        // Bucket counts (hence ranks) merge exactly; sums only differ
        // by f64 addition order.
        assert_eq!(merged.count(), both.count());
        for p in [50.0, 90.0, 99.0] {
            let (m, b) = (merged.quantile(p), both.quantile(p));
            assert!((m - b).abs() / b < 1e-12, "p{p}: merged {m} vs both {b}");
        }
        assert!((merged.mean() - both.mean()).abs() / both.mean() < 1e-12);
        // Merging into an empty digest adopts the other population.
        let mut empty = LatencyDigest::default();
        empty.merge(&both);
        assert_eq!(empty.summary(), both.summary());
        // Merging an empty digest is a no-op (bit-exact).
        let before = merged.clone();
        merged.merge(&LatencyDigest::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn stage_and_kv_stats_merge_add_counters() {
        let mut s = StageStats {
            stages: 3,
            mixed: 1,
            batch_sum: 10,
            token_sum: 40,
        };
        s.merge(&StageStats {
            stages: 2,
            mixed: 2,
            batch_sum: 5,
            token_sum: 9,
        });
        assert_eq!(s.stages, 5);
        assert_eq!(s.mixed, 3);
        assert_eq!(s.batch_sum, 15);
        assert_eq!(s.token_sum, 49);

        let mut kv = KvReuseStats {
            reused_prefill_tokens: 10,
            prefilled_tokens: 90,
            ..KvReuseStats::default()
        };
        kv.merge(&KvReuseStats {
            reused_prefill_tokens: 40,
            prefilled_tokens: 60,
            reuse_hits: 2,
            ..KvReuseStats::default()
        });
        assert!((kv.reuse_fraction() - 0.25).abs() < 1e-12);
        assert_eq!(kv.reuse_hits, 2);
    }

    #[test]
    fn slo_merge_folds_matching_tiers() {
        let tier = |met: u64, completed: u64| TierStats {
            name: "interactive".into(),
            completed,
            met,
            good_tokens: met * 10,
            ..TierStats::default()
        };
        let mut a = SloStats {
            tiers: vec![tier(8, 10)],
        };
        let b = SloStats {
            tiers: vec![tier(5, 10)],
        };
        a.merge(&b);
        assert_eq!(a.completed(), 20);
        assert!((a.attainment() - 13.0 / 20.0).abs() < 1e-12);
        assert_eq!(a.good_tokens(), 130);
        // An empty side adopts the populated one; merging empty into
        // populated is a no-op.
        let mut empty = SloStats::default();
        empty.merge(&a);
        assert_eq!(empty.completed(), 20);
        a.merge(&SloStats::default());
        assert_eq!(a.completed(), 20);
    }

    #[test]
    #[should_panic(expected = "merging different tiers")]
    fn tier_merge_rejects_mismatched_names() {
        let mut a = TierStats {
            name: "interactive".into(),
            ..TierStats::default()
        };
        let b = TierStats {
            name: "batch".into(),
            ..TierStats::default()
        };
        a.merge(&b);
    }

    #[test]
    fn kv_reuse_fraction() {
        let kv = KvReuseStats {
            reused_prefill_tokens: 300,
            prefilled_tokens: 700,
            parked_evictions: 2,
            reuse_hits: 3,
            reuse_misses: 2,
        };
        assert!((kv.reuse_fraction() - 0.3).abs() < 1e-12);
    }
}
