//! Multi-replica cluster serving: N independent replicas — each its
//! own continuous-batching scheduler, KV cache and executor — behind a
//! pluggable [`Router`], multiplexed on one shared virtual clock.
//!
//! A [`ClusterSimulation`] scales the scenario scheduler
//! ([`crate::scenario`]) from one serving instance to a fleet:
//!
//! * **one global arrival stream** — the scenario's arrival process,
//!   tier draws and multi-turn follow-up spawning stay global (a
//!   conversation's next round can land on any replica), so seeded
//!   determinism is preserved: the RNG draw order is fixed by the
//!   global event order alone;
//! * **a [`Router`] decides placement** — every arriving request is
//!   routed exactly once, at its arrival time, against per-replica
//!   [`ReplicaSnapshot`]s (queue depth, outstanding tokens, KV
//!   residency of the request's conversation). Session-affinity
//!   routing is what lets multi-turn KV reuse survive behind the load
//!   balancer;
//! * **replicas run asynchronously on a shared virtual clock** — the
//!   driver alternates *dispatch* phases (route every arrival due by
//!   the fleet's next stage start) with *window* phases (each replica
//!   independently steps up to the next global synchronization point);
//!   replicas may be heterogeneous (different [`SimulationConfig`]s,
//!   different executors, different capacity
//!   [`ReplicaConfig::weight`]s);
//! * **reports merge losslessly** — per-replica [`SimReport`]s plus a
//!   fleet view built with the metrics `merge` APIs
//!   ([`crate::LatencyDigest::merge`] and friends): fleet percentiles
//!   are the percentiles of the concatenated per-replica populations,
//!   not an average of averages.
//!
//! A one-replica cluster is *exactly* a plain
//! [`crate::ScenarioSimulation`]: both drive the same
//! `ScenarioStream`/`ReplicaSim` machinery, and the cross-crate
//! proptests pin the equivalence.
//!
//! # The clock-merge invariant
//!
//! Between synchronization points, replicas share **nothing**: a
//! `ReplicaSim` step touches only replica-local
//! state, and every action that would touch shared state (the arrival
//! stream's RNG, follow-up queue, or the replica's parked-KV pool
//! whose occupancy those actions change) is buffered as an ordered
//! `RetireEvent`. A window runs each replica forward until its next
//! stage would start at or after the **window bound** — the next
//! global arrival time — or until a step buffers events; the driver
//! then applies every replica's buffered events against the shared
//! stream *in replica-index order*. Because windows are
//! side-effect-free and the merge order is fixed, executing the
//! windows concurrently (the [`ClusterConfig::parallel`] path, on the
//! vendored rayon pool) is **byte-identical** to executing them one
//! replica at a time in index order (the serial oracle): same RNG
//! sequence, same routing decisions, same reports, to the bit. The
//! integration tests assert this for every [`crate::RouterKind`].
//!
//! # Disaggregated prefill/decode pools
//!
//! [`ClusterSimulation::with_disagg`] partitions the fleet into a
//! prefill pool and a decode pool (see [`DisaggPlan`] and
//! `docs/placement-api.md`). Arrivals are then placed in two
//! dimensions at once via [`Router::place`]: a prefill replica runs
//! the prompt (chunked or whole, minus its final token) and buffers a
//! handoff event when it finishes; the
//! cluster delivers the handoff at the next merge point, pricing the
//! KV transfer over the plan's [`KvLinkSpec`] against the decode
//! replica chosen at *admission* time, where the request joins the
//! decode batch through the ordinary reuse-admission path (a one-token
//! prefill above the shipped context). Handoffs are buffered
//! replica-locally exactly like retire events, so the clock-merge
//! invariant — and serial/parallel byte-identity — is untouched.
//! Colocated mode (no plan) is the degenerate case and is byte-
//! identical to the pre-pool behavior.
//!
//! # Example
//!
//! Four fixed-latency replicas behind least-outstanding-work routing:
//!
//! ```
//! use duplex_model::ops::StageShape;
//! use duplex_sched::cluster::{ClusterSimulation, ReplicaConfig};
//! use duplex_sched::router::LeastOutstandingWork;
//! use duplex_sched::{
//!     Arrivals, PolicyKind, Scenario, SimulationConfig, StageExecutor, StageOutcome, Workload,
//! };
//!
//! struct Fixed;
//! impl StageExecutor for Fixed {
//!     fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
//!         StageOutcome { seconds: 0.010 }
//!     }
//! }
//!
//! let config = SimulationConfig { max_batch: 4, ..SimulationConfig::default() };
//! let scenario = Scenario::new(
//!     "fleet",
//!     Workload::fixed(64, 8).with_seed(7),
//!     Arrivals::Poisson { qps: 400.0 },
//!     32,
//! );
//! let cluster = ClusterSimulation::new(vec![ReplicaConfig::new(config); 4], scenario);
//! let mut policies: Vec<_> = (0..4).map(|_| PolicyKind::Fcfs.build()).collect();
//! let mut executors = vec![Fixed, Fixed, Fixed, Fixed];
//! let report = cluster.run(&mut LeastOutstandingWork, &mut policies, &mut executors);
//! assert_eq!(report.completed(), 32);
//! assert!(report.replicas.iter().filter(|r| !r.completed.is_empty()).count() > 1);
//! ```

use crate::autoscale::{AutoscalePolicy, ScaleStats};
use crate::fault::{
    FaultKind, FaultOutcome, FaultPlan, FaultWindowStats, KvLinkSpec, RecoveryStats,
};
use crate::metrics::{
    KvReuseStats, LatencyDigest, LatencySummary, SimReport, SloStats, StageStats,
};
use crate::policy::SchedulingPolicy;
use crate::router::{PoolRole, ReplicaSnapshot, Router};
use crate::scenario::{ReplicaSim, Scenario, ScenarioStream, SloTier};
use crate::scheduler::{SimulationConfig, StageExecutor};
use crate::snapshot::{AutoscaleState, ClusterSnapshot, DisaggState, FaultState};

/// Execution knobs for the cluster driver. Results never depend on
/// these: the parallel path is byte-identical to the serial oracle
/// (see the module docs on the clock-merge invariant), so `parallel`
/// and `threads` only trade wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Step replica windows concurrently on the vendored rayon pool.
    /// `false` is the serial oracle the determinism tests compare
    /// against.
    pub parallel: bool,
    /// Worker threads for the parallel path; `0` means auto: the
    /// `DUPLEX_THREADS` environment variable when set, otherwise the
    /// machine's available parallelism.
    pub threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            parallel: true,
            threads: 0,
        }
    }
}

impl ClusterConfig {
    /// The serial oracle: one replica at a time, in index order.
    pub fn serial() -> Self {
        Self {
            parallel: false,
            threads: 0,
        }
    }

    /// Resolved window concurrency: 1 when serial, else `threads`,
    /// `DUPLEX_THREADS`, or the machine width, in that order.
    ///
    /// # Panics
    ///
    /// When `DUPLEX_THREADS` is set to anything but a positive
    /// integer: a set-but-invalid override is a typo worth naming, not
    /// something to silently round to the machine width.
    pub fn effective_threads(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.threads > 0 {
            return self.threads;
        }
        match std::env::var("DUPLEX_THREADS") {
            Ok(raw) => parse_duplex_threads(&raw),
            Err(_) => std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        }
    }
}

/// Parse a `DUPLEX_THREADS` value. A set-but-invalid override (empty,
/// non-numeric, zero) is a hard error naming the variable — silently
/// falling back to the machine width would hide the typo and change
/// wall-clock behavior without a trace.
fn parse_duplex_threads(raw: &str) -> usize {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => panic!("DUPLEX_THREADS must be a positive integer, got {raw:?}"),
    }
}

/// One replica's scheduler limits plus its relative serving capacity.
///
/// Construct with [`ReplicaConfig::new`] plus the `with_*` builders —
/// the struct is `#[non_exhaustive]`, so literal construction outside
/// this crate is not supported.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ReplicaConfig {
    /// The replica-local scheduler limits (batch slots, KV budget).
    pub sim: SimulationConfig,
    /// Relative serving capacity for weight-aware routers (see
    /// [`ReplicaSnapshot::weight`]); 1.0 for homogeneous fleets.
    pub weight: f64,
}

impl ReplicaConfig {
    /// A unit-weight replica.
    pub fn new(sim: SimulationConfig) -> Self {
        Self { sim, weight: 1.0 }
    }

    /// Set the relative capacity weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "capacity weight must be positive");
        self.weight = weight;
        self
    }

    /// Replace the scheduler limits.
    pub fn with_sim(mut self, sim: SimulationConfig) -> Self {
        self.sim = sim;
        self
    }
}

/// A prefill/decode pool split for a fleet: the listed replicas form
/// the prefill pool, every other replica the decode pool, and finished
/// prompts ship their KV over `link` (see the module docs and
/// `docs/placement-api.md`).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct DisaggPlan {
    /// Replica indices serving the prefill pool.
    pub prefill_replicas: Vec<usize>,
    /// The prefill→decode interconnect pricing KV handoffs.
    pub link: KvLinkSpec,
}

impl DisaggPlan {
    /// A split with the given prefill-pool members over the default
    /// link.
    pub fn new(prefill_replicas: Vec<usize>) -> Self {
        Self {
            prefill_replicas,
            link: KvLinkSpec::default(),
        }
    }

    /// Price handoffs over `link` instead of the default.
    pub fn with_link(mut self, link: KvLinkSpec) -> Self {
        self.link = link;
        self
    }

    /// The role this plan assigns to replica `i`.
    pub fn role_of(&self, i: usize) -> PoolRole {
        if self.prefill_replicas.contains(&i) {
            PoolRole::Prefill
        } else {
            PoolRole::Decode
        }
    }
}

/// Prefill→decode transfer accounting for a disaggregated run (all
/// zeros in colocated mode).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[non_exhaustive]
pub struct DisaggStats {
    /// Prompts handed from the prefill pool to the decode pool.
    pub handoffs: u64,
    /// KV bytes shipped over the pool interconnect.
    pub kv_bytes_shipped: u64,
    /// Virtual seconds of handoff transfer time charged to decode
    /// replicas.
    pub transfer_seconds: f64,
    /// Handoffs whose decode replica could not hold the shipped KV:
    /// the prompt re-prefilled there from scratch instead.
    pub reprefills: u64,
}

/// Live disaggregation state for one cluster run: the admission-time
/// decode assignments of every request currently prefilling, plus
/// transfer accounting. Assignments mutate only at dispatch and merge
/// points, so windows stay side-effect-free.
struct DisaggRuntime<'p> {
    plan: &'p DisaggPlan,
    /// `(request id, decode replica, KV bytes to ship)`, sorted by id.
    assignments: Vec<(u64, usize, u64)>,
    stats: DisaggStats,
}

impl<'p> DisaggRuntime<'p> {
    fn new(plan: &'p DisaggPlan) -> Self {
        Self {
            plan,
            assignments: Vec::new(),
            stats: DisaggStats::default(),
        }
    }

    /// Record a placement's decode half at admission time.
    fn record(&mut self, request: u64, decode: usize, bytes: u64) {
        let i = self.assignments.partition_point(|&(id, _, _)| id < request);
        self.assignments.insert(i, (request, decode, bytes));
    }

    /// Take the assignment of a finished prefill.
    fn take(&mut self, request: u64) -> Option<(usize, u64)> {
        let i = self
            .assignments
            .binary_search_by_key(&request, |&(id, _, _)| id)
            .ok()?;
        let (_, decode, bytes) = self.assignments.remove(i);
        Some((decode, bytes))
    }

    /// Pending joins headed for decode replica `i`: `(count, bytes)` —
    /// the router-visible transfer backlog.
    fn backlog_for(&self, i: usize) -> (usize, u64) {
        self.assignments
            .iter()
            .filter(|&&(_, d, _)| d == i)
            .fold((0, 0), |(n, b), &(_, _, bytes)| (n + 1, b + bytes))
    }

    fn export_state(&self) -> DisaggState {
        DisaggState {
            assignments: self
                .assignments
                .iter()
                .map(|&(id, d, b)| (id, d as u64, b))
                .collect(),
            handoffs: self.stats.handoffs,
            kv_bytes_shipped: self.stats.kv_bytes_shipped,
            transfer_seconds: self.stats.transfer_seconds,
            reprefills: self.stats.reprefills,
        }
    }

    /// Restore state captured by [`DisaggRuntime::export_state`]. The
    /// caller validated the shape against the plan and fleet.
    fn import_state(&mut self, s: &DisaggState) {
        self.assignments = s
            .assignments
            .iter()
            .map(|&(id, d, b)| (id, d as usize, b))
            .collect();
        self.stats = DisaggStats {
            handoffs: s.handoffs,
            kv_bytes_shipped: s.kv_bytes_shipped,
            transfer_seconds: s.transfer_seconds,
            reprefills: s.reprefills,
        };
    }
}

/// Fleet-level result: the per-replica [`SimReport`]s plus merged
/// views built with the metrics `merge` APIs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// One report per replica, in replica order.
    pub replicas: Vec<SimReport>,
    /// Router display name the run used.
    pub router: String,
    /// Fleet wall clock: the latest replica-local finish time.
    pub total_time_s: f64,
    /// Fault/recovery counters (all zeros without a
    /// [`FaultPlan`], except KV-migration stats, which a
    /// migration-aware router can also accrue on a healthy fleet).
    pub recovery: RecoveryStats,
    /// Per-injected-fault recovery outcomes (empty without a plan).
    pub faults: Vec<FaultOutcome>,
    /// Provisioned replica time: virtual seconds of *up* (admitting or
    /// draining, i.e. billable) replica time summed over the fleet.
    /// A static N-replica fleet spends exactly `N * total_time_s`; an
    /// autoscaled fleet spends less — this is the cost side of the
    /// attainment-vs-cost tradeoff the autoscale drill gates.
    pub replica_seconds: f64,
    /// Scale-event counters (all zeros without an
    /// [`AutoscalePolicy`]).
    pub scaling: ScaleStats,
    /// Prefill→decode handoff counters (all zeros without a
    /// [`DisaggPlan`]).
    pub disagg: DisaggStats,
}

impl ClusterReport {
    /// Requests completed across the fleet.
    pub fn completed(&self) -> usize {
        self.replicas.iter().map(|r| r.completed.len()).sum()
    }

    /// Generated tokens across the fleet (in-flight tokens counted).
    pub fn generated_tokens(&self) -> u64 {
        self.replicas.iter().map(SimReport::generated_tokens).sum()
    }

    /// Stages executed across the fleet.
    pub fn stages(&self) -> u64 {
        self.replicas.iter().map(|r| r.stage_stats.stages).sum()
    }

    /// Merged stage counters across the fleet.
    pub fn stage_stats(&self) -> StageStats {
        let mut total = StageStats::default();
        for r in &self.replicas {
            total.merge(&r.stage_stats);
        }
        total
    }

    /// Fleet generation throughput: every replica's tokens over the
    /// shared clock.
    pub fn generation_throughput(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.generated_tokens() as f64 / self.total_time_s
    }

    /// The fleet's token-gap population: every replica's TBT digest
    /// merged, so percentiles are over the concatenated streams.
    pub fn tbt_digest(&self) -> LatencyDigest {
        let mut merged = LatencyDigest::default();
        for r in &self.replicas {
            merged.merge(&r.tbt_digest);
        }
        merged
    }

    /// Fleet TBT summary (from the merged digest).
    pub fn tbt(&self) -> LatencySummary {
        self.tbt_digest().summary()
    }

    /// Fleet T2FT summary over all completed requests.
    pub fn t2ft(&self) -> LatencySummary {
        let samples: Vec<f64> = self
            .replicas
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.t2ft()))
            .collect();
        LatencySummary::of(&samples)
    }

    /// Merged per-tier SLO accounting across the fleet.
    pub fn slo(&self) -> SloStats {
        let mut merged = SloStats::default();
        for r in &self.replicas {
            merged.merge(&r.slo);
        }
        merged
    }

    /// Fleet SLO attainment (0 without tiers).
    pub fn slo_attainment(&self) -> f64 {
        self.slo().attainment()
    }

    /// Fleet goodput: SLO-attaining output tokens per second of shared
    /// clock.
    pub fn goodput_tokens_per_s(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.slo().good_tokens() as f64 / self.total_time_s
    }

    /// Merged prefix-reuse accounting across the fleet.
    pub fn kv_reuse(&self) -> KvReuseStats {
        let mut merged = KvReuseStats::default();
        for r in &self.replicas {
            merged.merge(&r.kv_reuse);
        }
        merged
    }

    /// Merged preemption/multiplexing counters across the fleet (all
    /// zero unless a replica ran a [`crate::PreemptionPolicy`]).
    pub fn preempt(&self) -> crate::preempt::PreemptStats {
        let mut merged = crate::preempt::PreemptStats::default();
        for r in &self.replicas {
            merged.merge(&r.preempt);
        }
        merged
    }

    /// Worst-case recovery time across the run's injected faults:
    /// virtual seconds from a fault to the fleet token rate returning
    /// within the plan's threshold of its pre-fault level (0 without
    /// faults; a never-recovered fault counts its remaining run span).
    pub fn recovery_time_s(&self) -> f64 {
        self.faults
            .iter()
            .map(|f| f.recovery_time_s)
            .fold(0.0, f64::max)
    }

    /// During-failure SLO attainment of the first (interactive) tier,
    /// merged over every fault's window; 0 when no interactive request
    /// retired inside any window.
    pub fn fault_interactive_attainment(&self) -> f64 {
        let (completed, met) = self
            .faults
            .iter()
            .filter_map(|f| f.windows.first())
            .fold((0u64, 0u64), |(c, m), w| (c + w.completed, m + w.met));
        if completed == 0 {
            return 0.0;
        }
        met as f64 / completed as f64
    }

    /// Load imbalance across replicas: the hottest replica's generated
    /// tokens over the fleet mean. 1.0 is perfectly balanced; N means
    /// one replica did N times its fair share (0 with no tokens).
    pub fn load_imbalance(&self) -> f64 {
        let per_replica: Vec<u64> = self
            .replicas
            .iter()
            .map(SimReport::generated_tokens)
            .collect();
        let total: u64 = per_replica.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / per_replica.len() as f64;
        per_replica.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

/// The fleet's earliest next stage start, across replicas.
fn fleet_next_start(replicas: &[ReplicaSim]) -> Option<f64> {
    replicas
        .iter()
        .filter_map(ReplicaSim::next_start)
        .fold(None::<f64>, |acc, t| match acc {
            Some(best) if best <= t => Some(best),
            _ => Some(t),
        })
}

/// Route every arrival due by the fleet's next stage start. Returns
/// when the next arrival is strictly later than the fleet's next stage
/// start (route it later, at its own time), when it lies at or past
/// `limit` (a pending fault event: the routing decision must see the
/// post-fault fleet), when the stream is drained, or when no replica is
/// admitting (the whole fleet is down or stage-capped; down fleets
/// *hold* their arrivals for the fault boundary to restart a replica).
///
/// Router-requested KV migrations execute here: the parked pages move
/// source → target and the transfer is priced over `link` against the
/// receiving replica's clock.
///
/// Under a [`DisaggPlan`] the router's [`Router::place`] picks one
/// replica per pool; the request runs its prompt at the prefill half
/// and the decode half is recorded as an assignment, consumed when the
/// finished prefill's handoff is delivered at a merge point. Routing
/// holds arrivals while either pool is entirely down (mirroring the
/// fully-down colocated behavior).
#[allow(clippy::too_many_arguments)]
fn dispatch_arrivals(
    stream: &mut ScenarioStream<'_>,
    router: &mut dyn Router,
    configs: &[ReplicaConfig],
    replicas: &mut [ReplicaSim],
    snapshots: &mut Vec<ReplicaSnapshot>,
    limit: Option<f64>,
    link: KvLinkSpec,
    stats: &mut RecoveryStats,
    mut disagg: Option<&mut DisaggRuntime<'_>>,
) {
    while let Some(t_a) = stream.next_arrival_time() {
        if limit.is_some_and(|l| t_a >= l) {
            break;
        }
        let pools_up = match disagg {
            Some(_) => {
                replicas
                    .iter()
                    .any(|r| r.role() == PoolRole::Prefill && r.is_admitting())
                    && replicas
                        .iter()
                        .any(|r| r.role() == PoolRole::Decode && r.is_admitting())
            }
            None => replicas.iter().any(ReplicaSim::is_admitting),
        };
        if !pools_up {
            break;
        }
        match fleet_next_start(replicas) {
            // The next stage forms before this arrival: route it
            // later, at its own time.
            Some(t) if t_a > t => break,
            _ => {
                let p = stream.pop_next().expect("arrival time implies a request");
                snapshots.clear();
                snapshots.extend(configs.iter().zip(replicas.iter()).enumerate().map(
                    |(i, (cfg, r))| {
                        let (in_flight, mut queued, outstanding_tokens) = r.load();
                        let (kv_reserved_bytes, kv_capacity_bytes) = r.kv_usage();
                        // Pending prefill-pool joins count against
                        // their decode target's queue and surface
                        // as transfer backlog (none in colocated
                        // mode, so the snapshot is unchanged).
                        // Paused-and-parked preempted contexts are
                        // backlog too: they re-enter as priced
                        // restores, not affinity-routable histories.
                        let (joins, mut transfer_backlog_bytes) =
                            disagg.as_deref().map_or((0, 0), |d| d.backlog_for(i));
                        transfer_backlog_bytes += r.paused_swap_bytes();
                        queued += joins;
                        ReplicaSnapshot {
                            now_s: r.clock(),
                            in_flight,
                            queued,
                            max_batch: r.max_batch(),
                            outstanding_tokens,
                            kv_reserved_bytes,
                            kv_capacity_bytes,
                            weight: cfg.weight,
                            resident_history_tokens: r.resident_history(p.conversation),
                            accepting: r.is_admitting(),
                            role: r.role(),
                            transfer_backlog_bytes,
                        }
                    },
                ));
                let placement = router.place(&p, snapshots);
                if let Some(defer_to) = placement.defer_until_s {
                    // Fleet-level shed: the request is not placed at
                    // all — it re-enters the arrival stream later with
                    // its absolute deadline intact (see
                    // [`crate::router::FleetShed`]).
                    let mut p = p;
                    p.request.arrival_s = defer_to.max(t_a);
                    stats.requests_deferred += 1;
                    stream.requeue(p);
                    continue;
                }
                let target = placement.prefill;
                assert!(
                    target < replicas.len(),
                    "router picked replica {target} of {}",
                    replicas.len()
                );
                assert!(
                    replicas[target].is_admitting(),
                    "router picked a non-admitting replica while one admits"
                );
                if !placement.is_colocated() {
                    let d = disagg
                        .as_deref_mut()
                        .expect("a split placement implies a disaggregation plan");
                    assert!(
                        placement.decode < replicas.len(),
                        "router picked decode replica {} of {}",
                        placement.decode,
                        replicas.len()
                    );
                    let bytes = p.request.input_len.saturating_sub(1)
                        * configs[target].sim.kv_bytes_per_token.max(1);
                    d.record(p.request.id, placement.decode, bytes);
                }
                if let Some(src) = placement.migrate_from {
                    if src < replicas.len() && src != target {
                        migrate_parked(configs, replicas, src, target, p.conversation, link, stats);
                    }
                }
                replicas[target].enqueue(p);
            }
        }
    }
}

/// Ship `conversation`'s parked KV from `src` to `target` (no-op when
/// nothing is resident or the target cannot hold it), pricing the
/// transfer over `link` against the target's clock. Returns the bytes
/// moved.
fn migrate_parked(
    configs: &[ReplicaConfig],
    replicas: &mut [ReplicaSim],
    src: usize,
    target: usize,
    conversation: u64,
    link: KvLinkSpec,
    stats: &mut RecoveryStats,
) -> u64 {
    let Some(tokens) = replicas[src].parked_tokens(conversation) else {
        return 0;
    };
    if !replicas[target].receive_parked(conversation, tokens) {
        return 0;
    }
    replicas[src].release_parked(conversation);
    let bytes = tokens * configs[src].sim.kv_bytes_per_token.max(1);
    let seconds = link.transfer_seconds(bytes);
    replicas[target].add_transfer_time(seconds);
    stats.kv_bytes_migrated += bytes;
    stats.kv_migrations += 1;
    stats.migration_seconds += seconds;
    bytes
}

/// One dispatch → window → merge round. Returns `false` when no
/// replica has a next stage (the fleet drained, truncated, or is fully
/// down holding arrivals). See the module docs for why the parallel
/// window is byte-identical to the serial one.
#[allow(clippy::too_many_arguments)]
fn drive_round<E: StageExecutor + Send>(
    stream: &mut ScenarioStream<'_>,
    router: &mut dyn Router,
    configs: &[ReplicaConfig],
    replicas: &mut [ReplicaSim],
    snapshots: &mut Vec<ReplicaSnapshot>,
    policies: &mut [Box<dyn SchedulingPolicy>],
    executors: &mut [E],
    threads: usize,
    limit: Option<f64>,
    link: KvLinkSpec,
    stats: &mut RecoveryStats,
    mut disagg: Option<&mut DisaggRuntime<'_>>,
) -> bool {
    // ---- dispatch: route every arrival due by the fleet's next stage ----
    dispatch_arrivals(
        stream,
        router,
        configs,
        replicas,
        snapshots,
        limit,
        link,
        stats,
        disagg.as_deref_mut(),
    );
    if !replicas.iter().any(|r| r.next_start().is_some()) {
        return false;
    }
    // ---- window: every replica steps to the next global sync point ----
    // After dispatch the next arrival (if any) is strictly later than
    // the fleet's earliest stage start, so at least one replica steps:
    // every round makes progress. Two fault-plan wrinkles: windows
    // never run past `limit` (the next fault event lands at that merge
    // point), and a fully-down fleet ignores its *held* arrivals (they
    // may predate the pending restart that will release them).
    let arrival = stream.next_arrival_time();
    let bound = if replicas.iter().any(ReplicaSim::is_admitting) {
        match (arrival, limit) {
            (Some(a), Some(l)) => Some(a.min(l)),
            (a, l) => a.or(l),
        }
    } else {
        limit
    };
    if threads > 1 && replicas.len() > 1 {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = replicas
            .iter_mut()
            .zip(policies.iter_mut())
            .zip(executors.iter_mut())
            .map(|((r, p), e)| {
                Box::new(move || r.run_window(bound, p.as_mut(), e))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        rayon::join_all(jobs);
    } else {
        for ((r, p), e) in replicas
            .iter_mut()
            .zip(policies.iter_mut())
            .zip(executors.iter_mut())
        {
            r.run_window(bound, p.as_mut(), e);
        }
    }
    // ---- merge: apply buffered events in replica-index order ----
    for r in replicas.iter_mut() {
        r.drain_retire_events(stream);
    }
    if let Some(d) = disagg {
        drain_handoffs(stream, configs, replicas, d);
    }
    true
}

/// Deliver every buffered prefill→decode handoff, in replica-index
/// order (the merge half of disaggregated serving): ship the prompt KV
/// to the decode replica assigned at admission time, price the
/// transfer over the plan's link against the receiver's clock, and
/// enqueue the request there — it joins the decode batch through the
/// ordinary reuse-admission path as a one-token prefill above the
/// shipped context. A decode replica that went down (or cannot hold
/// the KV) degrades gracefully: another decode replica is picked, or
/// the prompt re-prefills from scratch.
fn drain_handoffs(
    stream: &mut ScenarioStream<'_>,
    configs: &[ReplicaConfig],
    replicas: &mut [ReplicaSim],
    disagg: &mut DisaggRuntime<'_>,
) {
    for i in 0..replicas.len() {
        if !replicas[i].has_handoffs() {
            continue;
        }
        for ev in replicas[i].take_handoffs() {
            let mut p = ev.pending;
            let assigned = disagg.take(p.request.id);
            // The admission-time target may have gone down since: fall
            // back to the least-loaded admitting decode replica.
            let target = match assigned {
                Some((d, _)) if replicas[d].is_admitting() => Some(d),
                _ => best_pool_target(configs, replicas, PoolRole::Decode),
            };
            let Some(d) = target else {
                // The whole decode pool is down: the request re-enters
                // the arrival stream and is re-placed once a decode
                // replica recovers.
                p.request.arrival_s = ev.done_s;
                p.history_tokens = 0;
                stream.requeue(p);
                continue;
            };
            let bytes = assigned.map_or_else(
                || p.request.input_len.saturating_sub(1) * configs[i].sim.kv_bytes_per_token.max(1),
                |(_, b)| b,
            );
            let join_tokens = p.request.input_len.saturating_sub(1);
            disagg.stats.handoffs += 1;
            if join_tokens > 0 && replicas[d].receive_parked(p.conversation, join_tokens) {
                let seconds = disagg.plan.link.transfer_seconds(bytes);
                replicas[d].add_transfer_time(seconds);
                disagg.stats.kv_bytes_shipped += bytes;
                disagg.stats.transfer_seconds += seconds;
                p.history_tokens = join_tokens;
                // The decode replica cannot start the join before the
                // prefill finished; its absolute SLO deadline (stamped
                // at spawn) is unchanged.
                p.request.arrival_s = ev.done_s + seconds;
            } else {
                // Nothing to ship (one-token prompt) or no room at the
                // receiver even after evicting parked histories: the
                // prompt re-prefills at the decode replica, unpriced.
                if join_tokens > 0 {
                    disagg.stats.reprefills += 1;
                }
                p.history_tokens = 0;
                p.request.arrival_s = ev.done_s;
            }
            replicas[d].enqueue(p);
        }
    }
}

/// The least weighted-load admitting replica of `role` (the handoff
/// fallback target); `None` when the whole pool is down.
fn best_pool_target(
    configs: &[ReplicaConfig],
    replicas: &[ReplicaSim],
    role: PoolRole,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, r) in replicas.iter().enumerate() {
        if r.role() != role || !r.is_admitting() {
            continue;
        }
        let (in_flight, queued, outstanding) = r.load();
        let slots = (in_flight + queued) as f64;
        let drain = outstanding as f64;
        let load = (slots + drain / (1.0 + drain)) / configs[j].weight.max(f64::MIN_POSITIVE);
        match best {
            Some((_, b)) if b <= load => {}
            _ => best = Some((j, load)),
        }
    }
    best.map(|(j, _)| j)
}

/// A scheduled fault-machinery event on the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TimedEvent {
    at_s: f64,
    /// Schedule order, the deterministic tiebreak for equal times.
    seq: u64,
    action: Action,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Action {
    /// Apply plan fault `faults[i]`.
    Apply(usize),
    /// Bring replica `i` back up.
    Restart(usize),
    /// Reset replica `i`'s stage-latency factor to nominal.
    ClearSlow(usize),
}

/// The cluster's live fault machinery: the pending event queue
/// (scripted faults plus the restarts/warm-up-clears they schedule),
/// per-request retry counts, and in-progress drains. All of it is
/// merge-point state: events apply only when every replica's frontier
/// has reached the event time, which is what keeps faulted runs
/// byte-identical between serial and parallel stepping.
struct FaultRuntime<'p> {
    plan: &'p FaultPlan,
    events: Vec<TimedEvent>,
    seq: u64,
    /// Retry counts per lost request id, sorted by id.
    attempts: Vec<(u64, u32)>,
    /// Per replica: `(down_s, fault_at_s)` of an in-progress drain.
    draining_down: Vec<Option<(f64, f64)>>,
    /// Per [`crate::fault::LoadTrigger`]: (fires so far, re-armed at).
    trigger_state: Vec<(u32, f64)>,
}

impl<'p> FaultRuntime<'p> {
    fn new(plan: &'p FaultPlan, replica_count: usize) -> Self {
        for f in &plan.faults {
            assert!(
                f.replica < replica_count,
                "fault targets replica {} of {replica_count}",
                f.replica
            );
        }
        let events: Vec<TimedEvent> = plan
            .faults
            .iter()
            .enumerate()
            .map(|(i, f)| TimedEvent {
                at_s: f.at_s,
                seq: i as u64,
                action: Action::Apply(i),
            })
            .collect();
        Self {
            plan,
            seq: events.len() as u64,
            events,
            attempts: Vec::new(),
            draining_down: vec![None; replica_count],
            trigger_state: vec![(0, 0.0); plan.triggers.len()],
        }
    }

    fn schedule(&mut self, at_s: f64, action: Action) {
        self.events.push(TimedEvent {
            at_s,
            seq: self.seq,
            action,
        });
        self.seq += 1;
    }

    fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Earliest pending event time (the dispatch/window `limit`).
    fn next_event_at(&self) -> Option<f64> {
        self.events
            .iter()
            .map(|e| e.at_s)
            .fold(None::<f64>, |acc, t| match acc {
                Some(best) if best <= t => Some(best),
                _ => Some(t),
            })
    }

    /// Retry count of `request` after one more loss (1-based).
    fn bump_attempts(&mut self, request: u64) -> u32 {
        match self.attempts.binary_search_by_key(&request, |&(id, _)| id) {
            Ok(i) => {
                self.attempts[i].1 += 1;
                self.attempts[i].1
            }
            Err(i) => {
                self.attempts.insert(i, (request, 1));
                1
            }
        }
    }

    /// The earliest pending event, if the fleet frontier has reached
    /// it: no stage starts before it and no arrival routes before it.
    /// A fully-down fleet's *held* arrivals don't block (they may
    /// predate the very restart that will release them).
    fn due_event_index(
        &self,
        replicas: &[ReplicaSim],
        stream: &mut ScenarioStream<'_>,
    ) -> Option<usize> {
        let (idx, ev) = self.events.iter().enumerate().min_by(|(_, a), (_, b)| {
            a.at_s
                .partial_cmp(&b.at_s)
                .expect("event times are finite")
                .then(a.seq.cmp(&b.seq))
        })?;
        let stage_ok = fleet_next_start(replicas).is_none_or(|t| t >= ev.at_s);
        let arrival_ok = stream.next_arrival_time().is_none_or(|t| t >= ev.at_s)
            || !replicas.iter().any(ReplicaSim::is_admitting);
        (stage_ok && arrival_ok).then_some(idx)
    }

    /// Run the merge-point fault boundary to quiescence: apply every
    /// due event (virtual-time order, schedule order on ties), fire
    /// every armed load trigger (trigger order, replica order), and
    /// complete every finished drain (replica-index order), repeating
    /// until none fires. Drains owned by the autoscaler
    /// (`skip_drains[i]`) are left for it to complete — they return
    /// the replica to the pool instead of scheduling a restart.
    /// Returns whether anything was applied.
    fn process_boundary(
        &mut self,
        stream: &mut ScenarioStream<'_>,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
        skip_drains: &[bool],
    ) -> bool {
        let mut acted = false;
        loop {
            if let Some(idx) = self.due_event_index(replicas, stream) {
                let ev = self.events.remove(idx);
                self.apply_event(ev, stream, replicas, stats);
                acted = true;
                continue;
            }
            if self.fire_due_trigger(stream, replicas, stats) {
                acted = true;
                continue;
            }
            if let Some(i) = (0..replicas.len()).find(|&i| {
                replicas[i].is_draining()
                    && !replicas[i].in_flight()
                    && !skip_drains.get(i).copied().unwrap_or(false)
            }) {
                self.complete_drain(i, configs, replicas, stats);
                acted = true;
                continue;
            }
            break;
        }
        acted
    }

    /// Fire the first armed load trigger whose pressure condition a
    /// replica meets (trigger order, then replica order — a fixed,
    /// deterministic scan), injecting its fault at the offender's
    /// clock. Returns whether one fired.
    fn fire_due_trigger(
        &mut self,
        stream: &mut ScenarioStream<'_>,
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) -> bool {
        for ti in 0..self.plan.triggers.len() {
            let trigger = self.plan.triggers[ti];
            let (fires, armed_at) = self.trigger_state[ti];
            if fires >= trigger.max_fires {
                continue;
            }
            for i in 0..replicas.len() {
                if !replicas[i].is_admitting() || replicas[i].is_draining() {
                    continue;
                }
                let now = replicas[i].clock();
                if now < armed_at {
                    continue;
                }
                let (in_flight, queued, _) = replicas[i].load();
                let pressure = (in_flight + queued) as f64 / replicas[i].max_batch().max(1) as f64;
                if pressure < trigger.pressure {
                    continue;
                }
                self.trigger_state[ti] = (fires + 1, now + trigger.cooldown_s);
                stats.triggers_fired += 1;
                self.inject(now, i, trigger.kind, stream, replicas, stats);
                return true;
            }
        }
        false
    }

    fn apply_event(
        &mut self,
        ev: TimedEvent,
        stream: &mut ScenarioStream<'_>,
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) {
        match ev.action {
            Action::Apply(fi) => {
                let fault = self.plan.faults[fi];
                self.inject(
                    fault.at_s,
                    fault.replica,
                    fault.kind,
                    stream,
                    replicas,
                    stats,
                );
            }
            Action::Restart(i) => {
                replicas[i].restart(ev.at_s);
                if self.plan.warmup_s > 0.0 {
                    replicas[i].set_perf_factor(self.plan.warmup_factor);
                    self.schedule(ev.at_s + self.plan.warmup_s, Action::ClearSlow(i));
                }
            }
            Action::ClearSlow(i) => replicas[i].set_perf_factor(1.0),
        }
    }

    /// Inject one fault on `replica` at virtual time `at_s` — the
    /// shared path for scripted [`Action::Apply`] events and
    /// load-trigger fires.
    fn inject(
        &mut self,
        at_s: f64,
        replica: usize,
        kind: FaultKind,
        stream: &mut ScenarioStream<'_>,
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) {
        stats.faults_injected += 1;
        match kind {
            FaultKind::Crash { down_s } => {
                // The replica's last stage may have straddled the
                // fault time (stage granularity): the outage is
                // measured from where it actually stopped.
                let now = replicas[replica].clock().max(at_s);
                let lost = replicas[replica].crash();
                replicas[replica].mark_down(now);
                self.schedule(now + down_s, Action::Restart(replica));
                for mut p in lost {
                    stats.requests_lost += 1;
                    let attempt = self.bump_attempts(p.request.id);
                    if attempt <= self.plan.retry.max_retries {
                        stats.retries_issued += 1;
                        // Re-enqueue through the router at the backoff
                        // time; the original absolute SLO deadline is
                        // kept.
                        p.request.arrival_s = now + self.plan.retry.delay_s(attempt);
                        stream.requeue(p);
                    } else {
                        stats.requests_dropped += 1;
                    }
                }
            }
            FaultKind::Drain { down_s } => {
                let displaced = replicas[replica].begin_drain();
                self.draining_down[replica] = Some((down_s, at_s));
                // Not-yet-started requests reroute at their original
                // arrival times: nothing was lost, no retry budget is
                // spent.
                for p in displaced {
                    stream.requeue(p);
                }
            }
            FaultKind::Slowdown { duration_s, factor } => {
                let now = replicas[replica].clock().max(at_s);
                replicas[replica].set_perf_factor(factor);
                self.schedule(now + duration_s, Action::ClearSlow(replica));
            }
        }
    }

    /// A draining replica's batch just emptied: hand its parked KV to
    /// the least-loaded admitting replica as one priced batched
    /// transfer, then take it down and schedule the restart.
    fn complete_drain(
        &mut self,
        i: usize,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) {
        let (down_s, fault_at_s) = self.draining_down[i].take().unwrap_or((0.0, 0.0));
        let moved = replicas[i].take_parked();
        replicas[i].finish_drain();
        if !moved.is_empty() {
            if let Some(target) = best_handoff_target(configs, replicas, i) {
                let mut bytes = 0u64;
                for (conversation, tokens) in moved {
                    if replicas[target].receive_parked(conversation, tokens) {
                        bytes += tokens * configs[i].sim.kv_bytes_per_token.max(1);
                        stats.kv_migrations += 1;
                    }
                }
                if bytes > 0 {
                    let seconds = self.plan.link.transfer_seconds(bytes);
                    replicas[target].add_transfer_time(seconds);
                    stats.kv_bytes_migrated += bytes;
                    stats.migration_seconds += seconds;
                }
            }
        }
        replicas[i].mark_down(replicas[i].clock().max(fault_at_s));
        let restart_at = replicas[i].clock().max(fault_at_s) + down_s;
        self.schedule(restart_at, Action::Restart(i));
    }

    fn export_state(&self) -> FaultState {
        FaultState {
            events: self
                .events
                .iter()
                .map(|e| {
                    let (code, arg) = match e.action {
                        Action::Apply(i) => (0u64, i as u64),
                        Action::Restart(i) => (1, i as u64),
                        Action::ClearSlow(i) => (2, i as u64),
                    };
                    (e.at_s.to_bits(), e.seq, code, arg)
                })
                .collect(),
            seq: self.seq,
            attempts: self
                .attempts
                .iter()
                .map(|&(id, n)| (id, u64::from(n)))
                .collect(),
            draining_down: self
                .draining_down
                .iter()
                .enumerate()
                .filter_map(|(i, d)| {
                    d.map(|(down_s, at_s)| (i as u64, down_s.to_bits(), at_s.to_bits()))
                })
                .collect(),
            triggers: self
                .trigger_state
                .iter()
                .map(|&(fires, armed_at)| (u64::from(fires), armed_at.to_bits()))
                .collect(),
        }
    }

    /// Restore state captured by [`FaultRuntime::export_state`]. The
    /// caller validated the shape against the plan and fleet.
    fn import_state(&mut self, s: &FaultState) {
        self.events = s
            .events
            .iter()
            .map(|&(at_bits, seq, code, arg)| TimedEvent {
                at_s: f64::from_bits(at_bits),
                seq,
                action: match code {
                    0 => Action::Apply(arg as usize),
                    1 => Action::Restart(arg as usize),
                    _ => Action::ClearSlow(arg as usize),
                },
            })
            .collect();
        self.seq = s.seq;
        self.attempts = s.attempts.iter().map(|&(id, n)| (id, n as u32)).collect();
        for d in self.draining_down.iter_mut() {
            *d = None;
        }
        for &(replica, down_bits, at_bits) in &s.draining_down {
            self.draining_down[replica as usize] =
                Some((f64::from_bits(down_bits), f64::from_bits(at_bits)));
        }
        for (i, &(fires, armed_bits)) in s.triggers.iter().enumerate() {
            self.trigger_state[i] = (fires as u32, f64::from_bits(armed_bits));
        }
    }
}

/// The least weighted-load admitting replica other than `skip` (the
/// drain-handoff target); `None` when the whole rest of the fleet is
/// down. Pool-aware: a drained replica's parked KV only makes sense on
/// a replica of the same role (a no-op filter in colocated fleets).
fn best_handoff_target(
    configs: &[ReplicaConfig],
    replicas: &[ReplicaSim],
    skip: usize,
) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (j, r) in replicas.iter().enumerate() {
        if j == skip || !r.is_admitting() || r.role() != replicas[skip].role() {
            continue;
        }
        let (in_flight, queued, outstanding) = r.load();
        let slots = (in_flight + queued) as f64;
        let drain = outstanding as f64;
        let load = (slots + drain / (1.0 + drain)) / configs[j].weight.max(f64::MIN_POSITIVE);
        match best {
            Some((_, b)) if b <= load => {}
            _ => best = Some((j, load)),
        }
    }
    best.map(|(j, _)| j)
}

/// Fold the plan, the leftover event queue and the per-replica
/// recovery recordings into per-fault [`FaultOutcome`]s. Runs at the
/// end of a completed run, before the replicas are consumed into
/// reports; never-recovered faults get their remaining-span fallback
/// filled in by the caller (which knows the fleet wall clock).
fn compute_fault_outcomes(
    plan: &FaultPlan,
    rt: &FaultRuntime<'_>,
    replicas: &[ReplicaSim],
    tiers: &[SloTier],
) -> Vec<FaultOutcome> {
    // A plan fault whose Apply event is still queued never fired.
    let mut unapplied = vec![false; plan.faults.len()];
    for ev in &rt.events {
        if let Action::Apply(fi) = ev.action {
            unapplied[fi] = true;
        }
    }
    // Fleet token timeline: per-replica bucket counts, merged.
    let mut merged: Vec<(u64, u64)> = Vec::new();
    let mut all: Vec<(u64, u64)> = replicas
        .iter()
        .flat_map(|r| r.timeline().iter().copied())
        .collect();
    all.sort_unstable();
    for (bucket, tokens) in all {
        match merged.last_mut() {
            Some((b, n)) if *b == bucket => *n += tokens,
            _ => merged.push((bucket, tokens)),
        }
    }
    let bucket_s = plan.timeline_bucket_s;
    plan.faults
        .iter()
        .enumerate()
        .filter(|&(fi, _)| !unapplied[fi])
        .map(|(fi, f)| {
            let windows: Vec<FaultWindowStats> = tiers
                .iter()
                .enumerate()
                .map(|(ti, tier)| {
                    let (mut completed, mut met) = (0u64, 0u64);
                    for r in replicas {
                        if let Some(&(c, m)) = r.window_counts().get(fi).and_then(|w| w.get(ti)) {
                            completed += c;
                            met += m;
                        }
                    }
                    FaultWindowStats {
                        tier: tier.name.clone(),
                        completed,
                        met,
                    }
                })
                .collect();
            // Pre-fault rate: mean over the last (up to) 5 non-empty
            // buckets before the fault's bucket.
            let fault_bucket = (f.at_s / bucket_s) as u64;
            let pre: Vec<u64> = merged
                .iter()
                .filter(|&&(b, _)| b < fault_bucket)
                .map(|&(_, n)| n)
                .collect();
            let tail = pre.len().min(5);
            let pre_rate = if tail == 0 {
                0.0
            } else {
                pre[pre.len() - tail..].iter().sum::<u64>() as f64 / tail as f64
            };
            let recovered_at_s = merged
                .iter()
                .find(|&&(b, n)| b > fault_bucket && n as f64 >= plan.recovery_threshold * pre_rate)
                .map(|&(b, _)| b as f64 * bucket_s);
            FaultOutcome {
                at_s: f.at_s,
                replica: f.replica,
                kind: f.kind,
                recovered_at_s,
                recovery_time_s: recovered_at_s.map_or(0.0, |t| (t - f.at_s).max(0.0)),
                windows,
            }
        })
        .collect()
}

/// One scheduled scale event.
#[derive(Debug, Clone, Copy)]
struct ScaleEvent {
    at_s: f64,
    seq: u64,
    action: ScaleAction,
}

#[derive(Debug, Clone, Copy)]
enum ScaleAction {
    /// Evaluate the fleet signals (and reschedule the next tick).
    Eval,
    /// A provisioned pool replica joins the serving fleet; `lag_s` is
    /// the decision-to-join lag it will be credited with.
    ScaleUp { replica: usize, lag_s: f64 },
    /// End a joiner's warm-up window.
    ClearWarmup(usize),
}

/// Merge-point autoscale machinery for one cluster run: evaluates the
/// [`AutoscalePolicy`] signals on a fixed virtual-time cadence and
/// turns its votes into provisioning / drain events, processed with
/// the same frontier rules as the fault runtime so autoscaled runs
/// stay deterministic and snapshot-resumable.
struct AutoscaleRuntime<'p> {
    policy: &'p AutoscalePolicy,
    events: Vec<ScaleEvent>,
    seq: u64,
    /// Standby-pool membership: `pool[i]` while replica `i` is parked.
    pool: Vec<bool>,
    /// Scale-down drains in progress (ours, not the fault plan's).
    draining: Vec<bool>,
    up_streak: u32,
    down_streak: u32,
    /// First evaluation time of the running up-streak.
    streak_start: Option<f64>,
    cooldown_until: f64,
    /// `(met, completed)` interactive totals at the last evaluation —
    /// the baseline the next window delta is taken against.
    last_slo: (u64, u64),
    stats: ScaleStats,
}

impl<'p> AutoscaleRuntime<'p> {
    fn new(policy: &'p AutoscalePolicy, replica_count: usize) -> Self {
        assert!(
            policy.min_replicas <= replica_count,
            "autoscale floor {} exceeds the {replica_count}-replica fleet",
            policy.min_replicas
        );
        let mut rt = Self {
            policy,
            events: Vec::new(),
            seq: 0,
            pool: (0..replica_count)
                .map(|i| i >= policy.min_replicas)
                .collect(),
            draining: vec![false; replica_count],
            up_streak: 0,
            down_streak: 0,
            streak_start: None,
            cooldown_until: 0.0,
            last_slo: (0, 0),
            stats: ScaleStats::default(),
        };
        rt.schedule(policy.interval_s, ScaleAction::Eval);
        rt
    }

    fn schedule(&mut self, at_s: f64, action: ScaleAction) {
        self.events.push(ScaleEvent {
            at_s,
            seq: self.seq,
            action,
        });
        self.seq += 1;
    }

    fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Earliest pending scale event time (folds into the
    /// dispatch/window `limit`).
    fn next_event_at(&self) -> Option<f64> {
        self.events
            .iter()
            .map(|e| e.at_s)
            .fold(None::<f64>, |acc, t| match acc {
                Some(best) if best <= t => Some(best),
                _ => Some(t),
            })
    }

    /// Same frontier rules as [`FaultRuntime::due_event_index`]: the
    /// earliest event fires once no stage starts and no arrival routes
    /// before it.
    fn due_event_index(
        &self,
        replicas: &[ReplicaSim],
        stream: &mut ScenarioStream<'_>,
    ) -> Option<usize> {
        let (idx, ev) = self.events.iter().enumerate().min_by(|(_, a), (_, b)| {
            a.at_s
                .partial_cmp(&b.at_s)
                .expect("event times are finite")
                .then(a.seq.cmp(&b.seq))
        })?;
        let stage_ok = fleet_next_start(replicas).is_none_or(|t| t >= ev.at_s);
        let arrival_ok = stream.next_arrival_time().is_none_or(|t| t >= ev.at_s)
            || !replicas.iter().any(ReplicaSim::is_admitting);
        (stage_ok && arrival_ok).then_some(idx)
    }

    /// Run the merge-point scale boundary to quiescence: apply every
    /// due scale event, then complete every finished scale-down drain
    /// (replica-index order). Returns whether anything was applied.
    fn process_boundary(
        &mut self,
        stream: &mut ScenarioStream<'_>,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) -> bool {
        let mut acted = false;
        loop {
            if let Some(idx) = self.due_event_index(replicas, stream) {
                let ev = self.events.remove(idx);
                self.apply_event(ev, stream, configs, replicas, stats);
                acted = true;
                continue;
            }
            if let Some(i) = (0..replicas.len()).find(|&i| {
                self.draining[i] && replicas[i].is_draining() && !replicas[i].in_flight()
            }) {
                self.complete_scale_down(i, configs, replicas, stats);
                acted = true;
                continue;
            }
            break;
        }
        acted
    }

    fn apply_event(
        &mut self,
        ev: ScaleEvent,
        stream: &mut ScenarioStream<'_>,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) {
        match ev.action {
            ScaleAction::Eval => {
                self.evaluate(ev.at_s, stream, configs, replicas);
                // Keep ticking only while the run still has work —
                // arrivals to come or stages to run. An eternal tick
                // on a drained fleet would never let the run end.
                if stream.next_arrival_time().is_some() || fleet_next_start(replicas).is_some() {
                    self.schedule(ev.at_s + self.policy.interval_s, ScaleAction::Eval);
                }
            }
            ScaleAction::ScaleUp { replica, lag_s } => {
                self.join(ev.at_s, replica, lag_s, configs, replicas, stats);
            }
            ScaleAction::ClearWarmup(i) => replicas[i].set_perf_factor(1.0),
        }
    }

    /// One evaluation tick: fold the fleet signals, update the
    /// hysteresis streaks, and fire at most one scale event.
    fn evaluate(
        &mut self,
        t: f64,
        stream: &mut ScenarioStream<'_>,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
    ) {
        let mut pressure_sum = 0.0;
        let mut active = 0usize;
        let (mut in_flight_sum, mut slots_sum) = (0usize, 0usize);
        for (i, r) in replicas.iter().enumerate() {
            if !r.is_admitting() || self.draining[i] {
                continue;
            }
            let (in_flight, queued, _) = r.load();
            pressure_sum += (in_flight + queued) as f64 / r.max_batch().max(1) as f64;
            in_flight_sum += in_flight;
            slots_sum += r.max_batch();
            active += 1;
        }
        let pressure = if active == 0 {
            0.0
        } else {
            pressure_sum / active as f64
        };
        let occupancy = if slots_sum == 0 {
            0.0
        } else {
            in_flight_sum as f64 / slots_sum as f64
        };
        let (met, completed) = replicas.iter().fold((0u64, 0u64), |(m, c), r| {
            let (rm, rc) = r.interactive_slo_counts();
            (m + rm, c + rc)
        });
        let window_met = met - self.last_slo.0;
        let window_completed = completed - self.last_slo.1;
        self.last_slo = (met, completed);
        // An empty window is healthy: nothing completed, nothing
        // missed.
        let attainment_bad = self.policy.attainment_floor > 0.0
            && window_completed > 0
            && (window_met as f64 / window_completed as f64) < self.policy.attainment_floor;
        let up_vote = pressure >= self.policy.up_pressure || attainment_bad;
        let down_vote = pressure <= self.policy.down_pressure
            && occupancy <= self.policy.down_occupancy
            && !attainment_bad;
        if up_vote {
            self.up_streak += 1;
            if self.streak_start.is_none() {
                self.streak_start = Some(t);
            }
        } else {
            self.up_streak = 0;
            self.streak_start = None;
        }
        self.down_streak = if down_vote { self.down_streak + 1 } else { 0 };
        if t < self.cooldown_until {
            return;
        }
        if self.up_streak >= self.policy.up_windows {
            // Provision the lowest-index pool replica; with the pool
            // exhausted the streak keeps running, so a scale-down
            // freeing a replica can still satisfy it later.
            if let Some(i) = self.pool.iter().position(|&parked| parked) {
                self.pool[i] = false;
                let join_at = t + self.policy.provision_s;
                let lag_s = join_at - self.streak_start.unwrap_or(t);
                self.schedule(join_at, ScaleAction::ScaleUp { replica: i, lag_s });
                self.up_streak = 0;
                self.streak_start = None;
                self.cooldown_until = t + self.policy.cooldown_s;
            }
            return;
        }
        if self.down_streak >= self.policy.down_windows && active > self.policy.min_replicas {
            // Drain the least-loaded serving replica (the fault
            // plan's handoff-target formula, minimized the other way).
            let mut victim: Option<(usize, f64)> = None;
            for (i, r) in replicas.iter().enumerate() {
                if !r.is_admitting() || self.draining[i] {
                    continue;
                }
                let (in_flight, queued, outstanding) = r.load();
                let slots = (in_flight + queued) as f64;
                let drain = outstanding as f64;
                let load =
                    (slots + drain / (1.0 + drain)) / configs[i].weight.max(f64::MIN_POSITIVE);
                match victim {
                    Some((_, b)) if b <= load => {}
                    _ => victim = Some((i, load)),
                }
            }
            if let Some((i, _)) = victim {
                for p in replicas[i].begin_drain() {
                    stream.requeue(p);
                }
                self.draining[i] = true;
                self.down_streak = 0;
                self.cooldown_until = t + self.policy.cooldown_s;
            }
        }
    }

    /// A provisioned replica joins the serving fleet: restart it,
    /// start its warm-up window, and steal the parked KV of the
    /// most-loaded survivor as one priced transfer (a drain handoff
    /// in reverse — the joiner pays the transfer time).
    fn join(
        &mut self,
        at_s: f64,
        replica: usize,
        lag_s: f64,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) {
        replicas[replica].restart(at_s);
        if self.policy.warmup_s > 0.0 {
            replicas[replica].set_perf_factor(self.policy.warmup_factor);
            self.schedule(
                at_s + self.policy.warmup_s,
                ScaleAction::ClearWarmup(replica),
            );
        }
        let mut donor: Option<(usize, f64)> = None;
        for (j, r) in replicas.iter().enumerate() {
            if j == replica
                || !r.is_admitting()
                || self.draining[j]
                || r.role() != replicas[replica].role()
            {
                continue;
            }
            let (in_flight, queued, outstanding) = r.load();
            let slots = (in_flight + queued) as f64;
            let drain = outstanding as f64;
            let load = (slots + drain / (1.0 + drain)) / configs[j].weight.max(f64::MIN_POSITIVE);
            match donor {
                Some((_, b)) if b >= load => {}
                _ => donor = Some((j, load)),
            }
        }
        if let Some((j, _)) = donor {
            let moved = replicas[j].take_parked();
            let mut bytes = 0u64;
            for (conversation, tokens) in moved {
                if replicas[replica].receive_parked(conversation, tokens) {
                    bytes += tokens * configs[j].sim.kv_bytes_per_token.max(1);
                    stats.kv_migrations += 1;
                }
            }
            if bytes > 0 {
                let seconds = self.policy.link.transfer_seconds(bytes);
                replicas[replica].add_transfer_time(seconds);
                stats.kv_bytes_migrated += bytes;
                stats.migration_seconds += seconds;
            }
        }
        self.stats.scale_ups += 1;
        if lag_s > self.stats.scale_up_lag_s {
            self.stats.scale_up_lag_s = lag_s;
        }
    }

    /// A scale-down drain's batch just emptied: hand its parked KV to
    /// the least-loaded survivor (exactly the fault drain path) and
    /// park the replica back in the pool — no restart is scheduled.
    fn complete_scale_down(
        &mut self,
        i: usize,
        configs: &[ReplicaConfig],
        replicas: &mut [ReplicaSim],
        stats: &mut RecoveryStats,
    ) {
        let moved = replicas[i].take_parked();
        replicas[i].finish_drain();
        if !moved.is_empty() {
            if let Some(target) = best_handoff_target(configs, replicas, i) {
                let mut bytes = 0u64;
                for (conversation, tokens) in moved {
                    if replicas[target].receive_parked(conversation, tokens) {
                        bytes += tokens * configs[i].sim.kv_bytes_per_token.max(1);
                        stats.kv_migrations += 1;
                    }
                }
                if bytes > 0 {
                    let seconds = self.policy.link.transfer_seconds(bytes);
                    replicas[target].add_transfer_time(seconds);
                    stats.kv_bytes_migrated += bytes;
                    stats.migration_seconds += seconds;
                }
            }
        }
        replicas[i].mark_down(replicas[i].clock());
        self.pool[i] = true;
        self.draining[i] = false;
        self.stats.scale_downs += 1;
    }

    fn export_state(&self) -> AutoscaleState {
        AutoscaleState {
            events: self
                .events
                .iter()
                .map(|e| {
                    let (code, arg, lag) = match e.action {
                        ScaleAction::Eval => (0u64, 0u64, 0u64),
                        ScaleAction::ScaleUp { replica, lag_s } => {
                            (1, replica as u64, lag_s.to_bits())
                        }
                        ScaleAction::ClearWarmup(i) => (2, i as u64, 0),
                    };
                    (e.at_s.to_bits(), e.seq, code, arg, lag)
                })
                .collect(),
            seq: self.seq,
            pool: self.pool.clone(),
            draining: self.draining.clone(),
            up_streak: u64::from(self.up_streak),
            down_streak: u64::from(self.down_streak),
            streak_start: self.streak_start,
            cooldown_until: self.cooldown_until,
            last_slo: self.last_slo,
            scale_ups: self.stats.scale_ups,
            scale_downs: self.stats.scale_downs,
            scale_up_lag_s: self.stats.scale_up_lag_s,
        }
    }

    /// Restore state captured by [`AutoscaleRuntime::export_state`].
    /// The caller validated the shape against the policy and fleet.
    fn import_state(&mut self, s: &AutoscaleState) {
        self.events = s
            .events
            .iter()
            .map(|&(at, seq, code, arg, lag)| ScaleEvent {
                at_s: f64::from_bits(at),
                seq,
                action: match code {
                    0 => ScaleAction::Eval,
                    1 => ScaleAction::ScaleUp {
                        replica: arg as usize,
                        lag_s: f64::from_bits(lag),
                    },
                    _ => ScaleAction::ClearWarmup(arg as usize),
                },
            })
            .collect();
        self.seq = s.seq;
        self.pool = s.pool.clone();
        self.draining = s.draining.clone();
        self.up_streak = s.up_streak as u32;
        self.down_streak = s.down_streak as u32;
        self.streak_start = s.streak_start;
        self.cooldown_until = s.cooldown_until;
        self.last_slo = s.last_slo;
        self.stats = ScaleStats {
            scale_ups: s.scale_ups,
            scale_downs: s.scale_downs,
            scale_up_lag_s: s.scale_up_lag_s,
        };
    }
}

/// The outcome of a bounded cluster run
/// ([`ClusterSimulation::run_until`] /
/// [`ClusterSimulation::resume_until`]): either the run reached its
/// virtual-time bound and paused into a resumable [`ClusterSnapshot`],
/// or it drained first and produced the final [`ClusterReport`].
#[derive(Debug, Clone, PartialEq)]
// One short-lived value per bounded run, never stored in bulk: the
// ~200-byte inline report is cheaper than boxing every Done match.
#[allow(clippy::large_enum_variant)]
pub enum ClusterRun {
    /// The fleet paused at the first merge point whose next event lies
    /// at or past the bound; resume with
    /// [`ClusterSimulation::resume`]. Boxed: a snapshot carries the
    /// whole fleet's state and dwarfs a [`ClusterReport`].
    Paused(Box<ClusterSnapshot>),
    /// The fleet drained (or hit every stage cap) before the bound.
    Done(ClusterReport),
}

impl ClusterRun {
    /// The final report, if the run finished.
    pub fn report(self) -> Option<ClusterReport> {
        match self {
            ClusterRun::Done(report) => Some(report),
            ClusterRun::Paused(_) => None,
        }
    }

    /// The pause snapshot, if the run hit its bound.
    pub fn snapshot(self) -> Option<ClusterSnapshot> {
        match self {
            ClusterRun::Paused(snapshot) => Some(*snapshot),
            ClusterRun::Done(_) => None,
        }
    }
}

/// A configured cluster run: N replicas over one scenario, ready for a
/// router, per-replica policies and per-replica executors.
#[derive(Debug)]
pub struct ClusterSimulation {
    configs: Vec<ReplicaConfig>,
    scenario: Scenario,
    cluster: ClusterConfig,
    faults: Option<FaultPlan>,
    autoscale: Option<AutoscalePolicy>,
    disagg: Option<DisaggPlan>,
}

impl ClusterSimulation {
    /// Bind a scenario to a fleet of replica configs (default
    /// [`ClusterConfig`]: parallel, auto thread count). Under trace
    /// replay the request count is clamped to the trace length.
    pub fn new(configs: Vec<ReplicaConfig>, scenario: Scenario) -> Self {
        assert!(!configs.is_empty(), "a cluster needs at least one replica");
        Self {
            configs,
            scenario: scenario.normalized(),
            cluster: ClusterConfig::default(),
            faults: None,
            autoscale: None,
            disagg: None,
        }
    }

    /// Override the execution knobs (serial oracle, thread count).
    pub fn with_config(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Attach a deterministic fault script (crashes, drains,
    /// slowdowns) applied at the run's clock-merge points; the report
    /// then carries [`ClusterReport::recovery`] and
    /// [`ClusterReport::faults`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        for f in &plan.faults {
            assert!(
                f.replica < self.configs.len(),
                "fault targets replica {} of a {}-replica fleet",
                f.replica,
                self.configs.len()
            );
        }
        self.faults = Some(plan);
        self
    }

    /// Make the fleet elastic: replicas beyond the policy's
    /// `min_replicas` floor start parked in a standby pool, and the
    /// policy provisions / drains them from load at the run's
    /// clock-merge points. The report then carries
    /// [`ClusterReport::scaling`], and
    /// [`ClusterReport::replica_seconds`] reflects only the time
    /// replicas actually served.
    pub fn with_autoscale(mut self, policy: AutoscalePolicy) -> Self {
        assert!(
            policy.min_replicas <= self.configs.len(),
            "autoscale floor {} exceeds the {}-replica fleet",
            policy.min_replicas,
            self.configs.len()
        );
        self.autoscale = Some(policy);
        self
    }

    /// Disaggregate the fleet into prefill and decode pools (see the
    /// module docs): the plan's replicas run prompts only and ship the
    /// finished KV over its link to decode replicas chosen at
    /// admission time. At least one replica must serve each pool.
    pub fn with_disagg(mut self, plan: DisaggPlan) -> Self {
        assert!(
            !plan.prefill_replicas.is_empty(),
            "a disaggregated fleet needs at least one prefill replica"
        );
        for &i in &plan.prefill_replicas {
            assert!(
                i < self.configs.len(),
                "disagg plan targets replica {i} of a {}-replica fleet",
                self.configs.len()
            );
        }
        let distinct: std::collections::BTreeSet<usize> =
            plan.prefill_replicas.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            plan.prefill_replicas.len(),
            "disagg plan lists a prefill replica twice"
        );
        assert!(
            distinct.len() < self.configs.len(),
            "a disaggregated fleet needs at least one decode replica"
        );
        self.disagg = Some(plan);
        self
    }

    /// Replicas in the fleet.
    pub fn replica_count(&self) -> usize {
        self.configs.len()
    }

    /// Run the fleet to completion (or every replica's stage cap).
    /// `policies` and `executors` are indexed like the replica configs
    /// and must match their length.
    pub fn run<E: StageExecutor + Send>(
        &self,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
    ) -> ClusterReport {
        match self.run_inner(router, policies, executors, None, None) {
            Ok(ClusterRun::Done(report)) => report,
            Ok(ClusterRun::Paused(_)) => unreachable!("an unbounded run never pauses"),
            Err(e) => unreachable!("no snapshot to validate: {e}"),
        }
    }

    /// Run until the first merge point whose next event (stage start
    /// or arrival) lies at or past `stop_s` virtual seconds: every
    /// event strictly before the bound executes, then the fleet pauses
    /// into a [`ClusterSnapshot`]. Returns
    /// [`ClusterRun::Done`] when the fleet drains first.
    ///
    /// Pausing and [`resume`](Self::resume)-ing is **byte-identical**
    /// to the uninterrupted [`run`](Self::run) — same RNG draws, same
    /// routing, same final report to the bit (asserted by the
    /// integration tests) — because snapshots capture the complete
    /// dynamic state at a merge point of the clock-merge protocol.
    pub fn run_until<E: StageExecutor + Send>(
        &self,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
        stop_s: f64,
    ) -> ClusterRun {
        self.run_inner(router, policies, executors, None, Some(stop_s))
            .expect("no snapshot to validate")
    }

    /// Continue a paused run to completion. The cluster, scenario,
    /// router kind, fault plan and policies must match the run that
    /// produced the snapshot; `executors` must be *freshly built*
    /// (their carried batch state is restored from the snapshot).
    /// Snapshots whose shape does not match this cluster (replica
    /// count, tier set, fault plan) are rejected with a descriptive
    /// error.
    pub fn resume<E: StageExecutor + Send>(
        &self,
        snapshot: &ClusterSnapshot,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
    ) -> Result<ClusterReport, String> {
        match self.run_inner(router, policies, executors, Some(snapshot), None)? {
            ClusterRun::Done(report) => Ok(report),
            ClusterRun::Paused(_) => unreachable!("an unbounded resume never pauses"),
        }
    }

    /// Continue a paused run until a further bound (see
    /// [`run_until`](Self::run_until)); a run may pause and resume any
    /// number of times. Mismatched snapshots are rejected like in
    /// [`resume`](Self::resume).
    pub fn resume_until<E: StageExecutor + Send>(
        &self,
        snapshot: &ClusterSnapshot,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
        stop_s: f64,
    ) -> Result<ClusterRun, String> {
        self.run_inner(router, policies, executors, Some(snapshot), Some(stop_s))
    }

    /// Reject a snapshot whose shape cannot belong to this cluster
    /// before any of it is imported (imports assume a valid shape).
    /// `policies` is the per-replica policy slice of the resuming run:
    /// preemption-armed policies carry a parked pool the scenario
    /// alone would not predict.
    fn validate_snapshot(
        &self,
        snap: &ClusterSnapshot,
        policies: &[Box<dyn SchedulingPolicy>],
    ) -> Result<(), String> {
        if snap.replicas.len() != self.configs.len() {
            return Err(format!(
                "snapshot has {} replicas, the cluster has {}",
                snap.replicas.len(),
                self.configs.len()
            ));
        }
        match (&self.disagg, &snap.disagg) {
            (Some(_), None) => {
                return Err(
                    "the cluster has a disaggregation plan but the snapshot has no disagg state"
                        .to_string(),
                );
            }
            (None, Some(_)) => {
                return Err(
                    "the snapshot has disagg state but the cluster has no disaggregation plan"
                        .to_string(),
                );
            }
            _ => {}
        }
        let tier_count = self.scenario.tiers.len();
        let fault_count = self.faults.as_ref().map_or(0, |p| p.faults.len());
        for (i, s) in snap.replicas.iter().enumerate() {
            if s.tiers.len() != tier_count {
                return Err(format!(
                    "replica {i}: snapshot has {} SLO tiers, the scenario has {tier_count}",
                    s.tiers.len()
                ));
            }
            // Decode-pool replicas carry a parked pool even in
            // single-shot scenarios (it receives prefill handoffs), and
            // so does any replica whose policy arms preemption (the
            // pool receives swapped-out paused contexts).
            let expects_parked = self.scenario.conversation.is_some()
                || self
                    .disagg
                    .as_ref()
                    .is_some_and(|plan| plan.role_of(i) == PoolRole::Decode)
                || policies.get(i).is_some_and(|p| p.preempt_spec().is_some());
            if s.parked.is_some() != expects_parked {
                return Err(format!(
                    "replica {i}: snapshot parked-KV state does not match the scenario"
                ));
            }
            if s.window_counts.len() != fault_count {
                return Err(format!(
                    "replica {i}: snapshot has {} fault windows, the plan has {fault_count}",
                    s.window_counts.len()
                ));
            }
            if let Some(w) = s.window_counts.iter().find(|w| w.len() != tier_count) {
                return Err(format!(
                    "replica {i}: a fault window has {} tier slots, the scenario has {tier_count}",
                    w.len()
                ));
            }
        }
        match (&self.faults, &snap.fault) {
            (Some(_), None) => {
                return Err(
                    "the cluster has a fault plan but the snapshot has no fault state".to_string(),
                );
            }
            (None, Some(_)) => {
                return Err(
                    "the snapshot has fault state but the cluster has no fault plan".to_string(),
                );
            }
            _ => {}
        }
        if let (Some(plan), Some(fs)) = (&self.faults, &snap.fault) {
            for &(_, _, code, arg) in &fs.events {
                let valid = match code {
                    0 => (arg as usize) < plan.faults.len(),
                    1 | 2 => (arg as usize) < self.configs.len(),
                    _ => false,
                };
                if !valid {
                    return Err(format!(
                        "snapshot fault event has code {code} with out-of-range argument {arg}"
                    ));
                }
            }
            if let Some(&(replica, _, _)) = fs
                .draining_down
                .iter()
                .find(|&&(r, _, _)| r as usize >= self.configs.len())
            {
                return Err(format!(
                    "snapshot drain state targets replica {replica} of {}",
                    self.configs.len()
                ));
            }
            let trigger_count = plan.triggers.len();
            if fs.triggers.len() != trigger_count {
                return Err(format!(
                    "snapshot has {} load-trigger states, the plan has {trigger_count}",
                    fs.triggers.len()
                ));
            }
        }
        match (&self.autoscale, &snap.autoscale) {
            (Some(_), None) => {
                return Err(
                    "the cluster has an autoscale policy but the snapshot has no autoscale state"
                        .to_string(),
                );
            }
            (None, Some(_)) => {
                return Err(
                    "the snapshot has autoscale state but the cluster has no autoscale policy"
                        .to_string(),
                );
            }
            _ => {}
        }
        if let Some(a) = &snap.autoscale {
            if a.pool.len() != self.configs.len() || a.draining.len() != self.configs.len() {
                return Err(format!(
                    "snapshot autoscale state covers {} replicas, the cluster has {}",
                    a.pool.len().max(a.draining.len()),
                    self.configs.len()
                ));
            }
            for &(_, _, code, arg, _) in &a.events {
                let valid = match code {
                    0 => true,
                    1 | 2 => (arg as usize) < self.configs.len(),
                    _ => false,
                };
                if !valid {
                    return Err(format!(
                        "snapshot scale event has code {code} with out-of-range argument {arg}"
                    ));
                }
            }
        }
        if let (Some(plan), Some(d)) = (&self.disagg, &snap.disagg) {
            if let Some(&(id, target, _)) = d
                .assignments
                .iter()
                .find(|&&(_, t, _)| plan.role_of(t as usize) != PoolRole::Decode)
            {
                return Err(format!(
                    "snapshot assigns request {id} to replica {target}, which is not in the \
                     decode pool"
                ));
            }
            if let Some(&(id, target, _)) = d
                .assignments
                .iter()
                .find(|&&(_, t, _)| t as usize >= self.configs.len())
            {
                return Err(format!(
                    "snapshot assigns request {id} to replica {target} of {}",
                    self.configs.len()
                ));
            }
        }
        Ok(())
    }

    fn run_inner<E: StageExecutor + Send>(
        &self,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
        start: Option<&ClusterSnapshot>,
        stop_s: Option<f64>,
    ) -> Result<ClusterRun, String> {
        let configs = &self.configs;
        assert_eq!(
            configs.len(),
            policies.len(),
            "one scheduling policy per replica"
        );
        assert_eq!(configs.len(), executors.len(), "one executor per replica");
        let mut stream = ScenarioStream::new(&self.scenario, None);
        let mut replicas: Vec<ReplicaSim> = configs
            .iter()
            .map(|c| ReplicaSim::new(c.sim, &self.scenario))
            .collect();
        if let Some(plan) = &self.disagg {
            // Roles are static configuration: assigned before any
            // stepping or snapshot import.
            for (i, replica) in replicas.iter_mut().enumerate() {
                replica.set_role(plan.role_of(i));
            }
        }
        // Preemption is armed before any stepping or snapshot import:
        // resumes need announced decode-join contexts and a parked
        // pool from the very first stage (and an imported snapshot may
        // already carry paused state).
        for (replica, policy) in replicas.iter_mut().zip(policies.iter()) {
            replica.prepare_preempt(policy.as_ref());
        }
        let mut disagg_rt = self.disagg.as_ref().map(DisaggRuntime::new);
        let mut stats = RecoveryStats::default();
        let mut fault_rt = self.faults.as_ref().map(|plan| {
            let windows: Vec<(f64, f64)> = plan
                .faults
                .iter()
                .map(|f| (f.at_s, f.at_s + plan.slo_window_s))
                .collect();
            for r in replicas.iter_mut() {
                r.set_fault_recording(windows.clone(), plan.timeline_bucket_s);
            }
            FaultRuntime::new(plan, configs.len())
        });
        let mut auto_rt = self
            .autoscale
            .as_ref()
            .map(|policy| AutoscaleRuntime::new(policy, configs.len()));
        if start.is_none() {
            if let Some(rt) = &auto_rt {
                // Fresh elastic start: everything beyond the floor
                // begins parked in the standby pool.
                for (i, replica) in replicas.iter_mut().enumerate() {
                    if rt.pool[i] {
                        replica.deactivate();
                    }
                }
            }
        }
        if let Some(snap) = start {
            self.validate_snapshot(snap, policies)?;
            stream.import_state(&snap.stream);
            router.import_state(&snap.router);
            stats = snap.stats;
            if let (Some(rt), Some(fs)) = (fault_rt.as_mut(), &snap.fault) {
                rt.import_state(fs);
            }
            if let (Some(rt), Some(a)) = (auto_rt.as_mut(), &snap.autoscale) {
                rt.import_state(a);
            }
            if let (Some(rt), Some(d)) = (disagg_rt.as_mut(), &snap.disagg) {
                rt.import_state(d);
            }
            for ((replica, state), executor) in replicas
                .iter_mut()
                .zip(&snap.replicas)
                .zip(executors.iter_mut())
            {
                replica.import_state(state);
                if let Some(batch) = &state.batch {
                    executor.import_batch(batch);
                }
            }
        }
        let link = self
            .faults
            .as_ref()
            .map_or_else(KvLinkSpec::default, |p| p.link);
        let mut snapshots: Vec<ReplicaSnapshot> = Vec::with_capacity(replicas.len());
        let threads = self.cluster.effective_threads();

        let no_skip: Vec<bool> = Vec::new();

        loop {
            // ---- fault + scale boundary, at the merge point ----
            // Apply every due fault event (scripted faults, load
            // triggers, restarts, warm-up clears) and every due scale
            // event, completing finished drains, before anything
            // observes the fleet. Fault machinery runs first on each
            // pass — a fixed order keeps runs deterministic — and the
            // loop alternates until both are quiet, so a scale event
            // that frees work for the fault runtime (or vice versa)
            // still lands at this same boundary.
            loop {
                let mut acted = false;
                if let Some(rt) = fault_rt.as_mut() {
                    let skip = auto_rt.as_ref().map_or(&no_skip[..], |a| &a.draining[..]);
                    acted |=
                        rt.process_boundary(&mut stream, configs, &mut replicas, &mut stats, skip);
                }
                if let Some(rt) = auto_rt.as_mut() {
                    acted |= rt.process_boundary(&mut stream, configs, &mut replicas, &mut stats);
                }
                if !acted {
                    break;
                }
            }
            // ---- pause check, at the merge-point boundary ----
            // Peeking the arrival time here draws the same source
            // request the upcoming dispatch would peek, so the stream
            // state a snapshot captures is on the uninterrupted run's
            // draw order.
            if let Some(stop) = stop_s {
                let next_event = [
                    fleet_next_start(&replicas),
                    stream.next_arrival_time(),
                    fault_rt.as_ref().and_then(FaultRuntime::next_event_at),
                    auto_rt.as_ref().and_then(AutoscaleRuntime::next_event_at),
                ]
                .into_iter()
                .flatten()
                .fold(None::<f64>, |acc, t| match acc {
                    Some(best) if best <= t => Some(best),
                    _ => Some(t),
                });
                if next_event.is_some_and(|t| t >= stop) {
                    let states = replicas
                        .iter()
                        .zip(executors.iter())
                        .map(|(r, e)| {
                            let mut state = r.export_state();
                            state.batch = e.export_batch();
                            state
                        })
                        .collect();
                    return Ok(ClusterRun::Paused(Box::new(ClusterSnapshot {
                        taken_at_s: stop,
                        router: router.export_state(),
                        stream: stream.export_state(),
                        replicas: states,
                        stats,
                        fault: fault_rt.as_ref().map(FaultRuntime::export_state),
                        autoscale: auto_rt.as_ref().map(AutoscaleRuntime::export_state),
                        disagg: disagg_rt.as_ref().map(DisaggRuntime::export_state),
                    })));
                }
            }
            let limit = [
                fault_rt.as_ref().and_then(FaultRuntime::next_event_at),
                auto_rt.as_ref().and_then(AutoscaleRuntime::next_event_at),
            ]
            .into_iter()
            .flatten()
            .fold(None::<f64>, |acc, t| match acc {
                Some(best) if best <= t => Some(best),
                _ => Some(t),
            });
            if !drive_round(
                &mut stream,
                router,
                configs,
                &mut replicas,
                &mut snapshots,
                policies,
                executors,
                threads,
                limit,
                link,
                &mut stats,
                disagg_rt.as_mut(),
            ) {
                // A fully-down fleet holds its arrivals instead of
                // stepping: keep looping while the fault or scale
                // machinery can still deliver them (pending events, or
                // a finished drain whose completion unblocks the run).
                let can_progress = fault_rt.as_ref().is_some_and(FaultRuntime::has_events)
                    || auto_rt.as_ref().is_some_and(AutoscaleRuntime::has_events)
                    || replicas.iter().any(|r| r.is_draining() && !r.in_flight());
                if can_progress && stream.next_arrival_time().is_some() {
                    continue;
                }
                break;
            }
        }

        let mut fault_outcomes = match (&self.faults, &fault_rt) {
            (Some(plan), Some(rt)) => {
                compute_fault_outcomes(plan, rt, &replicas, &self.scenario.tiers)
            }
            _ => Vec::new(),
        };
        // The fleet wall clock is the max replica clock (what each
        // report's `total_time_s` will be); billable replica time is
        // that span minus each replica's accumulated down time — pool
        // replicas that never served bill zero.
        let total_time_s = replicas
            .iter()
            .map(ReplicaSim::clock)
            .fold(0.0f64, f64::max);
        let replica_seconds: f64 = replicas
            .iter()
            .map(|r| (total_time_s - r.down_seconds_until(total_time_s)).max(0.0))
            .sum();
        let scaling = auto_rt.map(|rt| rt.stats).unwrap_or_default();
        let disagg = disagg_rt.map(|rt| rt.stats).unwrap_or_default();
        let reports: Vec<SimReport> = replicas.into_iter().map(ReplicaSim::into_report).collect();
        for o in fault_outcomes.iter_mut() {
            if o.recovered_at_s.is_none() {
                // Never recovered inside the run: the remaining span
                // is the pessimistic, gateable stand-in.
                o.recovery_time_s = (total_time_s - o.at_s).max(0.0);
            }
        }
        Ok(ClusterRun::Done(ClusterReport {
            replicas: reports,
            router: router.name().into(),
            total_time_s,
            recovery: stats,
            faults: fault_outcomes,
            replica_seconds,
            scaling,
            disagg,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultEvent, LoadTrigger, RetryPolicy};
    use crate::policy::PolicyKind;
    use crate::router::{FleetShed, LeastOutstandingWork, RoundRobin, RouterKind, SessionAffinity};
    use crate::scenario::{ConversationSpec, ScenarioSimulation};
    use crate::scheduler::StageOutcome;
    use crate::workload::{Arrivals, Workload};
    use duplex_model::ops::StageShape;

    #[derive(Clone, Copy)]
    struct Fixed(f64);
    impl StageExecutor for Fixed {
        fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
            StageOutcome { seconds: self.0 }
        }
    }

    fn config(max_batch: usize) -> SimulationConfig {
        SimulationConfig {
            max_batch,
            ..SimulationConfig::default()
        }
    }

    fn policies(n: usize, kind: PolicyKind) -> Vec<Box<dyn SchedulingPolicy>> {
        (0..n).map(|_| kind.build()).collect()
    }

    #[test]
    fn single_replica_cluster_equals_scenario_simulation() {
        let scenario = Scenario::new(
            "solo",
            Workload::gaussian(96, 10).with_seed(7),
            Arrivals::Poisson { qps: 300.0 },
            25,
        )
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.01, 24))
        .with_tiers(Scenario::default_tiers(0.01));
        let plain = ScenarioSimulation::new(config(4), scenario.clone())
            .run(PolicyKind::PriorityTiers.build().as_mut(), &mut Fixed(0.01));
        for kind in RouterKind::ALL {
            let cluster =
                ClusterSimulation::new(vec![ReplicaConfig::new(config(4))], scenario.clone()).run(
                    kind.build().as_mut(),
                    &mut policies(1, PolicyKind::PriorityTiers),
                    &mut [Fixed(0.01)],
                );
            assert_eq!(cluster.replicas.len(), 1);
            let r = &cluster.replicas[0];
            assert_eq!(r.stage_stats, plain.stage_stats, "{}", kind.name());
            assert_eq!(r.total_time_s.to_bits(), plain.total_time_s.to_bits());
            assert_eq!(r.completed.len(), plain.completed.len());
            assert_eq!(r.kv_reuse, plain.kv_reuse);
            assert_eq!(cluster.completed(), plain.completed.len());
        }
    }

    #[test]
    fn fleet_serves_everything_and_spreads_load() {
        let scenario = Scenario::new(
            "fleet",
            Workload::fixed(64, 8).with_seed(3),
            Arrivals::Poisson { qps: 2000.0 },
            80,
        );
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 4], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(4, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 4],
        );
        assert_eq!(report.completed(), 80);
        // Round-robin spreads a uniform stream exactly evenly.
        for r in &report.replicas {
            assert_eq!(r.completed.len(), 20);
        }
        assert!((report.load_imbalance() - 1.0).abs() < 0.05);
        // Fleet totals are sums of replica totals.
        assert_eq!(
            report.generated_tokens(),
            report.replicas.iter().map(|r| r.generated_tokens()).sum()
        );
        assert_eq!(report.stage_stats().stages, report.stages());
        assert!(report.total_time_s > 0.0);
        assert!(report.generation_throughput() > 0.0);
        assert_eq!(report.tbt_digest().count(), report.tbt().count as u64);
    }

    #[test]
    fn least_outstanding_absorbs_a_slow_replica() {
        // One replica is 8x slower. JSQ steers work away from it;
        // round-robin keeps feeding it and strands a deep queue.
        let scenario = || {
            Scenario::new(
                "skewed",
                Workload::fixed(64, 8).with_seed(5),
                Arrivals::Poisson { qps: 600.0 },
                60,
            )
        };
        let configs = vec![ReplicaConfig::new(config(4)); 2];
        let mut slow_fast = [Fixed(0.08), Fixed(0.01)];
        let rr = ClusterSimulation::new(configs.clone(), scenario()).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut slow_fast,
        );
        let jsq = ClusterSimulation::new(configs, scenario()).run(
            &mut LeastOutstandingWork,
            &mut policies(2, PolicyKind::Fcfs),
            &mut slow_fast,
        );
        assert_eq!(rr.completed(), 60);
        assert_eq!(jsq.completed(), 60);
        // JSQ finishes the backlog sooner and sends more work to the
        // fast replica.
        assert!(
            jsq.total_time_s < rr.total_time_s,
            "jsq {} vs rr {}",
            jsq.total_time_s,
            rr.total_time_s
        );
        assert!(jsq.replicas[1].completed.len() > rr.replicas[1].completed.len());
    }

    #[test]
    fn session_affinity_reuses_kv_where_round_robin_cannot() {
        // Multi-turn conversations across 4 replicas: round-robin
        // scatters follow-ups away from their parked KV (reuse misses),
        // affinity pins them (reuse hits).
        let scenario = || {
            Scenario::new(
                "chat",
                Workload::fixed(96, 8).with_seed(11),
                Arrivals::Poisson { qps: 400.0 },
                24,
            )
            .with_conversation(ConversationSpec::chat(1.0, 3, 0.02, 16))
        };
        let configs = vec![ReplicaConfig::new(config(4)); 4];
        let run = |router: &mut dyn Router| {
            ClusterSimulation::new(configs.clone(), scenario()).run(
                router,
                &mut policies(4, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 4],
            )
        };
        let rr = run(&mut RoundRobin::default());
        let aff = run(&mut SessionAffinity::default());
        assert_eq!(rr.completed(), 72, "3 rounds x 24 conversations");
        assert_eq!(aff.completed(), 72);
        let (rr_kv, aff_kv) = (rr.kv_reuse(), aff.kv_reuse());
        assert!(
            aff_kv.reuse_fraction() > rr_kv.reuse_fraction() + 0.15,
            "affinity {:?} vs round-robin {:?}",
            aff_kv,
            rr_kv
        );
        assert!(aff_kv.reuse_hits > rr_kv.reuse_hits);
    }

    #[test]
    fn heterogeneous_configs_and_weights_flow_through() {
        // A fleet with different batch sizes per replica: the bigger
        // replica absorbs more of a closed-loop backlog under JSQ.
        let configs = vec![
            ReplicaConfig::new(config(8)).with_weight(2.0),
            ReplicaConfig::new(config(2)),
        ];
        let scenario = Scenario::new(
            "hetero",
            Workload::fixed(32, 6).with_seed(9),
            Arrivals::Poisson { qps: 5000.0 },
            60,
        );
        let report = ClusterSimulation::new(configs, scenario).run(
            &mut LeastOutstandingWork,
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01), Fixed(0.01)],
        );
        assert_eq!(report.completed(), 60);
        assert!(report.replicas[0].completed.len() > report.replicas[1].completed.len());
    }

    #[test]
    fn stale_parked_prefixes_are_credited_at_their_own_length() {
        // One 3-round conversation over 2 replicas under round-robin:
        // round 1 parks 68 tokens on replica 0, round 2 runs (and
        // parks 88) on replica 1, round 3 returns to replica 0 where
        // only the stale 68-token *prefix* is resident. The reuse
        // credit must be those 68 tokens — not the 88 the request
        // carries as history — and the prefill must cover the rest.
        let scenario = Scenario::new(
            "stale",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            1,
        )
        .with_conversation(ConversationSpec::chat(1.0, 3, 0.001, 16));
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        assert_eq!(report.completed(), 3);
        let kv = report.kv_reuse();
        assert_eq!(kv.reuse_hits, 1, "round 3 finds the stale prefix");
        assert_eq!(kv.reuse_misses, 1, "round 2 finds nothing on replica 1");
        assert_eq!(kv.reused_prefill_tokens, 68, "stale prefix length, not 88");
        // Prefills: 64 (round 1) + 84 (round 2, full) + 104 - 68
        // (round 3 suffix over the stale prefix).
        assert_eq!(kv.prefilled_tokens, 64 + 84 + 36);
    }

    #[test]
    fn capped_replicas_stop_receiving_arrivals() {
        // Replica 0 is stage-capped from the start (a failed node):
        // the routers must steer every arrival to the live replica
        // instead of stranding work in a dead inbox.
        let capped = SimulationConfig {
            max_stages: 0,
            ..config(4)
        };
        let scenario = Scenario::new(
            "failover",
            Workload::fixed(32, 4).with_seed(5),
            Arrivals::Poisson { qps: 500.0 },
            20,
        );
        let report = ClusterSimulation::new(
            vec![ReplicaConfig::new(capped), ReplicaConfig::new(config(4))],
            scenario,
        )
        .run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        assert_eq!(report.completed(), 20, "nothing strands on the dead node");
        assert_eq!(report.replicas[0].stage_stats.stages, 0);
        assert_eq!(report.replicas[1].completed.len(), 20);
    }

    #[test]
    fn cluster_respects_per_replica_stage_caps() {
        let capped = SimulationConfig {
            max_stages: 3,
            ..config(2)
        };
        let scenario = Scenario::new(
            "capped",
            Workload::fixed(16, 50).with_seed(1),
            Arrivals::ClosedLoop,
            8,
        );
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(capped); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        // Both replicas truncate at their cap; nothing completes (50
        // output tokens need 50 stages) and the run still terminates.
        assert_eq!(report.completed(), 0);
        assert_eq!(report.stages(), 6);
    }

    #[test]
    fn merged_slo_covers_every_replica() {
        let scenario = Scenario::new(
            "tiered",
            Workload::fixed(48, 8).with_seed(2),
            Arrivals::Poisson { qps: 800.0 },
            40,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::PriorityTiers),
            &mut [Fixed(0.01); 2],
        );
        let slo = report.slo();
        assert_eq!(slo.tiers.len(), 3);
        assert_eq!(slo.completed(), 40);
        assert!(report.slo_attainment() > 0.0);
        assert!(report.goodput_tokens_per_s() > 0.0);
        // The merged tier digests hold both replicas' gap populations.
        let per_replica: u64 = report
            .replicas
            .iter()
            .flat_map(|r| r.slo.tiers.iter().map(|t| t.tbt_digest.count()))
            .sum();
        let merged: u64 = slo.tiers.iter().map(|t| t.tbt_digest.count()).sum();
        assert_eq!(per_replica, merged);
    }

    #[test]
    fn duplex_threads_parses_positive_integers() {
        assert_eq!(parse_duplex_threads("1"), 1);
        assert_eq!(parse_duplex_threads("16"), 16);
    }

    #[test]
    #[should_panic(expected = "DUPLEX_THREADS must be a positive integer")]
    fn duplex_threads_rejects_zero() {
        parse_duplex_threads("0");
    }

    #[test]
    #[should_panic(expected = "DUPLEX_THREADS must be a positive integer")]
    fn duplex_threads_rejects_junk() {
        parse_duplex_threads("many");
    }

    #[test]
    fn a_run_without_faults_reports_zeroed_recovery() {
        let scenario = Scenario::new(
            "calm",
            Workload::fixed(48, 8).with_seed(2),
            Arrivals::Poisson { qps: 800.0 },
            20,
        );
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        assert_eq!(report.recovery, RecoveryStats::default());
        assert!(report.faults.is_empty());
        assert_eq!(report.recovery_time_s(), 0.0);
    }

    #[test]
    fn a_crash_retries_lost_requests_and_the_fleet_still_completes() {
        let scenario = Scenario::new(
            "crashy",
            Workload::fixed(64, 8).with_seed(3),
            Arrivals::Poisson { qps: 800.0 },
            40,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let plan = FaultPlan::new(vec![FaultEvent::new(
            0.05,
            0,
            FaultKind::Crash { down_s: 0.1 },
        )])
        .with_recovery_tracking(0.7, 0.02, 0.5);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario)
            .with_faults(plan)
            .run(
                &mut RoundRobin::default(),
                &mut policies(2, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 2],
            );
        assert_eq!(report.recovery.faults_injected, 1);
        assert!(report.recovery.requests_lost > 0, "{:?}", report.recovery);
        assert_eq!(
            report.recovery.retries_issued, report.recovery.requests_lost,
            "one crash cannot exhaust a 3-retry budget"
        );
        assert_eq!(report.recovery.requests_dropped, 0);
        // Every lost request is retried to completion.
        assert_eq!(report.completed(), 40);
        assert_eq!(report.faults.len(), 1);
        assert!(report.recovery_time_s() >= 0.0);
        assert!(!report.faults[0].windows.is_empty());
    }

    #[test]
    fn an_exhausted_retry_budget_drops_the_lost_requests() {
        let scenario = Scenario::new(
            "lossy",
            Workload::fixed(64, 8).with_seed(3),
            Arrivals::Poisson { qps: 800.0 },
            40,
        );
        let plan = FaultPlan::new(vec![FaultEvent::new(
            0.05,
            0,
            FaultKind::Crash { down_s: 0.1 },
        )])
        .with_retry(RetryPolicy::new(0));
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario)
            .with_faults(plan)
            .run(
                &mut RoundRobin::default(),
                &mut policies(2, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 2],
            );
        assert!(report.recovery.requests_dropped > 0);
        assert_eq!(report.recovery.retries_issued, 0);
        assert_eq!(
            report.completed() as u64,
            40 - report.recovery.requests_dropped
        );
    }

    #[test]
    fn a_drain_hands_parked_kv_to_the_surviving_replica() {
        let scenario = Scenario::new(
            "drained",
            Workload::gaussian(96, 10).with_seed(7),
            Arrivals::Poisson { qps: 400.0 },
            30,
        )
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.01, 24));
        let plan = FaultPlan::new(vec![FaultEvent::new(
            0.06,
            0,
            FaultKind::Drain { down_s: 0.05 },
        )]);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario)
            .with_faults(plan)
            .run(
                &mut SessionAffinity::default(),
                &mut policies(2, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 2],
            );
        // A graceful drain loses nothing: displaced queue entries are
        // re-routed and parked KV is handed to the surviving replica.
        assert_eq!(report.recovery.requests_lost, 0);
        assert_eq!(report.recovery.requests_dropped, 0);
        assert!(
            report.recovery.kv_migrations > 0,
            "the drained replica held parked KV: {:?}",
            report.recovery
        );
        assert!(report.recovery.kv_bytes_migrated > 0);
        assert!(report.recovery.migration_seconds > 0.0);
        assert!(report.completed() > 0);
    }

    #[test]
    fn a_slowdown_stretches_the_run_but_loses_nothing() {
        let scenario = || {
            Scenario::new(
                "sluggish",
                Workload::fixed(64, 8).with_seed(5),
                Arrivals::Poisson { qps: 600.0 },
                30,
            )
        };
        let configs = vec![ReplicaConfig::new(config(4))];
        let healthy = ClusterSimulation::new(configs.clone(), scenario()).run(
            &mut RoundRobin::default(),
            &mut policies(1, PolicyKind::Fcfs),
            &mut [Fixed(0.01)],
        );
        let plan = FaultPlan::new(vec![FaultEvent::new(
            0.0,
            0,
            FaultKind::Slowdown {
                duration_s: 1e3,
                factor: 4.0,
            },
        )]);
        let slowed = ClusterSimulation::new(configs, scenario())
            .with_faults(plan)
            .run(
                &mut RoundRobin::default(),
                &mut policies(1, PolicyKind::Fcfs),
                &mut [Fixed(0.01)],
            );
        assert_eq!(slowed.completed(), 30);
        assert_eq!(slowed.recovery.requests_lost, 0);
        assert!(
            slowed.total_time_s > healthy.total_time_s * 2.0,
            "4x slowdown: {} vs {}",
            slowed.total_time_s,
            healthy.total_time_s
        );
    }

    #[test]
    fn an_autoscaled_fleet_provisions_under_pressure_and_bills_less() {
        let scenario = Scenario::new(
            "elastic",
            Workload::fixed(48, 8).with_seed(11),
            Arrivals::Poisson { qps: 900.0 },
            60,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let policy = AutoscalePolicy::new(1)
            .with_pressure(1.0, 0.2)
            .with_cadence(0.02, 1, 3)
            .with_cooldown(0.0)
            .with_provisioning(0.02, 0.02, 2.0);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 3], scenario)
            .with_autoscale(policy)
            .run(
                &mut LeastOutstandingWork,
                &mut policies(3, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 3],
            );
        assert_eq!(report.completed(), 60);
        assert!(report.scaling.scale_ups >= 1, "{:?}", report.scaling);
        assert!(
            report.scaling.scale_up_lag_s > 0.0,
            "detection + provisioning take time: {:?}",
            report.scaling
        );
        // Pool replicas bill nothing until they join, so an elastic
        // fleet always undercuts replicas x wall-clock...
        assert!(
            report.replica_seconds < 3.0 * report.total_time_s,
            "{} vs {}",
            report.replica_seconds,
            3.0 * report.total_time_s
        );
        // ...while the floor replica serves the whole run.
        assert!(report.replica_seconds >= report.total_time_s);
    }

    #[test]
    fn scale_downs_never_take_the_fleet_below_the_floor() {
        let scenario = Scenario::new(
            "becalmed",
            Workload::fixed(32, 4).with_seed(13),
            Arrivals::Poisson { qps: 40.0 },
            30,
        );
        // Down votes fire from the first evaluation: the pressure is
        // far below 1.0 and the occupancy ceiling accepts anything.
        let policy = AutoscalePolicy::new(2)
            .with_pressure(5.0, 1.0)
            .with_down_occupancy(1.0)
            .with_cadence(0.05, 2, 1)
            .with_cooldown(0.0);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 4], scenario)
            .with_autoscale(policy)
            .run(
                &mut RoundRobin::default(),
                &mut policies(4, PolicyKind::Fcfs),
                &mut [Fixed(0.005); 4],
            );
        assert_eq!(report.completed(), 30);
        // Two replicas serve (the floor), two stay parked; with the
        // fleet already at the floor no scale-down may fire.
        assert_eq!(report.scaling.scale_downs, 0, "{:?}", report.scaling);
        assert_eq!(report.scaling.scale_ups, 0);
        assert!(report.replica_seconds <= 2.0 * report.total_time_s + 1e-9);
    }

    #[test]
    fn a_quiet_tail_drains_surplus_replicas_back_to_the_pool() {
        let scenario = Scenario::new(
            "spike-then-idle",
            Workload::fixed(48, 8).with_seed(17),
            Arrivals::Poisson { qps: 2000.0 },
            80,
        );
        let policy = AutoscalePolicy::new(1)
            .with_pressure(1.2, 0.5)
            .with_down_occupancy(1.0)
            .with_cadence(0.01, 1, 3)
            .with_cooldown(0.0)
            .with_provisioning(0.01, 0.0, 1.0);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario)
            .with_autoscale(policy)
            .run(
                &mut LeastOutstandingWork,
                &mut policies(2, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 2],
            );
        assert_eq!(report.completed(), 80);
        assert!(report.scaling.scale_ups >= 1, "{:?}", report.scaling);
        assert!(
            report.scaling.scale_downs >= 1,
            "the tail goes quiet long enough to drain the joiner: {:?}",
            report.scaling
        );
    }

    #[test]
    fn an_autoscaled_run_is_identical_serial_and_parallel() {
        let scenario = || {
            Scenario::new(
                "elastic-par",
                Workload::gaussian(96, 10).with_seed(19),
                Arrivals::Poisson { qps: 700.0 },
                50,
            )
            .with_conversation(ConversationSpec::chat(0.6, 3, 0.01, 24))
            .with_tiers(Scenario::default_tiers(0.01))
        };
        let policy = || {
            AutoscalePolicy::new(1)
                .with_pressure(1.0, 0.2)
                .with_cadence(0.02, 1, 3)
                .with_provisioning(0.02, 0.02, 2.0)
        };
        let run = |cluster: ClusterConfig| {
            ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 3], scenario())
                .with_autoscale(policy())
                .with_config(cluster)
                .run(
                    &mut SessionAffinity::default(),
                    &mut policies(3, PolicyKind::Fcfs),
                    &mut [Fixed(0.01); 3],
                )
        };
        let serial = run(ClusterConfig {
            parallel: false,
            threads: 1,
        });
        let parallel = run(ClusterConfig {
            parallel: true,
            threads: 3,
        });
        assert_eq!(serial, parallel);
        assert!(serial.scaling.scale_ups >= 1, "{:?}", serial.scaling);
    }

    #[test]
    fn a_mid_scale_event_snapshot_resumes_bit_for_bit() {
        let scenario = || {
            Scenario::new(
                "elastic-pause",
                Workload::fixed(48, 8).with_seed(23),
                Arrivals::Poisson { qps: 900.0 },
                60,
            )
            .with_tiers(Scenario::default_tiers(0.01))
        };
        let sim = || {
            ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 3], scenario())
                .with_autoscale(
                    AutoscalePolicy::new(1)
                        .with_pressure(1.0, 0.2)
                        .with_cadence(0.02, 1, 3)
                        .with_cooldown(0.0)
                        .with_provisioning(0.03, 0.02, 2.0),
                )
        };
        let full = sim().run(
            &mut RoundRobin::default(),
            &mut policies(3, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 3],
        );
        let mut paused_at_least_once = false;
        for stop in [0.03, 0.06, 0.12, 0.3] {
            let run = sim().run_until(
                &mut RoundRobin::default(),
                &mut policies(3, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 3],
                stop,
            );
            let Some(snap) = run.snapshot() else {
                continue; // drained before this bound
            };
            paused_at_least_once = true;
            // Through JSON and back: the v3 document carries the
            // autoscale runtime too.
            let snap = ClusterSnapshot::from_json(&snap.to_json()).expect("round-trips");
            let resumed = sim()
                .resume(
                    &snap,
                    &mut RoundRobin::default(),
                    &mut policies(3, PolicyKind::Fcfs),
                    &mut [Fixed(0.01); 3],
                )
                .expect("resumes");
            assert_eq!(resumed, full, "stop at {stop}");
        }
        assert!(paused_at_least_once);
    }

    #[test]
    fn a_mid_preemption_snapshot_resumes_bit_for_bit() {
        // Saturate a preempting fleet so stages pause batch decodes,
        // then stop at bounds chosen to land while paused requests are
        // in flight: the v5 snapshot must carry them (and any formed
        // multiplex slots) through JSON and resume to the exact
        // uninterrupted report.
        let scenario = || {
            Scenario::new(
                "preempt-pause",
                Workload::fixed(48, 24).with_seed(31),
                Arrivals::Poisson { qps: 900.0 },
                60,
            )
            // Half the traffic is preemptible batch work, so saturated
            // stages always hold a victim.
            .with_tiers(vec![
                SloTier::new("interactive", 0.5, 0, 0.1, 0.0),
                SloTier::new("batch", 0.5, 2, 10.0, 0.0),
            ])
        };
        let sim = || ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario());
        let full = sim().run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Multiplex),
            &mut [Fixed(0.01); 2],
        );
        assert!(full.preempt().preemptions > 0, "{:?}", full.preempt());
        let mut paused_in_flight = false;
        for stop in [0.02, 0.05, 0.1, 0.2, 0.4] {
            let run = sim().run_until(
                &mut RoundRobin::default(),
                &mut policies(2, PolicyKind::Multiplex),
                &mut [Fixed(0.01); 2],
                stop,
            );
            let Some(snap) = run.snapshot() else {
                continue; // drained before this bound
            };
            paused_in_flight |= snap.replicas.iter().any(|r| !r.paused.is_empty());
            let snap = ClusterSnapshot::from_json(&snap.to_json()).expect("round-trips");
            let resumed = sim()
                .resume(
                    &snap,
                    &mut RoundRobin::default(),
                    &mut policies(2, PolicyKind::Multiplex),
                    &mut [Fixed(0.01); 2],
                )
                .expect("resumes");
            assert_eq!(resumed, full, "stop at {stop}");
        }
        assert!(
            paused_in_flight,
            "no stop bound caught a paused request mid-flight"
        );
    }

    #[test]
    fn a_load_trigger_injects_its_fault_when_pressure_crosses() {
        let scenario = Scenario::new(
            "hot",
            Workload::fixed(48, 8).with_seed(3),
            Arrivals::Poisson { qps: 900.0 },
            40,
        );
        let plan = FaultPlan::new(Vec::new()).with_triggers(vec![LoadTrigger::new(
            1.5,
            FaultKind::Slowdown {
                duration_s: 0.05,
                factor: 2.0,
            },
        )
        .with_max_fires(2)
        .with_cooldown(0.1)]);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario)
            .with_faults(plan)
            .run(
                &mut RoundRobin::default(),
                &mut policies(2, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 2],
            );
        assert!(report.recovery.triggers_fired >= 1, "{:?}", report.recovery);
        assert!(report.recovery.triggers_fired <= 2, "max_fires caps firing");
        assert_eq!(
            report.recovery.faults_injected, report.recovery.triggers_fired,
            "triggered faults count as injected"
        );
        assert!(
            report.faults.is_empty(),
            "triggered faults have no scripted outcome windows"
        );
        assert_eq!(report.completed(), 40);
    }

    #[test]
    fn fleet_level_shedding_defers_batch_arrivals_and_still_completes() {
        let scenario = Scenario::new(
            "shed",
            Workload::fixed(48, 8).with_seed(9),
            Arrivals::Poisson { qps: 900.0 },
            40,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let mut router = FleetShed::new(Box::<RoundRobin>::default()).with_shedding(0.25, 2, 0.05);
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario).run(
            &mut router,
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        assert!(
            report.recovery.requests_deferred > 0,
            "{:?}",
            report.recovery
        );
        // Deferral only delays admission; nothing is lost or dropped.
        assert_eq!(report.completed(), 40);
        assert_eq!(report.router, "fleet-shed");
    }
}
