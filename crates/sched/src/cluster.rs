//! Multi-replica cluster serving: N independent replicas — each its
//! own continuous-batching scheduler, KV cache and executor — behind a
//! pluggable [`Router`], multiplexed on one shared virtual clock.
//!
//! A [`ClusterSimulation`] scales the scenario scheduler
//! ([`crate::scenario`]) from one serving instance to a fleet:
//!
//! * **one global arrival stream** — the scenario's arrival process,
//!   tier draws and multi-turn follow-up spawning stay global (a
//!   conversation's next round can land on any replica), so seeded
//!   determinism is preserved: the RNG draw order is fixed by the
//!   global event order alone;
//! * **a [`Router`] decides placement** — every arriving request is
//!   routed exactly once, at its arrival time, against per-replica
//!   [`ReplicaSnapshot`]s (queue depth, outstanding tokens, KV
//!   residency of the request's conversation). Session-affinity
//!   routing is what lets multi-turn KV reuse survive behind the load
//!   balancer;
//! * **replicas run asynchronously on a shared virtual clock** — the
//!   driver alternates *dispatch* phases (route every arrival due by
//!   the fleet's next stage start) with *window* phases (each replica
//!   independently steps up to the next global synchronization point);
//!   replicas may be heterogeneous (different [`SimulationConfig`]s,
//!   different executors, different capacity
//!   [`ReplicaConfig::weight`]s);
//! * **reports merge losslessly** — per-replica [`SimReport`]s plus a
//!   fleet view built with the metrics `merge` APIs
//!   ([`crate::LatencyDigest::merge`] and friends): fleet percentiles
//!   are the percentiles of the concatenated per-replica populations,
//!   not an average of averages.
//!
//! A one-replica cluster is *exactly* a plain
//! [`crate::ScenarioSimulation`]: both drive the same
//! `ScenarioStream`/`ReplicaSim` machinery, and the cross-crate
//! proptests pin the equivalence.
//!
//! # The clock-merge invariant
//!
//! Between synchronization points, replicas share **nothing**: a
//! `ReplicaSim` step touches only replica-local
//! state, and every action that would touch shared state (the arrival
//! stream's RNG, follow-up queue, or the replica's parked-KV pool
//! whose occupancy those actions change) is buffered as an ordered
//! `RetireEvent`. A window runs each replica forward until its next
//! stage would start at or after the **window bound** — the next
//! global arrival time — or until a step buffers events; the driver
//! then applies every replica's buffered events against the shared
//! stream *in replica-index order*. Because windows are
//! side-effect-free and the merge order is fixed, executing the
//! windows concurrently (the [`ClusterConfig::parallel`] path, on the
//! vendored rayon pool) is **byte-identical** to executing them one
//! replica at a time in index order (the serial oracle): same RNG
//! sequence, same routing decisions, same reports, to the bit. The
//! integration tests assert this for every [`crate::RouterKind`].
//!
//! # Example
//!
//! Four fixed-latency replicas behind least-outstanding-work routing:
//!
//! ```
//! use duplex_model::ops::StageShape;
//! use duplex_sched::cluster::{ClusterSimulation, ReplicaConfig};
//! use duplex_sched::router::LeastOutstandingWork;
//! use duplex_sched::{
//!     Arrivals, PolicyKind, Scenario, SimulationConfig, StageExecutor, StageOutcome, Workload,
//! };
//!
//! struct Fixed;
//! impl StageExecutor for Fixed {
//!     fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
//!         StageOutcome { seconds: 0.010 }
//!     }
//! }
//!
//! let config = SimulationConfig { max_batch: 4, ..SimulationConfig::default() };
//! let scenario = Scenario::new(
//!     "fleet",
//!     Workload::fixed(64, 8).with_seed(7),
//!     Arrivals::Poisson { qps: 400.0 },
//!     32,
//! );
//! let cluster = ClusterSimulation::new(vec![ReplicaConfig::new(config); 4], scenario);
//! let mut policies: Vec<_> = (0..4).map(|_| PolicyKind::Fcfs.build()).collect();
//! let mut executors = vec![Fixed, Fixed, Fixed, Fixed];
//! let report = cluster.run(&mut LeastOutstandingWork, &mut policies, &mut executors);
//! assert_eq!(report.completed(), 32);
//! assert!(report.replicas.iter().filter(|r| !r.completed.is_empty()).count() > 1);
//! ```

use crate::metrics::{
    KvReuseStats, LatencyDigest, LatencySummary, SimReport, SloStats, StageStats,
};
use crate::policy::SchedulingPolicy;
use crate::router::{ReplicaSnapshot, Router};
use crate::scenario::{ReplicaSim, Scenario, ScenarioStream};
use crate::scheduler::{SimulationConfig, StageExecutor};
use crate::snapshot::ClusterSnapshot;

/// Execution knobs for the cluster driver. Results never depend on
/// these: the parallel path is byte-identical to the serial oracle
/// (see the module docs on the clock-merge invariant), so `parallel`
/// and `threads` only trade wall-clock time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Step replica windows concurrently on the vendored rayon pool.
    /// `false` is the serial oracle the determinism tests compare
    /// against.
    pub parallel: bool,
    /// Worker threads for the parallel path; `0` means auto: the
    /// `DUPLEX_THREADS` environment variable when set, otherwise the
    /// machine's available parallelism.
    pub threads: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            parallel: true,
            threads: 0,
        }
    }
}

impl ClusterConfig {
    /// The serial oracle: one replica at a time, in index order.
    pub fn serial() -> Self {
        Self {
            parallel: false,
            threads: 0,
        }
    }

    /// Resolved window concurrency: 1 when serial, else `threads`,
    /// `DUPLEX_THREADS`, or the machine width, in that order.
    pub fn effective_threads(&self) -> usize {
        if !self.parallel {
            return 1;
        }
        if self.threads > 0 {
            return self.threads;
        }
        std::env::var("DUPLEX_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&v| v > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            })
    }
}

/// One replica's scheduler limits plus its relative serving capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplicaConfig {
    /// The replica-local scheduler limits (batch slots, KV budget).
    pub sim: SimulationConfig,
    /// Relative serving capacity for weight-aware routers (see
    /// [`ReplicaSnapshot::weight`]); 1.0 for homogeneous fleets.
    pub weight: f64,
}

impl ReplicaConfig {
    /// A unit-weight replica.
    pub fn new(sim: SimulationConfig) -> Self {
        Self { sim, weight: 1.0 }
    }

    /// Set the relative capacity weight.
    pub fn with_weight(mut self, weight: f64) -> Self {
        assert!(weight > 0.0, "capacity weight must be positive");
        self.weight = weight;
        self
    }
}

/// Fleet-level result: the per-replica [`SimReport`]s plus merged
/// views built with the metrics `merge` APIs.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// One report per replica, in replica order.
    pub replicas: Vec<SimReport>,
    /// Router display name the run used.
    pub router: String,
    /// Fleet wall clock: the latest replica-local finish time.
    pub total_time_s: f64,
}

impl ClusterReport {
    /// Requests completed across the fleet.
    pub fn completed(&self) -> usize {
        self.replicas.iter().map(|r| r.completed.len()).sum()
    }

    /// Generated tokens across the fleet (in-flight tokens counted).
    pub fn generated_tokens(&self) -> u64 {
        self.replicas.iter().map(SimReport::generated_tokens).sum()
    }

    /// Stages executed across the fleet.
    pub fn stages(&self) -> u64 {
        self.replicas.iter().map(|r| r.stage_stats.stages).sum()
    }

    /// Merged stage counters across the fleet.
    pub fn stage_stats(&self) -> StageStats {
        let mut total = StageStats::default();
        for r in &self.replicas {
            total.merge(&r.stage_stats);
        }
        total
    }

    /// Fleet generation throughput: every replica's tokens over the
    /// shared clock.
    pub fn generation_throughput(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.generated_tokens() as f64 / self.total_time_s
    }

    /// The fleet's token-gap population: every replica's TBT digest
    /// merged, so percentiles are over the concatenated streams.
    pub fn tbt_digest(&self) -> LatencyDigest {
        let mut merged = LatencyDigest::default();
        for r in &self.replicas {
            merged.merge(&r.tbt_digest);
        }
        merged
    }

    /// Fleet TBT summary (from the merged digest).
    pub fn tbt(&self) -> LatencySummary {
        self.tbt_digest().summary()
    }

    /// Fleet T2FT summary over all completed requests.
    pub fn t2ft(&self) -> LatencySummary {
        let samples: Vec<f64> = self
            .replicas
            .iter()
            .flat_map(|r| r.completed.iter().map(|c| c.t2ft()))
            .collect();
        LatencySummary::of(&samples)
    }

    /// Merged per-tier SLO accounting across the fleet.
    pub fn slo(&self) -> SloStats {
        let mut merged = SloStats::default();
        for r in &self.replicas {
            merged.merge(&r.slo);
        }
        merged
    }

    /// Fleet SLO attainment (0 without tiers).
    pub fn slo_attainment(&self) -> f64 {
        self.slo().attainment()
    }

    /// Fleet goodput: SLO-attaining output tokens per second of shared
    /// clock.
    pub fn goodput_tokens_per_s(&self) -> f64 {
        if self.total_time_s == 0.0 {
            return 0.0;
        }
        self.slo().good_tokens() as f64 / self.total_time_s
    }

    /// Merged prefix-reuse accounting across the fleet.
    pub fn kv_reuse(&self) -> KvReuseStats {
        let mut merged = KvReuseStats::default();
        for r in &self.replicas {
            merged.merge(&r.kv_reuse);
        }
        merged
    }

    /// Load imbalance across replicas: the hottest replica's generated
    /// tokens over the fleet mean. 1.0 is perfectly balanced; N means
    /// one replica did N times its fair share (0 with no tokens).
    pub fn load_imbalance(&self) -> f64 {
        let per_replica: Vec<u64> = self
            .replicas
            .iter()
            .map(SimReport::generated_tokens)
            .collect();
        let total: u64 = per_replica.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / per_replica.len() as f64;
        per_replica.iter().copied().max().unwrap_or(0) as f64 / mean
    }
}

/// Route every arrival due by the fleet's next stage start. Returns
/// when the next arrival is strictly later than the fleet's next stage
/// start (route it later, at its own time), when the stream is
/// drained, or when the whole fleet is stage-capped.
fn dispatch_arrivals(
    stream: &mut ScenarioStream<'_>,
    router: &mut dyn Router,
    configs: &[ReplicaConfig],
    replicas: &mut [ReplicaSim],
    snapshots: &mut Vec<ReplicaSnapshot>,
) {
    while let Some(t_a) = stream.next_arrival_time() {
        let fleet_next = replicas.iter().filter_map(ReplicaSim::next_start).fold(
            None::<f64>,
            |acc, t| match acc {
                Some(best) if best <= t => Some(best),
                _ => Some(t),
            },
        );
        match fleet_next {
            // The next stage forms before this arrival: route it
            // later, at its own time.
            Some(t) if t_a > t => break,
            // Whole fleet drained by its stage caps: stop
            // accepting (the run is truncated).
            None if !replicas.iter().any(ReplicaSim::can_accept) => break,
            _ => {
                let p = stream.pop_next().expect("arrival time implies a request");
                snapshots.clear();
                snapshots.extend(configs.iter().zip(replicas.iter()).map(|(cfg, r)| {
                    let (in_flight, queued, outstanding_tokens) = r.load();
                    let (kv_reserved_bytes, kv_capacity_bytes) = r.kv_usage();
                    ReplicaSnapshot {
                        now_s: r.clock(),
                        in_flight,
                        queued,
                        max_batch: r.max_batch(),
                        outstanding_tokens,
                        kv_reserved_bytes,
                        kv_capacity_bytes,
                        weight: cfg.weight,
                        resident_history_tokens: r.resident_history(p.conversation),
                        accepting: r.can_accept(),
                    }
                }));
                let target = router.route(&p, snapshots);
                assert!(
                    target < replicas.len(),
                    "router picked replica {target} of {}",
                    replicas.len()
                );
                replicas[target].enqueue(p);
            }
        }
    }
}

/// One dispatch → window → merge round. Returns `false` when the fleet
/// is drained (no replica has a next stage). See the module docs for
/// why the parallel window is byte-identical to the serial one.
#[allow(clippy::too_many_arguments)]
fn drive_round<E: StageExecutor + Send>(
    stream: &mut ScenarioStream<'_>,
    router: &mut dyn Router,
    configs: &[ReplicaConfig],
    replicas: &mut [ReplicaSim],
    snapshots: &mut Vec<ReplicaSnapshot>,
    policies: &mut [Box<dyn SchedulingPolicy>],
    executors: &mut [E],
    threads: usize,
) -> bool {
    // ---- dispatch: route every arrival due by the fleet's next stage ----
    dispatch_arrivals(stream, router, configs, replicas, snapshots);
    if !replicas.iter().any(|r| r.next_start().is_some()) {
        return false;
    }
    // ---- window: every replica steps to the next global sync point ----
    // After dispatch the next arrival (if any) is strictly later than
    // the fleet's earliest stage start, so at least one replica steps:
    // every round makes progress.
    let bound = stream.next_arrival_time();
    if threads > 1 && replicas.len() > 1 {
        let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = replicas
            .iter_mut()
            .zip(policies.iter_mut())
            .zip(executors.iter_mut())
            .map(|((r, p), e)| {
                Box::new(move || r.run_window(bound, p.as_mut(), e))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        rayon::join_all(jobs);
    } else {
        for ((r, p), e) in replicas
            .iter_mut()
            .zip(policies.iter_mut())
            .zip(executors.iter_mut())
        {
            r.run_window(bound, p.as_mut(), e);
        }
    }
    // ---- merge: apply buffered events in replica-index order ----
    for r in replicas.iter_mut() {
        r.drain_retire_events(stream);
    }
    true
}

/// The outcome of a bounded cluster run
/// ([`ClusterSimulation::run_until`] /
/// [`ClusterSimulation::resume_until`]): either the run reached its
/// virtual-time bound and paused into a resumable [`ClusterSnapshot`],
/// or it drained first and produced the final [`ClusterReport`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterRun {
    /// The fleet paused at the first merge point whose next event lies
    /// at or past the bound; resume with
    /// [`ClusterSimulation::resume`].
    Paused(ClusterSnapshot),
    /// The fleet drained (or hit every stage cap) before the bound.
    Done(ClusterReport),
}

impl ClusterRun {
    /// The final report, if the run finished.
    pub fn report(self) -> Option<ClusterReport> {
        match self {
            ClusterRun::Done(report) => Some(report),
            ClusterRun::Paused(_) => None,
        }
    }

    /// The pause snapshot, if the run hit its bound.
    pub fn snapshot(self) -> Option<ClusterSnapshot> {
        match self {
            ClusterRun::Paused(snapshot) => Some(snapshot),
            ClusterRun::Done(_) => None,
        }
    }
}

/// A configured cluster run: N replicas over one scenario, ready for a
/// router, per-replica policies and per-replica executors.
#[derive(Debug)]
pub struct ClusterSimulation {
    configs: Vec<ReplicaConfig>,
    scenario: Scenario,
    cluster: ClusterConfig,
}

impl ClusterSimulation {
    /// Bind a scenario to a fleet of replica configs (default
    /// [`ClusterConfig`]: parallel, auto thread count). Under trace
    /// replay the request count is clamped to the trace length.
    pub fn new(configs: Vec<ReplicaConfig>, scenario: Scenario) -> Self {
        assert!(!configs.is_empty(), "a cluster needs at least one replica");
        Self {
            configs,
            scenario: scenario.normalized(),
            cluster: ClusterConfig::default(),
        }
    }

    /// Override the execution knobs (serial oracle, thread count).
    pub fn with_config(mut self, cluster: ClusterConfig) -> Self {
        self.cluster = cluster;
        self
    }

    /// Replicas in the fleet.
    pub fn replica_count(&self) -> usize {
        self.configs.len()
    }

    /// Run the fleet to completion (or every replica's stage cap).
    /// `policies` and `executors` are indexed like the replica configs
    /// and must match their length.
    pub fn run<E: StageExecutor + Send>(
        &self,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
    ) -> ClusterReport {
        match self.run_inner(router, policies, executors, None, None) {
            ClusterRun::Done(report) => report,
            ClusterRun::Paused(_) => unreachable!("an unbounded run never pauses"),
        }
    }

    /// Run until the first merge point whose next event (stage start
    /// or arrival) lies at or past `stop_s` virtual seconds: every
    /// event strictly before the bound executes, then the fleet pauses
    /// into a [`ClusterSnapshot`]. Returns
    /// [`ClusterRun::Done`] when the fleet drains first.
    ///
    /// Pausing and [`resume`](Self::resume)-ing is **byte-identical**
    /// to the uninterrupted [`run`](Self::run) — same RNG draws, same
    /// routing, same final report to the bit (asserted by the
    /// integration tests) — because snapshots capture the complete
    /// dynamic state at a merge point of the clock-merge protocol.
    pub fn run_until<E: StageExecutor + Send>(
        &self,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
        stop_s: f64,
    ) -> ClusterRun {
        self.run_inner(router, policies, executors, None, Some(stop_s))
    }

    /// Continue a paused run to completion. The cluster, scenario,
    /// router kind and policies must match the run that produced the
    /// snapshot; `executors` must be *freshly built* (their carried
    /// batch state is restored from the snapshot).
    pub fn resume<E: StageExecutor + Send>(
        &self,
        snapshot: &ClusterSnapshot,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
    ) -> ClusterReport {
        match self.run_inner(router, policies, executors, Some(snapshot), None) {
            ClusterRun::Done(report) => report,
            ClusterRun::Paused(_) => unreachable!("an unbounded resume never pauses"),
        }
    }

    /// Continue a paused run until a further bound (see
    /// [`run_until`](Self::run_until)); a run may pause and resume any
    /// number of times.
    pub fn resume_until<E: StageExecutor + Send>(
        &self,
        snapshot: &ClusterSnapshot,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
        stop_s: f64,
    ) -> ClusterRun {
        self.run_inner(router, policies, executors, Some(snapshot), Some(stop_s))
    }

    fn run_inner<E: StageExecutor + Send>(
        &self,
        router: &mut dyn Router,
        policies: &mut [Box<dyn SchedulingPolicy>],
        executors: &mut [E],
        start: Option<&ClusterSnapshot>,
        stop_s: Option<f64>,
    ) -> ClusterRun {
        let configs = &self.configs;
        assert_eq!(
            configs.len(),
            policies.len(),
            "one scheduling policy per replica"
        );
        assert_eq!(configs.len(), executors.len(), "one executor per replica");
        let mut stream = ScenarioStream::new(&self.scenario, None);
        let mut replicas: Vec<ReplicaSim> = configs
            .iter()
            .map(|c| ReplicaSim::new(c.sim, &self.scenario))
            .collect();
        if let Some(snap) = start {
            assert_eq!(
                snap.replicas.len(),
                replicas.len(),
                "snapshot replica count does not match the cluster"
            );
            stream.import_state(&snap.stream);
            router.import_state(&snap.router);
            for ((replica, state), executor) in replicas
                .iter_mut()
                .zip(&snap.replicas)
                .zip(executors.iter_mut())
            {
                replica.import_state(state);
                if let Some(batch) = &state.batch {
                    executor.import_batch(batch);
                }
            }
        }
        let mut snapshots: Vec<ReplicaSnapshot> = Vec::with_capacity(replicas.len());
        let threads = self.cluster.effective_threads();

        loop {
            // ---- pause check, at the merge-point boundary ----
            // Peeking the arrival time here draws the same source
            // request the upcoming dispatch would peek, so the stream
            // state a snapshot captures is on the uninterrupted run's
            // draw order.
            if let Some(stop) = stop_s {
                let fleet_next = replicas.iter().filter_map(ReplicaSim::next_start).fold(
                    None::<f64>,
                    |acc, t| match acc {
                        Some(best) if best <= t => Some(best),
                        _ => Some(t),
                    },
                );
                let next_event = match (fleet_next, stream.next_arrival_time()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
                if next_event.is_some_and(|t| t >= stop) {
                    let states = replicas
                        .iter()
                        .zip(executors.iter())
                        .map(|(r, e)| {
                            let mut state = r.export_state();
                            state.batch = e.export_batch();
                            state
                        })
                        .collect();
                    return ClusterRun::Paused(ClusterSnapshot {
                        taken_at_s: stop,
                        router: router.export_state(),
                        stream: stream.export_state(),
                        replicas: states,
                    });
                }
            }
            if !drive_round(
                &mut stream,
                router,
                configs,
                &mut replicas,
                &mut snapshots,
                policies,
                executors,
                threads,
            ) {
                break;
            }
        }

        let reports: Vec<SimReport> = replicas.into_iter().map(ReplicaSim::into_report).collect();
        let total_time_s = reports
            .iter()
            .map(|r| r.total_time_s)
            .fold(0.0f64, f64::max);
        ClusterRun::Done(ClusterReport {
            replicas: reports,
            router: router.name().into(),
            total_time_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::router::{LeastOutstandingWork, RoundRobin, RouterKind, SessionAffinity};
    use crate::scenario::{ConversationSpec, ScenarioSimulation};
    use crate::scheduler::StageOutcome;
    use crate::workload::{Arrivals, Workload};
    use duplex_model::ops::StageShape;

    #[derive(Clone, Copy)]
    struct Fixed(f64);
    impl StageExecutor for Fixed {
        fn execute(&mut self, _shape: &StageShape) -> StageOutcome {
            StageOutcome { seconds: self.0 }
        }
    }

    fn config(max_batch: usize) -> SimulationConfig {
        SimulationConfig {
            max_batch,
            ..SimulationConfig::default()
        }
    }

    fn policies(n: usize, kind: PolicyKind) -> Vec<Box<dyn SchedulingPolicy>> {
        (0..n).map(|_| kind.build()).collect()
    }

    #[test]
    fn single_replica_cluster_equals_scenario_simulation() {
        let scenario = Scenario::new(
            "solo",
            Workload::gaussian(96, 10).with_seed(7),
            Arrivals::Poisson { qps: 300.0 },
            25,
        )
        .with_conversation(ConversationSpec::chat(0.7, 3, 0.01, 24))
        .with_tiers(Scenario::default_tiers(0.01));
        let plain = ScenarioSimulation::new(config(4), scenario.clone())
            .run(PolicyKind::PriorityTiers.build().as_mut(), &mut Fixed(0.01));
        for kind in RouterKind::ALL {
            let cluster =
                ClusterSimulation::new(vec![ReplicaConfig::new(config(4))], scenario.clone()).run(
                    kind.build().as_mut(),
                    &mut policies(1, PolicyKind::PriorityTiers),
                    &mut [Fixed(0.01)],
                );
            assert_eq!(cluster.replicas.len(), 1);
            let r = &cluster.replicas[0];
            assert_eq!(r.stage_stats, plain.stage_stats, "{}", kind.name());
            assert_eq!(r.total_time_s.to_bits(), plain.total_time_s.to_bits());
            assert_eq!(r.completed.len(), plain.completed.len());
            assert_eq!(r.kv_reuse, plain.kv_reuse);
            assert_eq!(cluster.completed(), plain.completed.len());
        }
    }

    #[test]
    fn fleet_serves_everything_and_spreads_load() {
        let scenario = Scenario::new(
            "fleet",
            Workload::fixed(64, 8).with_seed(3),
            Arrivals::Poisson { qps: 2000.0 },
            80,
        );
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 4], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(4, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 4],
        );
        assert_eq!(report.completed(), 80);
        // Round-robin spreads a uniform stream exactly evenly.
        for r in &report.replicas {
            assert_eq!(r.completed.len(), 20);
        }
        assert!((report.load_imbalance() - 1.0).abs() < 0.05);
        // Fleet totals are sums of replica totals.
        assert_eq!(
            report.generated_tokens(),
            report.replicas.iter().map(|r| r.generated_tokens()).sum()
        );
        assert_eq!(report.stage_stats().stages, report.stages());
        assert!(report.total_time_s > 0.0);
        assert!(report.generation_throughput() > 0.0);
        assert_eq!(report.tbt_digest().count(), report.tbt().count as u64);
    }

    #[test]
    fn least_outstanding_absorbs_a_slow_replica() {
        // One replica is 8x slower. JSQ steers work away from it;
        // round-robin keeps feeding it and strands a deep queue.
        let scenario = || {
            Scenario::new(
                "skewed",
                Workload::fixed(64, 8).with_seed(5),
                Arrivals::Poisson { qps: 600.0 },
                60,
            )
        };
        let configs = vec![ReplicaConfig::new(config(4)); 2];
        let mut slow_fast = [Fixed(0.08), Fixed(0.01)];
        let rr = ClusterSimulation::new(configs.clone(), scenario()).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut slow_fast,
        );
        let jsq = ClusterSimulation::new(configs, scenario()).run(
            &mut LeastOutstandingWork,
            &mut policies(2, PolicyKind::Fcfs),
            &mut slow_fast,
        );
        assert_eq!(rr.completed(), 60);
        assert_eq!(jsq.completed(), 60);
        // JSQ finishes the backlog sooner and sends more work to the
        // fast replica.
        assert!(
            jsq.total_time_s < rr.total_time_s,
            "jsq {} vs rr {}",
            jsq.total_time_s,
            rr.total_time_s
        );
        assert!(jsq.replicas[1].completed.len() > rr.replicas[1].completed.len());
    }

    #[test]
    fn session_affinity_reuses_kv_where_round_robin_cannot() {
        // Multi-turn conversations across 4 replicas: round-robin
        // scatters follow-ups away from their parked KV (reuse misses),
        // affinity pins them (reuse hits).
        let scenario = || {
            Scenario::new(
                "chat",
                Workload::fixed(96, 8).with_seed(11),
                Arrivals::Poisson { qps: 400.0 },
                24,
            )
            .with_conversation(ConversationSpec::chat(1.0, 3, 0.02, 16))
        };
        let configs = vec![ReplicaConfig::new(config(4)); 4];
        let run = |router: &mut dyn Router| {
            ClusterSimulation::new(configs.clone(), scenario()).run(
                router,
                &mut policies(4, PolicyKind::Fcfs),
                &mut [Fixed(0.01); 4],
            )
        };
        let rr = run(&mut RoundRobin::default());
        let aff = run(&mut SessionAffinity::default());
        assert_eq!(rr.completed(), 72, "3 rounds x 24 conversations");
        assert_eq!(aff.completed(), 72);
        let (rr_kv, aff_kv) = (rr.kv_reuse(), aff.kv_reuse());
        assert!(
            aff_kv.reuse_fraction() > rr_kv.reuse_fraction() + 0.15,
            "affinity {:?} vs round-robin {:?}",
            aff_kv,
            rr_kv
        );
        assert!(aff_kv.reuse_hits > rr_kv.reuse_hits);
    }

    #[test]
    fn heterogeneous_configs_and_weights_flow_through() {
        // A fleet with different batch sizes per replica: the bigger
        // replica absorbs more of a closed-loop backlog under JSQ.
        let configs = vec![
            ReplicaConfig::new(config(8)).with_weight(2.0),
            ReplicaConfig::new(config(2)),
        ];
        let scenario = Scenario::new(
            "hetero",
            Workload::fixed(32, 6).with_seed(9),
            Arrivals::Poisson { qps: 5000.0 },
            60,
        );
        let report = ClusterSimulation::new(configs, scenario).run(
            &mut LeastOutstandingWork,
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01), Fixed(0.01)],
        );
        assert_eq!(report.completed(), 60);
        assert!(report.replicas[0].completed.len() > report.replicas[1].completed.len());
    }

    #[test]
    fn stale_parked_prefixes_are_credited_at_their_own_length() {
        // One 3-round conversation over 2 replicas under round-robin:
        // round 1 parks 68 tokens on replica 0, round 2 runs (and
        // parks 88) on replica 1, round 3 returns to replica 0 where
        // only the stale 68-token *prefix* is resident. The reuse
        // credit must be those 68 tokens — not the 88 the request
        // carries as history — and the prefill must cover the rest.
        let scenario = Scenario::new(
            "stale",
            Workload::fixed(64, 4).with_seed(1),
            Arrivals::ClosedLoop,
            1,
        )
        .with_conversation(ConversationSpec::chat(1.0, 3, 0.001, 16));
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        assert_eq!(report.completed(), 3);
        let kv = report.kv_reuse();
        assert_eq!(kv.reuse_hits, 1, "round 3 finds the stale prefix");
        assert_eq!(kv.reuse_misses, 1, "round 2 finds nothing on replica 1");
        assert_eq!(kv.reused_prefill_tokens, 68, "stale prefix length, not 88");
        // Prefills: 64 (round 1) + 84 (round 2, full) + 104 - 68
        // (round 3 suffix over the stale prefix).
        assert_eq!(kv.prefilled_tokens, 64 + 84 + 36);
    }

    #[test]
    fn capped_replicas_stop_receiving_arrivals() {
        // Replica 0 is stage-capped from the start (a failed node):
        // the routers must steer every arrival to the live replica
        // instead of stranding work in a dead inbox.
        let capped = SimulationConfig {
            max_stages: 0,
            ..config(4)
        };
        let scenario = Scenario::new(
            "failover",
            Workload::fixed(32, 4).with_seed(5),
            Arrivals::Poisson { qps: 500.0 },
            20,
        );
        let report = ClusterSimulation::new(
            vec![ReplicaConfig::new(capped), ReplicaConfig::new(config(4))],
            scenario,
        )
        .run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        assert_eq!(report.completed(), 20, "nothing strands on the dead node");
        assert_eq!(report.replicas[0].stage_stats.stages, 0);
        assert_eq!(report.replicas[1].completed.len(), 20);
    }

    #[test]
    fn cluster_respects_per_replica_stage_caps() {
        let capped = SimulationConfig {
            max_stages: 3,
            ..config(2)
        };
        let scenario = Scenario::new(
            "capped",
            Workload::fixed(16, 50).with_seed(1),
            Arrivals::ClosedLoop,
            8,
        );
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(capped); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::Fcfs),
            &mut [Fixed(0.01); 2],
        );
        // Both replicas truncate at their cap; nothing completes (50
        // output tokens need 50 stages) and the run still terminates.
        assert_eq!(report.completed(), 0);
        assert_eq!(report.stages(), 6);
    }

    #[test]
    fn merged_slo_covers_every_replica() {
        let scenario = Scenario::new(
            "tiered",
            Workload::fixed(48, 8).with_seed(2),
            Arrivals::Poisson { qps: 800.0 },
            40,
        )
        .with_tiers(Scenario::default_tiers(0.01));
        let report = ClusterSimulation::new(vec![ReplicaConfig::new(config(4)); 2], scenario).run(
            &mut RoundRobin::default(),
            &mut policies(2, PolicyKind::PriorityTiers),
            &mut [Fixed(0.01); 2],
        );
        let slo = report.slo();
        assert_eq!(slo.tiers.len(), 3);
        assert_eq!(slo.completed(), 40);
        assert!(report.slo_attainment() > 0.0);
        assert!(report.goodput_tokens_per_s() > 0.0);
        // The merged tier digests hold both replicas' gap populations.
        let per_replica: u64 = report
            .replicas
            .iter()
            .flat_map(|r| r.slo.tiers.iter().map(|t| t.tbt_digest.count()))
            .sum();
        let merged: u64 = slo.tiers.iter().map(|t| t.tbt_digest.count()).sum();
        assert_eq!(per_replica, merged);
    }
}
