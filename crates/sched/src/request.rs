//! Requests and per-request latency records.
//!
//! The paper's latency vocabulary (Sec. II-C, Fig. 2):
//!
//! * **T2FT** — time to first token: request arrival to the end of its
//!   prefill stage;
//! * **TBT** — token-between-token latency: the gap between two
//!   consecutive token generations of the same request;
//! * **E2E** — arrival to completion.
//!
//! Records keep O(1) state per request — first/last token timestamps
//! and a token count — so reports scale to millions of requests; the
//! TBT gap population streams into the report-level
//! [`crate::metrics::LatencyDigest`] instead of being stored per token.

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Serving-level id (unique within a simulation).
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt length Lin in tokens.
    pub input_len: u64,
    /// Response length Lout in tokens.
    pub output_len: u64,
}

impl Request {
    /// KV-cache bytes this request will occupy at its maximum context,
    /// used for admission control.
    pub fn max_kv_tokens(&self) -> u64 {
        self.input_len + self.output_len
    }
}

/// Completion record of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// The request.
    pub request: Request,
    /// Timestamp of the first output token (end of the prefill stage).
    pub first_token_s: f64,
    /// Timestamp of the last output token (completion).
    pub last_token_s: f64,
    /// Output tokens generated (= `output_len` for completed requests).
    pub tokens: u64,
}

impl RequestRecord {
    /// Time to first token in seconds.
    pub fn t2ft(&self) -> f64 {
        self.first_token_s - self.request.arrival_s
    }

    /// End-to-end latency in seconds.
    pub fn e2e(&self) -> f64 {
        self.last_token_s - self.request.arrival_s
    }

    /// Mean token-between-token gap (exact; the full gap population
    /// streams into the report's TBT digest).
    pub fn mean_tbt(&self) -> f64 {
        if self.tokens <= 1 {
            return 0.0;
        }
        (self.last_token_s - self.first_token_s) / (self.tokens - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            request: Request {
                id: 0,
                arrival_s: 1.0,
                input_len: 128,
                output_len: 4,
            },
            first_token_s: 1.5,
            last_token_s: 2.1,
            tokens: 4,
        }
    }

    #[test]
    fn latency_definitions() {
        let r = record();
        assert!((r.t2ft() - 0.5).abs() < 1e-12);
        assert!((r.e2e() - 1.1).abs() < 1e-12);
        assert!((r.mean_tbt() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_token_request_has_no_gaps() {
        let r = RequestRecord {
            request: Request {
                id: 1,
                arrival_s: 0.0,
                input_len: 8,
                output_len: 1,
            },
            first_token_s: 0.25,
            last_token_s: 0.25,
            tokens: 1,
        };
        assert_eq!(r.mean_tbt(), 0.0);
        assert!((r.t2ft() - r.e2e()).abs() < 1e-12);
    }

    #[test]
    fn kv_reservation_covers_full_context() {
        let r = Request {
            id: 0,
            arrival_s: 0.0,
            input_len: 100,
            output_len: 28,
        };
        assert_eq!(r.max_kv_tokens(), 128);
    }
}
