//! Requests and per-request latency records.
//!
//! The paper's latency vocabulary (Sec. II-C, Fig. 2):
//!
//! * **T2FT** — time to first token: request arrival to the end of its
//!   prefill stage;
//! * **TBT** — token-between-token latency: the gap between two
//!   consecutive token generations of the same request;
//! * **E2E** — arrival to completion.

/// One inference request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Request {
    /// Serving-level id (unique within a simulation).
    pub id: u64,
    /// Arrival time in seconds.
    pub arrival_s: f64,
    /// Prompt length Lin in tokens.
    pub input_len: u64,
    /// Response length Lout in tokens.
    pub output_len: u64,
}

impl Request {
    /// KV-cache bytes this request will occupy at its maximum context,
    /// used for admission control.
    pub fn max_kv_tokens(&self) -> u64 {
        self.input_len + self.output_len
    }
}

/// Completion record of one request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestRecord {
    /// The request.
    pub request: Request,
    /// Timestamps at which each output token finished, in order
    /// (length = `output_len`).
    pub token_times: Vec<f64>,
}

impl RequestRecord {
    /// Time to first token in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the record has no tokens.
    pub fn t2ft(&self) -> f64 {
        self.token_times.first().expect("completed request has tokens") - self.request.arrival_s
    }

    /// End-to-end latency in seconds.
    ///
    /// # Panics
    ///
    /// Panics if the record has no tokens.
    pub fn e2e(&self) -> f64 {
        self.token_times.last().expect("completed request has tokens") - self.request.arrival_s
    }

    /// Token-between-token gaps in seconds (length = `output_len - 1`).
    pub fn tbts(&self) -> Vec<f64> {
        self.token_times.windows(2).map(|w| w[1] - w[0]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> RequestRecord {
        RequestRecord {
            request: Request { id: 0, arrival_s: 1.0, input_len: 128, output_len: 4 },
            token_times: vec![1.5, 1.6, 1.8, 2.1],
        }
    }

    #[test]
    fn latency_definitions() {
        let r = record();
        assert!((r.t2ft() - 0.5).abs() < 1e-12);
        assert!((r.e2e() - 1.1).abs() < 1e-12);
        let tbts = r.tbts();
        assert_eq!(tbts.len(), 3);
        assert!((tbts[0] - 0.1).abs() < 1e-12);
        assert!((tbts[2] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn kv_reservation_covers_full_context() {
        let r = Request { id: 0, arrival_s: 0.0, input_len: 100, output_len: 28 };
        assert_eq!(r.max_kv_tokens(), 128);
    }
}
