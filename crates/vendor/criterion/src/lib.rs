//! Offline stand-in for the `criterion` crate.
//!
//! Provides the `criterion_group!` / `criterion_main!` entry points,
//! `Criterion::bench_function`, benchmark groups, and `Bencher::iter` /
//! `iter_batched`. Measurement is a simple calibrated loop (short
//! warm-up, then enough iterations to cover a fixed measurement
//! window) reporting the mean wall-clock time per iteration — adequate
//! for tracking the relative perf trajectory of this repository, with
//! none of the real crate's statistics.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring one benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(300);
/// Warm-up before measuring.
const WARMUP_WINDOW: Duration = Duration::from_millis(50);

/// Controls how `iter_batched` amortizes setup (ignored by this shim).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small routine inputs.
    SmallInput,
    /// Large routine inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Measurement state handed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `f`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up and per-iteration estimate.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_WINDOW || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est = warm_start.elapsed() / warm_iters.max(1) as u32;
        let target =
            ((MEASURE_WINDOW.as_nanos() / est.as_nanos().max(1)) as u64).clamp(1, 5_000_000);
        let start = Instant::now();
        for _ in 0..target {
            black_box(f());
        }
        self.total = start.elapsed();
        self.iters = target;
    }

    /// Time `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Warm-up: one run.
        black_box(routine(setup()));
        let est = {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            t.elapsed()
        };
        let target = ((MEASURE_WINDOW.as_nanos() / est.as_nanos().max(1)) as u64).clamp(1, 100_000);
        let inputs: Vec<I> = (0..target).map(|_| setup()).collect();
        let start = Instant::now();
        for input in inputs {
            black_box(routine(input));
        }
        self.total = start.elapsed();
        self.iters = target;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<48} (no measurement)");
            return;
        }
        let per_iter = self.total.as_secs_f64() / self.iters as f64;
        println!(
            "{name:<48} {:>12}  ({} iterations)",
            format_time(per_iter),
            self.iters
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Run and report one benchmark.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&name.to_string());
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run and report one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, name));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            count += 1;
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher::default();
        b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert!(b.iters >= 1);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(format_time(2.0), "2.000 s");
        assert_eq!(format_time(0.0025), "2.500 ms");
        assert_eq!(format_time(2.5e-6), "2.500 us");
        assert_eq!(format_time(3.0e-9), "3.0 ns");
    }
}
