//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `into_par_iter().map(..).collect()` shape the sweep
//! drivers use, on top of `std::thread::scope` with a shared atomic
//! work index (simple self-scheduling — the sweeps' work items are
//! coarse, so work stealing buys nothing here). Result order matches
//! the input order, as with real rayon `collect()` on indexed iterators.
//!
//! Thread count comes from `std::thread::available_parallelism`, capped
//! by the `RAYON_NUM_THREADS` environment variable when set (the same
//! knob the real crate honors).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The traits user code imports (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    let avail = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let cap = std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(avail);
    cap.min(avail).min(n).max(1)
}

/// Apply `f` to every item on a thread pool, preserving input order.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().expect("input slot poisoned").take();
                let item = item.expect("each index is claimed exactly once");
                *out[i].lock().expect("output slot poisoned") = Some(f(item));
            });
        }
    });
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker finished")
                .expect("every slot filled")
        })
        .collect()
}

/// Conversion into a parallel iterator (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert self.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel iterator operations (the subset this workspace needs).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Realize the elements, running any pending stages in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collect into any `FromIterator` container, preserving order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Parallel flat-map (applied in parallel, flattened in order).
    fn flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        R: IntoIterator,
        R::Item: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        FlatMap { base: self, f }
    }
}

/// A materialized source (from `Vec::into_par_iter`).
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), self.f)
    }
}

/// Lazily flat-mapped parallel iterator.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    R: IntoIterator,
    R::Item: Send,
    R::IntoIter: Iterator<Item = R::Item>,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R::Item;
    fn run(self) -> Vec<R::Item> {
        let f = self.f;
        par_apply(self.base.run(), move |x| {
            f(x).into_iter().collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Current worker-pool width (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    thread_count(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.into_par_iter().flat_map(|x| vec![x; x]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let _: Vec<()> = v
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if avail > 1 {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }
}
