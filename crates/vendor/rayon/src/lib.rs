//! Offline stand-in for the `rayon` crate.
//!
//! Implements the `into_par_iter().map(..).collect()` shape the sweep
//! drivers use, plus a scoped [`join_all`] entry point for the cluster
//! simulator's fork/join windows. Both run on a single **persistent
//! worker pool**: threads are spawned lazily on first parallel use and
//! then parked on a condvar between calls, so fine-grained fork/join
//! (thousands of sub-millisecond windows per cluster run) pays a
//! notify/park handshake instead of a `thread::spawn` per call
//! (~tens of microseconds each, which would dwarf the window itself).
//! Result order matches the input order, as with real rayon
//! `collect()` on indexed iterators.
//!
//! Thread count comes from `std::thread::available_parallelism`, capped
//! by the `RAYON_NUM_THREADS` environment variable when set (the same
//! knob the real crate honors). The env var is read once per call so
//! tests can vary it; the pool itself only ever grows up to the
//! hardware limit.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The traits user code imports (mirrors `rayon::prelude`).
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator};
}

/// Number of worker threads to use for `n` items given the hardware
/// parallelism `avail` and the optional `RAYON_NUM_THREADS` cap.
///
/// Pure so the policy is unit-testable: the cap only ever *lowers* the
/// hardware limit (a cap above `avail` is clamped), zero/invalid caps
/// are ignored, no more threads than items are used, and the result is
/// at least 1 (the caller runs inline in that case).
fn thread_count_from(avail: usize, cap: Option<usize>, n: usize) -> usize {
    let cap = cap.filter(|&v| v > 0).unwrap_or(avail);
    cap.min(avail).min(n).max(1)
}

fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1)
}

fn env_cap() -> Option<usize> {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
}

/// Number of worker threads to use for `n` items.
fn thread_count(n: usize) -> usize {
    thread_count_from(hardware_parallelism(), env_cap(), n)
}

/// One unit of queued work: the job plus the batch it belongs to, so
/// completion can be signalled to the submitting caller.
struct Task {
    job: Box<dyn FnOnce() + Send + 'static>,
    batch: Arc<Batch>,
}

impl Task {
    fn run(self) {
        if catch_unwind(AssertUnwindSafe(self.job)).is_err() {
            self.batch.panicked.store(true, Ordering::Release);
        }
        self.batch.complete_one();
    }
}

/// Completion latch for one `join_all` / `par_apply` submission.
struct Batch {
    pending: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

impl Batch {
    fn new(jobs: usize) -> Arc<Self> {
        Arc::new(Self {
            pending: Mutex::new(jobs),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        })
    }

    fn complete_one(&self) {
        let mut pending = self.pending.lock().expect("batch latch poisoned");
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut pending = self.pending.lock().expect("batch latch poisoned");
        while *pending > 0 {
            pending = self.done.wait(pending).expect("batch latch poisoned");
        }
    }
}

/// The process-wide worker pool: a shared FIFO of tasks plus parked
/// worker threads. Workers are spawned lazily up to the hardware
/// parallelism and then live for the process lifetime, parked on
/// `available` whenever the queue is empty.
struct Pool {
    queue: Mutex<VecDeque<Task>>,
    available: Condvar,
    spawned: AtomicUsize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        spawned: AtomicUsize::new(0),
    })
}

/// Number of pool worker threads spawned so far in this process.
/// Monotonic: the pool reuses workers across calls instead of spawning
/// per call (pinned by a unit test below).
pub fn pool_threads_spawned() -> usize {
    pool().spawned.load(Ordering::Acquire)
}

impl Pool {
    /// Ensure at least `want` workers exist (capped by hardware
    /// parallelism; the submitting thread also drains the queue, so
    /// `want` counts it out).
    fn ensure_workers(&'static self, want: usize) {
        let limit = hardware_parallelism().saturating_sub(1).max(1);
        let want = want.min(limit);
        loop {
            let have = self.spawned.load(Ordering::Acquire);
            if have >= want {
                return;
            }
            if self
                .spawned
                .compare_exchange(have, have + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                continue;
            }
            std::thread::Builder::new()
                .name(format!("rayon-shim-{have}"))
                .spawn(move || self.worker_loop())
                .expect("spawning pool worker");
        }
    }

    fn worker_loop(&self) {
        loop {
            let task = {
                let mut queue = self.queue.lock().expect("pool queue poisoned");
                loop {
                    if let Some(task) = queue.pop_front() {
                        break task;
                    }
                    queue = self.available.wait(queue).expect("pool queue poisoned");
                }
            };
            task.run();
        }
    }

    /// Submit the jobs as one batch and block until all have run. The
    /// caller helps drain the queue (so progress never depends on a
    /// free worker), then parks until its batch completes.
    fn run_batch(&'static self, jobs: Vec<Box<dyn FnOnce() + Send + '_>>, workers: usize) {
        let batch = Batch::new(jobs.len());
        {
            let mut queue = self.queue.lock().expect("pool queue poisoned");
            for job in jobs {
                // SAFETY: lifetime erasure. `run_batch` does not return
                // until `batch.wait()` observes every job of this batch
                // complete, so all borrows captured by the jobs outlive
                // their execution. Jobs never escape the pool: they are
                // either run by a worker or by this caller below.
                let job: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(job) };
                queue.push_back(Task {
                    job,
                    batch: Arc::clone(&batch),
                });
            }
        }
        self.ensure_workers(workers.saturating_sub(1));
        self.available.notify_all();
        // Help drain; tasks from other batches may be interleaved,
        // which is fine — running them only speeds their caller up.
        loop {
            let task = self.queue.lock().expect("pool queue poisoned").pop_front();
            match task {
                Some(task) => task.run(),
                None => break,
            }
        }
        batch.wait();
        if batch.panicked.load(Ordering::Acquire) {
            panic!("a rayon-shim pool task panicked");
        }
    }
}

/// Run every closure to completion, concurrently when the machine (and
/// `RAYON_NUM_THREADS`) allow, inline otherwise. Blocks until all jobs
/// have finished; panics if any job panicked.
///
/// This is the scoped fork/join entry point for callers that need
/// heterogeneous jobs borrowing local state (e.g. the cluster
/// simulator stepping each replica to a synchronization point): the
/// closures may borrow non-`'static` data because the call does not
/// return until every job has run.
pub fn join_all(jobs: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let threads = thread_count(jobs.len());
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            job();
        }
        return;
    }
    pool().run_batch(jobs, threads);
}

/// Apply `f` to every item on the worker pool, preserving input order.
fn par_apply<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let worker = |_: ()| loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i >= n {
            break;
        }
        let item = slots[i].lock().expect("input slot poisoned").take();
        let item = item.expect("each index is claimed exactly once");
        *out[i].lock().expect("output slot poisoned") = Some(f(item));
    };
    let worker = &worker;
    join_all(
        (0..threads)
            .map(|_| Box::new(move || worker(())) as Box<dyn FnOnce() + Send + '_>)
            .collect(),
    );
    out.into_iter()
        .map(|m| {
            m.into_inner()
                .expect("worker finished")
                .expect("every slot filled")
        })
        .collect()
}

/// Conversion into a parallel iterator (mirrors rayon's trait).
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert self.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParVec<T>;
    fn into_par_iter(self) -> ParVec<T> {
        ParVec { items: self }
    }
}

/// Parallel iterator operations (the subset this workspace needs).
pub trait ParallelIterator: Sized {
    /// Element type.
    type Item: Send;

    /// Realize the elements, running any pending stages in parallel.
    fn run(self) -> Vec<Self::Item>;

    /// Parallel map.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collect into any `FromIterator` container, preserving order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.run().into_iter().collect()
    }

    /// Parallel flat-map (applied in parallel, flattened in order).
    fn flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        R: IntoIterator,
        R::Item: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        FlatMap { base: self, f }
    }
}

/// A materialized source (from `Vec::into_par_iter`).
pub struct ParVec<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for ParVec<T> {
    type Item = T;
    fn run(self) -> Vec<T> {
        self.items
    }
}

/// Lazily mapped parallel iterator.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;
    fn run(self) -> Vec<R> {
        par_apply(self.base.run(), self.f)
    }
}

/// Lazily flat-mapped parallel iterator.
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for FlatMap<B, F>
where
    B: ParallelIterator,
    R: IntoIterator,
    R::Item: Send,
    R::IntoIter: Iterator<Item = R::Item>,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R::Item;
    fn run(self) -> Vec<R::Item> {
        let f = self.f;
        par_apply(self.base.run(), move |x| {
            f(x).into_iter().collect::<Vec<_>>()
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Current worker-pool width (mirrors `rayon::current_num_threads`).
pub fn current_num_threads() -> usize {
    thread_count(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u64> = (0..1000).collect();
        let doubled: Vec<u64> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_flattens_in_order() {
        let v = vec![1usize, 2, 3];
        let out: Vec<usize> = v.into_par_iter().flat_map(|x| vec![x; x]).collect();
        assert_eq!(out, vec![1, 2, 2, 3, 3, 3]);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x + 1).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn thread_count_policy() {
        // No cap: hardware limit, then item count, floor of 1.
        assert_eq!(thread_count_from(8, None, 100), 8);
        assert_eq!(thread_count_from(8, None, 3), 3);
        assert_eq!(thread_count_from(8, None, 0), 1);
        assert_eq!(thread_count_from(1, None, 100), 1);
        // Cap lowers but never raises the hardware limit.
        assert_eq!(thread_count_from(8, Some(4), 100), 4);
        assert_eq!(thread_count_from(4, Some(16), 100), 4);
        // Zero / unparsable caps are ignored.
        assert_eq!(thread_count_from(8, Some(0), 100), 8);
        // Cap interacts with item count: fewest wins.
        assert_eq!(thread_count_from(8, Some(4), 2), 2);
    }

    #[test]
    fn join_all_runs_every_job_and_supports_borrows() {
        let mut outputs = vec![0u64; 8];
        {
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outputs
                .iter_mut()
                .enumerate()
                .map(|(i, slot)| {
                    Box::new(move || {
                        *slot = (i as u64 + 1) * 10;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            super::join_all(jobs);
        }
        assert_eq!(outputs, vec![10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    fn pool_reuses_workers_across_calls() {
        // Warm the pool once, then check that repeated parallel calls
        // do not spawn new threads: the pool parks and reuses them.
        let warm: Vec<u32> = (0..64).collect();
        let _: Vec<u32> = warm.into_par_iter().map(|x| x + 1).collect();
        let after_warm = pool_threads_spawned();
        for _ in 0..8 {
            let v: Vec<u32> = (0..64).collect();
            let _: Vec<u32> = v.into_par_iter().map(|x| x + 1).collect();
            let mut outputs = [0u64; 4];
            let jobs: Vec<Box<dyn FnOnce() + Send + '_>> = outputs
                .iter_mut()
                .map(|slot| Box::new(move || *slot = 1) as Box<dyn FnOnce() + Send + '_>)
                .collect();
            super::join_all(jobs);
        }
        assert_eq!(
            pool_threads_spawned(),
            after_warm,
            "parallel calls after warm-up must reuse parked workers"
        );
        let limit = hardware_parallelism();
        assert!(
            pool_threads_spawned() < limit.max(2),
            "pool never exceeds hardware parallelism minus the caller"
        );
    }

    #[test]
    fn actually_uses_multiple_threads_when_available() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let ids = Mutex::new(HashSet::new());
        let v: Vec<u32> = (0..64).collect();
        let _: Vec<()> = v
            .into_par_iter()
            .map(|_| {
                ids.lock().unwrap().insert(std::thread::current().id());
                std::thread::sleep(std::time::Duration::from_millis(1));
            })
            .collect();
        let distinct = ids.lock().unwrap().len();
        let avail = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        if avail > 1 {
            assert!(
                distinct > 1,
                "expected parallel execution, saw {distinct} thread(s)"
            );
        }
    }
}
