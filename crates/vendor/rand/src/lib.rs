//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment for this repository has no access to a crate
//! registry, so this shim vendors the small API subset the simulator
//! uses: the [`Rng`] / [`SeedableRng`] traits, [`rngs::StdRng`], and a
//! process-local [`rng()`] constructor. `StdRng` here is xoshiro256++
//! seeded through SplitMix64 — deterministic, fast, and statistically
//! solid for simulation workloads (it is *not* cryptographic, which the
//! real `StdRng` is; nothing in this workspace needs that).

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from the "standard" distribution of the real crate:
/// `f64` uniform in `[0, 1)`, integers uniform over their range, `bool`
/// with probability 1/2.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform double in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// User-facing sampling methods, blanket-implemented for every core
/// source (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be nonzero.
    fn random_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift rejection-free mapping (Lemire); the tiny bias
        // for astronomic bounds is irrelevant for simulation use.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ generator (stands in for the real crate's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The full internal state, for checkpointing. Restoring the
        /// same four words with [`StdRng::from_state`] resumes the
        /// stream exactly where it left off.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] checkpoint.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A fresh unseeded generator (mirrors `rand::rng()`): distinct streams
/// per call within a process, no cryptographic claims.
pub fn rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let salt = COUNTER.fetch_add(1, Ordering::Relaxed);
    let t = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    <rngs::StdRng as SeedableRng>::seed_from_u64(t ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_are_unit_uniform() {
        let mut r = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn random_below_respects_bound() {
        let mut r = StdRng::seed_from_u64(1);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.random_below(bound) < bound);
            }
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn process_rng_streams_differ() {
        let mut a = rng();
        let mut b = rng();
        let sa: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }
}
